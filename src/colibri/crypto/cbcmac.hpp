// AES-CBC-MAC over length-prefixed input.
//
// The paper uses "AES-128 in CBC mode" for HVF computation (§7.1). CBC-MAC
// is only secure for fixed-length messages; all Colibri MAC inputs are
// fixed-layout structures, and we additionally prepend the length so the
// primitive is safe for our variable-size control payloads too. Provided
// alongside CMAC for the crypto ablation benchmark.
#pragma once

#include <cstddef>
#include <cstdint>

#include "colibri/crypto/aes.hpp"

namespace colibri::crypto {

class CbcMac {
 public:
  static constexpr size_t kTagSize = 16;

  CbcMac() = default;
  explicit CbcMac(const std::uint8_t key[Aes128::kKeySize]) { set_key(key); }

  void set_key(const std::uint8_t key[Aes128::kKeySize]) { aes_.set_key(key); }

  void compute(const std::uint8_t* msg, size_t len,
               std::uint8_t tag[kTagSize]) const;

 private:
  Aes128 aes_;
};

}  // namespace colibri::crypto
