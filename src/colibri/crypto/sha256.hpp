// SHA-256 (FIPS 180-4).
//
// Used by the simulated PKI (key-server bootstrap signatures) and anywhere
// a collision-resistant digest is needed outside the packet fast path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "colibri/common/bytes.hpp"

namespace colibri::crypto {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(const std::uint8_t* data, size_t len);
  void update(BytesView data) { update(data.data(), data.size()); }
  Digest finish();

  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t block[64]);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// HMAC-SHA256, used by the simulated PKI channel.
Sha256::Digest hmac_sha256(BytesView key, BytesView msg);

}  // namespace colibri::crypto
