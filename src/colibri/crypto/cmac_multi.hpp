// Multi-lane AES/CBC-MAC primitives for the batched data-plane pipeline.
//
// The scalar hot path (hvf.hpp) computes one CBC-MAC at a time, which on
// AES-NI hardware leaves the aesenc pipeline mostly idle: a single chain
// is latency-bound. These helpers keep many independent MAC states in
// flight — same-key lanes ride Aes128::encrypt_blocks (4-wide interleave),
// per-lane-key batches go through aes128_encrypt_each — so the batched
// pipeline amortizes both the cipher latency and the key expansion.
//
// Verdict parity matters more than speed here: every function is defined
// to produce byte-identical output to its scalar counterpart in hvf.hpp
// (asserted by the crypto tests and the differential harness).
#pragma once

#include <cstddef>
#include <cstdint>

#include "colibri/crypto/aes.hpp"

namespace colibri::crypto {

// An expanded AES-128 encryption schedule without the Aes128 class
// overhead (no decryption schedule, no virtual anything). `expand()`
// uses AESKEYGENASSIST when available — roughly an order of magnitude
// faster than the portable expansion, which matters because the batched
// router expands one schedule per packet (Eq. 6 keys are per-hop σ_i).
struct AesSchedule {
  alignas(16) std::uint8_t rk[176];

  void expand(const std::uint8_t key[16]);
};

// Encrypt n independent (schedule, block) pairs: out[i] = E_{scheds[i]}(in[i]).
// Blocks are 16 bytes each, packed contiguously. Interleaved 4-wide on AES-NI.
void aes128_encrypt_each(const AesSchedule* scheds, std::size_t n,
                         const std::uint8_t* in, std::uint8_t* out);

// CBC-MAC over n fixed-length messages under ONE key (zero-padded to whole
// blocks, no length prefix — same construction as hvf.hpp cbcmac_fixed).
// Message lane l starts at msgs + l*stride; all lanes share msg_len.
// Writes 16 bytes of MAC per lane into macs (16*n bytes total).
//
// Parity contract: for every lane, the output equals
// cbcmac_fixed(aes, msgs + l*stride, msg_len, macs + 16*l).
void cbcmac_fixed_multi(const Aes128& aes, const std::uint8_t* msgs,
                        std::size_t msg_len, std::size_t stride, std::size_t n,
                        std::uint8_t* macs);

}  // namespace colibri::crypto
