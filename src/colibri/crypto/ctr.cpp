#include "colibri/crypto/ctr.hpp"

#include <cstring>

namespace colibri::crypto {

void ctr_xcrypt(const Aes128& aes, const std::uint8_t iv[16], std::uint8_t* buf,
                size_t len) {
  std::uint8_t ctr[16];
  std::memcpy(ctr, iv, 16);
  std::uint8_t ks[16];
  size_t off = 0;
  while (off < len) {
    aes.encrypt_block(ctr, ks);
    const size_t n = (len - off < 16) ? len - off : 16;
    for (size_t i = 0; i < n; ++i) buf[off + i] ^= ks[i];
    off += n;
    // Big-endian increment.
    for (int i = 15; i >= 0; --i) {
      if (++ctr[i] != 0) break;
    }
  }
}

}  // namespace colibri::crypto
