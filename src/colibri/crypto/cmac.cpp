#include "colibri/crypto/cmac.hpp"

#include <cstring>

namespace colibri::crypto {
namespace {

// Doubling in GF(2^128) with the CMAC polynomial (RFC 4493 §2.3).
void gf_double(const std::uint8_t in[16], std::uint8_t out[16]) {
  const std::uint8_t carry = static_cast<std::uint8_t>(in[0] >> 7);
  for (int i = 0; i < 15; ++i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | (in[i + 1] >> 7));
  }
  out[15] = static_cast<std::uint8_t>((in[15] << 1) ^ (carry * 0x87));
}

}  // namespace

void Cmac::set_key(const std::uint8_t key[Aes128::kKeySize]) {
  aes_.set_key(key);
  std::uint8_t l[16] = {};
  aes_.encrypt_block(l, l);
  gf_double(l, k1_);
  gf_double(k1_, k2_);
}

void Cmac::compute(const std::uint8_t* msg, size_t len,
                   std::uint8_t tag[kTagSize]) const {
  std::uint8_t x[16] = {};
  const size_t full_blocks = (len == 0) ? 0 : (len - 1) / 16;

  for (size_t b = 0; b < full_blocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= msg[16 * b + i];
    aes_.encrypt_block(x, x);
  }

  // Last (possibly partial) block.
  std::uint8_t last[16];
  const size_t tail = len - 16 * full_blocks;
  if (len > 0 && tail == 16) {
    for (int i = 0; i < 16; ++i) {
      last[i] = static_cast<std::uint8_t>(msg[16 * full_blocks + i] ^ k1_[i]);
    }
  } else {
    std::memset(last, 0, 16);
    std::memcpy(last, msg + 16 * full_blocks, tail);
    last[tail] = 0x80;
    for (int i = 0; i < 16; ++i) last[i] ^= k2_[i];
  }
  for (int i = 0; i < 16; ++i) x[i] ^= last[i];
  aes_.encrypt_block(x, tag);
}

bool Cmac::verify_prefix(const std::uint8_t* expected,
                         const std::uint8_t* actual, size_t n) {
  std::uint8_t diff = 0;
  for (size_t i = 0; i < n; ++i) diff |= expected[i] ^ actual[i];
  return diff == 0;
}

}  // namespace colibri::crypto
