#include "colibri/crypto/cbcmac.hpp"

#include <cstring>

namespace colibri::crypto {

void CbcMac::compute(const std::uint8_t* msg, size_t len,
                     std::uint8_t tag[kTagSize]) const {
  // First block encodes the message length, preventing extension attacks
  // on variable-length input.
  std::uint8_t x[16] = {};
  for (int i = 0; i < 8; ++i) {
    x[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(len) >> (8 * i));
  }
  aes_.encrypt_block(x, x);

  size_t off = 0;
  while (off + 16 <= len) {
    for (int i = 0; i < 16; ++i) x[i] ^= msg[off + i];
    aes_.encrypt_block(x, x);
    off += 16;
  }
  if (off < len) {
    std::uint8_t last[16] = {};
    std::memcpy(last, msg + off, len - off);
    last[len - off] = 0x80;
    for (int i = 0; i < 16; ++i) x[i] ^= last[i];
    aes_.encrypt_block(x, x);
  }
  std::memcpy(tag, x, 16);
}

}  // namespace colibri::crypto
