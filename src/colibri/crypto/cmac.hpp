// AES-CMAC (RFC 4493).
//
// Used as the PRF in DRKey derivation (paper Eq. 1) and as the MAC for
// hop validation fields (Eqs. 3, 4, 6) and control-plane payloads. The
// inputs in the data plane are one or two blocks, so a CMAC costs one or
// two AES block operations plus the XORs — the per-packet budget the
// paper's forwarding numbers are built on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "colibri/common/bytes.hpp"
#include "colibri/crypto/aes.hpp"

namespace colibri::crypto {

class Cmac {
 public:
  static constexpr size_t kTagSize = 16;

  Cmac() = default;
  explicit Cmac(const std::uint8_t key[Aes128::kKeySize]) { set_key(key); }

  void set_key(const std::uint8_t key[Aes128::kKeySize]);

  // One-shot MAC over msg; writes a 16-byte tag.
  void compute(const std::uint8_t* msg, size_t len,
               std::uint8_t tag[kTagSize]) const;
  void compute(BytesView msg, std::uint8_t tag[kTagSize]) const {
    compute(msg.data(), msg.size(), tag);
  }

  // Constant-time comparison of the first `n` tag bytes.
  static bool verify_prefix(const std::uint8_t* expected,
                            const std::uint8_t* actual, size_t n);

  const Aes128& cipher() const { return aes_; }

 private:
  Aes128 aes_;
  std::uint8_t k1_[16] = {};
  std::uint8_t k2_[16] = {};
};

}  // namespace colibri::crypto
