#include "colibri/crypto/eax.hpp"

#include <cstring>

#include "colibri/crypto/ctr.hpp"

namespace colibri::crypto {

void Eax::set_key(const std::uint8_t key[Aes128::kKeySize]) {
  cmac_.set_key(key);
}

void Eax::omac(std::uint8_t tweak, BytesView msg, std::uint8_t out[16]) const {
  Bytes buf(16, 0);
  buf[15] = tweak;
  append_bytes(buf, msg);
  cmac_.compute(buf, out);
}

Bytes Eax::seal(BytesView nonce, BytesView aad, BytesView plaintext) const {
  std::uint8_t n[16], h[16], c[16];
  omac(0, nonce, n);
  omac(1, aad, h);

  Bytes out(nonce.begin(), nonce.end());
  const size_t ct_off = out.size();
  append_bytes(out, plaintext);
  ctr_xcrypt(cmac_.cipher(), n, out.data() + ct_off, plaintext.size());

  omac(2, BytesView(out.data() + ct_off, plaintext.size()), c);
  for (int i = 0; i < 16; ++i) out.push_back(n[i] ^ h[i] ^ c[i]);
  return out;
}

std::optional<Bytes> Eax::open(BytesView aad, BytesView sealed) const {
  if (sealed.size() < kNonceSize + kTagSize) return std::nullopt;
  const BytesView nonce = sealed.subspan(0, kNonceSize);
  const size_t ct_len = sealed.size() - kNonceSize - kTagSize;
  const BytesView ct = sealed.subspan(kNonceSize, ct_len);
  const BytesView tag = sealed.subspan(kNonceSize + ct_len, kTagSize);

  std::uint8_t n[16], h[16], c[16];
  omac(0, nonce, n);
  omac(1, aad, h);
  omac(2, ct, c);

  std::uint8_t expect[16];
  for (int i = 0; i < 16; ++i) expect[i] = n[i] ^ h[i] ^ c[i];
  if (!Cmac::verify_prefix(expect, tag.data(), kTagSize)) return std::nullopt;

  Bytes pt(ct.begin(), ct.end());
  ctr_xcrypt(cmac_.cipher(), n, pt.data(), pt.size());
  return pt;
}

}  // namespace colibri::crypto
