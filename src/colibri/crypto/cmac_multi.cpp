#include "colibri/crypto/cmac_multi.hpp"

#include <cstring>

namespace colibri::crypto {

void AesSchedule::expand(const std::uint8_t key[16]) {
#if defined(COLIBRI_HAVE_AESNI)
  if (Aes128::has_aesni()) {
    aesni::expand_key(key, rk);
    return;
  }
#endif
  portable::expand_key(key, rk);
}

void aes128_encrypt_each(const AesSchedule* scheds, std::size_t n,
                         const std::uint8_t* in, std::uint8_t* out) {
#if defined(COLIBRI_HAVE_AESNI)
  if (Aes128::has_aesni()) {
    // encrypt_each wants per-lane schedule pointers; build them in chunks
    // so the pointer array stays on the stack regardless of n.
    constexpr std::size_t kChunk = 64;
    const std::uint8_t* rks[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t m = (n - base < kChunk) ? n - base : kChunk;
      for (std::size_t i = 0; i < m; ++i) rks[i] = scheds[base + i].rk;
      aesni::encrypt_each(rks, in + 16 * base, out + 16 * base, m);
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    portable::encrypt_block(scheds[i].rk, in + 16 * i, out + 16 * i);
  }
}

void cbcmac_fixed_multi(const Aes128& aes, const std::uint8_t* msgs,
                        std::size_t msg_len, std::size_t stride, std::size_t n,
                        std::uint8_t* macs) {
  std::memset(macs, 0, 16 * n);
  std::size_t off = 0;
  while (off < msg_len) {
    const std::size_t blk = (msg_len - off < 16) ? msg_len - off : 16;
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint8_t* m = msgs + l * stride + off;
      std::uint8_t* x = macs + 16 * l;
      for (std::size_t i = 0; i < blk; ++i) x[i] ^= m[i];
    }
    aes.encrypt_blocks(macs, macs, n);
    off += blk;
  }
}

}  // namespace colibri::crypto
