// AES-128 block cipher.
//
// Two backends: a portable table-free byte-oriented implementation and an
// AES-NI path (compiled in a separate -maes translation unit, selected at
// runtime via CPUID). The data plane computes 1-2 AES-CMACs per packet
// (paper §4.5-4.6), so single-block encryption latency dominates the
// forwarding benchmarks (Figs. 5-6).
#pragma once

#include <cstddef>
#include <cstdint>

namespace colibri::crypto {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  Aes128() = default;
  explicit Aes128(const std::uint8_t key[kKeySize]) { set_key(key); }

  void set_key(const std::uint8_t key[kKeySize]);

  // Single-block ECB encryption/decryption. in and out may alias.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  // Same-key multi-block ECB over `n` independent blocks. On AES-NI the
  // blocks are interleaved four wide so the pipelined aesenc latency is
  // amortized across lanes (the batched data-plane pipeline's workhorse).
  // in and out may alias element-wise.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n_blocks) const;

  // Expanded encryption round keys, 11 x 16 bytes, little-endian order.
  const std::uint8_t* round_keys() const { return enc_rk_; }

  // True if the AES-NI fast path is compiled in and supported by the CPU.
  static bool has_aesni();

  // Force the portable path (for tests and the crypto ablation bench).
  static void set_force_portable(bool force);

 private:
  void encrypt_block_portable(const std::uint8_t in[kBlockSize],
                              std::uint8_t out[kBlockSize]) const;
  void decrypt_block_portable(const std::uint8_t in[kBlockSize],
                              std::uint8_t out[kBlockSize]) const;

  alignas(16) std::uint8_t enc_rk_[16 * (kRounds + 1)] = {};
  alignas(16) std::uint8_t dec_rk_[16 * (kRounds + 1)] = {};
};

// Portable reference primitives operating on a raw round-key schedule.
// Aes128 delegates here; the multi-lane batch helpers (cmac_multi.hpp)
// use them as the fallback when AES-NI is unavailable.
namespace portable {
void expand_key(const std::uint8_t key[16], std::uint8_t rk[176]);
void encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                   std::uint8_t out[16]);
}  // namespace portable

// AES-NI backend hooks (defined in aesni.cpp when compiled in).
namespace aesni {
bool runtime_supported();
void expand_key(const std::uint8_t key[16], std::uint8_t rk[176]);
void encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                   std::uint8_t out[16]);
// Same key, n blocks, interleaved 4-wide.
void encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                    std::uint8_t* out, std::size_t n);
// n independent (round-key schedule, block) lanes, interleaved 4-wide.
void encrypt_each(const std::uint8_t* const* rks, const std::uint8_t* in,
                  std::uint8_t* out, std::size_t n);
}  // namespace aesni

}  // namespace colibri::crypto
