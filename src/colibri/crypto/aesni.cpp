// AES-NI backend. Compiled with -maes in its own translation unit; the
// portable code dispatches here after a runtime CPUID check.
#include <cpuid.h>
#include <immintrin.h>
#include <wmmintrin.h>

#include <cstdint>

namespace colibri::crypto::aesni {

bool runtime_supported() {
  static const bool supported = [] {
    unsigned eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
    return (ecx & bit_AES) != 0;
  }();
  return supported;
}

void encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                   std::uint8_t out[16]) {
  const auto* k = reinterpret_cast<const __m128i*>(rk);
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b, _mm_loadu_si128(k));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 1));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 2));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 3));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 4));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 5));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 6));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 7));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 8));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 9));
  b = _mm_aesenclast_si128(b, _mm_loadu_si128(k + 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

}  // namespace colibri::crypto::aesni
