// AES-NI backend. Compiled with -maes in its own translation unit; the
// portable code dispatches here after a runtime CPUID check.
#include <cpuid.h>
#include <immintrin.h>
#include <wmmintrin.h>

#include <cstdint>

namespace colibri::crypto::aesni {

bool runtime_supported() {
  static const bool supported = [] {
    unsigned eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
    return (ecx & bit_AES) != 0;
  }();
  return supported;
}

// AESKEYGENASSIST-based schedule expansion; bit-identical to the
// portable expansion (asserted by the crypto tests), ~10x faster.
void expand_key(const std::uint8_t key[16], std::uint8_t rk[176]) {
  auto* out = reinterpret_cast<__m128i*>(rk);
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  _mm_storeu_si128(out, k);
  const auto step = [&k](__m128i assist) {
    assist = _mm_shuffle_epi32(assist, _MM_SHUFFLE(3, 3, 3, 3));
    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
    k = _mm_xor_si128(k, assist);
  };
#define COLIBRI_EXPAND_ROUND(r, rcon)                    \
  step(_mm_aeskeygenassist_si128(k, rcon));              \
  _mm_storeu_si128(out + (r), k)
  COLIBRI_EXPAND_ROUND(1, 0x01);
  COLIBRI_EXPAND_ROUND(2, 0x02);
  COLIBRI_EXPAND_ROUND(3, 0x04);
  COLIBRI_EXPAND_ROUND(4, 0x08);
  COLIBRI_EXPAND_ROUND(5, 0x10);
  COLIBRI_EXPAND_ROUND(6, 0x20);
  COLIBRI_EXPAND_ROUND(7, 0x40);
  COLIBRI_EXPAND_ROUND(8, 0x80);
  COLIBRI_EXPAND_ROUND(9, 0x1b);
  COLIBRI_EXPAND_ROUND(10, 0x36);
#undef COLIBRI_EXPAND_ROUND
}

void encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                   std::uint8_t out[16]) {
  const auto* k = reinterpret_cast<const __m128i*>(rk);
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b, _mm_loadu_si128(k));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 1));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 2));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 3));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 4));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 5));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 6));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 7));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 8));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(k + 9));
  b = _mm_aesenclast_si128(b, _mm_loadu_si128(k + 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

// Four blocks under one schedule, states interleaved so the aesenc
// pipeline (latency ~4 cycles, throughput 1-2/cycle) stays full.
static inline void encrypt_blocks4(const __m128i* k, const std::uint8_t* in,
                                   std::uint8_t* out) {
  const auto* pi = reinterpret_cast<const __m128i*>(in);
  __m128i b0 = _mm_loadu_si128(pi + 0);
  __m128i b1 = _mm_loadu_si128(pi + 1);
  __m128i b2 = _mm_loadu_si128(pi + 2);
  __m128i b3 = _mm_loadu_si128(pi + 3);
  const __m128i k0 = _mm_loadu_si128(k);
  b0 = _mm_xor_si128(b0, k0);
  b1 = _mm_xor_si128(b1, k0);
  b2 = _mm_xor_si128(b2, k0);
  b3 = _mm_xor_si128(b3, k0);
  for (int r = 1; r < 10; ++r) {
    const __m128i kr = _mm_loadu_si128(k + r);
    b0 = _mm_aesenc_si128(b0, kr);
    b1 = _mm_aesenc_si128(b1, kr);
    b2 = _mm_aesenc_si128(b2, kr);
    b3 = _mm_aesenc_si128(b3, kr);
  }
  const __m128i kl = _mm_loadu_si128(k + 10);
  b0 = _mm_aesenclast_si128(b0, kl);
  b1 = _mm_aesenclast_si128(b1, kl);
  b2 = _mm_aesenclast_si128(b2, kl);
  b3 = _mm_aesenclast_si128(b3, kl);
  auto* po = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(po + 0, b0);
  _mm_storeu_si128(po + 1, b1);
  _mm_storeu_si128(po + 2, b2);
  _mm_storeu_si128(po + 3, b3);
}

void encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                    std::uint8_t* out, std::size_t n) {
  const auto* k = reinterpret_cast<const __m128i*>(rk);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) encrypt_blocks4(k, in + 16 * i, out + 16 * i);
  for (; i < n; ++i) encrypt_block(rk, in + 16 * i, out + 16 * i);
}

void encrypt_each(const std::uint8_t* const* rks, const std::uint8_t* in,
                  std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto* pi = reinterpret_cast<const __m128i*>(in + 16 * i);
    const auto* k0 = reinterpret_cast<const __m128i*>(rks[i + 0]);
    const auto* k1 = reinterpret_cast<const __m128i*>(rks[i + 1]);
    const auto* k2 = reinterpret_cast<const __m128i*>(rks[i + 2]);
    const auto* k3 = reinterpret_cast<const __m128i*>(rks[i + 3]);
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(pi + 0), _mm_loadu_si128(k0));
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(pi + 1), _mm_loadu_si128(k1));
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(pi + 2), _mm_loadu_si128(k2));
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(pi + 3), _mm_loadu_si128(k3));
    for (int r = 1; r < 10; ++r) {
      b0 = _mm_aesenc_si128(b0, _mm_loadu_si128(k0 + r));
      b1 = _mm_aesenc_si128(b1, _mm_loadu_si128(k1 + r));
      b2 = _mm_aesenc_si128(b2, _mm_loadu_si128(k2 + r));
      b3 = _mm_aesenc_si128(b3, _mm_loadu_si128(k3 + r));
    }
    b0 = _mm_aesenclast_si128(b0, _mm_loadu_si128(k0 + 10));
    b1 = _mm_aesenclast_si128(b1, _mm_loadu_si128(k1 + 10));
    b2 = _mm_aesenclast_si128(b2, _mm_loadu_si128(k2 + 10));
    b3 = _mm_aesenclast_si128(b3, _mm_loadu_si128(k3 + 10));
    auto* po = reinterpret_cast<__m128i*>(out + 16 * i);
    _mm_storeu_si128(po + 0, b0);
    _mm_storeu_si128(po + 1, b1);
    _mm_storeu_si128(po + 2, b2);
    _mm_storeu_si128(po + 3, b3);
  }
  for (; i < n; ++i) encrypt_block(rks[i], in + 16 * i, out + 16 * i);
}

}  // namespace colibri::crypto::aesni
