// AES-EAX authenticated encryption with associated data.
//
// Used to return hop authenticators to the source AS over an authentic,
// confidential channel (paper Eq. 5): AS_i -> AS_0 : AEAD_{K_{AS_i->AS_0}}(σ_i).
// EAX composes AES-CTR with three tweaked OMACs (nonce, header, ciphertext)
// and needs only the AES primitive we already have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "colibri/common/bytes.hpp"
#include "colibri/crypto/cmac.hpp"

namespace colibri::crypto {

class Eax {
 public:
  static constexpr size_t kTagSize = 16;
  static constexpr size_t kNonceSize = 16;

  Eax() = default;
  explicit Eax(const std::uint8_t key[Aes128::kKeySize]) { set_key(key); }

  void set_key(const std::uint8_t key[Aes128::kKeySize]);

  // Returns nonce || ciphertext || tag.
  Bytes seal(BytesView nonce, BytesView aad, BytesView plaintext) const;

  // Inverse of seal; nullopt if the tag does not verify.
  std::optional<Bytes> open(BytesView aad, BytesView sealed) const;

 private:
  // OMAC^t_K(m) = CMAC_K([0]^15 || t || m).
  void omac(std::uint8_t tweak, BytesView msg, std::uint8_t out[16]) const;

  Cmac cmac_;
};

}  // namespace colibri::crypto
