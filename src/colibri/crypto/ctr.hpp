// AES-CTR keystream encryption (building block of EAX).
#pragma once

#include <cstddef>
#include <cstdint>

#include "colibri/crypto/aes.hpp"

namespace colibri::crypto {

// XORs the AES-CTR keystream into buf. Encryption and decryption are the
// same operation. The 16-byte counter block is incremented big-endian.
void ctr_xcrypt(const Aes128& aes, const std::uint8_t iv[16],
                std::uint8_t* buf, size_t len);

}  // namespace colibri::crypto
