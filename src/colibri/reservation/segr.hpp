// Segment-reservation store with the indexes admission needs.
//
// The paper stores reservations in a transactional database; here an
// in-memory store with secondary indexes. Lookups used on the admission
// path are O(1); the interface-pair scan exists only for diagnostics and
// tests (the admission algorithm itself never iterates, see
// admission/tube.hpp — that is the point of Fig. 3).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "colibri/reservation/types.hpp"

namespace colibri::reservation {

class SegrStore {
 public:
  // Inserts or replaces. Returns a stable pointer (records never move).
  SegrRecord* upsert(SegrRecord rec);
  SegrRecord* find(const ResKey& key);
  const SegrRecord* find(const ResKey& key) const;
  bool erase(const ResKey& key);

  // All reservations crossing an (ingress, egress) interface pair.
  std::vector<const SegrRecord*> by_interface_pair(IfId ingress,
                                                   IfId egress) const;

  // Removes expired reservations (active version expired and no pending);
  // calls `on_remove` for each so aggregate state can be unwound.
  size_t sweep(UnixSec now,
               const std::function<void(const SegrRecord&)>& on_remove);

  size_t size() const { return records_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [_, rec] : records_) fn(*rec);
  }

 private:
  struct PairKey {
    std::uint32_t v;
    friend bool operator==(PairKey, PairKey) = default;
  };
  struct PairHash {
    size_t operator()(PairKey k) const noexcept {
      return std::hash<std::uint32_t>{}(k.v * 0x9E3779B9u);
    }
  };
  static PairKey pair_key(IfId in, IfId eg) {
    return PairKey{static_cast<std::uint32_t>(in) << 16 | eg};
  }

  std::unordered_map<ResKey, std::unique_ptr<SegrRecord>> records_;
  std::unordered_map<PairKey, std::unordered_set<const SegrRecord*>, PairHash>
      by_pair_;
};

}  // namespace colibri::reservation
