// Reservation records stored by an AS (paper §3.3, §4.2).
//
// SegRs: intermediate-term AS-to-AS reservations (~5 min validity), one
// active version at a time, renewals produce a *pending* version that must
// be activated explicitly. EERs: short-term host-to-host reservations
// (16 s), where multiple versions may be live simultaneously for seamless
// renewal; the traffic monitor maps all versions to one flow and allows
// the *maximum* bandwidth over live versions (§4.8).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::reservation {

// Default validity periods from the paper (§3.3).
inline constexpr std::uint32_t kSegrLifetimeSec = 300;  // ~5 minutes
inline constexpr std::uint32_t kEerLifetimeSec = 16;

struct SegrVersion {
  ResVer version = 0;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
};

// One AS's view of a segment reservation it participates in.
struct SegrRecord {
  ResKey key;
  topology::SegType seg_type = topology::SegType::kUp;
  // Full segment with AS ids; `local_hop` indexes this AS's hop.
  std::vector<topology::Hop> hops;
  std::uint8_t local_hop = 0;

  SegrVersion active;
  // At most one pending version, awaiting explicit activation (§4.2).
  std::optional<SegrVersion> pending;

  // Sum over EERs of their (max-version) bandwidth currently admitted on
  // this SegR at this AS. Invariant: eer_allocated_kbps <= active.bw_kbps.
  BwKbps eer_allocated_kbps = 0;

  IfId ingress() const { return hops[local_hop].ingress; }
  IfId egress() const { return hops[local_hop].egress; }
  bool expired(UnixSec now) const { return active.exp_time <= now; }
  BwKbps eer_available_kbps() const {
    return active.bw_kbps > eer_allocated_kbps
               ? active.bw_kbps - eer_allocated_kbps
               : 0;
  }
};

struct EerVersion {
  ResVer version = 0;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
};

// One AS's view of an end-to-end reservation crossing it.
struct EerRecord {
  ResKey key;
  HostAddr src_host;
  HostAddr dst_host;
  std::vector<topology::Hop> path;
  std::uint8_t local_hop = 0;
  std::vector<ResKey> segrs;  // underlying SegRs, traversal order

  std::vector<EerVersion> versions;  // live versions, oldest first

  // Admission/monitoring bandwidth: max over non-expired versions (§4.8).
  BwKbps effective_bw(UnixSec now) const {
    BwKbps bw = 0;
    for (const auto& v : versions) {
      if (v.exp_time > now) bw = std::max(bw, v.bw_kbps);
    }
    return bw;
  }
  UnixSec latest_expiry() const {
    UnixSec e = 0;
    for (const auto& v : versions) e = std::max(e, v.exp_time);
    return e;
  }
  bool expired(UnixSec now) const { return latest_expiry() <= now; }
  // Drops expired versions; returns true if any were removed.
  bool prune(UnixSec now);
};

}  // namespace colibri::reservation
