// Per-AS reservation database: SegR + EER stores plus the monotonically
// increasing ResId allocator (paper §4.3: "the CServ increases the ResId
// for every new SegR or EER", making (SrcAS, ResId) globally unique).
#pragma once

#include "colibri/reservation/eer.hpp"
#include "colibri/reservation/segr.hpp"

namespace colibri::reservation {

class ReservationDb {
 public:
  explicit ReservationDb(AsId owner) : owner_(owner) {}

  AsId owner() const { return owner_; }

  // Allocates the next reservation id for reservations initiated here.
  ResId next_res_id() { return ++last_res_id_; }

  SegrStore& segrs() { return segrs_; }
  const SegrStore& segrs() const { return segrs_; }
  EerStore& eers() { return eers_; }
  const EerStore& eers() const { return eers_; }

 private:
  AsId owner_;
  ResId last_res_id_ = 0;
  SegrStore segrs_;
  EerStore eers_;
};

}  // namespace colibri::reservation
