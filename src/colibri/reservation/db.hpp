// Per-AS reservation database, sharded for a concurrent control plane.
//
// State (SegR store, EER store) is partitioned into N shards keyed by a
// splitmix64 hash of the ResId — the same stable id-routing the data
// plane's ShardedGateway uses — with one mutex per shard and no global
// lock. The ResId allocator is atomic (paper §4.3: "the CServ increases
// the ResId for every new SegR or EER", making (SrcAS, ResId) globally
// unique), so concurrent setup requests never mint duplicate ids.
//
// API contract (the old raw segrs()/eers() store accessors are gone):
//  * with_segr / with_eer run a callback on the record pointer (nullptr
//    when absent) under the owning shard's lock. Callbacks must be short
//    and must not re-enter the database or call out to the bus.
//  * with_segr_pair locks the two owning shards in ascending shard-index
//    order (one lock when they coincide), so multi-record admission
//    updates are deadlock-free by construction.
//  * for_each_* iterate shard by shard under that shard's lock;
//    segr_snapshot / eer_snapshot copy records out for lock-free scans.
//  * sweep_segrs / sweep_eers are two-phase: expired records are removed
//    under the shard lock, but the on_remove callbacks run on copies
//    *after* the lock is dropped, so they may re-enter the database or
//    release admission state without lock-order hazards.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <vector>

#include "colibri/reservation/eer.hpp"
#include "colibri/reservation/segr.hpp"

namespace colibri::reservation {

class ReservationDb {
 public:
  explicit ReservationDb(AsId owner, size_t num_shards = 1)
      : owner_(owner), shards_(num_shards == 0 ? 1 : num_shards) {}

  ReservationDb(const ReservationDb&) = delete;
  ReservationDb& operator=(const ReservationDb&) = delete;

  AsId owner() const { return owner_; }
  size_t num_shards() const { return shards_.size(); }

  // Stable shard routing: splitmix64 finalizer over the ResId, matching
  // ShardedGateway::shard_of — placement depends only on (id, count).
  static size_t shard_of(ResId id, size_t num_shards) {
    std::uint64_t h = id;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h % num_shards);
  }
  size_t shard_of(ResId id) const { return shard_of(id, shards_.size()); }

  // Allocates the next reservation id for reservations initiated here.
  // Lock-free; safe under concurrent allocation.
  ResId next_res_id() { return last_res_id_.fetch_add(1) + 1; }

  // Recovery support: ensures future next_res_id() calls return ids
  // strictly greater than `floor` (WAL replay restores the allocator so a
  // restarted CServ cannot re-mint a live reservation's id).
  void reserve_ids_through(ResId floor) {
    ResId cur = last_res_id_.load();
    while (cur < floor && !last_res_id_.compare_exchange_weak(cur, floor)) {
    }
  }
  ResId last_res_id() const { return last_res_id_.load(); }

  // --- scoped record access ----------------------------------------------
  template <typename Fn>
  decltype(auto) with_segr(const ResKey& key, Fn&& fn) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return fn(s.segrs.find(key));
  }
  template <typename Fn>
  decltype(auto) with_segr(const ResKey& key, Fn&& fn) const {
    const Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return fn(s.segrs.find(key));
  }
  template <typename Fn>
  decltype(auto) with_eer(const ResKey& key, Fn&& fn) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return fn(s.eers.find(key));
  }
  template <typename Fn>
  decltype(auto) with_eer(const ResKey& key, Fn&& fn) const {
    const Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return fn(s.eers.find(key));
  }

  // Locks the shards owning `a` and `b` in ascending shard-index order
  // and runs fn(SegrRecord* a, SegrRecord* b). `b` may be invalid
  // (res_id 0 never names a reservation) — fn then gets nullptr for it.
  template <typename Fn>
  decltype(auto) with_segr_pair(const ResKey& a, const std::optional<ResKey>& b,
                                Fn&& fn) {
    Shard& sa = shard(a);
    if (!b) {
      std::lock_guard lock(sa.mu);
      return fn(sa.segrs.find(a), static_cast<SegrRecord*>(nullptr));
    }
    Shard& sb = shard(*b);
    if (&sa == &sb) {
      std::lock_guard lock(sa.mu);
      return fn(sa.segrs.find(a), sb.segrs.find(*b));
    }
    Shard& first = shard_index(a) < shard_index(*b) ? sa : sb;
    Shard& second = &first == &sa ? sb : sa;
    std::scoped_lock lock(first.mu, second.mu);
    return fn(sa.segrs.find(a), sb.segrs.find(*b));
  }

  // --- mutation ------------------------------------------------------------
  // Inserts or replaces; `under_lock` (if provided) runs on the stored
  // record while the shard lock is still held — the WAL mirrors mutations
  // from there so log order matches apply order per shard.
  void upsert_segr(SegrRecord rec) {
    upsert_segr(std::move(rec), [](const SegrRecord&) {});
  }
  template <typename Fn>
  void upsert_segr(SegrRecord rec, Fn&& under_lock) {
    Shard& s = shard(rec.key);
    std::lock_guard lock(s.mu);
    under_lock(*s.segrs.upsert(std::move(rec)));
  }
  void upsert_eer(EerRecord rec) {
    upsert_eer(std::move(rec), [](const EerRecord&) {});
  }
  template <typename Fn>
  void upsert_eer(EerRecord rec, Fn&& under_lock) {
    Shard& s = shard(rec.key);
    std::lock_guard lock(s.mu);
    under_lock(*s.eers.upsert(std::move(rec)));
  }

  bool erase_segr(const ResKey& key) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return s.segrs.erase(key);
  }
  bool erase_eer(const ResKey& key) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    return s.eers.erase(key);
  }

  // --- reads ---------------------------------------------------------------
  bool contains_segr(const ResKey& key) const {
    return with_segr(key, [](const SegrRecord* r) { return r != nullptr; });
  }
  bool contains_eer(const ResKey& key) const {
    return with_eer(key, [](const EerRecord* r) { return r != nullptr; });
  }
  std::optional<SegrRecord> segr_copy(const ResKey& key) const {
    return with_segr(key, [](const SegrRecord* r) {
      return r == nullptr ? std::nullopt : std::optional<SegrRecord>(*r);
    });
  }
  std::optional<EerRecord> eer_copy(const ResKey& key) const {
    return with_eer(key, [](const EerRecord* r) {
      return r == nullptr ? std::nullopt : std::optional<EerRecord>(*r);
    });
  }

  size_t segr_count() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s.mu);
      n += s.segrs.size();
    }
    return n;
  }
  size_t eer_count() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s.mu);
      n += s.eers.size();
    }
    return n;
  }

  // --- iteration -----------------------------------------------------------
  // Shard-by-shard scan under each shard's lock; fn must not re-enter the
  // database. For scans that need to call back into the db (or run long),
  // use the snapshot variants.
  template <typename Fn>
  void for_each_segr(Fn&& fn) const {
    for (const auto& s : shards_) {
      std::lock_guard lock(s.mu);
      s.segrs.for_each(fn);
    }
  }
  template <typename Fn>
  void for_each_eer(Fn&& fn) const {
    for (const auto& s : shards_) {
      std::lock_guard lock(s.mu);
      s.eers.for_each(fn);
    }
  }
  std::vector<SegrRecord> segr_snapshot() const;
  std::vector<EerRecord> eer_snapshot() const;

  // Keys of the live EERs owned by shard `shard_idx`, ResId-ordered —
  // the unit of batched renewal processing (one batch per shard).
  std::vector<ResKey> eer_keys_of_shard(size_t shard_idx) const;

  // --- expiry --------------------------------------------------------------
  // Two-phase sweeps: removal happens under the shard lock, the callbacks
  // run on copies after it is released (safe to re-enter the db / release
  // admission state from them).
  size_t sweep_segrs(UnixSec now,
                     const std::function<void(const SegrRecord&)>& on_remove);
  size_t sweep_eers(UnixSec now,
                    const std::function<void(const EerRecord&)>& on_remove);

 private:
  struct Shard {
    mutable std::mutex mu;
    SegrStore segrs;
    EerStore eers;
  };

  size_t shard_index(const ResKey& key) const {
    return shard_of(key.res_id, shards_.size());
  }
  Shard& shard(const ResKey& key) { return shards_[shard_index(key)]; }
  const Shard& shard(const ResKey& key) const {
    return shards_[shard_index(key)];
  }

  AsId owner_;
  std::atomic<ResId> last_res_id_{0};
  std::vector<Shard> shards_;
};

}  // namespace colibri::reservation
