#include "colibri/reservation/persist.hpp"

#include <array>
#include <cstdio>
#include <vector>

namespace colibri::reservation {
namespace {

enum : std::uint8_t {
  kSegrUpsert = 1,
  kSegrErase = 2,
  kEerUpsert = 3,
  kEerErase = 4,
};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_hops(Bytes& out, const std::vector<topology::Hop>& hops) {
  put_le(out, static_cast<std::uint16_t>(hops.size()));
  for (const auto& h : hops) {
    put_le(out, h.as.raw());
    put_le(out, static_cast<std::uint16_t>(h.ingress));
    put_le(out, static_cast<std::uint16_t>(h.egress));
  }
}

std::vector<topology::Hop> get_hops(ByteReader& r) {
  const auto n = r.read<std::uint16_t>();
  std::vector<topology::Hop> hops;
  hops.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    topology::Hop h;
    h.as = AsId::from_raw(r.read<std::uint64_t>());
    h.ingress = r.read<std::uint16_t>();
    h.egress = r.read<std::uint16_t>();
    hops.push_back(h);
  }
  return hops;
}

Bytes encode_key(const ResKey& key) {
  Bytes out;
  put_le(out, key.src_as.raw());
  put_le(out, key.res_id);
  return out;
}

std::optional<ResKey> decode_key(BytesView data) {
  ByteReader r(data);
  ResKey key;
  key.src_as = AsId::from_raw(r.read<std::uint64_t>());
  key.res_id = r.read<std::uint32_t>();
  if (!r.ok()) return std::nullopt;
  return key;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void FileStorage::append(BytesView data) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return;
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
}

Bytes FileStorage::read_all() const {
  Bytes out;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return out;
  std::uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void FileStorage::truncate() {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f != nullptr) std::fclose(f);
}

Bytes encode_segr_record(const SegrRecord& rec) {
  Bytes out;
  put_le(out, rec.key.src_as.raw());
  put_le(out, rec.key.res_id);
  out.push_back(static_cast<std::uint8_t>(rec.seg_type));
  put_hops(out, rec.hops);
  out.push_back(rec.local_hop);
  out.push_back(rec.active.version);
  put_le(out, rec.active.bw_kbps);
  put_le(out, rec.active.exp_time);
  out.push_back(rec.pending.has_value() ? 1 : 0);
  if (rec.pending) {
    out.push_back(rec.pending->version);
    put_le(out, rec.pending->bw_kbps);
    put_le(out, rec.pending->exp_time);
  }
  put_le(out, rec.eer_allocated_kbps);
  return out;
}

std::optional<SegrRecord> decode_segr_record(BytesView data) {
  ByteReader r(data);
  SegrRecord rec;
  rec.key.src_as = AsId::from_raw(r.read<std::uint64_t>());
  rec.key.res_id = r.read<std::uint32_t>();
  rec.seg_type = static_cast<topology::SegType>(r.read<std::uint8_t>());
  rec.hops = get_hops(r);
  rec.local_hop = r.read<std::uint8_t>();
  rec.active.version = r.read<std::uint8_t>();
  rec.active.bw_kbps = r.read<std::uint32_t>();
  rec.active.exp_time = r.read<std::uint32_t>();
  if (r.read<std::uint8_t>() != 0) {
    SegrVersion pending;
    pending.version = r.read<std::uint8_t>();
    pending.bw_kbps = r.read<std::uint32_t>();
    pending.exp_time = r.read<std::uint32_t>();
    rec.pending = pending;
  }
  rec.eer_allocated_kbps = r.read<std::uint32_t>();
  if (!r.ok() || rec.hops.empty() || rec.local_hop >= rec.hops.size()) {
    return std::nullopt;
  }
  return rec;
}

Bytes encode_eer_record(const EerRecord& rec) {
  Bytes out;
  put_le(out, rec.key.src_as.raw());
  put_le(out, rec.key.res_id);
  append_bytes(out, BytesView(rec.src_host.bytes, 16));
  append_bytes(out, BytesView(rec.dst_host.bytes, 16));
  put_hops(out, rec.path);
  out.push_back(rec.local_hop);
  put_le(out, static_cast<std::uint16_t>(rec.segrs.size()));
  for (const auto& s : rec.segrs) {
    put_le(out, s.src_as.raw());
    put_le(out, s.res_id);
  }
  put_le(out, static_cast<std::uint16_t>(rec.versions.size()));
  for (const auto& v : rec.versions) {
    out.push_back(v.version);
    put_le(out, v.bw_kbps);
    put_le(out, v.exp_time);
  }
  return out;
}

std::optional<EerRecord> decode_eer_record(BytesView data) {
  ByteReader r(data);
  EerRecord rec;
  rec.key.src_as = AsId::from_raw(r.read<std::uint64_t>());
  rec.key.res_id = r.read<std::uint32_t>();
  r.read_bytes(rec.src_host.bytes, 16);
  r.read_bytes(rec.dst_host.bytes, 16);
  rec.path = get_hops(r);
  rec.local_hop = r.read<std::uint8_t>();
  const auto ns = r.read<std::uint16_t>();
  rec.segrs.reserve(ns);
  for (std::uint16_t i = 0; i < ns; ++i) {
    ResKey k;
    k.src_as = AsId::from_raw(r.read<std::uint64_t>());
    k.res_id = r.read<std::uint32_t>();
    rec.segrs.push_back(k);
  }
  const auto nv = r.read<std::uint16_t>();
  rec.versions.reserve(nv);
  for (std::uint16_t i = 0; i < nv; ++i) {
    EerVersion v;
    v.version = r.read<std::uint8_t>();
    v.bw_kbps = r.read<std::uint32_t>();
    v.exp_time = r.read<std::uint32_t>();
    rec.versions.push_back(v);
  }
  if (!r.ok() || rec.path.empty() || rec.local_hop >= rec.path.size()) {
    return std::nullopt;
  }
  return rec;
}

void ReservationWal::append_record(std::uint8_t kind, BytesView payload) {
  std::lock_guard lock(mu_);
  append_record_locked(kind, payload);
}

void ReservationWal::append_record_locked(std::uint8_t kind,
                                          BytesView payload) {
  Bytes frame;
  frame.push_back(kind);
  put_le(frame, static_cast<std::uint32_t>(payload.size()));
  append_bytes(frame, payload);
  // The CRC covers the whole frame head (kind + length + payload), not
  // just the payload: a bit flip in the kind or length bytes is then
  // rejected by the checksum instead of being misparsed as a different
  // record type or a shifted frame boundary.
  put_le(frame, crc32(BytesView(frame.data(), frame.size())));
  storage_->append(frame);
}

void ReservationWal::log_segr_upsert(const SegrRecord& rec) {
  append_record(kSegrUpsert, encode_segr_record(rec));
}

void ReservationWal::log_segr_erase(const ResKey& key) {
  append_record(kSegrErase, encode_key(key));
}

void ReservationWal::log_eer_upsert(const EerRecord& rec) {
  append_record(kEerUpsert, encode_eer_record(rec));
}

void ReservationWal::log_eer_erase(const ResKey& key) {
  append_record(kEerErase, encode_key(key));
}

void ReservationWal::checkpoint(const ReservationDb& db) {
  // Snapshot the DB before taking the WAL mutex: loggers run inside DB
  // shard callbacks (shard lock -> WAL lock), so holding the WAL mutex
  // across shard iteration would invert the repo-wide lock order (the
  // WAL is innermost). The checkpoint is point-in-time; callers that
  // need it atomic with respect to writers quiesce them first.
  const std::vector<SegrRecord> segrs = db.segr_snapshot();
  const std::vector<EerRecord> eers = db.eer_snapshot();
  std::lock_guard lock(mu_);
  storage_->truncate();
  for (const SegrRecord& rec : segrs) {
    append_record_locked(kSegrUpsert, encode_segr_record(rec));
  }
  for (const EerRecord& rec : eers) {
    append_record_locked(kEerUpsert, encode_eer_record(rec));
  }
}

size_t ReservationWal::recover(ReservationDb& db) const {
  // Copy the log under the WAL mutex, then replay without it: replay
  // takes DB shard locks, and the WAL lock must stay innermost.
  Bytes log;
  {
    std::lock_guard lock(mu_);
    log = storage_->read_all();
  }
  size_t applied = 0;
  size_t off = 0;
  // Every id the owner ever minted (including later-erased reservations)
  // bumps the allocator floor, so post-recovery next_res_id() stays
  // globally unique (§4.3).
  auto note_owner_id = [&](const ResKey& key) {
    if (key.src_as == db.owner()) db.reserve_ids_through(key.res_id);
  };
  while (off + 1 + 4 + 4 <= log.size()) {
    const std::uint8_t kind = log[off];
    const std::uint32_t len = get_le<std::uint32_t>(log.data() + off + 1);
    if (off + 1 + 4 + len + 4 > log.size()) break;  // torn tail
    const BytesView payload(log.data() + off + 5, len);
    const std::uint32_t stored_crc =
        get_le<std::uint32_t>(log.data() + off + 5 + len);
    if (crc32(BytesView(log.data() + off, 5 + len)) != stored_crc) {
      break;  // corrupt record: stop
    }

    switch (kind) {
      case kSegrUpsert: {
        auto rec = decode_segr_record(payload);
        if (!rec) return applied;
        note_owner_id(rec->key);
        db.upsert_segr(std::move(*rec));
        break;
      }
      case kSegrErase: {
        auto key = decode_key(payload);
        if (!key) return applied;
        note_owner_id(*key);
        db.erase_segr(*key);
        break;
      }
      case kEerUpsert: {
        auto rec = decode_eer_record(payload);
        if (!rec) return applied;
        note_owner_id(rec->key);
        db.upsert_eer(std::move(*rec));
        break;
      }
      case kEerErase: {
        auto key = decode_key(payload);
        if (!key) return applied;
        note_owner_id(*key);
        db.erase_eer(*key);
        break;
      }
      default:
        return applied;  // unknown kind: stop replay
    }
    ++applied;
    off += 1 + 4 + len + 4;
  }
  return applied;
}

}  // namespace colibri::reservation
