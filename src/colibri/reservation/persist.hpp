// Durable reservation storage (paper §6.1: "Reservations are stored in a
// transactional database").
//
// A write-ahead log of reservation mutations plus snapshot checkpoints:
// every record is length-prefixed and CRC-protected (the checksum spans
// the full frame — kind byte, length, payload — so a single bit flip
// anywhere in a record is rejected), and recovery after a crash replays
// the longest complete-record prefix, discarding a torn tail and
// everything after the first corrupt record — a CServ restart restores
// all SegR/EER state without re-running setups. The log can target a
// file or an in-memory sink (tests, failure injection via
// sim::FaultyStorage).
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "colibri/common/bytes.hpp"
#include "colibri/reservation/db.hpp"

namespace colibri::reservation {

std::uint32_t crc32(BytesView data);

// Where log bytes go / come from.
class LogStorage {
 public:
  virtual ~LogStorage() = default;
  virtual void append(BytesView data) = 0;
  virtual Bytes read_all() const = 0;
  virtual void truncate() = 0;
};

class MemoryStorage final : public LogStorage {
 public:
  void append(BytesView data) override { append_bytes(buf_, data); }
  Bytes read_all() const override { return buf_; }
  void truncate() override { buf_.clear(); }

  Bytes& raw() { return buf_; }  // tests: corrupt / tear at will

 private:
  Bytes buf_;
};

class FileStorage final : public LogStorage {
 public:
  explicit FileStorage(std::string path) : path_(std::move(path)) {}

  void append(BytesView data) override;
  Bytes read_all() const override;
  void truncate() override;

 private:
  std::string path_;
};

// Record codecs (also used by the snapshot).
Bytes encode_segr_record(const SegrRecord& rec);
std::optional<SegrRecord> decode_segr_record(BytesView data);
Bytes encode_eer_record(const EerRecord& rec);
std::optional<EerRecord> decode_eer_record(BytesView data);

// The write-ahead log. Mutating operations on the DB are mirrored here by
// the owner (log first, then apply — write-ahead). Appends are serialized
// by an internal mutex so db shards logging concurrently cannot interleave
// partial frames.
class ReservationWal {
 public:
  explicit ReservationWal(LogStorage& storage) : storage_(&storage) {}

  void log_segr_upsert(const SegrRecord& rec);
  void log_segr_erase(const ResKey& key);
  void log_eer_upsert(const EerRecord& rec);
  void log_eer_erase(const ResKey& key);
  // Resets the log to a full snapshot of `db` (compaction).
  void checkpoint(const ReservationDb& db);

  // Replays the log into `db`. Returns the number of complete records
  // applied; stops cleanly at the first torn or corrupt record. Also
  // restores the db's ResId allocator past every replayed id the owner
  // minted, so a restarted CServ cannot reissue a live reservation's id.
  size_t recover(ReservationDb& db) const;

 private:
  void append_record(std::uint8_t kind, BytesView payload);
  void append_record_locked(std::uint8_t kind, BytesView payload);

  mutable std::mutex mu_;
  LogStorage* storage_;
};

}  // namespace colibri::reservation
