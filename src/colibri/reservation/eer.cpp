#include "colibri/reservation/eer.hpp"

namespace colibri::reservation {

EerRecord* EerStore::upsert(EerRecord rec) {
  auto it = records_.find(rec.key);
  if (it != records_.end()) {
    EerRecord* existing = it->second.get();
    for (const auto& s : existing->segrs) by_segr_[s].erase(existing);
    *existing = std::move(rec);
    for (const auto& s : existing->segrs) by_segr_[s].insert(existing);
    return existing;
  }
  auto owned = std::make_unique<EerRecord>(std::move(rec));
  EerRecord* ptr = owned.get();
  records_.emplace(ptr->key, std::move(owned));
  for (const auto& s : ptr->segrs) by_segr_[s].insert(ptr);
  return ptr;
}

EerRecord* EerStore::find(const ResKey& key) {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : it->second.get();
}

const EerRecord* EerStore::find(const ResKey& key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : it->second.get();
}

bool EerStore::erase(const ResKey& key) {
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  EerRecord* ptr = it->second.get();
  for (const auto& s : ptr->segrs) by_segr_[s].erase(ptr);
  records_.erase(it);
  return true;
}

std::vector<const EerRecord*> EerStore::by_segr(const ResKey& segr) const {
  std::vector<const EerRecord*> out;
  auto it = by_segr_.find(segr);
  if (it == by_segr_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

size_t EerStore::sweep(UnixSec now,
                       const std::function<void(const EerRecord&)>& on_remove) {
  size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    EerRecord* rec = it->second.get();
    if (rec->expired(now)) {
      if (on_remove) on_remove(*rec);
      for (const auto& s : rec->segrs) by_segr_[s].erase(rec);
      it = records_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace colibri::reservation
