// End-to-end-reservation store.
//
// Indexed by (SrcAS, ResId) with a secondary index per underlying SegR so
// an AS can enumerate/account the EERs riding a segment reservation.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "colibri/reservation/types.hpp"

namespace colibri::reservation {

class EerStore {
 public:
  EerRecord* upsert(EerRecord rec);
  EerRecord* find(const ResKey& key);
  const EerRecord* find(const ResKey& key) const;
  bool erase(const ResKey& key);

  std::vector<const EerRecord*> by_segr(const ResKey& segr) const;

  // Removes fully expired EERs (EERs expire automatically, §4.2); calls
  // `on_remove` for each so SegR accounting can be unwound.
  size_t sweep(UnixSec now,
               const std::function<void(const EerRecord&)>& on_remove);

  size_t size() const { return records_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [_, rec] : records_) fn(*rec);
  }

 private:
  std::unordered_map<ResKey, std::unique_ptr<EerRecord>> records_;
  std::unordered_map<ResKey, std::unordered_set<const EerRecord*>> by_segr_;
};

}  // namespace colibri::reservation
