#include "colibri/reservation/segr.hpp"

#include <memory>

namespace colibri::reservation {

SegrRecord* SegrStore::upsert(SegrRecord rec) {
  auto it = records_.find(rec.key);
  if (it != records_.end()) {
    SegrRecord* existing = it->second.get();
    by_pair_[pair_key(existing->ingress(), existing->egress())].erase(existing);
    *existing = std::move(rec);
    by_pair_[pair_key(existing->ingress(), existing->egress())].insert(existing);
    return existing;
  }
  auto owned = std::make_unique<SegrRecord>(std::move(rec));
  SegrRecord* ptr = owned.get();
  records_.emplace(ptr->key, std::move(owned));
  by_pair_[pair_key(ptr->ingress(), ptr->egress())].insert(ptr);
  return ptr;
}

SegrRecord* SegrStore::find(const ResKey& key) {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : it->second.get();
}

const SegrRecord* SegrStore::find(const ResKey& key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : it->second.get();
}

bool SegrStore::erase(const ResKey& key) {
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  SegrRecord* ptr = it->second.get();
  by_pair_[pair_key(ptr->ingress(), ptr->egress())].erase(ptr);
  records_.erase(it);
  return true;
}

std::vector<const SegrRecord*> SegrStore::by_interface_pair(IfId in,
                                                            IfId eg) const {
  std::vector<const SegrRecord*> out;
  auto it = by_pair_.find(pair_key(in, eg));
  if (it == by_pair_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

size_t SegrStore::sweep(
    UnixSec now, const std::function<void(const SegrRecord&)>& on_remove) {
  size_t removed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    SegrRecord* rec = it->second.get();
    const bool pending_live = rec->pending && rec->pending->exp_time > now;
    if (rec->expired(now) && !pending_live) {
      if (on_remove) on_remove(*rec);
      by_pair_[pair_key(rec->ingress(), rec->egress())].erase(rec);
      it = records_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace colibri::reservation
