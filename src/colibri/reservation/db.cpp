#include "colibri/reservation/db.hpp"

// All members are defined inline; this translation unit anchors the
// library target.
