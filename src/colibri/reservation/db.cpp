#include "colibri/reservation/db.hpp"

#include <algorithm>

namespace colibri::reservation {

std::vector<SegrRecord> ReservationDb::segr_snapshot() const {
  std::vector<SegrRecord> out;
  out.reserve(segr_count());
  for_each_segr([&](const SegrRecord& rec) { out.push_back(rec); });
  return out;
}

std::vector<EerRecord> ReservationDb::eer_snapshot() const {
  std::vector<EerRecord> out;
  out.reserve(eer_count());
  for_each_eer([&](const EerRecord& rec) { out.push_back(rec); });
  return out;
}

std::vector<ResKey> ReservationDb::eer_keys_of_shard(size_t shard_idx) const {
  std::vector<ResKey> keys;
  if (shard_idx >= shards_.size()) return keys;
  const Shard& s = shards_[shard_idx];
  {
    std::lock_guard lock(s.mu);
    keys.reserve(s.eers.size());
    s.eers.for_each([&](const EerRecord& rec) { keys.push_back(rec.key); });
  }
  std::sort(keys.begin(), keys.end(), [](const ResKey& a, const ResKey& b) {
    return a.res_id != b.res_id ? a.res_id < b.res_id
                                : a.src_as.raw() < b.src_as.raw();
  });
  return keys;
}

size_t ReservationDb::sweep_segrs(
    UnixSec now, const std::function<void(const SegrRecord&)>& on_remove) {
  size_t removed = 0;
  std::vector<SegrRecord> swept;
  for (auto& s : shards_) {
    {
      std::lock_guard lock(s.mu);
      removed += s.segrs.sweep(
          now, [&](const SegrRecord& rec) { swept.push_back(rec); });
    }
    // Callbacks outside the shard lock: they may release admission state
    // or log to the WAL without holding any db lock.
    if (on_remove) {
      for (const SegrRecord& rec : swept) on_remove(rec);
    }
    swept.clear();
  }
  return removed;
}

size_t ReservationDb::sweep_eers(
    UnixSec now, const std::function<void(const EerRecord&)>& on_remove) {
  size_t removed = 0;
  std::vector<EerRecord> swept;
  for (auto& s : shards_) {
    {
      std::lock_guard lock(s.mu);
      removed += s.eers.sweep(
          now, [&](const EerRecord& rec) { swept.push_back(rec); });
    }
    if (on_remove) {
      for (const EerRecord& rec : swept) on_remove(rec);
    }
    swept.clear();
  }
  return removed;
}

}  // namespace colibri::reservation
