#include "colibri/reservation/types.hpp"

namespace colibri::reservation {

bool EerRecord::prune(UnixSec now) {
  const size_t before = versions.size();
  versions.erase(std::remove_if(versions.begin(), versions.end(),
                                [now](const EerVersion& v) {
                                  return v.exp_time <= now;
                                }),
                 versions.end());
  return versions.size() != before;
}

}  // namespace colibri::reservation
