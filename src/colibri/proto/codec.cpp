#include "colibri/proto/codec.hpp"

#include "colibri/proto/messages.hpp"

namespace colibri::proto {
namespace {

constexpr std::uint8_t kFlagEer = 0x01;
constexpr std::uint8_t kFlagTrace = 0x02;
constexpr std::uint8_t kMaxHops = 64;

}  // namespace

Bytes encode_packet(const Packet& pkt) {
  Bytes out;
  out.reserve(pkt.wire_size());
  out.push_back(static_cast<std::uint8_t>(pkt.type));
  out.push_back(static_cast<std::uint8_t>((pkt.is_eer ? kFlagEer : 0) |
                                          (pkt.has_trace ? kFlagTrace : 0)));
  out.push_back(static_cast<std::uint8_t>(pkt.path.size()));
  out.push_back(pkt.current_hop);

  put_le(out, pkt.resinfo.src_as.raw());
  put_le(out, pkt.resinfo.res_id);
  put_le(out, pkt.resinfo.bw_kbps);
  put_le(out, pkt.resinfo.exp_time);
  out.push_back(pkt.resinfo.version);

  if (pkt.is_eer) {
    append_bytes(out, BytesView(pkt.eerinfo.src_host.bytes, 16));
    append_bytes(out, BytesView(pkt.eerinfo.dst_host.bytes, 16));
  }
  if (pkt.has_trace) put_trace_context(out, pkt.trace);

  put_le(out, pkt.timestamp);
  put_le(out, static_cast<std::uint32_t>(pkt.payload.size()));

  for (const auto& hop : pkt.path) {
    put_le(out, static_cast<std::uint16_t>(hop.ingress));
    put_le(out, static_cast<std::uint16_t>(hop.egress));
  }
  // Exactly one HVF slot per hop; requests that have not been issued
  // HVFs yet (e.g. initial SegReqs over best effort) carry zeros.
  for (size_t i = 0; i < pkt.path.size(); ++i) {
    const Hvf hvf = i < pkt.hvfs.size() ? pkt.hvfs[i] : Hvf{};
    append_bytes(out, BytesView(hvf.data(), hvf.size()));
  }
  append_bytes(out, pkt.payload);
  return out;
}

std::optional<Packet> decode_packet(BytesView wire) {
  ByteReader r(wire);
  Packet pkt;
  const auto type = r.read<std::uint8_t>();
  if (type > static_cast<std::uint8_t>(PacketType::kResponse)) {
    return std::nullopt;
  }
  pkt.type = static_cast<PacketType>(type);
  const auto flags = r.read<std::uint8_t>();
  if ((flags & ~(kFlagEer | kFlagTrace)) != 0) {
    return std::nullopt;  // unknown flag bits
  }
  pkt.is_eer = (flags & kFlagEer) != 0;
  pkt.has_trace = (flags & kFlagTrace) != 0;
  const auto hop_count = r.read<std::uint8_t>();
  if (hop_count == 0 || hop_count > kMaxHops) return std::nullopt;
  pkt.current_hop = r.read<std::uint8_t>();
  if (pkt.current_hop >= hop_count) return std::nullopt;

  pkt.resinfo.src_as = AsId::from_raw(r.read<std::uint64_t>());
  pkt.resinfo.res_id = r.read<std::uint32_t>();
  pkt.resinfo.bw_kbps = r.read<std::uint32_t>();
  pkt.resinfo.exp_time = r.read<std::uint32_t>();
  pkt.resinfo.version = r.read<std::uint8_t>();

  if (pkt.is_eer) {
    r.read_bytes(pkt.eerinfo.src_host.bytes, 16);
    r.read_bytes(pkt.eerinfo.dst_host.bytes, 16);
  }
  if (pkt.has_trace) pkt.trace = get_trace_context(r);

  pkt.timestamp = r.read<std::uint32_t>();
  const auto payload_len = r.read<std::uint32_t>();

  pkt.path.resize(hop_count);
  for (auto& hop : pkt.path) {
    hop.ingress = r.read<std::uint16_t>();
    hop.egress = r.read<std::uint16_t>();
  }
  // AS ids are not carried on the wire (forwarding is interface-based);
  // they stay unset after decode.
  pkt.hvfs.resize(hop_count);
  for (auto& hvf : pkt.hvfs) r.read_bytes(hvf.data(), hvf.size());

  if (!r.ok() || r.remaining() != payload_len) return std::nullopt;
  pkt.payload = r.read_vec(payload_len);
  if (!r.ok()) return std::nullopt;
  return pkt;
}

TraceContext peek_trace_context(BytesView wire) {
  if (wire.size() < 2) return {};
  const std::uint8_t flags = wire[1];
  if ((flags & kFlagTrace) == 0) return {};
  // Skip the fixed prefix: type|flags|hop_count|current_hop + ResInfo,
  // plus the EERInfo block when present.
  const size_t offset = 4 + 21 + ((flags & kFlagEer) != 0 ? 32 : 0);
  if (wire.size() < offset + kTraceContextLen) return {};
  ByteReader r(wire.subspan(offset));
  return get_trace_context(r);
}

}  // namespace colibri::proto
