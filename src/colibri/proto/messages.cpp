#include "colibri/proto/messages.hpp"

namespace colibri::proto {
namespace {

enum class Tag : std::uint8_t {
  kSegRequest = 1,
  kEerRequest = 2,
  kSegActivation = 3,
  kControlResponse = 4,
};

void put_as_vec(Bytes& out, const std::vector<AsId>& v) {
  put_le(out, static_cast<std::uint16_t>(v.size()));
  for (AsId a : v) put_le(out, a.raw());
}

std::vector<AsId> get_as_vec(ByteReader& r) {
  const auto n = r.read<std::uint16_t>();
  std::vector<AsId> v;
  v.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    v.push_back(AsId::from_raw(r.read<std::uint64_t>()));
  }
  return v;
}

void put_bw_vec(Bytes& out, const std::vector<BwKbps>& v) {
  put_le(out, static_cast<std::uint16_t>(v.size()));
  for (BwKbps b : v) put_le(out, b);
}

std::vector<BwKbps> get_bw_vec(ByteReader& r) {
  const auto n = r.read<std::uint16_t>();
  std::vector<BwKbps> v;
  v.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) v.push_back(r.read<std::uint32_t>());
  return v;
}

void encode_seg_request(Bytes& out, const SegRequest& m) {
  out.push_back(static_cast<std::uint8_t>(m.seg_type));
  put_le(out, m.min_bw_kbps);
  put_le(out, m.max_bw_kbps);
  put_as_vec(out, m.ases);
  put_bw_vec(out, m.granted);
}

SegRequest decode_seg_request(ByteReader& r) {
  SegRequest m;
  m.seg_type = static_cast<topology::SegType>(r.read<std::uint8_t>());
  m.min_bw_kbps = r.read<std::uint32_t>();
  m.max_bw_kbps = r.read<std::uint32_t>();
  m.ases = get_as_vec(r);
  m.granted = get_bw_vec(r);
  return m;
}

void encode_eer_request(Bytes& out, const EerRequest& m) {
  put_le(out, m.min_bw_kbps);
  put_as_vec(out, m.ases);
  put_le(out, static_cast<std::uint16_t>(m.path.size()));
  for (const auto& h : m.path) {
    put_le(out, h.as.raw());
    put_le(out, static_cast<std::uint16_t>(h.ingress));
    put_le(out, static_cast<std::uint16_t>(h.egress));
  }
  put_le(out, static_cast<std::uint16_t>(m.segrs.size()));
  for (const auto& k : m.segrs) {
    put_le(out, k.src_as.raw());
    put_le(out, k.res_id);
  }
  put_bw_vec(out, m.granted);
}

EerRequest decode_eer_request(ByteReader& r) {
  EerRequest m;
  m.min_bw_kbps = r.read<std::uint32_t>();
  m.ases = get_as_vec(r);
  const auto nh = r.read<std::uint16_t>();
  m.path.reserve(nh);
  for (std::uint16_t i = 0; i < nh; ++i) {
    topology::Hop h;
    h.as = AsId::from_raw(r.read<std::uint64_t>());
    h.ingress = r.read<std::uint16_t>();
    h.egress = r.read<std::uint16_t>();
    m.path.push_back(h);
  }
  const auto ns = r.read<std::uint16_t>();
  m.segrs.reserve(ns);
  for (std::uint16_t i = 0; i < ns; ++i) {
    ResKey k;
    k.src_as = AsId::from_raw(r.read<std::uint64_t>());
    k.res_id = r.read<std::uint32_t>();
    m.segrs.push_back(k);
  }
  m.granted = get_bw_vec(r);
  return m;
}

void encode_response(Bytes& out, const ControlResponse& m) {
  out.push_back(m.success ? 1 : 0);
  put_le(out, m.final_bw_kbps);
  put_le(out, static_cast<std::uint16_t>(m.tokens.size()));
  for (const auto& t : m.tokens) {
    append_bytes(out, BytesView(t.data(), t.size()));
  }
  put_le(out, static_cast<std::uint16_t>(m.sealed_hopauths.size()));
  for (const auto& b : m.sealed_hopauths) {
    put_le(out, static_cast<std::uint16_t>(b.size()));
    append_bytes(out, b);
  }
  out.push_back(static_cast<std::uint8_t>(m.fail_code));
  out.push_back(m.fail_hop);
}

ControlResponse decode_response(ByteReader& r) {
  ControlResponse m;
  m.success = r.read<std::uint8_t>() != 0;
  m.final_bw_kbps = r.read<std::uint32_t>();
  const auto nt = r.read<std::uint16_t>();
  m.tokens.resize(nt);
  for (auto& t : m.tokens) r.read_bytes(t.data(), t.size());
  const auto nh = r.read<std::uint16_t>();
  m.sealed_hopauths.reserve(nh);
  for (std::uint16_t i = 0; i < nh; ++i) {
    const auto len = r.read<std::uint16_t>();
    m.sealed_hopauths.push_back(r.read_vec(len));
  }
  m.fail_code = static_cast<Errc>(r.read<std::uint8_t>());
  m.fail_hop = r.read<std::uint8_t>();
  return m;
}

}  // namespace

Bytes encode_message(const ControlMessage& msg) {
  Bytes out;
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SegRequest>) {
          out.push_back(static_cast<std::uint8_t>(Tag::kSegRequest));
          encode_seg_request(out, m);
        } else if constexpr (std::is_same_v<T, EerRequest>) {
          out.push_back(static_cast<std::uint8_t>(Tag::kEerRequest));
          encode_eer_request(out, m);
        } else if constexpr (std::is_same_v<T, SegActivation>) {
          out.push_back(static_cast<std::uint8_t>(Tag::kSegActivation));
          out.push_back(m.version);
        } else {
          out.push_back(static_cast<std::uint8_t>(Tag::kControlResponse));
          encode_response(out, m);
        }
      },
      msg);
  return out;
}

std::optional<ControlMessage> decode_message(BytesView wire) {
  ByteReader r(wire);
  const auto tag = r.read<std::uint8_t>();
  ControlMessage msg;
  switch (static_cast<Tag>(tag)) {
    case Tag::kSegRequest: msg = decode_seg_request(r); break;
    case Tag::kEerRequest: msg = decode_eer_request(r); break;
    case Tag::kSegActivation: {
      SegActivation a;
      a.version = r.read<std::uint8_t>();
      msg = a;
      break;
    }
    case Tag::kControlResponse: msg = decode_response(r); break;
    default: return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return msg;
}

Bytes auth_input(const ControlMessage& msg, const ResInfo& ri) {
  // Strip the mutable `granted` vector so all ASes MAC the same bytes the
  // initiator committed to.
  ControlMessage stripped = msg;
  if (auto* seg = std::get_if<SegRequest>(&stripped)) seg->granted.clear();
  if (auto* eer = std::get_if<EerRequest>(&stripped)) eer->granted.clear();
  Bytes out = encode_message(stripped);
  put_le(out, ri.src_as.raw());
  put_le(out, ri.res_id);
  put_le(out, ri.exp_time);
  out.push_back(ri.version);
  return out;
}

Bytes encode_authed(const AuthedPayload& ap) {
  Bytes msg = encode_message(ap.message);
  Bytes out;
  put_le(out, static_cast<std::uint32_t>(msg.size()));
  append_bytes(out, msg);
  put_le(out, static_cast<std::uint16_t>(ap.macs.size()));
  for (const auto& m : ap.macs) append_bytes(out, BytesView(m.data(), m.size()));
  return out;
}

std::optional<AuthedPayload> decode_authed(BytesView wire) {
  ByteReader r(wire);
  const auto msg_len = r.read<std::uint32_t>();
  const Bytes msg_bytes = r.read_vec(msg_len);
  if (!r.ok()) return std::nullopt;
  auto msg = decode_message(msg_bytes);
  if (!msg) return std::nullopt;
  AuthedPayload ap;
  ap.message = std::move(*msg);
  const auto nm = r.read<std::uint16_t>();
  ap.macs.resize(nm);
  for (auto& m : ap.macs) r.read_bytes(m.data(), m.size());
  if (!r.ok()) return std::nullopt;
  return ap;
}

void put_trace_context(Bytes& out, const TraceContext& tc) {
  put_le(out, tc.trace_hi);
  put_le(out, tc.trace_lo);
  put_le(out, tc.span_id);
  put_le(out, tc.parent_span_id);
  out.push_back(tc.flags);
}

TraceContext get_trace_context(ByteReader& r) {
  TraceContext tc;
  tc.trace_hi = r.read<std::uint64_t>();
  tc.trace_lo = r.read<std::uint64_t>();
  tc.span_id = r.read<std::uint64_t>();
  tc.parent_span_id = r.read<std::uint64_t>();
  tc.flags = r.read<std::uint8_t>();
  return tc;
}

}  // namespace colibri::proto
