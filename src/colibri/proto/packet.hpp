// Colibri packet format (paper §4.3, Eq. 2).
//
//   Packet = (Path || ResInfo || EERInfo || Ts || V_0..V_l || Payload)
//
// One format serves both planes: control-plane requests ride as payloads
// (over best-effort for initial SegR setup, over existing reservations for
// everything else, §4.4), data packets carry application payload. The
// HVF (hop validation field) V_i is a 4-byte truncated MAC per on-path AS.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "colibri/common/bytes.hpp"
#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::proto {

// ℓ_hvf in the paper; 4-byte truncated MACs are sufficient given the short
// reservation lifetimes (§4.5).
inline constexpr size_t kHvfLen = 4;
using Hvf = std::array<std::uint8_t, kHvfLen>;

enum class PacketType : std::uint8_t {
  kData = 0,          // EER data-plane traffic
  kSegSetup = 1,      // SegReq: initial segment-reservation setup
  kSegRenewal = 2,    // SegR renewal (sent over the existing SegR)
  kSegActivation = 3, // explicit switch to a pending SegR version (§4.2)
  kEerSetup = 4,      // EEReq over existing SegRs
  kEerRenewal = 5,    // EER renewal over the existing EER
  kResponse = 6,      // control-plane response travelling the reverse path
};

bool is_control(PacketType t);

// Distributed-tracing context carried in control packets (wire extension,
// DESIGN.md §4.11): a 128-bit trace id naming the whole multi-AS request,
// the 64-bit span id of the hop that sent this packet, and the span it
// was itself a child of. Every forwarding AS opens a child span of the
// upstream hop, so the per-AS captures stitch into one causal tree.
//
// Ids are generated deterministically (Clock + per-bus sequence, see
// MessageBus::new_root_context) — never from wall-clock randomness — so
// twin-universe differential runs and SimClock scenarios reproduce
// bit-identical traces. A zeroed context means "not traced".
struct TraceContext {
  std::uint64_t trace_hi = 0;        // trace id, high 64 bits
  std::uint64_t trace_lo = 0;        // trace id, low 64 bits
  std::uint64_t span_id = 0;         // id of the sending hop's span
  std::uint64_t parent_span_id = 0;  // 0 = root span of the trace
  std::uint8_t flags = 0;            // bit 0: sampled

  static constexpr std::uint8_t kSampled = 0x01;

  bool sampled() const { return (flags & kSampled) != 0; }
  // True iff this context carries a real trace (all-zero ids = absent).
  bool present() const { return (trace_hi | trace_lo | span_id) != 0; }

  friend constexpr auto operator<=>(const TraceContext&,
                                    const TraceContext&) = default;
};

// Encoded size of the optional trace-context block.
inline constexpr size_t kTraceContextLen = 4 * 8 + 1;

// Reservation metadata carried in every packet (Eq. 2c).
struct ResInfo {
  AsId src_as;
  ResId res_id = 0;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
  ResVer version = 0;

  ResKey key() const { return ResKey{src_as, res_id}; }

  friend constexpr auto operator<=>(const ResInfo&, const ResInfo&) = default;
};

// End-host addresses, present on EER packets only (Eq. 2d).
struct EerInfo {
  HostAddr src_host;
  HostAddr dst_host;

  friend constexpr auto operator<=>(const EerInfo&, const EerInfo&) = default;
};

struct Packet {
  PacketType type = PacketType::kData;
  bool is_eer = false;  // EERInfo valid; selects Eq. 4/6 vs Eq. 3 validation
  // Trace block present on the wire. Kept distinct from trace.present()
  // so a frame carrying an all-zero context re-encodes canonically
  // (byte-identical), which the fuzz harness asserts.
  bool has_trace = false;
  std::uint8_t current_hop = 0;  // forwarding cursor into `path`

  std::vector<topology::Hop> path;  // Eq. 2b: (In_i, Eg_i) per AS
  ResInfo resinfo;
  EerInfo eerinfo;
  TraceContext trace;  // meaningful only when has_trace
  std::uint32_t timestamp = 0;  // Ts: high-precision, relative to ExpT
  std::vector<Hvf> hvfs;        // one per on-path AS
  Bytes payload;

  size_t num_hops() const { return path.size(); }
  // Total on-the-wire size (what PktSize in Eq. 6 refers to).
  std::uint32_t wire_size() const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

// --- MAC input builders -----------------------------------------------
// Fixed-layout serializations fed to AES-CMAC; shared by the gateway (to
// create HVFs), border routers (to verify), and the CServ (to issue
// tokens), guaranteeing bit-exact agreement.

// Eq. 3 input: ResInfo || (In_i, Eg_i) — SegR token / HVF.
inline constexpr size_t kSegMacInputLen = 21 + 4;
void build_seg_mac_input(const ResInfo& ri, IfId in, IfId eg,
                         std::uint8_t out[kSegMacInputLen]);

// Eq. 4 input: ResInfo || EERInfo || (In_i, Eg_i) — hop authenticator σ_i.
inline constexpr size_t kHopAuthInputLen = 21 + 32 + 4;
void build_hopauth_input(const ResInfo& ri, const EerInfo& ei, IfId in,
                         IfId eg, std::uint8_t out[kHopAuthInputLen]);

// Eq. 6 input: Ts || PktSize — per-packet HVF on an EER.
inline constexpr size_t kDataMacInputLen = 8;
void build_data_mac_input(std::uint32_t ts, std::uint32_t pkt_size,
                          std::uint8_t out[kDataMacInputLen]);

}  // namespace colibri::proto
