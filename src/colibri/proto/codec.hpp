// Wire codec for Colibri packets.
//
// Fixed little-endian layout matching Packet::wire_size():
//   u8 type | u8 flags | u8 hop_count | u8 current_hop |
//   ResInfo (21 B) | [EERInfo (32 B) if flag] | u32 Ts | u32 payload_len |
//   hops (4 B each) | HVFs (4 B each) | payload
#pragma once

#include <optional>

#include "colibri/proto/packet.hpp"

namespace colibri::proto {

Bytes encode_packet(const Packet& pkt);
std::optional<Packet> decode_packet(BytesView wire);

}  // namespace colibri::proto
