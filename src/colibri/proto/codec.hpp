// Wire codec for Colibri packets.
//
// Fixed little-endian layout matching Packet::wire_size():
//   u8 type | u8 flags | u8 hop_count | u8 current_hop |
//   ResInfo (21 B) | [EERInfo (32 B) if flag 0x01] |
//   [TraceContext (33 B) if flag 0x02] | u32 Ts | u32 payload_len |
//   hops (4 B each) | HVFs (4 B each) | payload
//
// The trace-context block is a backward-compatible extension: frames
// without flag 0x02 (everything encoded before the extension existed)
// decode to has_trace == false with a zeroed context, and frames are
// re-encoded canonically either way (decode∘encode is the identity on
// bytes — the fuzz harness asserts this).
#pragma once

#include <optional>

#include "colibri/proto/packet.hpp"

namespace colibri::proto {

Bytes encode_packet(const Packet& pkt);
std::optional<Packet> decode_packet(BytesView wire);

// Reads just the trace context out of an encoded packet without decoding
// the rest — the MessageBus does this on every traced hop delivery, so
// it must stay O(1) in the frame size. Returns a zeroed (absent) context
// when the frame has no trace block or is too short to hold one.
TraceContext peek_trace_context(BytesView wire);

}  // namespace colibri::proto
