// Control-plane message payloads (paper §4.4).
//
// These ride inside Colibri packets: the initial SegReq over best-effort,
// renewals over the existing SegR, EEReqs over the SegRs they build on.
// The forward pass accumulates per-AS grants; the response travels the
// reverse path collecting tokens (SegR, Eq. 3) or AEAD-sealed hop
// authenticators (EER, Eq. 5). Payload authenticity uses per-AS DRKey MACs
// (§4.5): the source computes MAC_{K_{AS_i→SrcAS}}(payload core) for every
// on-path AS.
#pragma once

#include <optional>
#include <variant>

#include "colibri/common/errors.hpp"
#include "colibri/proto/packet.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::proto {

using Mac16 = std::array<std::uint8_t, 16>;

// Setup/renewal request for a segment reservation. The same shape serves
// both; the packet type distinguishes them (renewals reuse the ResId in
// the header ResInfo and only re-negotiate Bw/ExpT/Ver).
struct SegRequest {
  topology::SegType seg_type = topology::SegType::kUp;
  BwKbps min_bw_kbps = 0;  // below this the request fails
  BwKbps max_bw_kbps = 0;  // the demand
  std::vector<AsId> ases;  // AS ids along the segment, aligned with path
  // Grants accumulated hop by hop on the forward pass; entry i is what
  // AS i is willing to give.
  std::vector<BwKbps> granted;
};

// End-to-end-reservation setup/renewal request.
struct EerRequest {
  BwKbps min_bw_kbps = 0;
  std::vector<AsId> ases;           // ASes along the full e2e path
  std::vector<topology::Hop> path;  // interfaces along the e2e path
  std::vector<ResKey> segrs;        // underlying SegRs, in traversal order
  std::vector<BwKbps> granted;
};

// Explicit activation of a pending SegR version (paper §4.2).
struct SegActivation {
  ResVer version = 0;
};

// Response for any request, travelling the reverse path. For successful
// SegR requests, `tokens[i]` is AS i's SegR token (Eq. 3). For successful
// EER requests, `sealed_hopauths[i]` is AEAD_{K_{AS_i→AS_0}}(σ_i) (Eq. 5).
struct ControlResponse {
  bool success = false;
  BwKbps final_bw_kbps = 0;
  std::vector<Hvf> tokens;
  std::vector<Bytes> sealed_hopauths;
  Errc fail_code = Errc::kOk;
  std::uint8_t fail_hop = 0;  // index of the bottleneck/refusing AS
};

using ControlMessage =
    std::variant<SegRequest, EerRequest, SegActivation, ControlResponse>;

Bytes encode_message(const ControlMessage& msg);
std::optional<ControlMessage> decode_message(BytesView wire);

// The byte string the DRKey payload MACs cover: everything the initiator
// committed to (requests without the mutable `granted` vector, plus the
// header ResInfo so responses bind to the reservation).
Bytes auth_input(const ControlMessage& msg, const ResInfo& ri);

// Per-AS payload authenticators appended after the message in the packet
// payload: MAC_{K_{AS_i→SrcAS}}(auth_input).
struct AuthedPayload {
  ControlMessage message;
  std::vector<Mac16> macs;  // one per on-path AS
};

Bytes encode_authed(const AuthedPayload& ap);
std::optional<AuthedPayload> decode_authed(BytesView wire);

// --- trace-context block (codec extension, DESIGN.md §4.11) -----------
// Fixed little-endian layout, kTraceContextLen bytes:
//   u64 trace_hi | u64 trace_lo | u64 span_id | u64 parent_span_id |
//   u8 flags
// The context rides in the packet *header*, not inside AuthedPayload:
// the payload is covered by the per-AS DRKey MACs and must stay
// immutable hop to hop, while the context mutates at every forwarding
// AS (each hop re-stamps span_id/parent_span_id).
void put_trace_context(Bytes& out, const TraceContext& tc);
TraceContext get_trace_context(ByteReader& r);

}  // namespace colibri::proto
