// Intra-domain encapsulation (paper App. B).
//
// Between the gateway and border routers — and across an AS's internal
// switches — Colibri packets travel inside the AS's own network protocol,
// with the traffic class "encoded in the header of the intra-domain
// networking protocol in use. For example, in an IP network, the traffic
// class can be encoded using DiffServ and the DSCP field." This module
// implements that example: an IPv4/UDP encapsulation whose DSCP code
// point carries the Colibri traffic class, so every internal hop can
// apply the priority/CBWFQ disciplines of App. B. The gateway sets the
// field; internal devices must not trust host-set values (the gateway
// rewrites them, App. B last paragraph).
#pragma once

#include <cstdint>
#include <optional>

#include "colibri/common/bytes.hpp"

namespace colibri::proto {

// DSCP code points per traffic class (EF for reserved data, CS6 for
// control — the conventional choices; best effort = default).
enum class Dscp : std::uint8_t {
  kBestEffort = 0,       // DF
  kColibriControl = 48,  // CS6 (network control)
  kColibriData = 46,     // EF (expedited forwarding)
};

const char* dscp_name(Dscp d);

struct Ipv4Encap {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Dscp dscp = Dscp::kBestEffort;
  std::uint8_t ttl = 64;
};

inline constexpr size_t kIpv4HeaderLen = 20;
inline constexpr size_t kUdpHeaderLen = 8;
inline constexpr size_t kEncapOverhead = kIpv4HeaderLen + kUdpHeaderLen;
// The default UDP port carrying Colibri inside an AS.
inline constexpr std::uint16_t kColibriPort = 30041;

// RFC 1071 ones'-complement checksum over `data` (whole IPv4 header).
std::uint16_t internet_checksum(BytesView data);

// Wraps a serialized Colibri packet into IPv4/UDP with the DSCP set.
Bytes encapsulate(const Ipv4Encap& encap, BytesView colibri_packet);

// Parses and validates an encapsulated frame; returns the header fields
// and the inner packet bytes. Rejects bad version/IHL, bad checksum,
// length mismatches, and non-Colibri destination ports.
struct Decapsulated {
  Ipv4Encap encap;
  Bytes inner;
};
std::optional<Decapsulated> decapsulate(BytesView frame);

// Gateway-side DSCP policy: hosts may not pick their own class (App. B);
// the gateway stamps the class that matches the packet's actual role.
Dscp classify_for_dscp(bool is_eer_data, bool is_control);

}  // namespace colibri::proto
