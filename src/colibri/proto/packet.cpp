#include "colibri/proto/packet.hpp"

namespace colibri::proto {
namespace {

// Header byte counts for wire_size(); must match codec.cpp layout.
constexpr size_t kFixedHeader = 1 /*type*/ + 1 /*flags*/ + 1 /*hop count*/ +
                                1 /*current hop*/ + 21 /*ResInfo*/ +
                                4 /*Ts*/ + 4 /*payload len*/;
constexpr size_t kPerHop = 4 /*In,Eg*/ + kHvfLen;
constexpr size_t kEerInfoLen = 32;

void put_resinfo(std::uint8_t* p, const ResInfo& ri) {
  const std::uint64_t as = ri.src_as.raw();
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(as >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    p[8 + i] = static_cast<std::uint8_t>(ri.res_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    p[12 + i] = static_cast<std::uint8_t>(ri.bw_kbps >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    p[16 + i] = static_cast<std::uint8_t>(ri.exp_time >> (8 * i));
  }
  p[20] = ri.version;
}

}  // namespace

bool is_control(PacketType t) { return t != PacketType::kData; }

std::uint32_t Packet::wire_size() const {
  size_t s = kFixedHeader + path.size() * kPerHop + payload.size();
  if (is_eer) s += kEerInfoLen;
  if (has_trace) s += kTraceContextLen;
  return static_cast<std::uint32_t>(s);
}

void build_seg_mac_input(const ResInfo& ri, IfId in, IfId eg,
                         std::uint8_t out[kSegMacInputLen]) {
  put_resinfo(out, ri);
  out[21] = static_cast<std::uint8_t>(in);
  out[22] = static_cast<std::uint8_t>(in >> 8);
  out[23] = static_cast<std::uint8_t>(eg);
  out[24] = static_cast<std::uint8_t>(eg >> 8);
}

void build_hopauth_input(const ResInfo& ri, const EerInfo& ei, IfId in,
                         IfId eg, std::uint8_t out[kHopAuthInputLen]) {
  put_resinfo(out, ri);
  for (int i = 0; i < 16; ++i) out[21 + i] = ei.src_host.bytes[i];
  for (int i = 0; i < 16; ++i) out[37 + i] = ei.dst_host.bytes[i];
  out[53] = static_cast<std::uint8_t>(in);
  out[54] = static_cast<std::uint8_t>(in >> 8);
  out[55] = static_cast<std::uint8_t>(eg);
  out[56] = static_cast<std::uint8_t>(eg >> 8);
}

void build_data_mac_input(std::uint32_t ts, std::uint32_t pkt_size,
                          std::uint8_t out[kDataMacInputLen]) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(ts >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<std::uint8_t>(pkt_size >> (8 * i));
  }
}

}  // namespace colibri::proto
