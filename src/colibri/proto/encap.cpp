#include "colibri/proto/encap.hpp"

namespace colibri::proto {

const char* dscp_name(Dscp d) {
  switch (d) {
    case Dscp::kBestEffort: return "DF";
    case Dscp::kColibriControl: return "CS6";
    case Dscp::kColibriData: return "EF";
  }
  return "?";
}

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

namespace {

void put_be16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_be32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

constexpr std::uint8_t kIpProtoUdp = 17;

}  // namespace

Bytes encapsulate(const Ipv4Encap& encap, BytesView colibri_packet) {
  const auto total_len =
      static_cast<std::uint16_t>(kEncapOverhead + colibri_packet.size());
  Bytes out;
  out.reserve(total_len);

  // IPv4 header.
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(encap.dscp)
                                          << 2));  // DSCP | ECN 0
  put_be16(out, total_len);
  put_be16(out, 0);       // identification
  put_be16(out, 0x4000);  // DF, no fragmentation
  out.push_back(encap.ttl);
  out.push_back(kIpProtoUdp);
  put_be16(out, 0);  // checksum placeholder
  put_be32(out, encap.src_ip);
  put_be32(out, encap.dst_ip);
  const std::uint16_t csum =
      internet_checksum(BytesView(out.data(), kIpv4HeaderLen));
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum);

  // UDP header (checksum 0 = unused, as permitted for IPv4).
  put_be16(out, encap.src_port);
  put_be16(out, encap.dst_port);
  put_be16(out,
           static_cast<std::uint16_t>(kUdpHeaderLen + colibri_packet.size()));
  put_be16(out, 0);

  append_bytes(out, colibri_packet);
  return out;
}

std::optional<Decapsulated> decapsulate(BytesView frame) {
  if (frame.size() < kEncapOverhead) return std::nullopt;
  if (frame[0] != 0x45) return std::nullopt;  // IPv4, IHL 5 only
  const std::uint16_t total_len = get_be16(frame.data() + 2);
  if (total_len != frame.size()) return std::nullopt;
  if (frame[9] != kIpProtoUdp) return std::nullopt;
  if (internet_checksum(frame.subspan(0, kIpv4HeaderLen)) != 0) {
    return std::nullopt;
  }

  Decapsulated d;
  d.encap.dscp = static_cast<Dscp>(frame[1] >> 2);
  d.encap.ttl = frame[8];
  d.encap.src_ip = get_be32(frame.data() + 12);
  d.encap.dst_ip = get_be32(frame.data() + 16);
  d.encap.src_port = get_be16(frame.data() + kIpv4HeaderLen);
  d.encap.dst_port = get_be16(frame.data() + kIpv4HeaderLen + 2);
  if (d.encap.dst_port != kColibriPort) return std::nullopt;
  const std::uint16_t udp_len = get_be16(frame.data() + kIpv4HeaderLen + 4);
  if (udp_len != frame.size() - kIpv4HeaderLen) return std::nullopt;

  const BytesView inner = frame.subspan(kEncapOverhead);
  d.inner.assign(inner.begin(), inner.end());
  return d;
}

Dscp classify_for_dscp(bool is_eer_data, bool is_control) {
  if (is_control) return Dscp::kColibriControl;
  if (is_eer_data) return Dscp::kColibriData;
  return Dscp::kBestEffort;
}

}  // namespace colibri::proto
