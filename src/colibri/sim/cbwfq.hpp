// Class-based weighted fair queuing (paper App. B).
//
// The alternative to strict priority for separating the three Colibri
// traffic classes on shared links: a deficit-round-robin scheduler whose
// per-class quanta implement the configured bandwidth weights (§3.4's
// 75/5/20 split by default). Unlike strict priority it also bounds the
// Colibri classes — useful on links where the admission guarantee of
// footnote 4 does not hold (e.g. inside an AS that oversubscribes). The
// queuing-discipline ablation bench compares both against plain FIFO.
#pragma once

#include "colibri/sim/queue.hpp"

namespace colibri::sim {

struct CbwfqWeights {
  double colibri_data = 0.75;
  double control = 0.05;
  double best_effort = 0.20;
};

class CbwfqPort {
 public:
  using Sink = PriorityPort::Sink;

  CbwfqPort(Simulator& sim, double rate_bps, const CbwfqWeights& weights = {},
            size_t queue_limit_bytes = 1 << 20);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void enqueue(SimPacket pkt);

  const ClassCounters& counters(TrafficClass c) const {
    return counters_[static_cast<size_t>(c)];
  }

 private:
  void start_transmission();
  int pick_class();
  TimeNs tx_time(std::uint32_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / rate_bps_ *
                               kNsPerSec);
  }

  Simulator* sim_;
  double rate_bps_;
  size_t queue_limit_bytes_;
  std::array<std::deque<SimPacket>, kNumClasses> queues_;
  std::array<size_t, kNumClasses> queued_bytes_{};
  std::array<ClassCounters, kNumClasses> counters_{};
  // Deficit round robin: per-class quantum (bytes per round) and deficit.
  std::array<double, kNumClasses> quantum_{};
  std::array<double, kNumClasses> deficit_{};
  std::array<bool, kNumClasses> visited_{};  // quantum added this visit
  int rr_ = 0;
  bool busy_ = false;
  Sink sink_;
};

// Plain FIFO port (no class separation) — the "what if we do nothing"
// baseline in the queuing ablation.
class FifoPort {
 public:
  using Sink = PriorityPort::Sink;

  FifoPort(Simulator& sim, double rate_bps, size_t queue_limit_bytes = 1 << 20);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void enqueue(SimPacket pkt);

  const ClassCounters& counters(TrafficClass c) const {
    return counters_[static_cast<size_t>(c)];
  }

 private:
  void start_transmission();

  Simulator* sim_;
  double rate_bps_;
  size_t queue_limit_bytes_;
  std::deque<SimPacket> queue_;
  size_t queued_bytes_ = 0;
  std::array<ClassCounters, kNumClasses> counters_{};
  bool busy_ = false;
  Sink sink_;
};

}  // namespace colibri::sim
