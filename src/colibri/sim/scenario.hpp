// Data-plane protection scenario (paper §7.1-7.2, Table 2).
//
// Reproduces the paper's testbed: three 40 Gbps input links carrying
// mixtures of best-effort, authentic Colibri, unauthentic Colibri, and
// overused-reservation traffic, all destined to one 40 Gbps output port.
// Two EERs (0.4 and 0.8 Gbps) are installed; the destination border
// router authenticates every Colibri packet and the monitoring pipeline
// (OFD -> deterministic token bucket) limits overusing reservations to
// their guaranteed bandwidth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "colibri/dataplane/router.hpp"
#include "colibri/sim/link.hpp"
#include "colibri/sim/traffic.hpp"

namespace colibri::sim {

struct FlowSpec {
  enum class Kind : std::uint8_t {
    kBestEffort,
    kAuthentic,    // through the well-behaved gateway (monitored)
    kUnauthentic,  // random HVFs ("bogus Colibri traffic")
    kOveruse,      // valid HVFs, rate above the reservation
  };

  std::string label;
  Kind kind = Kind::kBestEffort;
  int input_port = 0;      // 0..num_inputs-1
  double rate_gbps = 0.0;  // offered load
  std::uint32_t payload_bytes = 1000;
  int reservation = 0;  // index into the scenario's reservations
};

struct FlowResult {
  std::string label;
  int input_port = 0;
  double offered_gbps = 0.0;
  double delivered_gbps = 0.0;  // measured at the output port
};

struct PhaseResult {
  std::vector<FlowResult> flows;
  std::uint64_t router_bad_hvf = 0;
  std::uint64_t router_overuse_dropped = 0;
};

struct ScenarioConfig {
  int num_inputs = 3;
  double link_gbps = 40.0;
  // Reservation bandwidths (Table 2 uses 0.4 and 0.8 Gbps).
  std::vector<double> reservation_gbps = {0.4, 0.8};
  TimeNs duration_ns = 200'000'000;  // 200 ms per phase
  TimeNs warmup_ns = 20'000'000;     // excluded from measurement
};

class ProtectionScenario {
 public:
  explicit ProtectionScenario(const ScenarioConfig& cfg = {});

  // Runs one phase from scratch (fresh simulator, ports, and monitors;
  // reservations persist by construction).
  PhaseResult run_phase(const std::vector<FlowSpec>& flows);

  const ScenarioConfig& config() const { return cfg_; }

 private:
  ScenarioConfig cfg_;
  AsId src_as_{1, 10};
  AsId dst_as_{1, 20};
  drkey::Key128 src_hop_key_;
  drkey::Key128 dst_hop_key_;
  std::vector<proto::ResInfo> reservations_;
  std::vector<proto::EerInfo> eerinfos_;
  std::vector<topology::Hop> path_;
};

// The exact three phases of Table 2, expressed as FlowSpecs.
std::vector<std::vector<FlowSpec>> table2_phases();

}  // namespace colibri::sim
