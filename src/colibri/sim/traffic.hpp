// Traffic sources for the data-plane experiments (paper §7.1).
//
// Three kinds of load feed the protection experiment:
//   - best-effort CBR cross-traffic,
//   - Colibri traffic produced through a (well-behaved) gateway, and
//   - adversarial Colibri traffic: unauthentic packets with random HVFs,
//     or authentic-but-overusing packets crafted by a malicious source AS
//     whose gateway "forgets" to monitor (§7.1 threat 3).
#pragma once

#include <functional>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/sim/queue.hpp"

namespace colibri::sim {

using PacketSink = std::function<void(SimPacket&&)>;

// Constant-bit-rate source emitting packets of a fixed size and class.
class CbrSource {
 public:
  CbrSource(Simulator& sim, PacketSink sink, TrafficClass cls,
            double rate_bps, std::uint32_t pkt_bytes, std::uint64_t flow_id);

  void start(TimeNs at, TimeNs stop);
  std::uint64_t emitted() const { return emitted_; }
  virtual ~CbrSource() = default;

 protected:
  // Builds the next packet; overridden by the Colibri sources.
  virtual SimPacket make_packet();

 private:
  void emit();

  Simulator* sim_;
  PacketSink sink_;
  TrafficClass cls_;
  std::uint32_t pkt_bytes_;
  TimeNs interval_ns_;
  TimeNs stop_ = 0;
  std::uint64_t flow_id_;
  std::uint64_t emitted_ = 0;

 protected:
  TrafficClass cls() const { return cls_; }
  std::uint32_t pkt_bytes() const { return pkt_bytes_; }
  std::uint64_t flow_id() const { return flow_id_; }
};

// Authentic Colibri traffic through a well-behaved gateway: each emission
// asks the gateway to monitor + authenticate; rate-limited packets are
// dropped at the gateway exactly as in the real system.
class GatewayColibriSource final : public CbrSource {
 public:
  GatewayColibriSource(Simulator& sim, PacketSink sink,
                       dataplane::Gateway& gateway, ResId res_id,
                       double rate_bps, std::uint32_t payload_bytes,
                       std::uint64_t flow_id);

 private:
  SimPacket make_packet() override;

  dataplane::Gateway* gateway_;
  ResId res_id_;
  std::uint32_t payload_bytes_;
};

// Pre-built Colibri packets emitted at an arbitrary rate — used both for
// unauthentic floods (random HVFs) and for overuse attacks (valid HVFs,
// rate above the reservation). The template packet's HVFs are recomputed
// per packet when a stamper is provided.
class RawColibriSource final : public CbrSource {
 public:
  using Stamper = std::function<void(dataplane::FastPacket&)>;

  RawColibriSource(Simulator& sim, PacketSink sink,
                   dataplane::FastPacket packet_template, double rate_bps,
                   std::uint64_t flow_id, Stamper stamper = nullptr);

 private:
  SimPacket make_packet() override;

  dataplane::FastPacket template_;
  Stamper stamper_;
};

}  // namespace colibri::sim
