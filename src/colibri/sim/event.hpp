// Discrete-event simulation core.
//
// Integer-nanosecond event loop driving the Table 2 experiment and the
// example scenarios: links, ports, and traffic sources schedule callbacks;
// the simulator owns the SimClock all components read.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "colibri/common/clock.hpp"

namespace colibri::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  TimeNs now() const { return clock_.now_ns(); }
  const SimClock& clock() const { return clock_; }

  // Schedules `fn` at absolute time `t` (clamped to now). Events at equal
  // times run in scheduling order.
  void at(TimeNs t, Action fn);
  void after(TimeNs delta, Action fn) { at(now() + delta, std::move(fn)); }

  // Runs events until the queue is empty or the clock passes `t_end`.
  void run_until(TimeNs t_end);
  // Drains every scheduled event.
  void run();

  size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimeNs t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace colibri::sim
