#include "colibri/sim/scenario.hpp"

#include <unordered_map>

namespace colibri::sim {
namespace {

constexpr double kGbps = 1e9;

BwKbps gbps_to_kbps(double gbps) {
  return static_cast<BwKbps>(gbps * 1e6);
}

}  // namespace

ProtectionScenario::ProtectionScenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  src_hop_key_.bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  dst_hop_key_.bytes = {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};

  // Two-hop path: source AS egress 1 -> destination AS ingress 1.
  path_ = {topology::Hop{src_as_, kNoInterface, 1},
           topology::Hop{dst_as_, 1, kNoInterface}};

  for (size_t i = 0; i < cfg_.reservation_gbps.size(); ++i) {
    proto::ResInfo ri;
    ri.src_as = src_as_;
    ri.res_id = static_cast<ResId>(i + 1);
    ri.bw_kbps = gbps_to_kbps(cfg_.reservation_gbps[i]);
    ri.exp_time = 3600;  // far beyond any phase
    ri.version = 0;
    reservations_.push_back(ri);

    proto::EerInfo ei;
    ei.src_host = HostAddr::from_u64(100 + i);
    ei.dst_host = HostAddr::from_u64(200 + i);
    eerinfos_.push_back(ei);
  }
}

PhaseResult ProtectionScenario::run_phase(const std::vector<FlowSpec>& flows) {
  Simulator sim;

  // Gateway of the (honest) source AS with both reservations installed.
  dataplane::Gateway gateway(src_as_, sim.clock());
  crypto::Aes128 src_cipher(src_hop_key_.bytes.data());
  crypto::Aes128 dst_cipher(dst_hop_key_.bytes.data());
  for (size_t i = 0; i < reservations_.size(); ++i) {
    std::vector<dataplane::HopAuth> sigmas = {
        dataplane::compute_hopauth(src_cipher, reservations_[i], eerinfos_[i],
                                   path_[0].ingress, path_[0].egress),
        dataplane::compute_hopauth(dst_cipher, reservations_[i], eerinfos_[i],
                                   path_[1].ingress, path_[1].egress)};
    gateway.install(reservations_[i], eerinfos_[i], path_, sigmas);
  }

  // Source-AS border router (validates hop 0, advances the cursor) and the
  // destination border router under test with the monitoring pipeline.
  dataplane::BorderRouter src_br(src_as_, src_hop_key_, sim.clock());
  dataplane::BorderRouter dst_br(dst_as_, dst_hop_key_, sim.clock());
  dataplane::OfdConfig ofd_cfg;
  ofd_cfg.overuse_factor = 1.05;
  ofd_cfg.watch_burst_sec = 0.01;
  dataplane::OverUseFlowDetector ofd(ofd_cfg);
  dataplane::DuplicateSuppression dupsup;
  dst_br.attach_ofd(&ofd);
  dst_br.attach_dupsup(&dupsup);

  // Output port (40 Gbps) with a measuring sink; its queue depths and
  // per-class drops export through the process-wide registry.
  PriorityPort out_port(sim, cfg_.link_gbps * kGbps);
  out_port.attach_metrics(&telemetry::MetricsRegistry::global());
  std::unordered_map<std::uint64_t, std::uint64_t> delivered_bytes;
  const TimeNs measure_start = cfg_.warmup_ns;
  out_port.set_sink([&](SimPacket&& pkt) {
    if (sim.now() >= measure_start) delivered_bytes[pkt.flow] += pkt.bytes;
  });

  // Input links feeding the destination router.
  std::vector<std::unique_ptr<SimLink>> inputs;
  for (int i = 0; i < cfg_.num_inputs; ++i) {
    auto link = std::make_unique<SimLink>(sim, cfg_.link_gbps * kGbps,
                                          /*propagation_ns=*/10'000);
    link->set_sink([&, &sim_ref = sim](SimPacket&& pkt) {
      if (pkt.has_colibri) {
        const auto verdict = dst_br.process(pkt.colibri);
        if (verdict != dataplane::BorderRouter::Verdict::kDeliver &&
            verdict != dataplane::BorderRouter::Verdict::kForward) {
          return;  // dropped at the router
        }
      }
      (void)sim_ref;
      out_port.enqueue(std::move(pkt));
    });
    inputs.push_back(std::move(link));
  }

  // Build sources.
  std::vector<std::unique_ptr<CbrSource>> sources;
  Rng rng(42);
  for (size_t fi = 0; fi < flows.size(); ++fi) {
    const FlowSpec& f = flows[fi];
    SimLink& in = *inputs[static_cast<size_t>(f.input_port)];
    const std::uint64_t flow_id = fi + 1;
    PacketSink sink = [&in](SimPacket&& pkt) { in.send(std::move(pkt)); };

    switch (f.kind) {
      case FlowSpec::Kind::kBestEffort: {
        sources.push_back(std::make_unique<CbrSource>(
            sim, std::move(sink), TrafficClass::kBestEffort,
            f.rate_gbps * kGbps, f.payload_bytes, flow_id));
        break;
      }
      case FlowSpec::Kind::kAuthentic: {
        // Gateway output is at hop 0; the source border router advances it
        // before it enters the inter-domain link.
        PacketSink via_src_br = [&, sink](SimPacket&& pkt) mutable {
          if (pkt.has_colibri) {
            if (src_br.process(pkt.colibri) !=
                dataplane::BorderRouter::Verdict::kForward) {
              return;
            }
          }
          sink(std::move(pkt));
        };
        sources.push_back(std::make_unique<GatewayColibriSource>(
            sim, std::move(via_src_br), gateway,
            reservations_[static_cast<size_t>(f.reservation)].res_id,
            f.rate_gbps * kGbps, f.payload_bytes, flow_id));
        break;
      }
      case FlowSpec::Kind::kUnauthentic: {
        // Bogus Colibri packets: plausible header, random HVFs.
        dataplane::FastPacket tmpl;
        tmpl.is_eer = true;
        tmpl.num_hops = 2;
        tmpl.current_hop = 1;
        tmpl.resinfo = reservations_[static_cast<size_t>(f.reservation)];
        tmpl.eerinfo = eerinfos_[static_cast<size_t>(f.reservation)];
        tmpl.payload_bytes = f.payload_bytes;
        tmpl.ifaces[0] = dataplane::IfPair{0, 1};
        tmpl.ifaces[1] = dataplane::IfPair{1, 0};
        auto stamper = [&rng](dataplane::FastPacket& fp) {
          rng.fill(fp.hvfs[1].data(), fp.hvfs[1].size());
        };
        sources.push_back(std::make_unique<RawColibriSource>(
            sim, std::move(sink), tmpl, f.rate_gbps * kGbps, flow_id,
            stamper));
        break;
      }
      case FlowSpec::Kind::kOveruse: {
        // A malicious source AS that skips gateway monitoring: packets
        // carry *valid* HVFs but arrive far above the reserved rate.
        const auto& ri = reservations_[static_cast<size_t>(f.reservation)];
        const auto& ei = eerinfos_[static_cast<size_t>(f.reservation)];
        dataplane::FastPacket tmpl;
        tmpl.is_eer = true;
        tmpl.num_hops = 2;
        tmpl.current_hop = 1;
        tmpl.resinfo = ri;
        tmpl.eerinfo = ei;
        tmpl.payload_bytes = f.payload_bytes;
        tmpl.ifaces[0] = dataplane::IfPair{0, 1};
        tmpl.ifaces[1] = dataplane::IfPair{1, 0};
        const dataplane::HopAuth sigma = dataplane::compute_hopauth(
            dst_cipher, ri, ei, path_[1].ingress, path_[1].egress);
        std::uint32_t last_ts = 0xFFFF'FFFF;
        auto stamper = [&sim, sigma, exp = ri.exp_time,
                        last_ts](dataplane::FastPacket& fp) mutable {
          // Unique, fresh timestamps so duplicate suppression does not
          // mask the overuse (the point is to exercise the OFD). The
          // timestamp counts *down* toward ExpT, so uniqueness means
          // strictly decreasing.
          std::uint32_t ts = PacketTimestamp::encode(sim.now(), exp);
          if (ts >= last_ts) ts = last_ts - 1;
          last_ts = ts;
          fp.timestamp = ts;
          fp.hvfs[1] = dataplane::compute_data_hvf(sigma, fp.timestamp,
                                                   fp.wire_size());
        };
        sources.push_back(std::make_unique<RawColibriSource>(
            sim, std::move(sink), tmpl, f.rate_gbps * kGbps, flow_id,
            stamper));
        break;
      }
    }
    sources.back()->start(/*at=*/static_cast<TimeNs>(fi) * 100,
                          /*stop=*/cfg_.duration_ns);
  }

  sim.run_until(cfg_.duration_ns + 5'000'000);

  PhaseResult result;
  const double measured_sec =
      static_cast<double>(cfg_.duration_ns - measure_start) / kNsPerSec;
  for (size_t fi = 0; fi < flows.size(); ++fi) {
    FlowResult fr;
    fr.label = flows[fi].label;
    fr.input_port = flows[fi].input_port;
    fr.offered_gbps = flows[fi].rate_gbps;
    fr.delivered_gbps =
        static_cast<double>(delivered_bytes[fi + 1]) * 8.0 / measured_sec /
        kGbps;
    result.flows.push_back(std::move(fr));
  }
  result.router_bad_hvf = dst_br.stats().bad_hvf;
  result.router_overuse_dropped = dst_br.stats().overuse_dropped;
  return result;
}

std::vector<std::vector<FlowSpec>> table2_phases() {
  using K = FlowSpec::Kind;
  std::vector<FlowSpec> phase1 = {
      {"Reservation 1", K::kAuthentic, 0, 0.4, 1000, 0},
      {"Reservation 2", K::kAuthentic, 1, 0.8, 1000, 1},
      {"Best effort (in 2)", K::kBestEffort, 1, 39.2, 1000, 0},
      {"Best effort (in 3)", K::kBestEffort, 2, 40.0, 1000, 0},
  };
  std::vector<FlowSpec> phase2 = {
      {"Reservation 1", K::kAuthentic, 0, 0.4, 1000, 0},
      {"Reservation 2", K::kAuthentic, 1, 0.8, 1000, 1},
      {"Best effort (in 2)", K::kBestEffort, 1, 39.2, 1000, 0},
      {"Best effort (in 3)", K::kBestEffort, 2, 20.0, 1000, 0},
      {"Colibri unauth.", K::kUnauthentic, 2, 20.0, 1000, 0},
  };
  std::vector<FlowSpec> phase3 = {
      {"Reservation 1 (overuse)", K::kOveruse, 0, 40.0, 1000, 0},
      {"Reservation 2", K::kAuthentic, 1, 0.8, 1000, 1},
      {"Best effort (in 2)", K::kBestEffort, 1, 39.2, 1000, 0},
      {"Best effort (in 3)", K::kBestEffort, 2, 20.0, 1000, 0},
      {"Colibri unauth.", K::kUnauthentic, 2, 20.0, 1000, 0},
  };
  return {phase1, phase2, phase3};
}

}  // namespace colibri::sim
