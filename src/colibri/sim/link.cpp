#include "colibri/sim/link.hpp"

// Header-only implementation; this translation unit anchors the target.
