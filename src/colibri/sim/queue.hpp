// Three-class priority port (paper §3.4, App. B).
//
// Traffic classes: Colibri data > Colibri control > best effort, served
// with strict priority. Strict priority is safe because the CServ
// guarantees that admitted Colibri traffic never exceeds its share
// (App. B, footnote 4); best effort scavenges every idle transmission
// slot, so no bandwidth is wasted when reservations are idle.
#pragma once

#include <array>
#include <deque>
#include <functional>

#include "colibri/dataplane/fastpacket.hpp"
#include "colibri/sim/event.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::sim {

enum class TrafficClass : std::uint8_t {
  kColibriData = 0,
  kColibriControl = 1,
  kBestEffort = 2,
};
inline constexpr int kNumClasses = 3;

const char* traffic_class_name(TrafficClass c);

struct SimPacket {
  TrafficClass cls = TrafficClass::kBestEffort;
  std::uint32_t bytes = 0;
  std::uint64_t flow = 0;
  bool has_colibri = false;
  dataplane::FastPacket colibri;  // valid when has_colibri
};

struct ClassCounters {
  std::uint64_t enqueued_pkts = 0;
  std::uint64_t enqueued_bytes = 0;
  std::uint64_t dropped_pkts = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t sent_pkts = 0;
  std::uint64_t sent_bytes = 0;
};

// Point-in-time view of one port (see snapshot()).
struct PortStats {
  std::array<ClassCounters, kNumClasses> classes{};
  std::array<std::uint64_t, kNumClasses> queued_bytes{};
};

class PriorityPort : public telemetry::MetricsSource {
 public:
  using Sink = std::function<void(SimPacket&&)>;

  // rate in bits/second; per-class buffer limit in bytes (drop tail).
  PriorityPort(Simulator& sim, double rate_bps,
               size_t queue_limit_bytes = 1 << 20);
  ~PriorityPort() override = default;

  PriorityPort(const PriorityPort&) = delete;
  PriorityPort& operator=(const PriorityPort&) = delete;

  // Opt-in registration (the simulator creates ports freely; only
  // scenario-level ports export): metrics appear under "sim.port.*",
  // aggregated across attached ports. The port must stay at a stable
  // address while attached.
  void attach_metrics(telemetry::MetricsRegistry* registry) {
    registration_.rebind(registry, this);
  }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void enqueue(SimPacket pkt);

  const ClassCounters& counters(TrafficClass c) const {
    return counters_[static_cast<size_t>(c)];
  }
  double rate_bps() const { return rate_bps_; }

  // Uniform stats accessors: consistent point-in-time view + reset.
  PortStats snapshot() const {
    PortStats s;
    s.classes = counters_;
    for (size_t i = 0; i < kNumClasses; ++i) s.queued_bytes[i] = queued_bytes_[i];
    return s;
  }
  void reset() { counters_ = {}; }

  void collect_metrics(telemetry::MetricSink& sink) const override;

 private:
  void start_transmission();
  TimeNs tx_time(std::uint32_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 /
                               rate_bps_ * kNsPerSec);
  }

  Simulator* sim_;
  double rate_bps_;
  size_t queue_limit_bytes_;
  std::array<std::deque<SimPacket>, kNumClasses> queues_;
  std::array<size_t, kNumClasses> queued_bytes_{};
  std::array<ClassCounters, kNumClasses> counters_{};
  bool busy_ = false;
  Sink sink_;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::sim
