#include "colibri/sim/event.hpp"

namespace colibri::sim {

void Simulator::at(TimeNs t, Action fn) {
  if (t < now()) t = now();
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Simulator::run_until(TimeNs t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) {
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    clock_.set(ev.t);
    ++executed_;
    ev.fn();
  }
  if (clock_.raw() < t_end) clock_.set(t_end);
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    clock_.set(ev.t);
    ++executed_;
    ev.fn();
  }
}

}  // namespace colibri::sim
