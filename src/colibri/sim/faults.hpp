// Fault-injecting WAL storage for crash simulation.
//
// Decorates any reservation::LogStorage: every append first consults the
// FaultInjector's WAL plan and may be torn (only a prefix reaches the
// inner storage — a crash mid-write), bit-flipped (media corruption), or
// dropped entirely (crash before the write). Reads and truncation pass
// through untouched, so recovery sees exactly what "the disk" holds.
//
// Lives in sim/ (not reservation/) because it is test infrastructure
// gluing the common FaultInjector onto the persistence layer; production
// storage never links it.
#pragma once

#include "colibri/common/faults.hpp"
#include "colibri/reservation/persist.hpp"

namespace colibri::sim {

class FaultyStorage final : public reservation::LogStorage {
 public:
  FaultyStorage(reservation::LogStorage& inner, FaultInjector& faults)
      : inner_(&inner), faults_(&faults) {}

  void append(BytesView data) override;
  Bytes read_all() const override { return inner_->read_all(); }
  void truncate() override { inner_->truncate(); }

  std::uint64_t appends() const { return appends_; }
  std::uint64_t faulted() const { return faulted_; }

 private:
  reservation::LogStorage* inner_;
  FaultInjector* faults_;
  std::uint64_t appends_ = 0;
  std::uint64_t faulted_ = 0;
};

}  // namespace colibri::sim
