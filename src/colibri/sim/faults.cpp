#include "colibri/sim/faults.hpp"

namespace colibri::sim {

void FaultyStorage::append(BytesView data) {
  ++appends_;
  const WalFault f = faults_->next_wal_fault();
  switch (f.kind) {
    case WalFaultKind::kNone:
      inner_->append(data);
      return;
    case WalFaultKind::kTear: {
      ++faulted_;
      if (data.empty()) return;
      // Keep param bytes, but always lose at least the last one — a tear
      // that keeps the whole frame would not be a tear.
      const std::size_t keep =
          static_cast<std::size_t>(f.param % data.size());
      inner_->append(data.subspan(0, keep));
      return;
    }
    case WalFaultKind::kBitFlip: {
      ++faulted_;
      if (data.empty()) return;
      Bytes corrupted(data.begin(), data.end());
      const std::uint64_t bit = f.param % (corrupted.size() * 8);
      corrupted[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      inner_->append(corrupted);
      return;
    }
    case WalFaultKind::kDropAppend:
      ++faulted_;
      return;
  }
}

}  // namespace colibri::sim
