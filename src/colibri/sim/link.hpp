// Simulated link: a priority port followed by a propagation delay.
//
// With a FaultInjector attached, the link consults its scheduled
// fail/heal windows: packets entering or in flight across a down link
// are dropped (both ends of the outage — a packet already serialized
// into the pipe when the link dies is lost too).
#pragma once

#include <memory>

#include "colibri/common/faults.hpp"
#include "colibri/sim/queue.hpp"

namespace colibri::sim {

class SimLink {
 public:
  SimLink(Simulator& sim, double rate_bps, TimeNs propagation_ns,
          size_t queue_limit_bytes = 1 << 20)
      : sim_(&sim),
        port_(sim, rate_bps, queue_limit_bytes),
        propagation_ns_(propagation_ns) {
    port_.set_sink([this](SimPacket&& pkt) {
      if (!sink_) return;
      sim_->after(propagation_ns_,
                  [this, pkt = std::move(pkt)]() mutable {
                    if (down()) {
                      ++fault_dropped_;
                      faults_->note_link_drop(link_id_);
                      return;
                    }
                    sink_(std::move(pkt));
                  });
    });
  }

  void set_sink(PriorityPort::Sink sink) { sink_ = std::move(sink); }
  void send(SimPacket pkt) {
    if (down()) {
      ++fault_dropped_;
      faults_->note_link_drop(link_id_);
      return;
    }
    port_.enqueue(std::move(pkt));
  }

  // Chaos seam: scheduled fail/heal windows for `link_id` in `faults`
  // make this link lossy while down. nullptr detaches.
  void set_fault_injector(FaultInjector* faults, std::uint64_t link_id) {
    faults_ = faults;
    link_id_ = link_id;
  }
  std::uint64_t link_id() const { return link_id_; }
  std::uint64_t fault_dropped() const { return fault_dropped_; }

  PriorityPort& port() { return port_; }
  const PriorityPort& port() const { return port_; }

 private:
  bool down() const { return faults_ != nullptr && !faults_->link_up(link_id_); }

  Simulator* sim_;
  PriorityPort port_;
  TimeNs propagation_ns_;
  PriorityPort::Sink sink_;
  FaultInjector* faults_ = nullptr;
  std::uint64_t link_id_ = 0;
  std::uint64_t fault_dropped_ = 0;
};

}  // namespace colibri::sim
