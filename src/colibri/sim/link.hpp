// Simulated link: a priority port followed by a propagation delay.
#pragma once

#include <memory>

#include "colibri/sim/queue.hpp"

namespace colibri::sim {

class SimLink {
 public:
  SimLink(Simulator& sim, double rate_bps, TimeNs propagation_ns,
          size_t queue_limit_bytes = 1 << 20)
      : sim_(&sim),
        port_(sim, rate_bps, queue_limit_bytes),
        propagation_ns_(propagation_ns) {
    port_.set_sink([this](SimPacket&& pkt) {
      if (!sink_) return;
      sim_->after(propagation_ns_,
                  [this, pkt = std::move(pkt)]() mutable { sink_(std::move(pkt)); });
    });
  }

  void set_sink(PriorityPort::Sink sink) { sink_ = std::move(sink); }
  void send(SimPacket pkt) { port_.enqueue(std::move(pkt)); }

  PriorityPort& port() { return port_; }
  const PriorityPort& port() const { return port_; }

 private:
  Simulator* sim_;
  PriorityPort port_;
  TimeNs propagation_ns_;
  PriorityPort::Sink sink_;
};

}  // namespace colibri::sim
