#include "colibri/sim/cbwfq.hpp"

namespace colibri::sim {

namespace {
constexpr double kRoundBytes = 16'000;  // bytes distributed per DRR round
}

CbwfqPort::CbwfqPort(Simulator& sim, double rate_bps,
                     const CbwfqWeights& weights, size_t queue_limit_bytes)
    : sim_(&sim), rate_bps_(rate_bps), queue_limit_bytes_(queue_limit_bytes) {
  quantum_[static_cast<size_t>(TrafficClass::kColibriData)] =
      weights.colibri_data * kRoundBytes;
  quantum_[static_cast<size_t>(TrafficClass::kColibriControl)] =
      weights.control * kRoundBytes;
  quantum_[static_cast<size_t>(TrafficClass::kBestEffort)] =
      weights.best_effort * kRoundBytes;
}

void CbwfqPort::enqueue(SimPacket pkt) {
  const auto c = static_cast<size_t>(pkt.cls);
  ClassCounters& ctr = counters_[c];
  if (queued_bytes_[c] + pkt.bytes > queue_limit_bytes_) {
    ++ctr.dropped_pkts;
    ctr.dropped_bytes += pkt.bytes;
    return;
  }
  ++ctr.enqueued_pkts;
  ctr.enqueued_bytes += pkt.bytes;
  queued_bytes_[c] += pkt.bytes;
  queues_[c].push_back(std::move(pkt));
  if (!busy_) start_transmission();
}

int CbwfqPort::pick_class() {
  // Deficit round robin: each *visit* to a backlogged class adds exactly
  // one quantum; the class is then served while its deficit covers the
  // head packet, and the round moves on once it no longer does. Without
  // the once-per-visit rule a single class could absorb quantum on every
  // pick and monopolize the link.
  // Bound the search: each class may be visited at most ~max_pkt/quantum
  // times before its deficit covers a packet.
  for (int attempts = 0; attempts < 64 * kNumClasses; ++attempts) {
    const auto c = static_cast<size_t>(rr_);
    if (queues_[c].empty()) {
      // Idle classes carry no deficit into their next busy period
      // (work-conserving DRR).
      deficit_[c] = 0;
      visited_[c] = false;
      rr_ = (rr_ + 1) % kNumClasses;
      continue;
    }
    if (!visited_[c]) {
      deficit_[c] += quantum_[c];
      visited_[c] = true;
    }
    if (deficit_[c] >= queues_[c].front().bytes) return rr_;
    visited_[c] = false;
    rr_ = (rr_ + 1) % kNumClasses;
  }
  return -1;  // all queues empty
}

void CbwfqPort::start_transmission() {
  const int c = pick_class();
  if (c < 0) return;
  SimPacket pkt = std::move(queues_[static_cast<size_t>(c)].front());
  queues_[static_cast<size_t>(c)].pop_front();
  queued_bytes_[static_cast<size_t>(c)] -= pkt.bytes;
  deficit_[static_cast<size_t>(c)] -= pkt.bytes;
  busy_ = true;
  sim_->at(sim_->now() + tx_time(pkt.bytes),
           [this, pkt = std::move(pkt)]() mutable {
             ClassCounters& ctr = counters_[static_cast<size_t>(pkt.cls)];
             ++ctr.sent_pkts;
             ctr.sent_bytes += pkt.bytes;
             if (sink_) sink_(std::move(pkt));
             busy_ = false;
             start_transmission();
           });
}

FifoPort::FifoPort(Simulator& sim, double rate_bps, size_t queue_limit_bytes)
    : sim_(&sim), rate_bps_(rate_bps), queue_limit_bytes_(queue_limit_bytes) {}

void FifoPort::enqueue(SimPacket pkt) {
  ClassCounters& ctr = counters_[static_cast<size_t>(pkt.cls)];
  if (queued_bytes_ + pkt.bytes > queue_limit_bytes_) {
    ++ctr.dropped_pkts;
    ctr.dropped_bytes += pkt.bytes;
    return;
  }
  ++ctr.enqueued_pkts;
  ctr.enqueued_bytes += pkt.bytes;
  queued_bytes_ += pkt.bytes;
  queue_.push_back(std::move(pkt));
  if (!busy_) start_transmission();
}

void FifoPort::start_transmission() {
  if (queue_.empty()) return;
  SimPacket pkt = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= pkt.bytes;
  busy_ = true;
  const TimeNs done =
      sim_->now() + static_cast<TimeNs>(static_cast<double>(pkt.bytes) * 8.0 /
                                        rate_bps_ * kNsPerSec);
  sim_->at(done, [this, pkt = std::move(pkt)]() mutable {
    ClassCounters& ctr = counters_[static_cast<size_t>(pkt.cls)];
    ++ctr.sent_pkts;
    ctr.sent_bytes += pkt.bytes;
    if (sink_) sink_(std::move(pkt));
    busy_ = false;
    start_transmission();
  });
}

}  // namespace colibri::sim
