#include "colibri/sim/traffic.hpp"

namespace colibri::sim {

CbrSource::CbrSource(Simulator& sim, PacketSink sink, TrafficClass cls,
                     double rate_bps, std::uint32_t pkt_bytes,
                     std::uint64_t flow_id)
    : sim_(&sim),
      sink_(std::move(sink)),
      cls_(cls),
      pkt_bytes_(pkt_bytes),
      interval_ns_(static_cast<TimeNs>(static_cast<double>(pkt_bytes) * 8.0 /
                                       rate_bps * kNsPerSec)),
      flow_id_(flow_id) {
  if (interval_ns_ < 1) interval_ns_ = 1;
}

void CbrSource::start(TimeNs at, TimeNs stop) {
  stop_ = stop;
  sim_->at(at, [this] { emit(); });
}

void CbrSource::emit() {
  if (sim_->now() >= stop_) return;
  SimPacket pkt = make_packet();
  if (pkt.bytes > 0) {
    ++emitted_;
    sink_(std::move(pkt));
  }
  sim_->after(interval_ns_, [this] { emit(); });
}

SimPacket CbrSource::make_packet() {
  SimPacket pkt;
  pkt.cls = cls_;
  pkt.bytes = pkt_bytes_;
  pkt.flow = flow_id_;
  return pkt;
}

GatewayColibriSource::GatewayColibriSource(Simulator& sim, PacketSink sink,
                                           dataplane::Gateway& gateway,
                                           ResId res_id, double rate_bps,
                                           std::uint32_t payload_bytes,
                                           std::uint64_t flow_id)
    : CbrSource(sim, std::move(sink), TrafficClass::kColibriData, rate_bps,
                payload_bytes + 65 /*approx header*/, flow_id),
      gateway_(&gateway),
      res_id_(res_id),
      payload_bytes_(payload_bytes) {}

SimPacket GatewayColibriSource::make_packet() {
  SimPacket pkt;
  pkt.cls = TrafficClass::kColibriData;
  pkt.flow = flow_id();
  dataplane::FastPacket fp;
  if (gateway_->process(res_id_, payload_bytes_, fp) !=
      dataplane::Gateway::Verdict::kOk) {
    pkt.bytes = 0;  // dropped at the gateway (monitoring)
    return pkt;
  }
  pkt.bytes = fp.wire_size();
  pkt.has_colibri = true;
  pkt.colibri = fp;
  return pkt;
}

RawColibriSource::RawColibriSource(Simulator& sim, PacketSink sink,
                                   dataplane::FastPacket packet_template,
                                   double rate_bps, std::uint64_t flow_id,
                                   Stamper stamper)
    : CbrSource(sim, std::move(sink), TrafficClass::kColibriData, rate_bps,
                packet_template.wire_size(), flow_id),
      template_(packet_template),
      stamper_(std::move(stamper)) {}

SimPacket RawColibriSource::make_packet() {
  SimPacket pkt;
  pkt.cls = TrafficClass::kColibriData;
  pkt.flow = flow_id();
  pkt.has_colibri = true;
  pkt.colibri = template_;
  if (stamper_) stamper_(pkt.colibri);
  pkt.bytes = pkt.colibri.wire_size();
  return pkt;
}

}  // namespace colibri::sim
