#include "colibri/sim/queue.hpp"

namespace colibri::sim {

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kColibriData: return "colibri-data";
    case TrafficClass::kColibriControl: return "colibri-control";
    case TrafficClass::kBestEffort: return "best-effort";
  }
  return "?";
}

PriorityPort::PriorityPort(Simulator& sim, double rate_bps,
                           size_t queue_limit_bytes)
    : sim_(&sim), rate_bps_(rate_bps), queue_limit_bytes_(queue_limit_bytes) {}

void PriorityPort::collect_metrics(telemetry::MetricSink& sink) const {
  for (size_t c = 0; c < kNumClasses; ++c) {
    const std::string prefix =
        std::string("sim.port.") +
        traffic_class_name(static_cast<TrafficClass>(c)) + ".";
    const ClassCounters& ctr = counters_[c];
    sink.counter(prefix + "enqueued_pkts", ctr.enqueued_pkts);
    sink.counter(prefix + "sent_pkts", ctr.sent_pkts);
    sink.counter(prefix + "dropped_pkts", ctr.dropped_pkts);
    sink.counter(prefix + "dropped_bytes", ctr.dropped_bytes);
    sink.gauge(prefix + "queued_bytes",
               static_cast<std::int64_t>(queued_bytes_[c]));
  }
}

void PriorityPort::enqueue(SimPacket pkt) {
  const auto c = static_cast<size_t>(pkt.cls);
  ClassCounters& ctr = counters_[c];
  if (queued_bytes_[c] + pkt.bytes > queue_limit_bytes_) {
    ++ctr.dropped_pkts;
    ctr.dropped_bytes += pkt.bytes;
    return;
  }
  ++ctr.enqueued_pkts;
  ctr.enqueued_bytes += pkt.bytes;
  queued_bytes_[c] += pkt.bytes;
  queues_[c].push_back(std::move(pkt));
  if (!busy_) start_transmission();
}

void PriorityPort::start_transmission() {
  // Strict priority: lowest class index first.
  for (size_t c = 0; c < kNumClasses; ++c) {
    if (queues_[c].empty()) continue;
    SimPacket pkt = std::move(queues_[c].front());
    queues_[c].pop_front();
    queued_bytes_[c] -= pkt.bytes;
    busy_ = true;
    const TimeNs done = sim_->now() + tx_time(pkt.bytes);
    sim_->at(done, [this, pkt = std::move(pkt)]() mutable {
      ClassCounters& ctr = counters_[static_cast<size_t>(pkt.cls)];
      ++ctr.sent_pkts;
      ctr.sent_bytes += pkt.bytes;
      if (sink_) sink_(std::move(pkt));
      busy_ = false;
      start_transmission();
    });
    return;
  }
}

}  // namespace colibri::sim
