#include "colibri/dataplane/router.hpp"

#include <chrono>
#include <cstring>

#include "colibri/crypto/cmac_multi.hpp"

namespace colibri::dataplane {

namespace {

inline std::size_t idx(BorderRouter::Verdict v) {
  return static_cast<std::size_t>(v);
}

inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BorderRouter::BorderRouter(AsId local_as, const drkey::Key128& hop_key,
                           const Clock& clock,
                           telemetry::MetricsRegistry* registry)
    : local_as_(local_as),
      hop_cipher_(hop_key.bytes.data()),
      clock_(&clock),
      registration_(registry, this) {}

template <bool kRecording>
BorderRouter::Verdict BorderRouter::classify(FastPacket& pkt,
                                             telemetry::FlightRecord* rec) {
  // Format checks.
  if (pkt.num_hops == 0 || pkt.num_hops > kMaxHops ||
      pkt.current_hop >= pkt.num_hops) {
    return Verdict::kMalformed;
  }
  const TimeNs now = clock_->now_ns();
  return finalize<kRecording>(
      pkt, now,
      [&]() -> proto::Hvf {
        const IfPair hop = pkt.ifaces[pkt.current_hop];
        if (pkt.is_eer) {
          // Eq. 4 then Eq. 6: recreate σ_i from K_i, derive the
          // per-packet HVF.
          const HopAuth sigma = compute_hopauth(hop_cipher_, pkt.resinfo,
                                                pkt.eerinfo, hop.in, hop.eg);
          return compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
        }
        // Eq. 3: static SegR token.
        return compute_seg_hvf(hop_cipher_, pkt.resinfo, hop.in, hop.eg);
      },
      rec);
}

template <bool kRecording, typename HvfFn>
BorderRouter::Verdict BorderRouter::finalize(FastPacket& pkt, TimeNs now,
                                             HvfFn&& expected_hvf,
                                             telemetry::FlightRecord* rec) {
  if constexpr (kRecording) {
    rec->time_ns = now;
    rec->src_as = pkt.resinfo.src_as.raw();
    rec->res_id = pkt.resinfo.res_id;
    rec->version = pkt.resinfo.version;
    rec->hop = pkt.current_hop;
    rec->if_in = pkt.ifaces[pkt.current_hop].in;
    rec->if_eg = pkt.ifaces[pkt.current_hop].eg;
    rec->timestamp = pkt.timestamp;
    rec->wire_bytes = pkt.wire_size();
    rec->exp_time = pkt.resinfo.exp_time;
  }
  // Reservation expiry.
  if (pkt.resinfo.exp_time <= static_cast<UnixSec>(now / kNsPerSec)) {
    return Verdict::kExpired;
  }
  // Policing: traffic from blocked source ASes is dropped up front.
  if (blocklist_ != nullptr && blocklist_->blocked(pkt.resinfo.src_as)) {
    return Verdict::kBlocked;
  }

  const proto::Hvf expected = expected_hvf();
  if constexpr (kRecording) {
    rec->hvf_checked = true;
    std::copy_n(pkt.hvfs[pkt.current_hop].begin(), rec->hvf_got.size(),
                rec->hvf_got.begin());
    std::copy_n(expected.begin(), rec->hvf_want.size(),
                rec->hvf_want.begin());
  }
  if (!hvf_equal(expected, pkt.hvfs[pkt.current_hop])) {
    return Verdict::kBadHvf;
  }

  // Replay suppression (EER data only; control traffic is rate-limited at
  // the CServ instead).
  if (dupsup_ != nullptr && pkt.is_eer &&
      pkt.type == proto::PacketType::kData) {
    const TimeNs ts_ns =
        PacketTimestamp::decode(pkt.timestamp, pkt.resinfo.exp_time);
    const auto verdict = dupsup_->check(pkt.resinfo.src_as, pkt.resinfo.res_id,
                                        pkt.timestamp, ts_ns, now);
    if constexpr (kRecording) {
      rec->dupsup_verdict = static_cast<std::uint8_t>(verdict);
    }
    if (verdict != DuplicateSuppression::Verdict::kFresh) {
      return Verdict::kReplay;
    }
  }

  // Probabilistic overuse monitoring.
  if (ofd_ != nullptr && pkt.is_eer && pkt.type == proto::PacketType::kData) {
    const auto verdict =
        ofd_->update(pkt.resinfo.src_as, pkt.resinfo.res_id, pkt.wire_size(),
                     pkt.resinfo.bw_kbps, now);
    if constexpr (kRecording) {
      rec->ofd_verdict = static_cast<std::uint8_t>(verdict);
    }
    if (verdict == OverUseFlowDetector::Verdict::kOveruse) {
      if (blocklist_ != nullptr) {
        blocklist_->report(OffenseReport{pkt.resinfo.src_as,
                                         pkt.resinfo.res_id, now,
                                         pkt.wire_size()});
      }
      return Verdict::kOveruse;
    }
  }

  if (pkt.at_last_hop()) {
    return Verdict::kDeliver;
  }
  ++pkt.current_hop;
  return Verdict::kForward;
}

BorderRouter::Verdict BorderRouter::process(FastPacket& pkt) {
  if (profiler_.enabled()) [[unlikely]] {
    const std::int64_t t0 = telemetry::profiler_now_ns();
    const Verdict v = process_impl(pkt);
    profiler_.finish(kStageScalar, t0);
    return v;
  }
  return process_impl(pkt);
}

BorderRouter::Verdict BorderRouter::process_impl(FastPacket& pkt) {
  if (recorder_ != nullptr) [[unlikely]] {
    return process_recorded(pkt);
  }
  if (sample_every_ != 0 && --sample_countdown_ == 0) {
    sample_countdown_ = sample_every_;
    const std::int64_t t0 = steady_now_ns();
    const Verdict v = classify<false>(pkt, nullptr);
    validate_latency_ns_.record(
        static_cast<std::uint64_t>(steady_now_ns() - t0));
    verdicts_[idx(v)].bump();
    return v;
  }
  const Verdict v = classify<false>(pkt, nullptr);
  verdicts_[idx(v)].bump();
  return v;
}

// process() with a flight recorder attached. Detail is captured into a
// stack-local record during classification (a handful of stores, no
// allocation) and committed to the ring when the deterministic sampler
// keeps the packet or the verdict is a drop under record-on-drop mode.
BorderRouter::Verdict BorderRouter::process_recorded(FastPacket& pkt) {
  if (!recorder_->armed()) {
    const Verdict v = classify<false>(pkt, nullptr);
    verdicts_[idx(v)].bump();
    return v;
  }
  const bool sampled = recorder_->sample_tick();
  telemetry::FlightRecord rec;
  rec.component = telemetry::FlightRecorder::kRouter;
  rec.time_ns = clock_->now_ns();  // classify overwrites unless malformed
  rec.res_id = pkt.resinfo.res_id;
  rec.src_as = pkt.resinfo.src_as.raw();
  const Verdict v = classify<true>(pkt, &rec);
  verdicts_[idx(v)].bump();
  const bool is_drop = v != Verdict::kForward && v != Verdict::kDeliver;
  if (sampled || (is_drop && recorder_->record_drops())) {
    rec.verdict = static_cast<std::uint8_t>(v);
    rec.errc = static_cast<std::uint8_t>(errc_from_verdict(v));
    rec.forced_by_drop = !sampled;
    recorder_->commit(rec);
  }
  return v;
}

void BorderRouter::process_burst(FastPacket* pkts, size_t n,
                                 Verdict* verdicts) {
  for (size_t i = 0; i < n; ++i) verdicts[i] = process(pkts[i]);
}

// Multi-lane expected-HVF computation. All per-packet MACs under K_i
// share one key, so the CBC-MAC chains of the whole batch run through
// Aes128::encrypt_blocks (4-wide interleaved on AES-NI); the Eq. 6
// encryption is keyed per packet by σ_i, so those lanes go through
// AesSchedule + aes128_encrypt_each. Pure computation — no telemetry,
// no clock, no hook state — which is why it may run speculatively for
// packets the sequential finalize later drops as expired or blocked.
void BorderRouter::batch_expected_hvfs(const FastPacket* pkts, std::size_t n,
                                       const bool* fmt_ok,
                                       proto::Hvf* expected) const {
  constexpr std::size_t kCap = PacketBatch::kCapacity;
  constexpr std::size_t kHopStride = 64;  // kHopAuthInputLen (57) padded
  constexpr std::size_t kSegStride = 32;  // kSegMacInputLen (25) padded
  static_assert(proto::kHopAuthInputLen <= kHopStride);
  static_assert(proto::kSegMacInputLen <= kSegStride);
  static_assert(proto::kDataMacInputLen <= 16);

  std::uint8_t eer_lane[kCap];
  std::uint8_t seg_lane[kCap];
  std::size_t n_eer = 0, n_seg = 0;
  alignas(16) std::uint8_t eer_msgs[kCap * kHopStride];
  alignas(16) std::uint8_t seg_msgs[kCap * kSegStride];
  for (std::size_t i = 0; i < n; ++i) {
    if (!fmt_ok[i]) continue;
    const FastPacket& p = pkts[i];
    const IfPair hop = p.ifaces[p.current_hop];
    if (p.is_eer) {
      proto::build_hopauth_input(p.resinfo, p.eerinfo, hop.in, hop.eg,
                                 eer_msgs + n_eer * kHopStride);
      eer_lane[n_eer++] = static_cast<std::uint8_t>(i);
    } else {
      proto::build_seg_mac_input(p.resinfo, hop.in, hop.eg,
                                 seg_msgs + n_seg * kSegStride);
      seg_lane[n_seg++] = static_cast<std::uint8_t>(i);
    }
  }

  if (n_seg != 0) {
    // Eq. 3, all SegR lanes under K_i at once.
    alignas(16) std::uint8_t macs[kCap * 16];
    crypto::cbcmac_fixed_multi(hop_cipher_, seg_msgs, proto::kSegMacInputLen,
                               kSegStride, n_seg, macs);
    for (std::size_t j = 0; j < n_seg; ++j) {
      proto::Hvf& v = expected[seg_lane[j]];
      std::memcpy(v.data(), macs + 16 * j, v.size());
    }
  }

  if (n_eer != 0) {
    // Eq. 4: all σ_i lanes under K_i at once.
    alignas(16) std::uint8_t sigmas[kCap * 16];
    crypto::cbcmac_fixed_multi(hop_cipher_, eer_msgs, proto::kHopAuthInputLen,
                               kHopStride, n_eer, sigmas);
    // Eq. 6: one single-block encryption per packet, keyed by its σ_i.
    crypto::AesSchedule scheds[kCap];
    alignas(16) std::uint8_t blocks[kCap * 16];
    std::memset(blocks, 0, 16 * n_eer);
    for (std::size_t j = 0; j < n_eer; ++j) {
      scheds[j].expand(sigmas + 16 * j);
      const FastPacket& p = pkts[eer_lane[j]];
      proto::build_data_mac_input(p.timestamp, p.wire_size(), blocks + 16 * j);
    }
    alignas(16) std::uint8_t enc[kCap * 16];
    crypto::aes128_encrypt_each(scheds, n_eer, blocks, enc);
    for (std::size_t j = 0; j < n_eer; ++j) {
      proto::Hvf& v = expected[eer_lane[j]];
      std::memcpy(v.data(), enc + 16 * j, v.size());
    }
  }
}

void BorderRouter::process_batch(PacketBatch& batch, Verdict* verdicts) {
  constexpr std::size_t kCap = PacketBatch::kCapacity;
  const std::size_t n = batch.size;
  FastPacket* pkts = batch.pkts.data();
  const bool armed = recorder_ != nullptr && recorder_->armed();
  const bool prof = profiler_.enabled();
  std::int64_t tp = prof ? telemetry::profiler_now_ns() : 0;

  // Stage 1: header sanity + clock sampling, sequential in packet order.
  // Clock-call parity with the scalar path: exactly one now_ns() per
  // well-formed packet (plus the recorder's pre-classify sample when
  // armed), in arrival order, so verdicts match even under a clock that
  // advances per call.
  TimeNs now[kCap];
  TimeNs pre[kCap];
  bool fmt_ok[kCap];
  bool sampled[kCap];
  for (std::size_t i = 0; i < n; ++i) {
    if (armed) {
      sampled[i] = recorder_->sample_tick();
      pre[i] = clock_->now_ns();
    }
    const FastPacket& p = pkts[i];
    fmt_ok[i] = !(p.num_hops == 0 || p.num_hops > kMaxHops ||
                  p.current_hop >= p.num_hops);
    if (fmt_ok[i]) now[i] = clock_->now_ns();
  }
  if (prof) tp = profiler_.lap(kStageHeaderSanity, tp);

  // Stage 2: prefetch the dupsup Bloom-filter words for the whole batch
  // so the sequential finalize finds them in cache.
  if (dupsup_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const FastPacket& p = pkts[i];
      if (fmt_ok[i] && p.is_eer && p.type == proto::PacketType::kData) {
        dupsup_->prefetch(p.resinfo.src_as, p.resinfo.res_id, p.timestamp);
      }
    }
  }
  if (prof) tp = profiler_.lap(kStagePrefetch, tp);

  // Stage 3: batched expected HVFs (pure, possibly speculative).
  proto::Hvf expected[kCap];
  batch_expected_hvfs(pkts, n, fmt_ok, expected);
  if (prof) tp = profiler_.lap(kStageHvfCrypto, tp);

  // Stage 4: sequential per-packet finalize, in arrival order. The
  // stateful hooks demand this: packet i's overuse report may land its
  // source AS on the blocklist before packet j > i is checked, and the
  // dupsup filter must observe duplicates in stream order.
  for (std::size_t i = 0; i < n; ++i) {
    Verdict v;
    if (!armed) {
      v = fmt_ok[i] ? finalize<false>(
                          pkts[i], now[i], [&] { return expected[i]; }, nullptr)
                    : Verdict::kMalformed;
    } else {
      telemetry::FlightRecord rec;
      rec.component = telemetry::FlightRecorder::kRouter;
      rec.time_ns = pre[i];  // finalize overwrites unless malformed
      rec.res_id = pkts[i].resinfo.res_id;
      rec.src_as = pkts[i].resinfo.src_as.raw();
      v = fmt_ok[i] ? finalize<true>(
                          pkts[i], now[i], [&] { return expected[i]; }, &rec)
                    : Verdict::kMalformed;
      const bool is_drop = v != Verdict::kForward && v != Verdict::kDeliver;
      if (sampled[i] || (is_drop && recorder_->record_drops())) {
        rec.verdict = static_cast<std::uint8_t>(v);
        rec.errc = static_cast<std::uint8_t>(errc_from_verdict(v));
        rec.forced_by_drop = !sampled[i];
        recorder_->commit(rec);
      }
    }
    verdicts_[idx(v)].bump();
    verdicts[i] = v;
  }
  if (prof) {
    profiler_.lap(kStageFinalize, tp);
    profiler_.count_batch(n);
  }
}

RouterStats BorderRouter::snapshot() const {
  RouterStats s;
  s.forwarded = verdicts_[idx(Verdict::kForward)].value();
  s.delivered = verdicts_[idx(Verdict::kDeliver)].value();
  s.bad_hvf = verdicts_[idx(Verdict::kBadHvf)].value();
  s.expired = verdicts_[idx(Verdict::kExpired)].value();
  s.malformed = verdicts_[idx(Verdict::kMalformed)].value();
  s.blocked = verdicts_[idx(Verdict::kBlocked)].value();
  s.replayed = verdicts_[idx(Verdict::kReplay)].value();
  s.overuse_dropped = verdicts_[idx(Verdict::kOveruse)].value();
  return s;
}

void BorderRouter::reset() {
  for (auto& c : verdicts_) c.reset();
  validate_latency_ns_.reset();
  profiler_.reset();
}

void BorderRouter::collect_metrics(telemetry::MetricSink& sink) const {
  sink.counter("router.forwarded", verdicts_[idx(Verdict::kForward)].value());
  sink.counter("router.delivered", verdicts_[idx(Verdict::kDeliver)].value());
  for (std::size_t i = idx(Verdict::kBadHvf); i < kNumVerdicts; ++i) {
    const auto v = static_cast<Verdict>(i);
    sink.counter(std::string("router.drop.") + errc_name(errc_from_verdict(v)),
                 verdicts_[i].value());
  }
  const auto latency = validate_latency_ns_.snapshot();
  if (latency.count != 0) {
    sink.histogram("router.validate_latency_ns", latency);
  }
  telemetry::PrefixedSink prefixed("router.", sink);
  profiler_.collect_metrics(prefixed);
}

Errc errc_from_verdict(BorderRouter::Verdict v) {
  switch (v) {
    case BorderRouter::Verdict::kForward:
    case BorderRouter::Verdict::kDeliver:
      return Errc::kOk;
    case BorderRouter::Verdict::kBadHvf: return Errc::kAuthFailed;
    case BorderRouter::Verdict::kExpired: return Errc::kExpired;
    case BorderRouter::Verdict::kMalformed: return Errc::kMalformed;
    case BorderRouter::Verdict::kBlocked: return Errc::kBlocked;
    case BorderRouter::Verdict::kReplay: return Errc::kReplay;
    case BorderRouter::Verdict::kOveruse: return Errc::kOveruse;
  }
  return Errc::kInternal;
}

std::vector<telemetry::AlertRule> default_router_alert_rules(
    double drops_per_sec, TimeNs for_ns) {
  telemetry::AlertRule r;
  r.name = "router.drop-spike";
  r.series = "router.drop.";  // prefix: sums every drop reason
  r.signal = telemetry::AlertSignal::kRate;
  r.span_ns = kNsPerSec;
  r.cmp = telemetry::AlertCmp::kAbove;
  r.threshold = drops_per_sec;
  r.for_ns = for_ns;
  r.severity = telemetry::Severity::kError;
  std::vector<telemetry::AlertRule> rules;
  rules.push_back(std::move(r));
  return rules;
}

}  // namespace colibri::dataplane
