#include "colibri/dataplane/router.hpp"

namespace colibri::dataplane {

BorderRouter::BorderRouter(AsId local_as, const drkey::Key128& hop_key,
                           const Clock& clock)
    : local_as_(local_as), hop_cipher_(hop_key.bytes.data()), clock_(&clock) {}

BorderRouter::Verdict BorderRouter::process(FastPacket& pkt) {
  // Format checks.
  if (pkt.num_hops == 0 || pkt.num_hops > kMaxHops ||
      pkt.current_hop >= pkt.num_hops) {
    ++stats_.malformed;
    return Verdict::kMalformed;
  }
  const TimeNs now = clock_->now_ns();
  // Reservation expiry.
  if (pkt.resinfo.exp_time <= static_cast<UnixSec>(now / kNsPerSec)) {
    ++stats_.expired;
    return Verdict::kExpired;
  }
  // Policing: traffic from blocked source ASes is dropped up front.
  if (blocklist_ != nullptr && blocklist_->blocked(pkt.resinfo.src_as)) {
    ++stats_.blocked;
    return Verdict::kBlocked;
  }

  const IfPair hop = pkt.ifaces[pkt.current_hop];
  proto::Hvf expected;
  if (pkt.is_eer) {
    // Eq. 4 then Eq. 6: recreate σ_i from K_i, derive the per-packet HVF.
    const HopAuth sigma = compute_hopauth(hop_cipher_, pkt.resinfo,
                                          pkt.eerinfo, hop.in, hop.eg);
    expected = compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
  } else {
    // Eq. 3: static SegR token.
    expected = compute_seg_hvf(hop_cipher_, pkt.resinfo, hop.in, hop.eg);
  }
  if (!hvf_equal(expected, pkt.hvfs[pkt.current_hop])) {
    ++stats_.bad_hvf;
    return Verdict::kBadHvf;
  }

  // Replay suppression (EER data only; control traffic is rate-limited at
  // the CServ instead).
  if (dupsup_ != nullptr && pkt.is_eer &&
      pkt.type == proto::PacketType::kData) {
    const TimeNs ts_ns =
        PacketTimestamp::decode(pkt.timestamp, pkt.resinfo.exp_time);
    const auto verdict = dupsup_->check(pkt.resinfo.src_as, pkt.resinfo.res_id,
                                        pkt.timestamp, ts_ns, now);
    if (verdict != DuplicateSuppression::Verdict::kFresh) {
      ++stats_.replayed;
      return Verdict::kReplay;
    }
  }

  // Probabilistic overuse monitoring.
  if (ofd_ != nullptr && pkt.is_eer && pkt.type == proto::PacketType::kData) {
    const auto verdict =
        ofd_->update(pkt.resinfo.src_as, pkt.resinfo.res_id, pkt.wire_size(),
                     pkt.resinfo.bw_kbps, now);
    if (verdict == OverUseFlowDetector::Verdict::kOveruse) {
      ++stats_.overuse_dropped;
      if (blocklist_ != nullptr) {
        blocklist_->report(OffenseReport{pkt.resinfo.src_as,
                                         pkt.resinfo.res_id, now,
                                         pkt.wire_size()});
      }
      return Verdict::kOveruse;
    }
  }

  if (pkt.at_last_hop()) {
    ++stats_.delivered;
    return Verdict::kDeliver;
  }
  ++pkt.current_hop;
  ++stats_.forwarded;
  return Verdict::kForward;
}

void BorderRouter::process_burst(FastPacket* pkts, size_t n,
                                 Verdict* verdicts) {
  for (size_t i = 0; i < n; ++i) verdicts[i] = process(pkts[i]);
}

}  // namespace colibri::dataplane
