#include "colibri/dataplane/router.hpp"

#include <chrono>

namespace colibri::dataplane {

namespace {

inline std::size_t idx(BorderRouter::Verdict v) {
  return static_cast<std::size_t>(v);
}

inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BorderRouter::BorderRouter(AsId local_as, const drkey::Key128& hop_key,
                           const Clock& clock,
                           telemetry::MetricsRegistry* registry)
    : local_as_(local_as),
      hop_cipher_(hop_key.bytes.data()),
      clock_(&clock),
      registration_(registry, this) {}

template <bool kRecording>
BorderRouter::Verdict BorderRouter::classify(FastPacket& pkt,
                                             telemetry::FlightRecord* rec) {
  // Format checks.
  if (pkt.num_hops == 0 || pkt.num_hops > kMaxHops ||
      pkt.current_hop >= pkt.num_hops) {
    return Verdict::kMalformed;
  }
  const TimeNs now = clock_->now_ns();
  if constexpr (kRecording) {
    rec->time_ns = now;
    rec->src_as = pkt.resinfo.src_as.raw();
    rec->res_id = pkt.resinfo.res_id;
    rec->version = pkt.resinfo.version;
    rec->hop = pkt.current_hop;
    rec->if_in = pkt.ifaces[pkt.current_hop].in;
    rec->if_eg = pkt.ifaces[pkt.current_hop].eg;
    rec->timestamp = pkt.timestamp;
    rec->wire_bytes = pkt.wire_size();
    rec->exp_time = pkt.resinfo.exp_time;
  }
  // Reservation expiry.
  if (pkt.resinfo.exp_time <= static_cast<UnixSec>(now / kNsPerSec)) {
    return Verdict::kExpired;
  }
  // Policing: traffic from blocked source ASes is dropped up front.
  if (blocklist_ != nullptr && blocklist_->blocked(pkt.resinfo.src_as)) {
    return Verdict::kBlocked;
  }

  const IfPair hop = pkt.ifaces[pkt.current_hop];
  proto::Hvf expected;
  if (pkt.is_eer) {
    // Eq. 4 then Eq. 6: recreate σ_i from K_i, derive the per-packet HVF.
    const HopAuth sigma = compute_hopauth(hop_cipher_, pkt.resinfo,
                                          pkt.eerinfo, hop.in, hop.eg);
    expected = compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
  } else {
    // Eq. 3: static SegR token.
    expected = compute_seg_hvf(hop_cipher_, pkt.resinfo, hop.in, hop.eg);
  }
  if constexpr (kRecording) {
    rec->hvf_checked = true;
    std::copy_n(pkt.hvfs[pkt.current_hop].begin(), rec->hvf_got.size(),
                rec->hvf_got.begin());
    std::copy_n(expected.begin(), rec->hvf_want.size(),
                rec->hvf_want.begin());
  }
  if (!hvf_equal(expected, pkt.hvfs[pkt.current_hop])) {
    return Verdict::kBadHvf;
  }

  // Replay suppression (EER data only; control traffic is rate-limited at
  // the CServ instead).
  if (dupsup_ != nullptr && pkt.is_eer &&
      pkt.type == proto::PacketType::kData) {
    const TimeNs ts_ns =
        PacketTimestamp::decode(pkt.timestamp, pkt.resinfo.exp_time);
    const auto verdict = dupsup_->check(pkt.resinfo.src_as, pkt.resinfo.res_id,
                                        pkt.timestamp, ts_ns, now);
    if constexpr (kRecording) {
      rec->dupsup_verdict = static_cast<std::uint8_t>(verdict);
    }
    if (verdict != DuplicateSuppression::Verdict::kFresh) {
      return Verdict::kReplay;
    }
  }

  // Probabilistic overuse monitoring.
  if (ofd_ != nullptr && pkt.is_eer && pkt.type == proto::PacketType::kData) {
    const auto verdict =
        ofd_->update(pkt.resinfo.src_as, pkt.resinfo.res_id, pkt.wire_size(),
                     pkt.resinfo.bw_kbps, now);
    if constexpr (kRecording) {
      rec->ofd_verdict = static_cast<std::uint8_t>(verdict);
    }
    if (verdict == OverUseFlowDetector::Verdict::kOveruse) {
      if (blocklist_ != nullptr) {
        blocklist_->report(OffenseReport{pkt.resinfo.src_as,
                                         pkt.resinfo.res_id, now,
                                         pkt.wire_size()});
      }
      return Verdict::kOveruse;
    }
  }

  if (pkt.at_last_hop()) {
    return Verdict::kDeliver;
  }
  ++pkt.current_hop;
  return Verdict::kForward;
}

BorderRouter::Verdict BorderRouter::process(FastPacket& pkt) {
  if (recorder_ != nullptr) [[unlikely]] {
    return process_recorded(pkt);
  }
  if (sample_every_ != 0 && --sample_countdown_ == 0) {
    sample_countdown_ = sample_every_;
    const std::int64_t t0 = steady_now_ns();
    const Verdict v = classify<false>(pkt, nullptr);
    validate_latency_ns_.record(
        static_cast<std::uint64_t>(steady_now_ns() - t0));
    verdicts_[idx(v)].bump();
    return v;
  }
  const Verdict v = classify<false>(pkt, nullptr);
  verdicts_[idx(v)].bump();
  return v;
}

// process() with a flight recorder attached. Detail is captured into a
// stack-local record during classification (a handful of stores, no
// allocation) and committed to the ring when the deterministic sampler
// keeps the packet or the verdict is a drop under record-on-drop mode.
BorderRouter::Verdict BorderRouter::process_recorded(FastPacket& pkt) {
  if (!recorder_->armed()) {
    const Verdict v = classify<false>(pkt, nullptr);
    verdicts_[idx(v)].bump();
    return v;
  }
  const bool sampled = recorder_->sample_tick();
  telemetry::FlightRecord rec;
  rec.component = telemetry::FlightRecorder::kRouter;
  rec.time_ns = clock_->now_ns();  // classify overwrites unless malformed
  rec.res_id = pkt.resinfo.res_id;
  rec.src_as = pkt.resinfo.src_as.raw();
  const Verdict v = classify<true>(pkt, &rec);
  verdicts_[idx(v)].bump();
  const bool is_drop = v != Verdict::kForward && v != Verdict::kDeliver;
  if (sampled || (is_drop && recorder_->record_drops())) {
    rec.verdict = static_cast<std::uint8_t>(v);
    rec.errc = static_cast<std::uint8_t>(errc_from_verdict(v));
    rec.forced_by_drop = !sampled;
    recorder_->commit(rec);
  }
  return v;
}

void BorderRouter::process_burst(FastPacket* pkts, size_t n,
                                 Verdict* verdicts) {
  for (size_t i = 0; i < n; ++i) verdicts[i] = process(pkts[i]);
}

RouterStats BorderRouter::snapshot() const {
  RouterStats s;
  s.forwarded = verdicts_[idx(Verdict::kForward)].value();
  s.delivered = verdicts_[idx(Verdict::kDeliver)].value();
  s.bad_hvf = verdicts_[idx(Verdict::kBadHvf)].value();
  s.expired = verdicts_[idx(Verdict::kExpired)].value();
  s.malformed = verdicts_[idx(Verdict::kMalformed)].value();
  s.blocked = verdicts_[idx(Verdict::kBlocked)].value();
  s.replayed = verdicts_[idx(Verdict::kReplay)].value();
  s.overuse_dropped = verdicts_[idx(Verdict::kOveruse)].value();
  return s;
}

void BorderRouter::reset() {
  for (auto& c : verdicts_) c.reset();
  validate_latency_ns_.reset();
}

void BorderRouter::collect_metrics(telemetry::MetricSink& sink) const {
  sink.counter("router.forwarded", verdicts_[idx(Verdict::kForward)].value());
  sink.counter("router.delivered", verdicts_[idx(Verdict::kDeliver)].value());
  for (std::size_t i = idx(Verdict::kBadHvf); i < kNumVerdicts; ++i) {
    const auto v = static_cast<Verdict>(i);
    sink.counter(std::string("router.drop.") + errc_name(errc_from_verdict(v)),
                 verdicts_[i].value());
  }
  const auto latency = validate_latency_ns_.snapshot();
  if (latency.count != 0) {
    sink.histogram("router.validate_latency_ns", latency);
  }
}

Errc errc_from_verdict(BorderRouter::Verdict v) {
  switch (v) {
    case BorderRouter::Verdict::kForward:
    case BorderRouter::Verdict::kDeliver:
      return Errc::kOk;
    case BorderRouter::Verdict::kBadHvf: return Errc::kAuthFailed;
    case BorderRouter::Verdict::kExpired: return Errc::kExpired;
    case BorderRouter::Verdict::kMalformed: return Errc::kMalformed;
    case BorderRouter::Verdict::kBlocked: return Errc::kBlocked;
    case BorderRouter::Verdict::kReplay: return Errc::kReplay;
    case BorderRouter::Verdict::kOveruse: return Errc::kOveruse;
  }
  return Errc::kInternal;
}

}  // namespace colibri::dataplane
