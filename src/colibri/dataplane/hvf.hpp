// Hot-path HVF computation (paper §4.5-4.6, Fig. 2).
//
// The paper computes MACs with "the AES-128 block cipher in CBC mode
// through native hardware-accelerated instructions" (§7.1). All MAC inputs
// here are fixed-layout, fixed-length structures, for which plain CBC-MAC
// (zero-padded, no length prefix) is a secure PRF:
//
//   SegR token / HVF (Eq. 3):  V^(S)_i = CBC-MAC_{K_i}(ResInfo || In,Eg)[0:4]
//   Hop authenticator (Eq. 4): σ_i = CBC-MAC_{K_i}(ResInfo || EERInfo || In,Eg)
//   Per-packet HVF (Eq. 6):    V^(E)_i = AES_{σ_i}(Ts || PktSize || pad)[0:4]
//
// Eq. 6's input fits one block, so the MAC degenerates to a single AES
// call — that single block operation per hop is the whole per-packet
// crypto budget behind the Mpps numbers in Figs. 5-6.
#pragma once

#include <cstring>

#include "colibri/crypto/aes.hpp"
#include "colibri/proto/packet.hpp"

namespace colibri::dataplane {

using HopAuth = std::array<std::uint8_t, 16>;  // σ_i

// CBC-MAC over a fixed-length input, zero-padded to whole blocks.
// `len` must describe a fixed-layout message (all callers use compile-time
// constants), otherwise CBC-MAC's length-extension caveats apply.
inline void cbcmac_fixed(const crypto::Aes128& aes, const std::uint8_t* msg,
                         size_t len, std::uint8_t out[16]) {
  std::uint8_t x[16] = {};
  size_t off = 0;
  while (off < len) {
    const size_t n = (len - off < 16) ? len - off : 16;
    for (size_t i = 0; i < n; ++i) x[i] ^= msg[off + i];
    aes.encrypt_block(x, x);
    off += n;
  }
  std::memcpy(out, x, 16);
}

// Eq. 3: SegR token for this AS, truncated to ℓ_hvf bytes.
inline proto::Hvf compute_seg_hvf(const crypto::Aes128& as_key,
                                  const proto::ResInfo& ri, IfId in, IfId eg) {
  std::uint8_t msg[proto::kSegMacInputLen];
  proto::build_seg_mac_input(ri, in, eg, msg);
  std::uint8_t mac[16];
  cbcmac_fixed(as_key, msg, sizeof(msg), mac);
  proto::Hvf v;
  std::memcpy(v.data(), mac, v.size());
  return v;
}

// Eq. 4: hop authenticator σ_i (untruncated).
inline HopAuth compute_hopauth(const crypto::Aes128& as_key,
                               const proto::ResInfo& ri,
                               const proto::EerInfo& ei, IfId in, IfId eg) {
  std::uint8_t msg[proto::kHopAuthInputLen];
  proto::build_hopauth_input(ri, ei, in, eg, msg);
  HopAuth sigma;
  cbcmac_fixed(as_key, msg, sizeof(msg), sigma.data());
  return sigma;
}

// Eq. 6: per-packet HVF from σ_i. Single-block AES: the 8-byte input is
// zero-padded into one block and enciphered under σ_i.
inline proto::Hvf compute_data_hvf(const crypto::Aes128& sigma_cipher,
                                   std::uint32_t ts, std::uint32_t pkt_size) {
  std::uint8_t block[16] = {};
  proto::build_data_mac_input(ts, pkt_size, block);
  std::uint8_t out[16];
  sigma_cipher.encrypt_block(block, out);
  proto::Hvf v;
  std::memcpy(v.data(), out, v.size());
  return v;
}

inline proto::Hvf compute_data_hvf(const HopAuth& sigma, std::uint32_t ts,
                                   std::uint32_t pkt_size) {
  crypto::Aes128 cipher(sigma.data());
  return compute_data_hvf(cipher, ts, pkt_size);
}

// Constant-time HVF comparison.
inline bool hvf_equal(const proto::Hvf& a, const proto::Hvf& b) {
  std::uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace colibri::dataplane
