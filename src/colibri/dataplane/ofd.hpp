// Probabilistic overuse-flow detector (paper §4.8; LOFT [44] style).
//
// Transit and transfer ASes see too many EERs for per-flow state; the OFD
// tracks *normalized* bandwidth usage in a small count-min sketch and
// promotes flows whose estimate exceeds their fair allowance to a
// deterministic watchlist, where a per-flow token bucket decides overuse
// with certainty (the sketch alone may false-positive; the watchlist may
// not). Confirmed overusers are handed to the Blocklist.
//
// Normalization: each packet contributes size_bits / reservation_rate
// (seconds' worth of the reservation), so one sketch monitors flows of
// any bandwidth class, and multiple versions of an EER naturally share
// the allowance of the largest (§4.8).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/dataplane/tokenbucket.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::dataplane {

struct OfdConfig {
  size_t width = 4096;  // counters per row (rounded up to pow2)
  int depth = 4;        // rows
  TimeNs epoch_ns = kNsPerSec;
  // A flow at exactly its reserved rate accumulates epoch seconds of
  // normalized usage per epoch; flag above this multiple.
  double overuse_factor = 1.10;
  // Watchlist token bucket: seconds of reservation-rate burst allowance.
  double watch_burst_sec = 0.20;
};

// Point-in-time view of the detector's counters (see snapshot()).
struct OfdStats {
  std::uint64_t flagged = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t watchlist = 0;
};

class OverUseFlowDetector : public telemetry::MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); counters export under
  // "ofd.*", aggregated across instances.
  explicit OverUseFlowDetector(const OfdConfig& cfg = {},
                               telemetry::MetricsRegistry* registry =
                                   &telemetry::MetricsRegistry::global());
  ~OverUseFlowDetector() override = default;

  OverUseFlowDetector(const OverUseFlowDetector&) = delete;
  OverUseFlowDetector& operator=(const OverUseFlowDetector&) = delete;

  enum class Verdict : std::uint8_t {
    kOk,          // nothing suspicious
    kSuspicious,  // sketch flagged; flow now deterministically watched
    kWatched,     // on watchlist, within its bucket
    kOveruse,     // on watchlist and exceeding: confirmed with certainty
  };

  // Account one packet of `pkt_bytes` on flow (src, res) with reserved
  // rate `bw_kbps`.
  Verdict update(AsId src, ResId res, std::uint32_t pkt_bytes, BwKbps bw_kbps,
                 TimeNs now);

  // Audit-trail hook (nullable): escalations (sketch flag, first
  // confirmed overuse of a flow) are logged as events; the per-packet
  // kOk/kWatched outcomes never touch the log.
  void set_event_log(telemetry::EventLog* log) { events_ = log; }

  size_t watchlist_size() const { return watchlist_.size(); }
  std::uint64_t flagged_total() const { return flagged_.value(); }
  std::uint64_t confirmed_total() const { return confirmed_.value(); }

  // Uniform stats accessors: consistent point-in-time view + reset.
  OfdStats snapshot() const {
    return {flagged_.value(), confirmed_.value(), watchlist_.size()};
  }
  void reset() {
    flagged_.reset();
    confirmed_.reset();
  }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("ofd.flagged", flagged_.value());
    sink.counter("ofd.confirmed", confirmed_.value());
    sink.gauge("ofd.watchlist", static_cast<std::int64_t>(watchlist_.size()));
  }

  // Estimated normalized usage of a flow in the current epoch (tests).
  double estimate(AsId src, ResId res) const;

 private:
  void maybe_rotate(TimeNs now);
  std::uint64_t flow_hash(AsId src, ResId res) const;

  OfdConfig cfg_;
  size_t width_mask_;
  // depth rows of width counters, normalized seconds.
  std::vector<double> cells_;
  TimeNs epoch_start_ = 0;

  struct Watch {
    TokenBucket bucket;
    std::uint64_t violations = 0;
  };
  std::unordered_map<ResKey, Watch> watchlist_;

  telemetry::Counter flagged_;
  telemetry::Counter confirmed_;
  telemetry::EventLog* events_ = nullptr;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::dataplane
