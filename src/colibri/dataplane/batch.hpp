// Fixed-capacity packet batch for the staged forwarding pipeline.
//
// The scalar router/gateway paths process one packet end-to-end; the
// batched paths (BorderRouter::process_batch, Gateway::process_batch)
// instead run each *stage* across the whole batch — header sanity,
// software prefetch of restable/dupsup state, multi-lane HVF crypto —
// before a sequential per-packet finalize. A PacketBatch is the unit
// those pipelines operate on: a flat array of FastPacket slots, no
// allocation, capacity sized so the per-batch crypto scratch (one AES
// schedule and MAC lane per packet) stays comfortably on the stack.
#pragma once

#include <array>
#include <cstddef>

#include "colibri/common/bytes.hpp"
#include "colibri/dataplane/fastpacket.hpp"

namespace colibri::dataplane {

struct PacketBatch {
  static constexpr std::size_t kCapacity = 64;

  std::array<FastPacket, kCapacity> pkts;
  std::size_t size = 0;

  bool empty() const { return size == 0; }
  bool full() const { return size == kCapacity; }
  void clear() { size = 0; }

  // Appends a copy; returns false when full.
  bool push(const FastPacket& p) {
    if (full()) return false;
    pkts[size++] = p;
    return true;
  }

  // Claims the next slot for in-place filling (caller must not be full).
  FastPacket& push_slot() { return pkts[size++]; }

  FastPacket& operator[](std::size_t i) { return pkts[i]; }
  const FastPacket& operator[](std::size_t i) const { return pkts[i]; }
};

// Decodes one wire frame and appends it to the batch. Returns false —
// leaving the batch unchanged — if the frame does not parse, the batch
// is full, or the packet's hop count exceeds the FastPacket fixed
// capacity (such packets cannot round-trip through FastPacket and the
// scalar router would reject them as malformed anyway).
bool batch_ingest(BytesView frame, PacketBatch& batch);

}  // namespace colibri::dataplane
