// Per-AS traffic monitor (the "M" boxes of the paper's Fig. 1c).
//
// Bundles the monitoring-and-policing pipeline of §4.8 into one
// component: probabilistic overuse detection, duplicate suppression, the
// blocklist, and the offense-reporting loop toward the local CServ.
// Attach it to a border router and pump reports periodically — the
// pieces stay individually usable for benchmarks that need them alone.
#pragma once

#include <functional>

#include "colibri/dataplane/router.hpp"

namespace colibri::dataplane {

struct TrafficMonitorConfig {
  OfdConfig ofd;
  DupSupConfig dupsup;
  // When true, confirmed overuse blocks the source AS immediately
  // (Table 2's phase 3 runs with this off to show pure rate limiting).
  bool escalate_to_blocklist = true;
};

class TrafficMonitor {
 public:
  using OffenseSink = std::function<void(const OffenseReport&)>;

  explicit TrafficMonitor(const TrafficMonitorConfig& cfg = {})
      : ofd_(cfg.ofd), dupsup_(cfg.dupsup), escalate_(cfg.escalate_to_blocklist) {}

  // Wires this monitor's components into a border router.
  void attach_to(BorderRouter& router) {
    router.attach_ofd(&ofd_);
    router.attach_dupsup(&dupsup_);
    if (escalate_) router.attach_blocklist(&blocklist_);
  }

  // Forwards accumulated offense reports to the CServ (§4.8: "the border
  // router reports the offense to the local CServ"). Returns how many
  // were delivered.
  size_t pump_reports(const OffenseSink& sink) {
    const auto reports = blocklist_.drain_reports();
    for (const auto& r : reports) sink(r);
    return reports.size();
  }

  OverUseFlowDetector& ofd() { return ofd_; }
  DuplicateSuppression& dupsup() { return dupsup_; }
  Blocklist& blocklist() { return blocklist_; }

 private:
  OverUseFlowDetector ofd_;
  DuplicateSuppression dupsup_;
  Blocklist blocklist_;
  bool escalate_;
};

}  // namespace colibri::dataplane
