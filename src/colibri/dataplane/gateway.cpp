#include "colibri/dataplane/gateway.hpp"

#include <cstring>

#include "colibri/crypto/cmac_multi.hpp"

namespace colibri::dataplane {

FastPacket to_fast(const proto::Packet& pkt) {
  FastPacket fp;
  fp.type = pkt.type;
  fp.is_eer = pkt.is_eer;
  fp.num_hops = static_cast<std::uint8_t>(pkt.path.size());
  fp.current_hop = pkt.current_hop;
  fp.resinfo = pkt.resinfo;
  fp.eerinfo = pkt.eerinfo;
  fp.timestamp = pkt.timestamp;
  fp.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
  for (size_t i = 0; i < pkt.path.size() && i < kMaxHops; ++i) {
    fp.ifaces[i] = IfPair{pkt.path[i].ingress, pkt.path[i].egress};
    if (i < pkt.hvfs.size()) fp.hvfs[i] = pkt.hvfs[i];
  }
  return fp;
}

proto::Packet to_packet(const FastPacket& fp) {
  proto::Packet pkt;
  pkt.type = fp.type;
  pkt.is_eer = fp.is_eer;
  pkt.current_hop = fp.current_hop;
  pkt.resinfo = fp.resinfo;
  pkt.eerinfo = fp.eerinfo;
  pkt.timestamp = fp.timestamp;
  pkt.path.resize(fp.num_hops);
  pkt.hvfs.resize(fp.num_hops);
  for (size_t i = 0; i < fp.num_hops; ++i) {
    pkt.path[i].ingress = fp.ifaces[i].in;
    pkt.path[i].egress = fp.ifaces[i].eg;
    pkt.hvfs[i] = fp.hvfs[i];
  }
  pkt.payload.resize(fp.payload_bytes);
  return pkt;
}

Gateway::Gateway(AsId local_as, const Clock& clock, const GatewayConfig& cfg,
                 telemetry::MetricsRegistry* registry)
    : local_as_(local_as),
      clock_(&clock),
      cfg_(cfg),
      table_(cfg.expected_reservations),
      registration_(registry, this) {}

namespace {
inline std::size_t idx(Gateway::Verdict v) { return static_cast<std::size_t>(v); }
}  // namespace

bool Gateway::install(const proto::ResInfo& resinfo,
                      const proto::EerInfo& eerinfo,
                      const std::vector<topology::Hop>& path,
                      const std::vector<HopAuth>& sigmas) {
  if (path.size() > kMaxHops || path.size() != sigmas.size() || path.empty()) {
    return false;
  }
  GatewayEntry e;
  e.resinfo = resinfo;
  e.eerinfo = eerinfo;
  e.num_hops = static_cast<std::uint8_t>(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    e.ifaces[i] = IfPair{path[i].ingress, path[i].egress};
    e.sigmas[i] = sigmas[i];
  }
  const auto burst = static_cast<std::uint64_t>(
      cfg_.burst_sec * static_cast<double>(resinfo.bw_kbps) * 125.0);
  e.bucket = TokenBucket(resinfo.bw_kbps, std::max<std::uint64_t>(burst, 2000),
                         clock_->now_ns());
  return table_.insert(resinfo.res_id, std::move(e));
}

bool Gateway::remove(ResId id) { return table_.erase(id); }

Gateway::Verdict Gateway::prepare(ResId id, std::uint32_t payload_bytes,
                                  FastPacket& out, GatewayEntry** entry_out,
                                  telemetry::FlightRecord* rec) {
  GatewayEntry* e = table_.find(id);
  if (e == nullptr) {
    return Verdict::kNoReservation;
  }
  const TimeNs now = clock_->now_ns();
  if (rec != nullptr) {
    rec->time_ns = now;
    rec->src_as = e->resinfo.src_as.raw();
    rec->version = e->resinfo.version;
    rec->exp_time = e->resinfo.exp_time;
  }
  if (e->resinfo.exp_time <= static_cast<UnixSec>(now / kNsPerSec)) {
    return Verdict::kExpired;
  }

  // Header assembly first: the monitored size includes the header (§4.8,
  // "malicious source ASes cannot flood the system with packets with very
  // small or no payload").
  out.type = proto::PacketType::kData;
  out.is_eer = true;
  out.num_hops = e->num_hops;
  out.current_hop = 0;
  out.resinfo = e->resinfo;
  out.eerinfo = e->eerinfo;
  out.payload_bytes = payload_bytes;
  out.ifaces = e->ifaces;
  const std::uint32_t size = out.wire_size();
  if (rec != nullptr) {
    rec->wire_bytes = size;
    rec->bucket_checked = true;
    rec->bucket_available_bytes = e->bucket.available_bytes();
  }

  // Deterministic monitoring (token bucket per EER).
  if (!e->bucket.allow(size, now)) {
    return Verdict::kRateLimited;
  }

  // High-precision timestamp, unique per packet for this source.
  out.timestamp = PacketTimestamp::encode(now, e->resinfo.exp_time);
  if (rec != nullptr) rec->timestamp = out.timestamp;

  *entry_out = e;
  return Verdict::kOk;
}

Gateway::Verdict Gateway::classify(ResId id, std::uint32_t payload_bytes,
                                   FastPacket& out,
                                   telemetry::FlightRecord* rec) {
  GatewayEntry* e = nullptr;
  const Verdict v = prepare(id, payload_bytes, out, &e, rec);
  if (v != Verdict::kOk) return v;

  // One single-block MAC per on-path AS (Eq. 6), keyed by σ_i.
  const std::uint32_t size = out.wire_size();
  for (std::uint8_t i = 0; i < e->num_hops; ++i) {
    out.hvfs[i] = compute_data_hvf(e->sigmas[i], out.timestamp, size);
  }
  return Verdict::kOk;
}

Gateway::Verdict Gateway::process(ResId id, std::uint32_t payload_bytes,
                                  FastPacket& out) {
  if (profiler_.enabled()) [[unlikely]] {
    const std::int64_t t0 = telemetry::profiler_now_ns();
    const Verdict v = process_impl(id, payload_bytes, out);
    profiler_.finish(kStageScalar, t0);
    return v;
  }
  return process_impl(id, payload_bytes, out);
}

Gateway::Verdict Gateway::process_impl(ResId id, std::uint32_t payload_bytes,
                                       FastPacket& out) {
  if (recorder_ != nullptr) [[unlikely]] {
    return process_recorded(id, payload_bytes, out);
  }
  const Verdict v = classify(id, payload_bytes, out, nullptr);
  verdicts_[idx(v)].bump();
  return v;
}

// See BorderRouter::process_recorded for the sampling/commit contract.
Gateway::Verdict Gateway::process_recorded(ResId id,
                                           std::uint32_t payload_bytes,
                                           FastPacket& out) {
  if (!recorder_->armed()) {
    const Verdict v = classify(id, payload_bytes, out, nullptr);
    verdicts_[idx(v)].bump();
    return v;
  }
  const bool sampled = recorder_->sample_tick();
  telemetry::FlightRecord rec;
  rec.component = telemetry::FlightRecorder::kGateway;
  rec.time_ns = clock_->now_ns();  // classify overwrites once entry found
  rec.res_id = id;
  rec.src_as = local_as_.raw();  // unknown reservation: report our own AS
  const Verdict v = classify(id, payload_bytes, out, &rec);
  verdicts_[idx(v)].bump();
  const bool is_drop = v != Verdict::kOk;
  if (sampled || (is_drop && recorder_->record_drops())) {
    rec.verdict = static_cast<std::uint8_t>(v);
    rec.errc = static_cast<std::uint8_t>(errc_from_verdict(v));
    rec.forced_by_drop = !sampled;
    recorder_->commit(rec);
  }
  return v;
}

Gateway::Verdict Gateway::process_encapsulated(ResId id,
                                               std::uint32_t payload_bytes,
                                               proto::Ipv4Encap intra,
                                               Bytes& frame_out) {
  FastPacket pkt;
  const Verdict v = process(id, payload_bytes, pkt);
  if (v != Verdict::kOk) return v;
  intra.dscp = proto::classify_for_dscp(/*is_eer_data=*/true,
                                        /*is_control=*/false);
  frame_out = proto::encapsulate(intra, proto::encode_packet(to_packet(pkt)));
  return Verdict::kOk;
}

size_t Gateway::process_burst(const ResId* ids,
                              const std::uint32_t* payload_bytes, size_t n,
                              FastPacket* out, Verdict* verdicts) {
  size_t ok = 0;
  for (size_t i = 0; i < n; ++i) {
    verdicts[i] = process(ids[i], payload_bytes[i], out[i]);
    if (verdicts[i] == Verdict::kOk) ++ok;
  }
  return ok;
}

size_t Gateway::process_batch(const ResId* ids,
                              const std::uint32_t* payload_bytes, size_t n,
                              FastPacket* out, Verdict* verdicts) {
  constexpr size_t kChunk = 64;
  size_t ok = 0;
  for (size_t done = 0; done < n; done += kChunk) {
    const size_t m = (n - done < kChunk) ? n - done : kChunk;
    ok += process_batch_chunk(ids + done, payload_bytes + done, m, out + done,
                              verdicts + done);
  }
  return ok;
}

size_t Gateway::process_batch_chunk(const ResId* ids,
                                    const std::uint32_t* payload_bytes,
                                    size_t n, FastPacket* out,
                                    Verdict* verdicts) {
  constexpr size_t kChunk = 64;
  const bool armed = recorder_ != nullptr && recorder_->armed();
  const bool prof = profiler_.enabled();
  std::int64_t tp = prof ? telemetry::profiler_now_ns() : 0;

  // Stage 1: prefetch the reservation-table probe lines for the whole
  // batch so the sequential prepare stage overlaps its DRAM misses.
  for (size_t i = 0; i < n; ++i) table_.prefetch(ids[i]);
  if (prof) tp = profiler_.lap(kStagePrefetch, tp);

  // Stage 2: sequential prepare in arrival order. The token bucket and
  // timestamp encoder are stateful: duplicate ids within one batch must
  // observe each other's token consumption exactly as the scalar loop
  // would. No inserts happen here, so the entry pointers stay valid
  // through the crypto stage below.
  GatewayEntry* ents[kChunk];
  size_t ok = 0;
  for (size_t i = 0; i < n; ++i) {
    ents[i] = nullptr;
    Verdict v;
    if (!armed) {
      v = prepare(ids[i], payload_bytes[i], out[i], &ents[i], nullptr);
    } else {
      telemetry::FlightRecord rec;
      rec.component = telemetry::FlightRecorder::kGateway;
      const bool sampled = recorder_->sample_tick();
      rec.time_ns = clock_->now_ns();  // prepare overwrites once entry found
      rec.res_id = ids[i];
      rec.src_as = local_as_.raw();  // unknown reservation: our own AS
      v = prepare(ids[i], payload_bytes[i], out[i], &ents[i], &rec);
      const bool is_drop = v != Verdict::kOk;
      if (sampled || (is_drop && recorder_->record_drops())) {
        rec.verdict = static_cast<std::uint8_t>(v);
        rec.errc = static_cast<std::uint8_t>(errc_from_verdict(v));
        rec.forced_by_drop = !sampled;
        recorder_->commit(rec);
      }
    }
    verdicts_[idx(v)].bump();
    verdicts[i] = v;
    if (v == Verdict::kOk) {
      ++ok;
    } else {
      ents[i] = nullptr;
    }
  }
  if (prof) tp = profiler_.lap(kStagePrepare, tp);

  // Stage 3: multi-lane Eq. 6 HVF fill. Every (packet, hop) pair is one
  // AES lane with its own σ_i key; lanes are expanded with the fast
  // key schedule and enciphered 4-wide, flushed in fixed-size groups so
  // the scratch stays on the stack (up to kChunk packets × kMaxHops
  // hops per chunk).
  constexpr size_t kLanes = 64;
  crypto::AesSchedule scheds[kLanes];
  alignas(16) std::uint8_t blocks[kLanes * 16];
  alignas(16) std::uint8_t enc[kLanes * 16];
  proto::Hvf* dst[kLanes];
  size_t l = 0;
  const auto flush = [&] {
    crypto::aes128_encrypt_each(scheds, l, blocks, enc);
    for (size_t j = 0; j < l; ++j) {
      std::memcpy(dst[j]->data(), enc + 16 * j, dst[j]->size());
    }
    l = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    const GatewayEntry* e = ents[i];
    if (e == nullptr) continue;
    const std::uint32_t size = out[i].wire_size();
    for (std::uint8_t h = 0; h < e->num_hops; ++h) {
      scheds[l].expand(e->sigmas[h].data());
      std::memset(blocks + 16 * l, 0, 16);
      proto::build_data_mac_input(out[i].timestamp, size, blocks + 16 * l);
      dst[l] = &out[i].hvfs[h];
      if (++l == kLanes) flush();
    }
  }
  if (l != 0) flush();
  if (prof) {
    profiler_.lap(kStageHvfCrypto, tp);
    profiler_.count_batch(n);
  }
  return ok;
}

GatewayStats Gateway::snapshot() const {
  GatewayStats s;
  s.forwarded = verdicts_[idx(Verdict::kOk)].value();
  s.no_reservation = verdicts_[idx(Verdict::kNoReservation)].value();
  s.rate_limited = verdicts_[idx(Verdict::kRateLimited)].value();
  s.expired = verdicts_[idx(Verdict::kExpired)].value();
  return s;
}

void Gateway::reset() {
  for (auto& c : verdicts_) c.reset();
  profiler_.reset();
}

void Gateway::collect_metrics_bare(telemetry::MetricSink& sink) const {
  sink.counter("forwarded", verdicts_[idx(Verdict::kOk)].value());
  for (std::size_t i = idx(Verdict::kNoReservation); i < kNumVerdicts; ++i) {
    const auto v = static_cast<Verdict>(i);
    sink.counter(std::string("drop.") + errc_name(errc_from_verdict(v)),
                 verdicts_[i].value());
  }
  profiler_.collect_metrics(sink);
}

void Gateway::collect_metrics(telemetry::MetricSink& sink) const {
  telemetry::PrefixedSink prefixed("gateway.", sink);
  collect_metrics_bare(prefixed);
}

Errc errc_from_verdict(Gateway::Verdict v) {
  switch (v) {
    case Gateway::Verdict::kOk: return Errc::kOk;
    case Gateway::Verdict::kNoReservation: return Errc::kNoSuchReservation;
    case Gateway::Verdict::kRateLimited: return Errc::kRateLimited;
    case Gateway::Verdict::kExpired: return Errc::kExpired;
  }
  return Errc::kInternal;
}

}  // namespace colibri::dataplane
