// Sharded gateway (paper §7.2).
//
// The paper scales the stateful gateway across cores by running
// "multiple gateways, each handling only a fraction of all
// reservations". ShardedGateway is that fraction-routing layer: N
// independent Gateway shards, packets routed by a stable hash of the
// reservation ID, so shards share no reservation state, no token
// buckets, and no counters — each shard's fast path stays exactly the
// single-gateway fast path. ShardedGatewayRuntime adds the threading:
// one worker and one SPSC ring per shard, replacing the bench-local
// mutexed shard map the fig. 6 benchmark used to carry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/spscring.hpp"
#include "colibri/telemetry/alerts.hpp"

namespace colibri::dataplane {

class ShardedGateway : public telemetry::MetricsSource {
 public:
  using Verdict = Gateway::Verdict;

  // Creates `num_shards` gateways (at least 1). The shards register
  // nowhere themselves; this container registers with `registry` and
  // re-exports each shard under "gateway_shard.<i>.*".
  ShardedGateway(AsId local_as, const Clock& clock, size_t num_shards,
                 const GatewayConfig& cfg = {},
                 telemetry::MetricsRegistry* registry =
                     &telemetry::MetricsRegistry::global());
  ~ShardedGateway() override = default;

  ShardedGateway(const ShardedGateway&) = delete;
  ShardedGateway& operator=(const ShardedGateway&) = delete;

  // Stable shard routing: depends only on (id, num_shards) — never on
  // table occupancy or insertion history — so a control plane can
  // recompute placements offline and resize() can re-route
  // deterministically.
  static size_t shard_of(ResId id, size_t num_shards) {
    return static_cast<size_t>(mix(id) % num_shards);
  }
  size_t shard_of(ResId id) const { return shard_of(id, shards_.size()); }

  size_t shard_count() const { return shards_.size(); }
  Gateway& shard(size_t i) { return *shards_[i]; }
  const Gateway& shard(size_t i) const { return *shards_[i]; }

  // --- control side -----------------------------------------------------
  bool install(const proto::ResInfo& resinfo, const proto::EerInfo& eerinfo,
               const std::vector<topology::Hop>& path,
               const std::vector<HopAuth>& sigmas);
  bool remove(ResId id);
  size_t reservation_count() const;

  // Re-shards to `new_count` gateways. Live entries move between shards
  // as raw GatewayEntry state, preserving token-bucket fill levels.
  // Shard verdict counters restart from zero (the aggregate history
  // belongs to the snapshot taken before resizing). Not thread-safe
  // against concurrent processing.
  void resize(size_t new_count);

  // --- fast path ---------------------------------------------------------
  Verdict process(ResId id, std::uint32_t payload_bytes, FastPacket& out);
  // Demultiplexes the batch by shard and runs each shard's staged batch
  // pipeline; verdicts/outputs land at the caller's original indices.
  size_t process_batch(const ResId* ids, const std::uint32_t* payload_bytes,
                       size_t n, FastPacket* out, Verdict* verdicts);

  // Aggregate across shards.
  GatewayStats snapshot() const;
  void reset();

  void collect_metrics(telemetry::MetricSink& sink) const override;

  AsId local_as() const { return local_as_; }

 private:
  // Same splitmix64 finalizer the reservation table uses; kept separate
  // so shard routing is pinned independently of table internals.
  static std::uint64_t mix(ResId id) {
    std::uint64_t h = id;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
  }

  AsId local_as_;
  const Clock* clock_;
  GatewayConfig cfg_;
  std::vector<std::unique_ptr<Gateway>> shards_;
  telemetry::ScopedSource registration_;
};

// One host request to the gateway: everything the fast path needs.
struct ShardRequest {
  ResId id = 0;
  std::uint32_t payload_bytes = 0;
};

// Multi-worker execution harness around a ShardedGateway: one thread
// and one SPSC request ring per shard. A single producer thread routes
// requests onto the rings (submit/submit_burst must not be called
// concurrently); each worker drains its ring in batches through its
// shard's process_batch. Output packets are consumed into worker-local
// scratch — the runtime is a throughput engine; verdict accounting
// lives in the per-shard gateway counters plus the worker stats here.
//
// Health surface: every shard continuously publishes its ring depth
// (submitted - processed), the deepest the ring has ever been
// (high_watermark), how many submissions bounced off a full ring
// (rejected), and a worker heartbeat that advances every loop
// iteration — idle spins included — so a monitor can tell "queue is
// deep but draining" from "worker is stuck". All of it is exported as
// "gateway_runtime.shard.<i>.*" when a registry is passed, and
// check_stalls() turns the heartbeats into a yes/no stall verdict.
class ShardedGatewayRuntime : public telemetry::MetricsSource {
 public:
  struct WorkerStats {
    std::uint64_t processed = 0;  // requests popped and classified
    std::uint64_t batches = 0;    // process_batch invocations
    std::uint64_t ok = 0;         // Verdict::kOk results
  };

  // Point-in-time health view of one shard (see shard_health()).
  struct ShardHealth {
    std::uint64_t submitted = 0;
    std::uint64_t processed = 0;
    std::uint64_t batches = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;        // submissions refused: ring full
    std::uint64_t heartbeats = 0;      // worker loop iterations
    std::uint64_t ring_depth = 0;      // submitted - processed
    std::uint64_t high_watermark = 0;  // max ring_depth ever observed
  };

  // The runtime registers with `registry` (nullptr = none, the default
  // — benchmarks construct throwaway runtimes) and exports the health
  // gauges/counters under "gateway_runtime.*".
  explicit ShardedGatewayRuntime(ShardedGateway& gateway,
                                 size_t ring_capacity = 4096,
                                 telemetry::MetricsRegistry* registry = nullptr);
  ~ShardedGatewayRuntime() override;

  ShardedGatewayRuntime(const ShardedGatewayRuntime&) = delete;
  ShardedGatewayRuntime& operator=(const ShardedGatewayRuntime&) = delete;

  void start();
  // Waits for the rings to drain, then joins the workers. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Single-producer submission; false when the target ring is full
  // (caller may retry — the worker is draining it).
  bool submit(ResId id, std::uint32_t payload_bytes);
  // Enqueues up to n requests; returns how many were accepted.
  size_t submit_burst(const ShardRequest* reqs, size_t n);

  // True once every accepted request has been processed. Call from the
  // producer thread.
  bool idle() const;
  // Spins (yielding) until idle.
  void drain() const;

  size_t shard_count() const { return shards_.size(); }
  WorkerStats worker_stats(size_t shard) const;
  ShardHealth shard_health(size_t shard) const;

  // Stall detector: returns the indices of shards that have queued work
  // (ring_depth > 0) but whose worker heartbeat has not advanced since
  // the previous check_stalls() call. Call it from one monitoring
  // thread at whatever cadence defines "stalled" (two calls bracket the
  // observation window); the first call only baselines and returns
  // nothing for shards it has not observed before.
  //
  // The declarative monitoring plane subsumes this: the
  // default_alert_rules() pack expresses the same verdict as a
  // windowed heartbeat-rate rule guarded by ring depth, with debounce
  // and a firing/resolved audit trail. check_stalls() remains for
  // callers without a sampler loop.
  std::vector<size_t> check_stalls();

  // Default monitoring rule pack (see telemetry/alerts.hpp), two rules
  // per shard over the "gateway_runtime.shard.<i>.*" series this
  // runtime exports:
  //  * "runtime.shard<i>.stall" (error): the worker heartbeat rate
  //    drops below one beat per second while the shard's ring still
  //    holds work — the declarative form of check_stalls(), debounced
  //    by `stall_for_ns` so one slow scheduling quantum does not page.
  //  * "runtime.shard<i>.ring-depth" (warn): the ring depth stays
  //    above `ring_depth_threshold`, i.e. the producer is outrunning
  //    the worker and backpressure rejections are close.
  // The pack needs the registry the runtime registered with to be the
  // one the WindowedSampler samples.
  static std::vector<telemetry::AlertRule> default_alert_rules(
      size_t shard_count, std::uint64_t ring_depth_threshold,
      TimeNs stall_for_ns = kNsPerSec);

  // Health gauges/counters, "gateway_runtime.shard.<i>.*" plus the
  // "gateway_runtime.shard.count" gauge. Safe concurrently with the
  // producer and the workers (atomics only).
  void collect_metrics(telemetry::MetricSink& sink) const override;

 private:
  struct PerShard {
    explicit PerShard(size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<ShardRequest> ring;
    // Producer-side writes, monitor-side reads.
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> high_watermark{0};
    // Worker-side writes.
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> heartbeats{0};
    std::thread thread;
  };

  void worker_loop(size_t shard_index);

  ShardedGateway* gateway_;
  std::vector<std::unique_ptr<PerShard>> shards_;
  std::atomic<bool> running_{false};
  // check_stalls() baseline: heartbeat seen last call, one per shard.
  std::vector<std::uint64_t> stall_baseline_;
  std::vector<bool> stall_baselined_;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::dataplane
