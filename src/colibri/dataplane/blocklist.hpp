// Source-AS blocklist and offense reporting (paper §4.8 "Policing").
//
// When overuse is confirmed with certainty, the detecting AS (i) blocks
// further traffic over reservations from the offending source AS and
// (ii) reports the offense to its CServ, which may deny future
// reservations. The blocklist is expected to stay tiny ("only a tiny
// share of the 70 000 ASes"), so a flat hash set is exactly right.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::dataplane {

struct OffenseReport {
  AsId offender;
  ResId reservation = 0;
  TimeNs at = 0;
  std::uint64_t excess_bytes = 0;
};

class Blocklist {
 public:
  bool blocked(AsId src) const { return set_.contains(src); }

  void block(AsId src) { set_.insert(src); }
  void unblock(AsId src) { set_.erase(src); }
  size_t size() const { return set_.size(); }

  void report(const OffenseReport& offense) {
    block(offense.offender);
    reports_.push_back(offense);
  }
  const std::vector<OffenseReport>& reports() const { return reports_; }
  std::vector<OffenseReport> drain_reports() {
    return std::exchange(reports_, {});
  }

 private:
  std::unordered_set<AsId> set_;
  std::vector<OffenseReport> reports_;
};

}  // namespace colibri::dataplane
