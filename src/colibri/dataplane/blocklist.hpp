// Source-AS blocklist and offense reporting (paper §4.8 "Policing").
//
// When overuse is confirmed with certainty, the detecting AS (i) blocks
// further traffic over reservations from the offending source AS and
// (ii) reports the offense to its CServ, which may deny future
// reservations. The blocklist is expected to stay tiny ("only a tiny
// share of the 70 000 ASes"), so a flat hash set is exactly right.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::dataplane {

struct OffenseReport {
  AsId offender;
  ResId reservation = 0;
  TimeNs at = 0;
  std::uint64_t excess_bytes = 0;
};

// Point-in-time view of the blocklist (see snapshot()).
struct BlocklistStats {
  std::uint64_t blocked_ases = 0;
  std::uint64_t reports = 0;  // total offenses reported, drains included
};

class Blocklist : public telemetry::MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); metrics export under
  // "blocklist.*", aggregated across instances.
  explicit Blocklist(telemetry::MetricsRegistry* registry =
                         &telemetry::MetricsRegistry::global())
      : registration_(registry, this) {}
  ~Blocklist() override = default;

  Blocklist(const Blocklist&) = delete;
  Blocklist& operator=(const Blocklist&) = delete;

  bool blocked(AsId src) const { return set_.contains(src); }

  void block(AsId src) { set_.insert(src); }
  void unblock(AsId src) { set_.erase(src); }
  size_t size() const { return set_.size(); }

  // Audit-trail hook (nullable): blocklist escalations are rare and
  // security-relevant, so each newly blocked AS is logged as an event.
  void set_event_log(telemetry::EventLog* log) { events_ = log; }

  void report(const OffenseReport& offense) {
    const bool newly_blocked = set_.insert(offense.offender).second;
    reports_.push_back(offense);
    reports_total_.bump();
    if (events_ != nullptr && newly_blocked) {
      events_->emit(telemetry::Severity::kError, "blocklist", "as.blocked")
          .str("offender", offense.offender.to_string())
          .u64("res_id", offense.reservation)
          .u64("excess_bytes", offense.excess_bytes);
    }
  }
  const std::vector<OffenseReport>& reports() const { return reports_; }
  std::vector<OffenseReport> drain_reports() {
    return std::exchange(reports_, {});
  }

  // Uniform stats accessors: consistent point-in-time view + reset.
  BlocklistStats snapshot() const {
    return {set_.size(), reports_total_.value()};
  }
  void reset() { reports_total_.reset(); }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.gauge("blocklist.blocked_ases", static_cast<std::int64_t>(set_.size()));
    sink.counter("blocklist.reports", reports_total_.value());
  }

 private:
  std::unordered_set<AsId> set_;
  std::vector<OffenseReport> reports_;
  telemetry::Counter reports_total_;
  telemetry::EventLog* events_ = nullptr;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::dataplane
