// Colibri gateway (paper §3.2, §4.6).
//
// All Colibri traffic leaving an AS passes through its gateway, which is
// the only stateful element on the data path: it maps the ResId of a
// host's bare packet to the full reservation state, performs deterministic
// token-bucket monitoring, stamps the high-precision timestamp, computes
// the HVF for every on-path AS from the stored hop authenticators (Eq. 6),
// and fills in the remaining header fields. Per packet with h hops the
// crypto cost is h single-block AES-CMACs (plus one AES key schedule per
// hop, since storing raw σ_i keeps per-reservation state small).
#pragma once

#include "colibri/common/clock.hpp"
#include "colibri/dataplane/fastpacket.hpp"
#include "colibri/proto/encap.hpp"
#include "colibri/dataplane/restable.hpp"

namespace colibri::dataplane {

struct GatewayConfig {
  // Token-bucket burst allowance, in seconds of the reserved rate.
  double burst_sec = 0.125;
  size_t expected_reservations = 1024;
};

struct GatewayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_reservation = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t expired = 0;
};

class Gateway {
 public:
  Gateway(AsId local_as, const Clock& clock, const GatewayConfig& cfg = {});

  enum class Verdict : std::uint8_t {
    kOk = 0,
    kNoReservation,
    kRateLimited,
    kExpired,
  };

  // --- control side -----------------------------------------------------
  // Installs (or replaces) the state for an EER after a successful setup
  // or renewal: header contents plus the decrypted hop authenticators.
  bool install(const proto::ResInfo& resinfo, const proto::EerInfo& eerinfo,
               const std::vector<topology::Hop>& path,
               const std::vector<HopAuth>& sigmas);
  bool remove(ResId id);
  size_t reservation_count() const { return table_.size(); }

  // --- fast path ---------------------------------------------------------
  // Host hands in (ResId, payload length); the gateway monitors, stamps,
  // authenticates, and emits the complete packet into `out`.
  Verdict process(ResId id, std::uint32_t payload_bytes, FastPacket& out);

  // DPDK-style burst entry point; returns number of packets that passed.
  size_t process_burst(const ResId* ids, const std::uint32_t* payload_bytes,
                       size_t n, FastPacket* out, Verdict* verdicts);

  // Like process(), but emits the packet serialized and encapsulated for
  // the intra-AS network (App. B): IPv4/UDP toward the egress border
  // router with the DSCP stamped by the gateway — hosts cannot choose
  // their own class. `intra.dscp` is overwritten.
  Verdict process_encapsulated(ResId id, std::uint32_t payload_bytes,
                               proto::Ipv4Encap intra, Bytes& frame_out);

  const GatewayStats& stats() const { return stats_; }
  AsId local_as() const { return local_as_; }

 private:
  AsId local_as_;
  const Clock* clock_;
  GatewayConfig cfg_;
  ResTable table_;
  GatewayStats stats_;
};

}  // namespace colibri::dataplane
