// Colibri gateway (paper §3.2, §4.6).
//
// All Colibri traffic leaving an AS passes through its gateway, which is
// the only stateful element on the data path: it maps the ResId of a
// host's bare packet to the full reservation state, performs deterministic
// token-bucket monitoring, stamps the high-precision timestamp, computes
// the HVF for every on-path AS from the stored hop authenticators (Eq. 6),
// and fills in the remaining header fields. Per packet with h hops the
// crypto cost is h single-block AES-CMACs (plus one AES key schedule per
// hop, since storing raw σ_i keeps per-reservation state small).
#pragma once

#include <array>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/dataplane/fastpacket.hpp"
#include "colibri/proto/encap.hpp"
#include "colibri/dataplane/restable.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::dataplane {

struct GatewayConfig {
  // Token-bucket burst allowance, in seconds of the reserved rate.
  double burst_sec = 0.125;
  size_t expected_reservations = 1024;
};

// Point-in-time view of one gateway's counters (see snapshot()).
struct GatewayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_reservation = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t expired = 0;
};

class Gateway : public telemetry::MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); counters export under
  // "gateway.*", aggregated across instances (gateway shards).
  Gateway(AsId local_as, const Clock& clock, const GatewayConfig& cfg = {},
          telemetry::MetricsRegistry* registry =
              &telemetry::MetricsRegistry::global());
  ~Gateway() override = default;

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  enum class Verdict : std::uint8_t {
    kOk = 0,
    kNoReservation,
    kRateLimited,
    kExpired,
  };
  static constexpr std::size_t kNumVerdicts = 4;

  // --- control side -----------------------------------------------------
  // Installs (or replaces) the state for an EER after a successful setup
  // or renewal: header contents plus the decrypted hop authenticators.
  bool install(const proto::ResInfo& resinfo, const proto::EerInfo& eerinfo,
               const std::vector<topology::Hop>& path,
               const std::vector<HopAuth>& sigmas);
  bool remove(ResId id);
  size_t reservation_count() const { return table_.size(); }

  // --- fast path ---------------------------------------------------------
  // Host hands in (ResId, payload length); the gateway monitors, stamps,
  // authenticates, and emits the complete packet into `out`.
  Verdict process(ResId id, std::uint32_t payload_bytes, FastPacket& out);

  // DPDK-style burst entry point; returns number of packets that passed.
  size_t process_burst(const ResId* ids, const std::uint32_t* payload_bytes,
                       size_t n, FastPacket* out, Verdict* verdicts);

  // Per-instance packet flight recorder (owned by the caller; nullptr
  // detaches). Same contract as BorderRouter::attach_flight_recorder:
  // one predicted branch when detached, no heap allocation when armed.
  void attach_flight_recorder(telemetry::FlightRecorder* r) {
    recorder_ = r;
  }

  // Like process(), but emits the packet serialized and encapsulated for
  // the intra-AS network (App. B): IPv4/UDP toward the egress border
  // router with the DSCP stamped by the gateway — hosts cannot choose
  // their own class. `intra.dscp` is overwritten.
  Verdict process_encapsulated(ResId id, std::uint32_t payload_bytes,
                               proto::Ipv4Encap intra, Bytes& frame_out);

  // Uniform stats accessors: consistent point-in-time view + reset.
  GatewayStats snapshot() const;
  void reset();
  // Legacy view, kept as a thin alias of snapshot().
  GatewayStats stats() const { return snapshot(); }

  void collect_metrics(telemetry::MetricSink& sink) const override;

  AsId local_as() const { return local_as_; }

 private:
  // `rec` is nullptr on the fast path; when non-null, decision-time
  // detail (token-bucket level, reservation identity) is captured.
  Verdict classify(ResId id, std::uint32_t payload_bytes, FastPacket& out,
                   telemetry::FlightRecord* rec);
  Verdict process_recorded(ResId id, std::uint32_t payload_bytes,
                           FastPacket& out);

  AsId local_as_;
  const Clock* clock_;
  GatewayConfig cfg_;
  ResTable table_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  std::array<telemetry::Counter, kNumVerdicts> verdicts_;
  telemetry::ScopedSource registration_;
};

// Companion of errc_from_verdict(BorderRouter::Verdict): the gateway's
// drop reasons expressed as control-plane error codes.
Errc errc_from_verdict(Gateway::Verdict v);

}  // namespace colibri::dataplane
