// Colibri gateway (paper §3.2, §4.6).
//
// All Colibri traffic leaving an AS passes through its gateway, which is
// the only stateful element on the data path: it maps the ResId of a
// host's bare packet to the full reservation state, performs deterministic
// token-bucket monitoring, stamps the high-precision timestamp, computes
// the HVF for every on-path AS from the stored hop authenticators (Eq. 6),
// and fills in the remaining header fields. Per packet with h hops the
// crypto cost is h single-block AES-CMACs (plus one AES key schedule per
// hop, since storing raw σ_i keeps per-reservation state small).
#pragma once

#include <array>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/dataplane/fastpacket.hpp"
#include "colibri/proto/encap.hpp"
#include "colibri/dataplane/restable.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/profiler.hpp"

namespace colibri::dataplane {

struct GatewayConfig {
  // Token-bucket burst allowance, in seconds of the reserved rate.
  double burst_sec = 0.125;
  size_t expected_reservations = 1024;
};

// Point-in-time view of one gateway's counters (see snapshot()).
struct GatewayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_reservation = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t expired = 0;
};

class Gateway : public telemetry::MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); counters export under
  // "gateway.*", aggregated across instances (gateway shards).
  Gateway(AsId local_as, const Clock& clock, const GatewayConfig& cfg = {},
          telemetry::MetricsRegistry* registry =
              &telemetry::MetricsRegistry::global());
  ~Gateway() override = default;

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  enum class Verdict : std::uint8_t {
    kOk = 0,
    kNoReservation,
    kRateLimited,
    kExpired,
  };
  static constexpr std::size_t kNumVerdicts = 4;

  // --- control side -----------------------------------------------------
  // Installs (or replaces) the state for an EER after a successful setup
  // or renewal: header contents plus the decrypted hop authenticators.
  bool install(const proto::ResInfo& resinfo, const proto::EerInfo& eerinfo,
               const std::vector<topology::Hop>& path,
               const std::vector<HopAuth>& sigmas);
  bool remove(ResId id);
  size_t reservation_count() const { return table_.size(); }

  // Raw-entry plumbing for shard management (ShardedGateway::resize
  // moves live entries — token-bucket fill level included — between
  // shards without re-deriving anything).
  bool install_entry(ResId id, GatewayEntry entry) {
    return table_.insert(id, std::move(entry));
  }
  // Visits every installed entry as fn(ResId, const GatewayEntry&).
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    table_.for_each(fn);
  }

  // --- fast path ---------------------------------------------------------
  // Host hands in (ResId, payload length); the gateway monitors, stamps,
  // authenticates, and emits the complete packet into `out`.
  Verdict process(ResId id, std::uint32_t payload_bytes, FastPacket& out);

  // DPDK-style burst entry point; returns number of packets that passed.
  // Scalar reference loop: processes packets one at a time.
  size_t process_burst(const ResId* ids, const std::uint32_t* payload_bytes,
                       size_t n, FastPacket* out, Verdict* verdicts);

  // Staged batch pipeline: restable prefetch for the whole batch, then
  // a sequential per-packet prepare (lookup, expiry, header assembly,
  // token bucket, timestamp — stateful and order-dependent: duplicate
  // ids in one batch drain the bucket in arrival order), then a
  // multi-lane Eq. 6 HVF fill with one AES state in flight per
  // (packet, hop) lane. Verdicts, counters, and flight records are
  // byte-identical to calling process() per packet in order. Any n is
  // accepted (chunked internally); returns the number that passed.
  size_t process_batch(const ResId* ids, const std::uint32_t* payload_bytes,
                       size_t n, FastPacket* out, Verdict* verdicts);

  // Per-instance packet flight recorder (owned by the caller; nullptr
  // detaches). Same contract as BorderRouter::attach_flight_recorder:
  // one predicted branch when detached, no heap allocation when armed.
  void attach_flight_recorder(telemetry::FlightRecorder* r) {
    recorder_ = r;
  }

  // Per-stage latency profiler (disabled by default). When enabled,
  // process_batch() attributes nanoseconds to each pipeline stage
  // (prefetch / prepare / hvf_crypto) per 64-packet chunk plus the
  // chunk-occupancy histogram; the scalar process() records under the
  // "scalar" stage. Exported as "gateway.stage.<label>_ns" (and
  // re-exported per shard as "gateway_shard.<i>.stage.<label>_ns").
  telemetry::StageProfiler& profiler() { return profiler_; }
  const telemetry::StageProfiler& profiler() const { return profiler_; }

  // Stage indices in profiler() — order matches the pipeline.
  static constexpr std::size_t kStagePrefetch = 0;
  static constexpr std::size_t kStagePrepare = 1;
  static constexpr std::size_t kStageHvfCrypto = 2;
  static constexpr std::size_t kStageScalar = 3;

  // Like process(), but emits the packet serialized and encapsulated for
  // the intra-AS network (App. B): IPv4/UDP toward the egress border
  // router with the DSCP stamped by the gateway — hosts cannot choose
  // their own class. `intra.dscp` is overwritten.
  Verdict process_encapsulated(ResId id, std::uint32_t payload_bytes,
                               proto::Ipv4Encap intra, Bytes& frame_out);

  // Uniform stats accessors: consistent point-in-time view + reset.
  GatewayStats snapshot() const;
  void reset();
  // Legacy view, kept as a thin alias of snapshot().
  GatewayStats stats() const { return snapshot(); }

  // Emits under "gateway.*" (bare names routed through a PrefixedSink).
  void collect_metrics(telemetry::MetricSink& sink) const override;
  // Same counters with bare names ("forwarded", "drop.<errc>") so a
  // container can re-export them under its own namespace — the
  // ShardedGateway publishes each shard as "gateway_shard.<i>.*".
  void collect_metrics_bare(telemetry::MetricSink& sink) const;

  AsId local_as() const { return local_as_; }

 private:
  // Everything except the per-hop HVF fill: lookup, expiry, header
  // assembly, token bucket, timestamp. Shared by the scalar classify()
  // and the batched pipeline (which defers the HVF crypto to a
  // multi-lane stage); on kOk, `*entry_out` points at the live entry.
  // `rec` is nullptr on the fast path; when non-null, decision-time
  // detail (token-bucket level, reservation identity) is captured.
  Verdict prepare(ResId id, std::uint32_t payload_bytes, FastPacket& out,
                  GatewayEntry** entry_out, telemetry::FlightRecord* rec);
  Verdict classify(ResId id, std::uint32_t payload_bytes, FastPacket& out,
                   telemetry::FlightRecord* rec);
  Verdict process_recorded(ResId id, std::uint32_t payload_bytes,
                           FastPacket& out);
  // process() minus the profiler wrapper (the common fast path).
  Verdict process_impl(ResId id, std::uint32_t payload_bytes, FastPacket& out);
  size_t process_batch_chunk(const ResId* ids,
                             const std::uint32_t* payload_bytes, size_t n,
                             FastPacket* out, Verdict* verdicts);

  AsId local_as_;
  const Clock* clock_;
  GatewayConfig cfg_;
  ResTable table_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  std::array<telemetry::Counter, kNumVerdicts> verdicts_;
  telemetry::StageProfiler profiler_{"prefetch", "prepare", "hvf_crypto",
                                     "scalar"};
  telemetry::ScopedSource registration_;
};

// Companion of errc_from_verdict(BorderRouter::Verdict): the gateway's
// drop reasons expressed as control-plane error codes.
Errc errc_from_verdict(Gateway::Verdict v);

}  // namespace colibri::dataplane
