// Token-bucket rate limiter (paper §4.8).
//
// The deterministic monitor at the source AS keeps exactly "a time stamp
// and a counter in memory for each flow": tokens refill at the reserved
// rate, short bursts up to the burst allowance pass, sustained overuse is
// dropped.
#pragma once

#include <cstdint>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::dataplane {

class TokenBucket {
 public:
  TokenBucket() = default;
  // rate in kbps; burst in bytes (how far above the sustained rate a
  // short spike may go).
  TokenBucket(BwKbps rate_kbps, std::uint64_t burst_bytes, TimeNs now)
      : rate_kbps_(rate_kbps),
        burst_bytes_(burst_bytes),
        tokens_mb_(burst_bytes * kScale),
        last_ns_(now) {}

  // True if a packet of `bytes` conforms; consumes tokens if it does.
  bool allow(std::uint64_t bytes, TimeNs now);

  void set_rate(BwKbps rate_kbps) { rate_kbps_ = rate_kbps; }
  BwKbps rate_kbps() const { return rate_kbps_; }
  std::uint64_t burst_bytes() const { return burst_bytes_; }
  // Currently available tokens in bytes.
  std::uint64_t available_bytes() const { return tokens_mb_ / kScale; }

 private:
  // Tokens are kept in milli-bytes (kScale) so integer arithmetic stays
  // exact at any rate: rate_kbps * ns yields 10^-3 bytes per 8*10^6.
  static constexpr std::uint64_t kScale = 1000;

  BwKbps rate_kbps_ = 0;
  std::uint64_t burst_bytes_ = 0;
  std::uint64_t tokens_mb_ = 0;
  TimeNs last_ns_ = 0;
};

}  // namespace colibri::dataplane
