// Lock-free single-producer / single-consumer ring buffer.
//
// The sharded gateway runtime hands each worker thread its own ring, so
// every ring has exactly one producer (the submitting thread) and one
// consumer (the shard worker) — the setup needs no CAS loops, only one
// release store per side. Head/tail live on separate cache lines and
// each side caches the other's index, so in steady state a push or pop
// touches a single shared line only when its cached view runs out
// (the classic DPDK/folly SPSC layout).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace colibri::dataplane {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; the ring holds up to
  // capacity() elements.
  explicit SpscRing(std::size_t capacity) {
    std::size_t c = 2;
    while (c < capacity) c <<= 1;
    buf_.resize(c);
    mask_ = c - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return buf_.size(); }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // --- producer side ----------------------------------------------------
  bool try_push(const T& v) { return push_burst(&v, 1) == 1; }

  // Enqueues up to n items; returns how many fit.
  std::size_t push_burst(const T* items, std::size_t n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free_slots = buf_.size() - (tail - head_cache_);
    if (free_slots < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free_slots = buf_.size() - (tail - head_cache_);
    }
    const std::size_t m = n < free_slots ? n : free_slots;
    for (std::size_t i = 0; i < m; ++i) buf_[(tail + i) & mask_] = items[i];
    tail_.store(tail + m, std::memory_order_release);
    return m;
  }

  // --- consumer side ----------------------------------------------------
  bool try_pop(T& out) { return pop_burst(&out, 1) == 1; }

  // Dequeues up to max items; returns how many were available.
  std::size_t pop_burst(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t m = max < avail ? max : avail;
    for (std::size_t i = 0; i < m; ++i) out[i] = buf_[(head + i) & mask_];
    head_.store(head + m, std::memory_order_release);
    return m;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  // Indices are free-running (monotonically increasing, masked on use),
  // so full vs. empty needs no spare slot.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head
};

}  // namespace colibri::dataplane
