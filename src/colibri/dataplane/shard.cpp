#include "colibri/dataplane/shard.hpp"

#include <string>

namespace colibri::dataplane {

ShardedGateway::ShardedGateway(AsId local_as, const Clock& clock,
                               size_t num_shards, const GatewayConfig& cfg,
                               telemetry::MetricsRegistry* registry)
    : local_as_(local_as),
      clock_(&clock),
      cfg_(cfg),
      registration_(registry, this) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Gateway>(local_as_, *clock_, cfg_,
                                                /*registry=*/nullptr));
  }
}

bool ShardedGateway::install(const proto::ResInfo& resinfo,
                             const proto::EerInfo& eerinfo,
                             const std::vector<topology::Hop>& path,
                             const std::vector<HopAuth>& sigmas) {
  return shards_[shard_of(resinfo.res_id)]->install(resinfo, eerinfo, path,
                                                    sigmas);
}

bool ShardedGateway::remove(ResId id) {
  return shards_[shard_of(id)]->remove(id);
}

size_t ShardedGateway::reservation_count() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->reservation_count();
  return total;
}

void ShardedGateway::resize(size_t new_count) {
  if (new_count == 0) new_count = 1;
  std::vector<std::pair<ResId, GatewayEntry>> entries;
  entries.reserve(reservation_count());
  for (const auto& s : shards_) {
    s->for_each_entry([&](ResId id, const GatewayEntry& e) {
      entries.emplace_back(id, e);
    });
  }
  std::vector<std::unique_ptr<Gateway>> next;
  next.reserve(new_count);
  for (size_t i = 0; i < new_count; ++i) {
    next.push_back(std::make_unique<Gateway>(local_as_, *clock_, cfg_,
                                             /*registry=*/nullptr));
  }
  shards_ = std::move(next);
  for (auto& [id, e] : entries) {
    shards_[shard_of(id)]->install_entry(id, std::move(e));
  }
}

ShardedGateway::Verdict ShardedGateway::process(ResId id,
                                                std::uint32_t payload_bytes,
                                                FastPacket& out) {
  return shards_[shard_of(id)]->process(id, payload_bytes, out);
}

size_t ShardedGateway::process_batch(const ResId* ids,
                                     const std::uint32_t* payload_bytes,
                                     size_t n, FastPacket* out,
                                     Verdict* verdicts) {
  // Demux in chunks so the per-shard compaction scratch stays bounded.
  constexpr size_t kChunk = 64;
  size_t ok = 0;
  for (size_t done = 0; done < n; done += kChunk) {
    const size_t m = (n - done < kChunk) ? n - done : kChunk;
    const ResId* cids = ids + done;
    const std::uint32_t* cpl = payload_bytes + done;
    std::uint8_t shard_idx[kChunk];
    for (size_t i = 0; i < m; ++i) {
      shard_idx[i] = static_cast<std::uint8_t>(shard_of(cids[i]));
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      ResId sub_ids[kChunk];
      std::uint32_t sub_pl[kChunk];
      std::uint8_t slot[kChunk];
      size_t k = 0;
      for (size_t i = 0; i < m; ++i) {
        if (shard_idx[i] == s) {
          sub_ids[k] = cids[i];
          sub_pl[k] = cpl[i];
          slot[k] = static_cast<std::uint8_t>(i);
          ++k;
        }
      }
      if (k == 0) continue;
      FastPacket sub_out[kChunk];
      Verdict sub_v[kChunk];
      ok += shards_[s]->process_batch(sub_ids, sub_pl, k, sub_out, sub_v);
      for (size_t j = 0; j < k; ++j) {
        verdicts[done + slot[j]] = sub_v[j];
        if (sub_v[j] == Verdict::kOk) out[done + slot[j]] = sub_out[j];
      }
    }
  }
  return ok;
}

GatewayStats ShardedGateway::snapshot() const {
  GatewayStats total;
  for (const auto& s : shards_) {
    const GatewayStats g = s->snapshot();
    total.forwarded += g.forwarded;
    total.no_reservation += g.no_reservation;
    total.rate_limited += g.rate_limited;
    total.expired += g.expired;
  }
  return total;
}

void ShardedGateway::reset() {
  for (auto& s : shards_) s->reset();
}

void ShardedGateway::collect_metrics(telemetry::MetricSink& sink) const {
  sink.gauge("gateway_shard.count", static_cast<std::int64_t>(shards_.size()));
  for (size_t i = 0; i < shards_.size(); ++i) {
    telemetry::PrefixedSink prefixed(
        "gateway_shard." + std::to_string(i) + ".", sink);
    shards_[i]->collect_metrics_bare(prefixed);
  }
}

ShardedGatewayRuntime::ShardedGatewayRuntime(
    ShardedGateway& gateway, size_t ring_capacity,
    telemetry::MetricsRegistry* registry)
    : gateway_(&gateway),
      stall_baseline_(gateway.shard_count(), 0),
      stall_baselined_(gateway.shard_count(), false),
      registration_(registry, this) {
  shards_.reserve(gateway.shard_count());
  for (size_t i = 0; i < gateway.shard_count(); ++i) {
    shards_.push_back(std::make_unique<PerShard>(ring_capacity));
  }
}

ShardedGatewayRuntime::~ShardedGatewayRuntime() { stop(); }

void ShardedGatewayRuntime::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ShardedGatewayRuntime::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& ps : shards_) {
    if (ps->thread.joinable()) ps->thread.join();
  }
}

bool ShardedGatewayRuntime::submit(ResId id, std::uint32_t payload_bytes) {
  PerShard& ps = *shards_[gateway_->shard_of(id)];
  if (!ps.ring.try_push(ShardRequest{id, payload_bytes})) {
    ps.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t submitted =
      ps.submitted.load(std::memory_order_relaxed) + 1;
  ps.submitted.store(submitted, std::memory_order_release);
  // Ring depth as the producer sees it; the worker only shrinks it, so
  // this never under-reports the true high watermark.
  const std::uint64_t depth =
      submitted - ps.processed.load(std::memory_order_acquire);
  if (depth > ps.high_watermark.load(std::memory_order_relaxed)) {
    ps.high_watermark.store(depth, std::memory_order_relaxed);
  }
  return true;
}

size_t ShardedGatewayRuntime::submit_burst(const ShardRequest* reqs,
                                           size_t n) {
  size_t accepted = 0;
  for (size_t i = 0; i < n; ++i) {
    if (submit(reqs[i].id, reqs[i].payload_bytes)) ++accepted;
  }
  return accepted;
}

bool ShardedGatewayRuntime::idle() const {
  for (const auto& ps : shards_) {
    if (ps->processed.load(std::memory_order_acquire) !=
        ps->submitted.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

void ShardedGatewayRuntime::drain() const {
  while (!idle()) std::this_thread::yield();
}

ShardedGatewayRuntime::WorkerStats ShardedGatewayRuntime::worker_stats(
    size_t shard) const {
  const PerShard& ps = *shards_[shard];
  WorkerStats s;
  s.processed = ps.processed.load(std::memory_order_acquire);
  s.batches = ps.batches.load(std::memory_order_acquire);
  s.ok = ps.ok.load(std::memory_order_acquire);
  return s;
}

ShardedGatewayRuntime::ShardHealth ShardedGatewayRuntime::shard_health(
    size_t shard) const {
  const PerShard& ps = *shards_[shard];
  ShardHealth h;
  // Load processed before submitted: a concurrently draining worker can
  // then only make depth look larger, never wrap below zero.
  h.processed = ps.processed.load(std::memory_order_acquire);
  h.submitted = ps.submitted.load(std::memory_order_acquire);
  h.batches = ps.batches.load(std::memory_order_acquire);
  h.ok = ps.ok.load(std::memory_order_acquire);
  h.rejected = ps.rejected.load(std::memory_order_acquire);
  h.heartbeats = ps.heartbeats.load(std::memory_order_acquire);
  h.ring_depth = h.submitted >= h.processed ? h.submitted - h.processed : 0;
  h.high_watermark = ps.high_watermark.load(std::memory_order_acquire);
  return h;
}

std::vector<size_t> ShardedGatewayRuntime::check_stalls() {
  std::vector<size_t> stalled;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardHealth h = shard_health(i);
    if (stall_baselined_[i] && h.ring_depth > 0 &&
        h.heartbeats == stall_baseline_[i]) {
      stalled.push_back(i);
    }
    stall_baseline_[i] = h.heartbeats;
    stall_baselined_[i] = true;
  }
  return stalled;
}

void ShardedGatewayRuntime::collect_metrics(
    telemetry::MetricSink& sink) const {
  sink.gauge("gateway_runtime.shard.count",
             static_cast<std::int64_t>(shards_.size()));
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardHealth h = shard_health(i);
    const std::string prefix = "gateway_runtime.shard." + std::to_string(i);
    sink.gauge(prefix + ".ring_depth",
               static_cast<std::int64_t>(h.ring_depth));
    sink.gauge(prefix + ".ring_high_watermark",
               static_cast<std::int64_t>(h.high_watermark));
    sink.counter(prefix + ".submitted", h.submitted);
    sink.counter(prefix + ".processed", h.processed);
    sink.counter(prefix + ".batches", h.batches);
    sink.counter(prefix + ".ok", h.ok);
    sink.counter(prefix + ".rejected", h.rejected);
    sink.counter(prefix + ".heartbeats", h.heartbeats);
  }
}

std::vector<telemetry::AlertRule> ShardedGatewayRuntime::default_alert_rules(
    size_t shard_count, std::uint64_t ring_depth_threshold,
    TimeNs stall_for_ns) {
  std::vector<telemetry::AlertRule> rules;
  rules.reserve(shard_count * 2);
  for (size_t i = 0; i < shard_count; ++i) {
    const std::string prefix = "gateway_runtime.shard." + std::to_string(i);
    {
      telemetry::AlertRule r;
      r.name = "runtime.shard" + std::to_string(i) + ".stall";
      r.series = prefix + ".heartbeats";
      r.signal = telemetry::AlertSignal::kRate;
      r.span_ns = kNsPerSec;
      r.cmp = telemetry::AlertCmp::kBelow;
      r.threshold = 1.0;  // beats/s; a live worker spins far faster
      r.for_ns = stall_for_ns;
      r.severity = telemetry::Severity::kError;
      r.guard_series = prefix + ".ring_depth";
      r.guard_cmp = telemetry::AlertCmp::kAbove;
      r.guard_threshold = 0;
      rules.push_back(std::move(r));
    }
    {
      telemetry::AlertRule r;
      r.name = "runtime.shard" + std::to_string(i) + ".ring-depth";
      r.series = prefix + ".ring_depth";
      r.signal = telemetry::AlertSignal::kGauge;
      r.cmp = telemetry::AlertCmp::kAbove;
      r.threshold = static_cast<double>(ring_depth_threshold);
      r.for_ns = kNsPerSec;
      r.severity = telemetry::Severity::kWarn;
      rules.push_back(std::move(r));
    }
  }
  return rules;
}

void ShardedGatewayRuntime::worker_loop(size_t shard_index) {
  PerShard& ps = *shards_[shard_index];
  Gateway& shard = gateway_->shard(shard_index);
  constexpr size_t kBurst = 64;
  ShardRequest reqs[kBurst];
  ResId ids[kBurst];
  std::uint32_t payloads[kBurst];
  FastPacket out[kBurst];
  Gateway::Verdict verdicts[kBurst];
  while (true) {
    // Advances even on idle spins: liveness, not progress — the stall
    // detector keys off this never freezing while the thread is alive.
    ps.heartbeats.fetch_add(1, std::memory_order_release);
    const size_t m = ps.ring.pop_burst(reqs, kBurst);
    if (m == 0) {
      // Exit only once the stop signal is down AND the ring is drained
      // (stop() flips running_ before joining, so check order matters).
      if (!running_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < m; ++i) {
      ids[i] = reqs[i].id;
      payloads[i] = reqs[i].payload_bytes;
    }
    const size_t okc = shard.process_batch(ids, payloads, m, out, verdicts);
    ps.ok.fetch_add(okc, std::memory_order_relaxed);
    ps.batches.fetch_add(1, std::memory_order_relaxed);
    ps.processed.fetch_add(m, std::memory_order_release);
  }
}

}  // namespace colibri::dataplane
