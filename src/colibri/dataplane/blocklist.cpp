#include "colibri/dataplane/blocklist.hpp"

// Header-only implementation; this translation unit anchors the target.
