#include "colibri/dataplane/dupsup.hpp"

#include <cmath>

namespace colibri::dataplane {
namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BloomFilter::BloomFilter(size_t bits, int k)
    : words_(round_up_pow2(bits) / 64, 0),
      mask_(round_up_pow2(bits) - 1),
      k_(k) {}

bool BloomFilter::test_and_set(std::uint64_t h1, std::uint64_t h2) {
  bool present = true;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
    std::uint64_t& word = words_[bit >> 6];
    const std::uint64_t m = 1ULL << (bit & 63);
    if ((word & m) == 0) {
      present = false;
      word |= m;
    }
  }
  return present;
}

bool BloomFilter::test(std::uint64_t h1, std::uint64_t h2) const {
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::prefetch(std::uint64_t h1, std::uint64_t h2) const {
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
    __builtin_prefetch(&words_[bit >> 6], 0, 1);
  }
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

double BloomFilter::predicted_fpr(size_t bits, int k, size_t n) {
  const double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                          static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), k);
}

DuplicateSuppression::DuplicateSuppression(const DupSupConfig& cfg,
                                           telemetry::MetricsRegistry* registry)
    : cfg_(cfg),
      current_(cfg.bits_per_filter, cfg.hashes),
      previous_(cfg.bits_per_filter, cfg.hashes),
      registration_(registry, this) {}

void DuplicateSuppression::maybe_rotate(TimeNs now) {
  if (now - window_start_ < cfg_.window_ns) return;
  std::swap(current_, previous_);
  current_.clear();
  window_start_ = now;
}

void DuplicateSuppression::prefetch(AsId src, ResId res,
                                    std::uint32_t ts) const {
  const std::uint64_t h1 =
      mix64(src.raw() ^ (static_cast<std::uint64_t>(res) << 32) ^ ts);
  const std::uint64_t h2 = mix64(h1 ^ 0x6A09E667F3BCC909ULL) | 1;
  previous_.prefetch(h1, h2);
  current_.prefetch(h1, h2);
}

DuplicateSuppression::Verdict DuplicateSuppression::check(AsId src, ResId res,
                                                          std::uint32_t ts,
                                                          TimeNs ts_ns,
                                                          TimeNs now) {
  maybe_rotate(now);
  // Packets older than the combined history of both filters can no longer
  // be checked for duplication and must be dropped as stale.
  if (ts_ns + 2 * cfg_.window_ns < now) {
    stale_.bump();
    return Verdict::kStale;
  }
  const std::uint64_t h1 = mix64(src.raw() ^ (static_cast<std::uint64_t>(res) << 32) ^ ts);
  const std::uint64_t h2 = mix64(h1 ^ 0x6A09E667F3BCC909ULL) | 1;
  if (previous_.test(h1, h2) || current_.test_and_set(h1, h2)) {
    duplicates_.bump();
    return Verdict::kDuplicate;
  }
  return Verdict::kFresh;
}

}  // namespace colibri::dataplane
