#include "colibri/dataplane/batch.hpp"

#include "colibri/proto/codec.hpp"

namespace colibri::dataplane {

bool batch_ingest(BytesView frame, PacketBatch& batch) {
  if (batch.full()) return false;
  const auto pkt = proto::decode_packet(frame);
  if (!pkt.has_value()) return false;
  if (pkt->path.size() > kMaxHops) return false;
  batch.push_slot() = to_fast(*pkt);
  return true;
}

}  // namespace colibri::dataplane
