#include "colibri/dataplane/restable.hpp"

namespace colibri::dataplane {
namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResTable::ResTable(size_t expected_entries)
    : keys_(round_up_pow2(expected_entries * 2), kEmpty),
      slots_(keys_.size()) {}

bool ResTable::insert(ResId id, GatewayEntry entry) {
  if (id == kEmpty || id == kTombstone) return false;
  if ((used_ + 1) * 10 > keys_.size() * 7) grow();
  size_t i = probe(id);
  size_t first_tomb = keys_.size();
  while (true) {
    const ResId k = keys_[i];
    if (k == id) {
      slots_[i] = std::move(entry);
      return true;
    }
    if (k == kTombstone && first_tomb == keys_.size()) first_tomb = i;
    if (k == kEmpty) {
      const size_t target = (first_tomb != keys_.size()) ? first_tomb : i;
      if (keys_[target] == kEmpty) ++used_;
      keys_[target] = id;
      slots_[target] = std::move(entry);
      ++size_;
      return true;
    }
    i = (i + 1) & (keys_.size() - 1);
  }
}

GatewayEntry* ResTable::find(ResId id) {
  size_t i = probe(id);
  while (true) {
    const ResId k = keys_[i];
    if (k == id) return &slots_[i];
    if (k == kEmpty) return nullptr;
    i = (i + 1) & (keys_.size() - 1);
  }
}

const GatewayEntry* ResTable::find(ResId id) const {
  return const_cast<ResTable*>(this)->find(id);
}

bool ResTable::erase(ResId id) {
  size_t i = probe(id);
  while (true) {
    const ResId k = keys_[i];
    if (k == id) {
      keys_[i] = kTombstone;
      slots_[i] = GatewayEntry{};
      --size_;
      return true;
    }
    if (k == kEmpty) return false;
    i = (i + 1) & (keys_.size() - 1);
  }
}

void ResTable::grow() {
  std::vector<ResId> old_keys = std::move(keys_);
  std::vector<GatewayEntry> old_slots = std::move(slots_);
  keys_.assign(old_keys.size() * 2, kEmpty);
  slots_.assign(keys_.size(), GatewayEntry{});
  size_ = 0;
  used_ = 0;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] != kEmpty && old_keys[i] != kTombstone) {
      insert(old_keys[i], std::move(old_slots[i]));
    }
  }
}

}  // namespace colibri::dataplane
