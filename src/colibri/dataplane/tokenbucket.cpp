#include "colibri/dataplane/tokenbucket.hpp"

namespace colibri::dataplane {

bool TokenBucket::allow(std::uint64_t bytes, TimeNs now) {
  if (now > last_ns_) {
    // kbps -> milli-bytes/ns: rate_kbps * 1000 bit/s = rate_kbps * 125 B/s
    // = rate_kbps * 125e-9 B/ns = rate_kbps * 125 * 1e-6 mB/ns.
    // elapsed * rate * 125 overflows u64 after ~41 s of idle at the max
    // rate (0xFFFFFFFF kbps), which used to refill a near-random token
    // count on the first packet after a long sim-clock gap. Widen to
    // 128-bit and saturate at the burst cap — beyond the cap the exact
    // refill is irrelevant anyway.
    const std::uint64_t elapsed = static_cast<std::uint64_t>(now - last_ns_);
    const std::uint64_t cap = burst_bytes_ * kScale;
    const unsigned __int128 refill_wide =
        static_cast<unsigned __int128>(elapsed) *
        static_cast<std::uint64_t>(rate_kbps_) * 125 / 1'000'000;
    const std::uint64_t refill_mb =
        refill_wide > cap ? cap : static_cast<std::uint64_t>(refill_wide);
    tokens_mb_ += refill_mb;
    if (tokens_mb_ > cap) tokens_mb_ = cap;
    // Only advance the stamp when the refill is non-zero, so sub-resolution
    // intervals accumulate instead of being truncated away each packet.
    if (refill_mb > 0) last_ns_ = now;
  }
  const std::uint64_t need = bytes * kScale;
  if (tokens_mb_ < need) return false;
  tokens_mb_ -= need;
  return true;
}

}  // namespace colibri::dataplane
