// Colibri border router (paper §4.6).
//
// Per-flow *stateless*: everything needed to validate a packet derives on
// the fly from the AS's secret key K_i. For EER data packets the router
// recomputes the hop authenticator σ_i (Eq. 4, a 4-block CBC-MAC over
// header fields), derives the per-packet HVF from it (Eq. 6, one AES
// block) and compares against the packet. SegR (control) packets carry a
// token checked directly against Eq. 3. Optional hooks integrate the
// blocklist, duplicate suppression, and the probabilistic overuse
// detector; the paper's speedtest (Figs. 5-6) measures the router without
// the duplicate-suppression component, which our benchmarks mirror by
// leaving the hooks null.
//
// Telemetry: verdict counters are instance-local single-writer atomics
// (one router instance is driven by one thread at a time, as in the
// multicore benchmarks) exported through the process-wide
// MetricsRegistry; per-packet validation latency is sampled into a
// histogram only when set_latency_sampling() enables it.
#pragma once

#include <array>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/dataplane/batch.hpp"
#include "colibri/dataplane/blocklist.hpp"
#include "colibri/dataplane/dupsup.hpp"
#include "colibri/dataplane/fastpacket.hpp"
#include "colibri/dataplane/ofd.hpp"
#include "colibri/drkey/drkey.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/profiler.hpp"

namespace colibri::dataplane {

// Point-in-time view of one router's counters (see snapshot()).
struct RouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bad_hvf = 0;
  std::uint64_t expired = 0;
  std::uint64_t malformed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t replayed = 0;
  std::uint64_t overuse_dropped = 0;
};

class BorderRouter : public telemetry::MetricsSource {
 public:
  // `hop_key` is this AS's secret key K_i used in Eqs. 3-4; its AES
  // schedule is expanded once here and reused for every packet.
  // The router registers with `registry` (nullptr = none) and exports
  // its counters under "router.*", aggregated across instances.
  BorderRouter(AsId local_as, const drkey::Key128& hop_key, const Clock& clock,
               telemetry::MetricsRegistry* registry =
                   &telemetry::MetricsRegistry::global());
  ~BorderRouter() override = default;

  BorderRouter(const BorderRouter&) = delete;
  BorderRouter& operator=(const BorderRouter&) = delete;

  enum class Verdict : std::uint8_t {
    kForward = 0,  // HVF valid; cursor advanced to the next AS
    kDeliver,      // HVF valid and this is the last hop: hand to DstHost
    kBadHvf,
    kExpired,
    kMalformed,
    kBlocked,
    kReplay,
    kOveruse,
  };
  static constexpr std::size_t kNumVerdicts = 8;

  // Validates and advances one packet. The packet's current_hop must
  // point at this AS's hop entry.
  Verdict process(FastPacket& pkt);

  // DPDK-style burst processing (32-packet bursts in the benchmarks).
  // Scalar reference loop: processes packets one at a time.
  void process_burst(FastPacket* pkts, size_t n, Verdict* verdicts);

  // Staged batch pipeline. Runs each validation stage across the whole
  // batch — header sanity + clock sampling, dupsup prefetch, multi-lane
  // expected-HVF crypto — then a sequential per-packet finalize that
  // shares its predicates with the scalar classify(), so verdicts, errc
  // mapping, telemetry counters, and flight-recorder records are
  // byte-identical to calling process() on each packet in order.
  // (The only scalar-path feature the batch path does not replicate is
  // set_latency_sampling(), whose wall-clock histogram is inherently
  // per-call.) Writes batch.size verdicts.
  void process_batch(PacketBatch& batch, Verdict* verdicts);

  // Optional monitoring/policing hooks (owned by the caller).
  void attach_blocklist(Blocklist* b) { blocklist_ = b; }
  void attach_dupsup(DuplicateSuppression* d) { dupsup_ = d; }
  void attach_ofd(OverUseFlowDetector* o) { ofd_ = o; }
  // Per-instance packet flight recorder (owned by the caller; nullptr
  // detaches). With no recorder the fast path pays one predicted
  // branch; with one attached, per-packet decision traces are captured
  // per the recorder's sampling/record-on-drop configuration without
  // any heap allocation.
  void attach_flight_recorder(telemetry::FlightRecorder* r) {
    recorder_ = r;
  }

  // Per-stage latency profiler (disabled by default). When enabled,
  // process_batch() attributes nanoseconds to each pipeline stage
  // (header_sanity / prefetch / hvf_crypto / finalize) and records the
  // batch-occupancy histogram; the scalar process() records its whole
  // validation under the "scalar" stage. Exported as
  // "router.stage.<label>_ns" / "router.batch_occupancy".
  telemetry::StageProfiler& profiler() { return profiler_; }
  const telemetry::StageProfiler& profiler() const { return profiler_; }

  // Stage indices in profiler() — order matches the pipeline.
  static constexpr std::size_t kStageHeaderSanity = 0;
  static constexpr std::size_t kStagePrefetch = 1;
  static constexpr std::size_t kStageHvfCrypto = 2;
  static constexpr std::size_t kStageFinalize = 3;
  static constexpr std::size_t kStageScalar = 4;

  // Records the wall-clock validation latency of every `every_n`th
  // packet into the "router.validate_latency_ns" histogram; 0 (default)
  // disables sampling and keeps the fast path clock-free. Applies to
  // the scalar process()/process_burst() path only.
  void set_latency_sampling(std::uint32_t every_n) {
    sample_every_ = every_n;
    sample_countdown_ = every_n;
  }

  // Uniform stats accessors: consistent point-in-time view + reset.
  RouterStats snapshot() const;
  void reset();
  // Legacy view, kept as a thin alias of snapshot().
  RouterStats stats() const { return snapshot(); }

  void collect_metrics(telemetry::MetricSink& sink) const override;

  AsId local_as() const { return local_as_; }

 private:
  // Compile-time split so the fast path carries no capture branches:
  // classify<false> ignores `rec`; classify<true> fills decision-time
  // detail (HVF comparison, dupsup/OFD verdicts) into it.
  template <bool kRecording>
  Verdict classify(FastPacket& pkt, telemetry::FlightRecord* rec);
  // Everything after the format check and clock sample: expiry,
  // blocklist, HVF comparison, dupsup, OFD, cursor advance. The ONE
  // definition of those predicates — the scalar classify() and the
  // batched pipeline both end here, which is what makes the
  // differential harness's parity guarantee structural rather than
  // coincidental. `expected_hvf` is a lazy provider: the scalar path
  // computes the MAC only if the packet survives the cheap checks; the
  // batched path returns a precomputed value.
  template <bool kRecording, typename HvfFn>
  Verdict finalize(FastPacket& pkt, TimeNs now, HvfFn&& expected_hvf,
                   telemetry::FlightRecord* rec);
  // Multi-lane expected-HVF computation for a batch (Eqs. 3/4/6 with
  // the AES states of all packets kept in flight).
  void batch_expected_hvfs(const FastPacket* pkts, std::size_t n,
                           const bool* fmt_ok, proto::Hvf* expected) const;
  Verdict process_recorded(FastPacket& pkt);
  // process() minus the profiler wrapper (the common fast path).
  Verdict process_impl(FastPacket& pkt);

  AsId local_as_;
  crypto::Aes128 hop_cipher_;  // K_i schedule, expanded once
  const Clock* clock_;
  Blocklist* blocklist_ = nullptr;
  DuplicateSuppression* dupsup_ = nullptr;
  OverUseFlowDetector* ofd_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
  std::uint32_t sample_every_ = 0;
  std::uint32_t sample_countdown_ = 0;
  std::array<telemetry::Counter, kNumVerdicts> verdicts_;
  telemetry::Histogram validate_latency_ns_;
  telemetry::StageProfiler profiler_{"header_sanity", "prefetch", "hvf_crypto",
                                     "finalize", "scalar"};
  telemetry::ScopedSource registration_;
};

// The single mapping between data-plane verdicts and control-plane error
// codes; telemetry counter names and Result errors derive from it, so
// "router.drop.auth-failed" and Errc::kAuthFailed always agree.
Errc errc_from_verdict(BorderRouter::Verdict v);

// Default monitoring rule pack for a border router (see
// telemetry/alerts.hpp): a drop-spike rule over the summed
// "router.drop.*" counters — windowed drop rate above
// `drops_per_sec`, held for `for_ns`, fires at error severity. A
// sudden drop spike is the first externally visible symptom of an
// attack burst (replay, tampered HVFs, overuse) or an expiry storm
// racing renewals; the per-reason counters stay available for
// diagnosis once the alert points at the router.
std::vector<telemetry::AlertRule> default_router_alert_rules(
    double drops_per_sec = 1'000.0, TimeNs for_ns = kNsPerSec);

}  // namespace colibri::dataplane
