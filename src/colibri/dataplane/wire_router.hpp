// Bytes-level border-router fast path.
//
// BorderRouter validates pre-parsed FastPackets; a production forwarder
// receives raw frames. WireRouter processes Colibri packets directly in
// their wire representation: it parses the fixed header fields in place
// (no copy of path/HVF arrays, no payload touch), validates the HVF for
// the current hop, and advances the cursor by rewriting one header byte —
// exactly what the paper's DPDK pipeline does between rte_eth_rx_burst
// and tx. The ablation bench compares this against the struct-based path.
#pragma once

#include "colibri/common/clock.hpp"
#include "colibri/dataplane/hvf.hpp"
#include "colibri/dataplane/restable.hpp"  // kMaxHops
#include "colibri/drkey/drkey.hpp"

namespace colibri::dataplane {

// Byte offsets of the wire layout (see proto/codec.cpp).
struct WireLayout {
  static constexpr size_t kType = 0;
  static constexpr size_t kFlags = 1;
  static constexpr size_t kHopCount = 2;
  static constexpr size_t kCurrentHop = 3;
  static constexpr size_t kResInfo = 4;     // 21 bytes
  static constexpr size_t kAfterResInfo = 25;
  static constexpr size_t kEerInfoLen = 32;
  static constexpr size_t kTsAndLen = 8;    // u32 Ts + u32 payload_len
  static constexpr size_t kPerHopPath = 4;  // u16 in + u16 eg

  // Offset of the Ts field given the EER flag.
  static constexpr size_t ts_offset(bool is_eer) {
    return kAfterResInfo + (is_eer ? kEerInfoLen : 0);
  }
  static constexpr size_t path_offset(bool is_eer) {
    return ts_offset(is_eer) + kTsAndLen;
  }
  static constexpr size_t hvf_offset(bool is_eer, std::uint8_t hop_count) {
    return path_offset(is_eer) + kPerHopPath * hop_count;
  }
};

class WireRouter {
 public:
  WireRouter(AsId local_as, const drkey::Key128& hop_key, const Clock& clock)
      : local_as_(local_as),
        hop_cipher_(hop_key.bytes.data()),
        clock_(&clock) {}

  enum class Verdict : std::uint8_t {
    kForward = 0,
    kDeliver,
    kBadHvf,
    kExpired,
    kMalformed,
  };

  // Validates and advances the packet in place. `wire` must hold a full
  // Colibri packet; only the current-hop byte is mutated.
  Verdict process(std::uint8_t* wire, size_t len);

  // Burst entry point over an array of (ptr, len) packet views.
  struct PacketView {
    std::uint8_t* data;
    size_t len;
  };
  void process_burst(PacketView* pkts, size_t n, Verdict* verdicts);

  AsId local_as() const { return local_as_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  AsId local_as_;
  crypto::Aes128 hop_cipher_;
  const Clock* clock_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace colibri::dataplane
