// In-network duplicate suppression (paper §2.3, §5.1; Lee et al. [32]).
//
// Replayed Colibri packets would let an on-path adversary both congest
// links and frame the honest source. Each packet is uniquely identified
// by (SrcAS, ResId, Ver, Ts); the detector remembers recently seen
// identifiers in two alternating Bloom filters covering consecutive time
// windows, so memory stays bounded while the effective history spans at
// least one full window (≥ max clock skew + max propagation delay).
// Packets older than the history horizon are rejected as stale.
#pragma once

#include <cstdint>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::dataplane {

class BloomFilter {
 public:
  // `bits` rounded up to a power of two; k hash probes per element.
  BloomFilter(size_t bits, int k);

  // Inserts the element; returns true if it was (probably) already there.
  bool test_and_set(std::uint64_t h1, std::uint64_t h2);
  bool test(std::uint64_t h1, std::uint64_t h2) const;
  // Prefetch the words the k probes of (h1, h2) will touch.
  void prefetch(std::uint64_t h1, std::uint64_t h2) const;
  void clear();

  size_t bit_count() const { return words_.size() * 64; }
  int hash_count() const { return k_; }
  // Predicted false-positive rate after n insertions.
  static double predicted_fpr(size_t bits, int k, size_t n);

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t mask_;
  int k_;
};

struct DupSupConfig {
  size_t bits_per_filter = 1 << 22;  // 4 Mbit = 512 KiB per filter
  int hashes = 4;
  TimeNs window_ns = 2 * kNsPerSec;  // covers ±0.1 s skew + propagation
};

// Point-in-time view of the detector's counters (see snapshot()).
struct DupSupStats {
  std::uint64_t duplicates = 0;
  std::uint64_t stale = 0;
};

class DuplicateSuppression : public telemetry::MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); counters export under
  // "dupsup.*", aggregated across instances.
  explicit DuplicateSuppression(const DupSupConfig& cfg = {},
                                telemetry::MetricsRegistry* registry =
                                    &telemetry::MetricsRegistry::global());
  ~DuplicateSuppression() override = default;

  DuplicateSuppression(const DuplicateSuppression&) = delete;
  DuplicateSuppression& operator=(const DuplicateSuppression&) = delete;

  enum class Verdict : std::uint8_t { kFresh, kDuplicate, kStale };

  // `ts_ns` is the packet timestamp decoded to absolute time; `now` is
  // local time. Inserts fresh identifiers.
  Verdict check(AsId src, ResId res, std::uint32_t ts, TimeNs ts_ns,
                TimeNs now);

  // Prefetch the Bloom-filter words check() would touch for this
  // identifier. Purely a cache hint; no state changes.
  void prefetch(AsId src, ResId res, std::uint32_t ts) const;

  std::uint64_t duplicates_seen() const { return duplicates_.value(); }
  std::uint64_t stale_seen() const { return stale_.value(); }

  // Uniform stats accessors: consistent point-in-time view + reset.
  DupSupStats snapshot() const {
    return {duplicates_.value(), stale_.value()};
  }
  void reset() {
    duplicates_.reset();
    stale_.reset();
  }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("dupsup.duplicates", duplicates_.value());
    sink.counter("dupsup.stale", stale_.value());
  }

 private:
  void maybe_rotate(TimeNs now);

  DupSupConfig cfg_;
  BloomFilter current_;
  BloomFilter previous_;
  TimeNs window_start_ = 0;
  telemetry::Counter duplicates_;
  telemetry::Counter stale_;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::dataplane
