#include "colibri/dataplane/ofd.hpp"

#include <algorithm>

namespace colibri::dataplane {
namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

OverUseFlowDetector::OverUseFlowDetector(const OfdConfig& cfg,
                                         telemetry::MetricsRegistry* registry)
    : cfg_(cfg),
      width_mask_(round_up_pow2(cfg.width) - 1),
      cells_(static_cast<size_t>(cfg.depth) * (width_mask_ + 1), 0.0),
      registration_(registry, this) {}

std::uint64_t OverUseFlowDetector::flow_hash(AsId src, ResId res) const {
  return mix64(src.raw() * 0x9E3779B97F4A7C15ULL ^ res);
}

void OverUseFlowDetector::maybe_rotate(TimeNs now) {
  if (now - epoch_start_ < cfg_.epoch_ns) return;
  std::fill(cells_.begin(), cells_.end(), 0.0);
  epoch_start_ = now;
}

OverUseFlowDetector::Verdict OverUseFlowDetector::update(AsId src, ResId res,
                                                         std::uint32_t pkt_bytes,
                                                         BwKbps bw_kbps,
                                                         TimeNs now) {
  if (bw_kbps == 0) return Verdict::kOveruse;
  maybe_rotate(now);

  const ResKey key{src, res};

  // Deterministic path for flows already under watch.
  if (auto it = watchlist_.find(key); it != watchlist_.end()) {
    if (it->second.bucket.allow(pkt_bytes, now)) return Verdict::kWatched;
    ++it->second.violations;
    confirmed_.bump();
    if (events_ != nullptr && it->second.violations == 1) {
      events_->emit(telemetry::Severity::kError, "ofd", "flow.confirmed")
          .str("src_as", src.to_string())
          .u64("res_id", res)
          .u64("bw_kbps", bw_kbps);
    }
    return Verdict::kOveruse;
  }

  // Sketch update: normalized seconds this packet is worth.
  const double norm = static_cast<double>(pkt_bytes) * 8.0 /
                      (static_cast<double>(bw_kbps) * 1000.0);
  const std::uint64_t h = flow_hash(src, res);
  double estimate = 1e300;
  const size_t row_len = width_mask_ + 1;
  for (int d = 0; d < cfg_.depth; ++d) {
    const size_t idx = static_cast<size_t>(d) * row_len +
                       (mix64(h + static_cast<std::uint64_t>(d) * 0x1000193) &
                        width_mask_);
    cells_[idx] += norm;
    estimate = std::min(estimate, cells_[idx]);
  }

  const double elapsed_sec =
      static_cast<double>(now - epoch_start_) / kNsPerSec;
  const double allowance =
      cfg_.overuse_factor * std::max(elapsed_sec, 0.05) +
      cfg_.watch_burst_sec;
  if (estimate <= allowance) return Verdict::kOk;

  // Promote to deterministic monitoring: a token bucket at the reserved
  // rate with a small burst allowance decides overuse with certainty.
  flagged_.bump();
  if (events_ != nullptr) {
    events_->emit(telemetry::Severity::kWarn, "ofd", "flow.flagged")
        .str("src_as", src.to_string())
        .u64("res_id", res)
        .u64("bw_kbps", bw_kbps);
  }
  const std::uint64_t burst_bytes = static_cast<std::uint64_t>(
      cfg_.watch_burst_sec * static_cast<double>(bw_kbps) * 125.0);
  watchlist_.emplace(key,
                     Watch{TokenBucket(bw_kbps, std::max<std::uint64_t>(
                                                    burst_bytes, 1500),
                                       now),
                           0});
  return Verdict::kSuspicious;
}

double OverUseFlowDetector::estimate(AsId src, ResId res) const {
  const std::uint64_t h = flow_hash(src, res);
  double est = 1e300;
  const size_t row_len = width_mask_ + 1;
  for (int d = 0; d < cfg_.depth; ++d) {
    const size_t idx = static_cast<size_t>(d) * row_len +
                       (mix64(h + static_cast<std::uint64_t>(d) * 0x1000193) &
                        width_mask_);
    est = std::min(est, cells_[idx]);
  }
  return est;
}

}  // namespace colibri::dataplane
