// Gateway reservation table: ResId -> reservation state.
//
// Open-addressing hash table with linear probing, modelled after the
// DPDK rte_hash setup the paper's gateway uses (§7.1): flat storage, one
// cache-line-friendly probe sequence, no per-lookup allocation. The
// gateway serves only reservations originating in its own AS, so the
// 32-bit ResId is the complete key. Entries are large (hop authenticators
// for up to kMaxHops ASes), so the table stores them out-of-line in a
// parallel slot array.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "colibri/dataplane/hvf.hpp"
#include "colibri/dataplane/tokenbucket.hpp"
#include "colibri/proto/packet.hpp"

namespace colibri::dataplane {

inline constexpr size_t kMaxHops = 16;

struct IfPair {
  std::uint16_t in = 0;
  std::uint16_t eg = 0;
};

// Everything the gateway must remember per EER (paper §4.6): header
// contents to fill in, hop authenticators to key the per-packet MACs, and
// the token bucket for deterministic monitoring.
struct GatewayEntry {
  proto::ResInfo resinfo;
  proto::EerInfo eerinfo;
  std::uint8_t num_hops = 0;
  std::array<IfPair, kMaxHops> ifaces;
  std::array<HopAuth, kMaxHops> sigmas;
  TokenBucket bucket;
};

class ResTable {
 public:
  // Capacity is rounded up to a power of two; the table resizes itself
  // when load exceeds ~70 %.
  explicit ResTable(size_t expected_entries = 1024);

  // Inserts or overwrites. ResId 0 is reserved and rejected.
  bool insert(ResId id, GatewayEntry entry);
  GatewayEntry* find(ResId id);
  const GatewayEntry* find(ResId id) const;
  bool erase(ResId id);

  // Software-prefetch the probe start for `id` (key word and slot). The
  // batched pipeline issues these for the whole batch before the lookup
  // stage so DRAM latency overlaps across packets.
  void prefetch(ResId id) const {
    const size_t i = probe(id);
    __builtin_prefetch(&keys_[i], 0, 3);
    __builtin_prefetch(&slots_[i], 0, 1);
  }

  // Visits every live entry as fn(ResId, const GatewayEntry&). Iteration
  // order is unspecified (hash order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty && keys_[i] != kTombstone) fn(keys_[i], slots_[i]);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return keys_.size(); }

 private:
  static constexpr ResId kEmpty = 0;
  static constexpr ResId kTombstone = 0xFFFF'FFFF;

  static std::uint64_t mix(ResId id) {
    std::uint64_t h = id;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
  }

  size_t probe(ResId id) const { return mix(id) & (keys_.size() - 1); }
  void grow();

  std::vector<ResId> keys_;
  std::vector<GatewayEntry> slots_;
  size_t size_ = 0;
  size_t used_ = 0;  // live + tombstones
};

}  // namespace colibri::dataplane
