// Fixed-capacity packet representation for the forwarding fast path.
//
// proto::Packet is the general (heap-backed) form used by the control
// plane; FastPacket is its POD twin for the gateway/router hot loops and
// the DPDK-style burst benchmarks: no allocation, contiguous, at most
// kMaxHops hop entries, payload represented by its length only (forwarding
// never touches payload bytes; Appendix E shows processing is
// payload-size independent).
#pragma once

#include "colibri/dataplane/restable.hpp"
#include "colibri/proto/codec.hpp"

namespace colibri::dataplane {

struct FastPacket {
  proto::PacketType type = proto::PacketType::kData;
  bool is_eer = true;
  std::uint8_t num_hops = 0;
  std::uint8_t current_hop = 0;

  proto::ResInfo resinfo;
  proto::EerInfo eerinfo;
  std::uint32_t timestamp = 0;
  std::uint32_t payload_bytes = 0;

  std::array<IfPair, kMaxHops> ifaces;
  std::array<proto::Hvf, kMaxHops> hvfs;

  // Wire size mirroring proto::Packet::wire_size().
  std::uint32_t wire_size() const {
    std::uint32_t s = 33u + num_hops * 8u + payload_bytes;
    if (is_eer) s += 32u;
    return s;
  }

  IfId ingress() const { return ifaces[current_hop].in; }
  IfId egress() const { return ifaces[current_hop].eg; }
  bool at_last_hop() const { return current_hop + 1 >= num_hops; }
};

// Conversions to/from the general representation (integration tests and
// the control plane use these at the simulation boundary).
FastPacket to_fast(const proto::Packet& pkt);
proto::Packet to_packet(const FastPacket& fp);

}  // namespace colibri::dataplane
