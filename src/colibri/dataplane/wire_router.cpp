#include "colibri/dataplane/wire_router.hpp"

#include <cstring>

namespace colibri::dataplane {
namespace {

constexpr std::uint8_t kFlagEer = 0x01;
constexpr std::uint8_t kTypeData = 0;
constexpr std::uint8_t kMaxType = 6;  // PacketType::kResponse

std::uint32_t rd32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);  // wire is little-endian, as is every target here
  return v;
}

std::uint16_t rd16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

std::uint64_t rd64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

WireRouter::Verdict WireRouter::process(std::uint8_t* wire, size_t len) {
  using L = WireLayout;
  // Header sanity. The fixed part must be present before we read it.
  if (len < L::kResInfo + 21) {
    ++dropped_;
    return Verdict::kMalformed;
  }
  const std::uint8_t type = wire[L::kType];
  const std::uint8_t flags = wire[L::kFlags];
  const std::uint8_t hop_count = wire[L::kHopCount];
  const std::uint8_t current = wire[L::kCurrentHop];
  if (type > kMaxType || (flags & ~kFlagEer) != 0 || hop_count == 0 ||
      hop_count > kMaxHops || current >= hop_count) {
    ++dropped_;
    return Verdict::kMalformed;
  }
  const bool is_eer = (flags & kFlagEer) != 0;
  const size_t hvf_off = L::hvf_offset(is_eer, hop_count);
  if (len < hvf_off + proto::kHvfLen * hop_count) {
    ++dropped_;
    return Verdict::kMalformed;
  }
  // Total length must match the declared payload.
  const std::uint32_t payload_len = rd32(wire + L::ts_offset(is_eer) + 4);
  if (len != hvf_off + proto::kHvfLen * hop_count + payload_len) {
    ++dropped_;
    return Verdict::kMalformed;
  }

  // Expiry (ResInfo layout: as8 | id4 | bw4 | exp4 | ver1).
  const UnixSec exp_time = rd32(wire + L::kResInfo + 16);
  if (exp_time <= static_cast<UnixSec>(clock_->now_ns() / kNsPerSec)) {
    ++dropped_;
    return Verdict::kExpired;
  }

  // Reconstruct the MAC inputs straight from the header bytes.
  proto::ResInfo ri;
  ri.src_as = AsId::from_raw(rd64(wire + L::kResInfo));
  ri.res_id = rd32(wire + L::kResInfo + 8);
  ri.bw_kbps = rd32(wire + L::kResInfo + 12);
  ri.exp_time = exp_time;
  ri.version = wire[L::kResInfo + 20];

  const std::uint8_t* hop_ptr =
      wire + L::path_offset(is_eer) + L::kPerHopPath * current;
  const IfId in = rd16(hop_ptr);
  const IfId eg = rd16(hop_ptr + 2);

  proto::Hvf expected;
  if (is_eer) {
    proto::EerInfo ei;
    std::memcpy(ei.src_host.bytes, wire + L::kAfterResInfo, 16);
    std::memcpy(ei.dst_host.bytes, wire + L::kAfterResInfo + 16, 16);
    const HopAuth sigma = compute_hopauth(hop_cipher_, ri, ei, in, eg);
    const std::uint32_t ts = rd32(wire + L::ts_offset(true));
    expected = compute_data_hvf(sigma, ts, static_cast<std::uint32_t>(len));
  } else {
    expected = compute_seg_hvf(hop_cipher_, ri, in, eg);
  }

  const std::uint8_t* hvf = wire + hvf_off + proto::kHvfLen * current;
  std::uint8_t diff = 0;
  for (size_t i = 0; i < proto::kHvfLen; ++i) diff |= expected[i] ^ hvf[i];
  if (diff != 0) {
    ++dropped_;
    return Verdict::kBadHvf;
  }

  ++forwarded_;
  if (current + 1u >= hop_count) return Verdict::kDeliver;
  wire[L::kCurrentHop] = static_cast<std::uint8_t>(current + 1);
  return Verdict::kForward;
}

void WireRouter::process_burst(PacketView* pkts, size_t n, Verdict* verdicts) {
  for (size_t i = 0; i < n; ++i) {
    verdicts[i] = process(pkts[i].data, pkts[i].len);
  }
}

}  // namespace colibri::dataplane
