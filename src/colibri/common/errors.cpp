#include "colibri/common/errors.hpp"

namespace colibri {

const char* errc_name(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kBandwidthUnavailable: return "bandwidth-unavailable";
    case Errc::kNoSuchReservation: return "no-such-reservation";
    case Errc::kNoSuchSegment: return "no-such-segment";
    case Errc::kExpired: return "expired";
    case Errc::kBadVersion: return "bad-version";
    case Errc::kAuthFailed: return "auth-failed";
    case Errc::kRateLimited: return "rate-limited";
    case Errc::kPolicyDenied: return "policy-denied";
    case Errc::kMalformed: return "malformed";
    case Errc::kNotWhitelisted: return "not-whitelisted";
    case Errc::kBlocked: return "blocked";
    case Errc::kReplay: return "replay";
    case Errc::kInternal: return "internal";
    case Errc::kOveruse: return "overuse";
  }
  return "unknown";
}

}  // namespace colibri
