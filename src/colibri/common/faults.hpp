// Deterministic fault injection for chaos testing.
//
// One seeded FaultInjector is the single source of adversity in a
// simulated deployment: the MessageBus consults it before delivering a
// control message (drop / duplicate / delay-and-reorder), SimLink
// consults it before moving a packet across a link that may be down, and
// a FaultyStorage WAL decorator (sim/faults.hpp) consults it before an
// append that may be torn or bit-flipped. Everything is driven by the
// shared Clock and one Rng stream, so a whole chaos scenario — faults,
// failovers, recoveries — replays bit-identically from a single seed.
//
// Fault *plans* are declarative: message plans are probability windows in
// Clock time, link failures are (fail, heal) schedules, WAL faults are
// keyed by append index. The injector never acts on its own — components
// ask for verdicts at the moment they would act, which keeps the Rng
// draw order identical between runs.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/rand.hpp"
#include "colibri/telemetry/events.hpp"

namespace colibri {

// Verdict for one control-plane message delivery.
enum class MessageFault : std::uint8_t {
  kDeliver = 0,  // no fault
  kDrop,         // silently lost; the caller sees an empty response
  kDuplicate,    // delivered twice (handler side effects reapply)
  kDelay,        // deferred to the next MessageBus::deliver_delayed() pump
};

const char* message_fault_name(MessageFault f);

// A probability window over control-plane deliveries. Probabilities are
// cumulative per message: drop wins over duplicate wins over delay.
struct MessageFaultPlan {
  TimeNs start_ns = 0;
  TimeNs end_ns = std::numeric_limits<TimeNs>::max();
  std::uint64_t dst_raw = 0;  // raw AsId the plan targets; 0 = any
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
};

enum class WalFaultKind : std::uint8_t {
  kNone = 0,
  kTear,        // append only a prefix (crash mid-write)
  kBitFlip,     // flip one bit of the frame (media corruption)
  kDropAppend,  // lose the append entirely (crash before write)
};

struct WalFault {
  WalFaultKind kind = WalFaultKind::kNone;
  // kTear: bytes of the frame to keep; kBitFlip: bit index to flip
  // (both taken modulo the frame size by the storage decorator).
  std::uint64_t param = 0;
};

// A link going down or coming back up, reported by
// poll_link_transitions() in deterministic (at_ns, link_id) order.
struct LinkTransition {
  std::uint64_t link_id = 0;
  bool up = false;
  TimeNs at_ns = 0;
};

// Point-in-time view of the injector's counters.
struct FaultStats {
  std::uint64_t msg_delivered = 0;
  std::uint64_t msg_dropped = 0;
  std::uint64_t msg_duplicated = 0;
  std::uint64_t msg_delayed = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t wal_faults = 0;
};

class FaultInjector {
 public:
  // `events` (nullable) receives one "fault.*" record per injected fault
  // (component "fault"), so the audit trail narrates the adversity
  // alongside the failovers and recoveries it causes.
  FaultInjector(const Clock& clock, std::uint64_t seed,
                telemetry::EventLog* events = nullptr)
      : clock_(&clock), seed_(seed), rng_(seed), events_(events) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  std::uint64_t seed() const { return seed_; }

  // --- control-plane messages --------------------------------------------
  void add_message_plan(MessageFaultPlan plan) {
    plans_.push_back(plan);
  }
  // Verdict for a delivery to `dst_raw` at the current Clock time. Every
  // call consumes exactly one Rng draw (plan match or not), so editing a
  // plan's window never shifts the random stream of the rest of the run.
  MessageFault message_verdict(std::uint64_t dst_raw);

  // --- links --------------------------------------------------------------
  void schedule_link_failure(std::uint64_t link_id, TimeNs fail_ns,
                             TimeNs heal_ns);
  bool link_up(std::uint64_t link_id) const;
  // Transitions whose scheduled time has passed and that were not yet
  // reported; ordered by (at_ns, link_id, down-before-up).
  std::vector<LinkTransition> poll_link_transitions();
  // A packet hit a down link; counted (and attributed) here.
  void note_link_drop(std::uint64_t link_id);

  // --- WAL appends --------------------------------------------------------
  void schedule_wal_fault(std::uint64_t append_index, WalFaultKind kind,
                          std::uint64_t param = 0) {
    wal_plan_[append_index] = WalFault{kind, param};
  }
  // Arms a one-shot fault for whichever append comes next (harnesses that
  // cannot predict the append index, e.g. "tear the write the crash
  // interrupts").
  void arm_wal_fault(WalFaultKind kind, std::uint64_t param = 0) {
    armed_wal_ = WalFault{kind, param};
  }
  // Consumed by the storage decorator once per append.
  WalFault next_wal_fault();
  std::uint64_t wal_appends() const { return wal_appends_; }

  FaultStats snapshot() const { return stats_; }

 private:
  struct LinkSchedule {
    TimeNs fail_ns = 0;
    TimeNs heal_ns = 0;
    bool down_reported = false;
    bool up_reported = false;
  };

  const Clock* clock_;
  std::uint64_t seed_;
  Rng rng_;
  telemetry::EventLog* events_;
  std::vector<MessageFaultPlan> plans_;
  // Ordered by link id so polls report ties deterministically.
  std::map<std::uint64_t, std::vector<LinkSchedule>> links_;
  std::map<std::uint64_t, WalFault> wal_plan_;  // append index -> fault
  WalFault armed_wal_;
  std::uint64_t wal_appends_ = 0;
  FaultStats stats_;
};

}  // namespace colibri
