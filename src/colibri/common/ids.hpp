// Identifier types shared across the Colibri stack.
//
// SCION-style addressing: an AS is globally identified by the pair
// (ISD, AS number), packed into a 64-bit value (16-bit ISD, 48-bit AS).
// Interfaces (IfId) are AS-local 16-bit identifiers of inter-domain links.
// Reservations are globally identified by (SrcAS, ResId) — see paper §4.3.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace colibri {

// Isolation-domain identifier (paper §2.2).
using IsdId = std::uint16_t;

// Packed (ISD, AS) pair. The zero value is "unspecified".
class AsId {
 public:
  constexpr AsId() = default;
  constexpr AsId(IsdId isd, std::uint64_t as)
      : value_((static_cast<std::uint64_t>(isd) << 48) |
               (as & 0xFFFF'FFFF'FFFFULL)) {}

  static constexpr AsId from_raw(std::uint64_t raw) {
    AsId id;
    id.value_ = raw;
    return id;
  }

  constexpr std::uint64_t raw() const { return value_; }
  constexpr IsdId isd() const {
    return static_cast<IsdId>(value_ >> 48);
  }
  constexpr std::uint64_t as_number() const {
    return value_ & 0xFFFF'FFFF'FFFFULL;
  }
  constexpr bool valid() const { return value_ != 0; }

  friend constexpr auto operator<=>(AsId, AsId) = default;

  std::string to_string() const;

 private:
  std::uint64_t value_ = 0;
};

// AS-local interface identifier; 0 denotes "no interface" (used for the
// ingress of the first AS and the egress of the last AS on a path).
using IfId = std::uint16_t;
inline constexpr IfId kNoInterface = 0;

// Per-source-AS reservation identifier; (SrcAS, ResId) is globally unique.
using ResId = std::uint32_t;

// Reservation version (paper §4.2).
using ResVer = std::uint8_t;

// Bandwidth in kilobits per second. 32 bits covers up to ~4.3 Tbps.
using BwKbps = std::uint32_t;

// End-host address, unique inside its AS (16 bytes, IPv6-sized).
struct HostAddr {
  std::uint8_t bytes[16] = {};

  friend constexpr auto operator<=>(const HostAddr&, const HostAddr&) = default;

  static HostAddr from_u64(std::uint64_t v);
  std::uint64_t low_u64() const;
  std::string to_string() const;
};

// Globally unique reservation key.
struct ResKey {
  AsId src_as;
  ResId res_id = 0;

  friend constexpr auto operator<=>(const ResKey&, const ResKey&) = default;
};

}  // namespace colibri

namespace std {
template <>
struct hash<colibri::AsId> {
  size_t operator()(colibri::AsId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
template <>
struct hash<colibri::ResKey> {
  size_t operator()(const colibri::ResKey& k) const noexcept {
    std::uint64_t h = k.src_as.raw() * 0x9E3779B97F4A7C15ULL;
    h ^= k.res_id + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};
}  // namespace std
