// Deterministic pseudo-random generation for workloads and tests.
//
// Benchmarks must be reproducible run-to-run, so everything that needs
// randomness takes an explicit seeded generator rather than touching
// global entropy. xoshiro256** — fast, high quality, tiny state.
#pragma once

#include <cstdint>

namespace colibri {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC011B121);

  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double uniform();

  void fill(std::uint8_t* dst, std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace colibri
