#include "colibri/common/clock.hpp"

namespace colibri {

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

std::uint32_t PacketTimestamp::encode(TimeNs now, UnixSec exp_time) {
  const TimeNs exp_ns = static_cast<TimeNs>(exp_time) * kNsPerSec;
  TimeNs before = exp_ns - now;
  if (before < 0) before = 0;
  // ticks = before / 2^-22 s = before_ns * 2^22 / 1e9
  const auto ticks = static_cast<std::uint64_t>(before) * (1ULL << kTickShift) /
                     static_cast<std::uint64_t>(kNsPerSec);
  return static_cast<std::uint32_t>(ticks);
}

TimeNs PacketTimestamp::decode(std::uint32_t ts, UnixSec exp_time) {
  const TimeNs exp_ns = static_cast<TimeNs>(exp_time) * kNsPerSec;
  const auto before_ns = static_cast<TimeNs>(
      static_cast<std::uint64_t>(ts) * static_cast<std::uint64_t>(kNsPerSec) >>
      kTickShift);
  return exp_ns - before_ns;
}

}  // namespace colibri
