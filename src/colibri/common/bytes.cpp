#include "colibri/common/bytes.hpp"

namespace colibri {

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

}  // namespace colibri
