// Little-endian byte codecs and a growable write buffer / bounded reader.
//
// All Colibri wire formats are little-endian and fixed-layout; these
// helpers keep the encoders/decoders free of manual shifting bugs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace colibri {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

template <typename T>
inline void put_le(Bytes& out, T v) {
  static_assert(std::is_unsigned_v<T>);
  for (size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <typename T>
inline T get_le(const std::uint8_t* p) {
  static_assert(std::is_unsigned_v<T>);
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(p[i]) << (8 * i);
  }
  return v;
}

// Bounded sequential reader over a byte span. All reads are checked; a
// failed read marks the reader bad and subsequent reads return zeros, so
// codecs can check `ok()` once at the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  template <typename T>
  T read() {
    static_assert(std::is_unsigned_v<T>);
    if (!take(sizeof(T))) return T{0};
    return get_le<T>(data_.data() + pos_ - sizeof(T));
  }

  // n == 0 is a no-op: dst may be null (e.g. an empty vector's data()).
  bool read_bytes(std::uint8_t* dst, size_t n) {
    if (!take(n)) {
      if (n != 0) std::memset(dst, 0, n);
      return false;
    }
    if (n != 0) std::memcpy(dst, data_.data() + pos_ - n, n);
    return true;
  }

  Bytes read_vec(size_t n) {
    Bytes b(n, 0);
    read_bytes(b.data(), n);
    return b;
  }

  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  bool ok() const { return ok_; }

 private:
  bool take(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  BytesView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

inline void append_bytes(Bytes& out, BytesView in) {
  out.insert(out.end(), in.begin(), in.end());
}

std::string to_hex(BytesView data);

}  // namespace colibri
