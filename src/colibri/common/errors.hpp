// Error codes and a lightweight Result type used across the control plane.
//
// The data-plane fast path never allocates or constructs Results; it uses
// plain enums (see dataplane/router.hpp), which map onto Errc via
// errc_from_verdict() so telemetry counter names and error names agree.
// Results are for control-plane request handling, where the failure
// reason must travel back to the initiator (paper §3.3: "the initiator
// can determine the location of potential bottlenecks") — the optional
// error-context string carries exactly that bottleneck location.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace colibri {

enum class Errc : std::uint8_t {
  kOk = 0,
  kBandwidthUnavailable,   // admission denied: not enough capacity
  kNoSuchReservation,      // unknown (SrcAS, ResId)
  kNoSuchSegment,          // path segment not found / not registered
  kExpired,                // reservation or version expired
  kBadVersion,             // version mismatch / not activated
  kAuthFailed,             // MAC or token verification failed
  kRateLimited,            // per-AS or per-reservation rate limit hit
  kPolicyDenied,           // local AS policy refused the request
  kMalformed,              // packet or message failed to parse
  kNotWhitelisted,         // SegR use denied by its whitelist (App. C)
  kBlocked,                // source AS is on the blocklist
  kReplay,                 // duplicate suppression hit
  kInternal,
  kOveruse,                // confirmed reservation overuse (§4.8)
};

const char* errc_name(Errc e);

namespace detail {

// Failure payload: the code plus an optional human-readable context
// ("where on the path it went wrong"). Only error paths allocate.
struct ResultError {
  Errc code = Errc::kInternal;
  std::string context;
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}             // NOLINT(implicit)
  Result(Errc e) : v_(detail::ResultError{e, {}}) {}    // NOLINT(implicit)
  Result(Errc e, std::string context)
      : v_(detail::ResultError{e, std::move(context)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const { return std::get<T>(v_); }
  T& value() { return std::get<T>(v_); }
  T&& take() { return std::move(std::get<T>(v_)); }

  Errc error() const {
    return ok() ? Errc::kOk : std::get<detail::ResultError>(v_).code;
  }
  // Empty when ok or when no context was attached.
  const std::string& error_context() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : std::get<detail::ResultError>(v_).context;
  }

  // Attaches (or prefixes) context on the error path; no-op when ok.
  Result&& with_context(std::string context) && {
    if (!ok()) {
      auto& err = std::get<detail::ResultError>(v_);
      if (err.context.empty()) {
        err.context = std::move(context);
      } else {
        err.context = std::move(context) + ": " + err.context;
      }
    }
    return std::move(*this);
  }

  // Transforms the success value; the error (and its context) pass
  // through untouched.
  template <typename F>
  auto map(F&& f) && -> Result<std::invoke_result_t<F, T&&>> {
    using U = std::invoke_result_t<F, T&&>;
    if (!ok()) {
      auto& err = std::get<detail::ResultError>(v_);
      return Result<U>(err.code, std::move(err.context));
    }
    if constexpr (std::is_void_v<U>) {
      std::forward<F>(f)(take());
      return Result<U>();
    } else {
      return Result<U>(std::forward<F>(f)(take()));
    }
  }

  // Chains another fallible step; F must return a Result.
  template <typename F>
  auto and_then(F&& f) && -> std::invoke_result_t<F, T&&> {
    using R = std::invoke_result_t<F, T&&>;
    if (!ok()) {
      auto& err = std::get<detail::ResultError>(v_);
      return R(err.code, std::move(err.context));
    }
    return std::forward<F>(f)(take());
  }

 private:
  std::variant<T, detail::ResultError> v_;
};

// Result<void>: success carries no value. Errc::kOk constructs the
// success state, so `return {};` and `return Errc::kOk;` both work.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : err_{Errc::kOk, {}} {}
  Result(Errc e) : err_{e, {}} {}                       // NOLINT(implicit)
  Result(Errc e, std::string context) : err_{e, std::move(context)} {}

  bool ok() const { return err_.code == Errc::kOk; }
  explicit operator bool() const { return ok(); }

  Errc error() const { return err_.code; }
  const std::string& error_context() const { return err_.context; }

  Result&& with_context(std::string context) && {
    if (!ok()) {
      if (err_.context.empty()) {
        err_.context = std::move(context);
      } else {
        err_.context = std::move(context) + ": " + err_.context;
      }
    }
    return std::move(*this);
  }

  template <typename F>
  auto map(F&& f) && -> Result<std::invoke_result_t<F>> {
    using U = std::invoke_result_t<F>;
    if (!ok()) return Result<U>(err_.code, std::move(err_.context));
    if constexpr (std::is_void_v<U>) {
      std::forward<F>(f)();
      return Result<U>();
    } else {
      return Result<U>(std::forward<F>(f)());
    }
  }

  template <typename F>
  auto and_then(F&& f) && -> std::invoke_result_t<F> {
    using R = std::invoke_result_t<F>;
    if (!ok()) return R(err_.code, std::move(err_.context));
    return std::forward<F>(f)();
  }

 private:
  detail::ResultError err_;
};

}  // namespace colibri
