// Error codes and a lightweight Result type used across the control plane.
//
// The data-plane fast path never allocates or constructs Results; it uses
// plain enums (see dataplane/router.hpp). Results are for control-plane
// request handling, where the failure reason must travel back to the
// initiator (paper §3.3: "the initiator can determine the location of
// potential bottlenecks").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace colibri {

enum class Errc : std::uint8_t {
  kOk = 0,
  kBandwidthUnavailable,   // admission denied: not enough capacity
  kNoSuchReservation,      // unknown (SrcAS, ResId)
  kNoSuchSegment,          // path segment not found / not registered
  kExpired,                // reservation or version expired
  kBadVersion,             // version mismatch / not activated
  kAuthFailed,             // MAC or token verification failed
  kRateLimited,            // per-AS or per-reservation rate limit hit
  kPolicyDenied,           // local AS policy refused the request
  kMalformed,              // packet or message failed to parse
  kNotWhitelisted,         // SegR use denied by its whitelist (App. C)
  kBlocked,                // source AS is on the blocklist
  kReplay,                 // duplicate suppression hit
  kInternal,
};

const char* errc_name(Errc e);

template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}             // NOLINT(implicit)
  Result(Errc e) : v_(e) {}                             // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const { return std::get<T>(v_); }
  T& value() { return std::get<T>(v_); }
  T&& take() { return std::move(std::get<T>(v_)); }

  Errc error() const { return ok() ? Errc::kOk : std::get<Errc>(v_); }

 private:
  std::variant<T, Errc> v_;
};

}  // namespace colibri
