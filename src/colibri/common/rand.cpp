#include "colibri/common/rand.hpp"

namespace colibri {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection-free Lemire reduction; bias is negligible for our workloads.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Rng::fill(std::uint8_t* dst, std::size_t n) {
  while (n >= 8) {
    const std::uint64_t v = next();
    for (int i = 0; i < 8; ++i) dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
    dst += 8;
    n -= 8;
  }
  if (n > 0) {
    const std::uint64_t v = next();
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

}  // namespace colibri
