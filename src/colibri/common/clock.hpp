// Time handling.
//
// All simulated components share a Clock interface so tests and the
// discrete-event simulator can control time; production-style components
// (gateway, router benchmarks) use the monotonic system clock. Inter-AS
// synchronization is assumed within ±0.1 s (paper §2.3); SimClock supports
// per-AS skew injection so tests can exercise those tolerance windows.
#pragma once

#include <chrono>
#include <cstdint>

namespace colibri {

// Nanoseconds since an arbitrary epoch.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerSec = 1'000'000'000;

// Unix-style seconds used in wire formats (ExpT field).
using UnixSec = std::uint32_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs now_ns() const = 0;

  UnixSec now_sec() const {
    return static_cast<UnixSec>(now_ns() / kNsPerSec);
  }
};

// Wall/monotonic clock for benchmarks and examples.
class SystemClock final : public Clock {
 public:
  TimeNs now_ns() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static SystemClock& instance();
};

// Manually advanced clock for tests and the simulator.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}

  TimeNs now_ns() const override { return now_ + skew_; }

  void advance(TimeNs delta) { now_ += delta; }
  void set(TimeNs t) { now_ = t; }
  // Inject a fixed offset, modelling imperfect inter-AS synchronization.
  void set_skew(TimeNs skew) { skew_ = skew; }
  TimeNs raw() const { return now_; }

 private:
  TimeNs now_;
  TimeNs skew_ = 0;
};

// High-precision in-packet timestamp (paper §4.3): ticks of 2^-22 s
// (~238 ns) counted *backwards* from the reservation expiration time, so a
// 32-bit field covers the full EER lifetime with per-packet uniqueness.
struct PacketTimestamp {
  static constexpr int kTickShift = 22;  // 2^-22 s per tick

  static std::uint32_t encode(TimeNs now, UnixSec exp_time);
  // Absolute time the timestamp refers to.
  static TimeNs decode(std::uint32_t ts, UnixSec exp_time);
};

}  // namespace colibri
