#include "colibri/common/faults.hpp"

#include <algorithm>

namespace colibri {

const char* message_fault_name(MessageFault f) {
  switch (f) {
    case MessageFault::kDeliver: return "deliver";
    case MessageFault::kDrop: return "drop";
    case MessageFault::kDuplicate: return "duplicate";
    case MessageFault::kDelay: return "delay";
  }
  return "?";
}

MessageFault FaultInjector::message_verdict(std::uint64_t dst_raw) {
  const TimeNs now = clock_->now_ns();
  const double roll = rng_.uniform();
  for (const auto& p : plans_) {
    if (now < p.start_ns || now >= p.end_ns) continue;
    if (p.dst_raw != 0 && p.dst_raw != dst_raw) continue;
    MessageFault verdict = MessageFault::kDeliver;
    if (roll < p.drop_p) {
      verdict = MessageFault::kDrop;
      ++stats_.msg_dropped;
    } else if (roll < p.drop_p + p.dup_p) {
      verdict = MessageFault::kDuplicate;
      ++stats_.msg_duplicated;
    } else if (roll < p.drop_p + p.dup_p + p.delay_p) {
      verdict = MessageFault::kDelay;
      ++stats_.msg_delayed;
    }
    if (verdict != MessageFault::kDeliver) {
      if (events_ != nullptr) {
        events_->emit(telemetry::Severity::kDebug, "fault", "fault.msg")
            .str("verdict", message_fault_name(verdict))
            .u64("dst", dst_raw);
      }
      return verdict;
    }
    break;  // first matching plan decides
  }
  ++stats_.msg_delivered;
  return MessageFault::kDeliver;
}

void FaultInjector::schedule_link_failure(std::uint64_t link_id,
                                          TimeNs fail_ns, TimeNs heal_ns) {
  links_[link_id].push_back(LinkSchedule{fail_ns, heal_ns, false, false});
}

bool FaultInjector::link_up(std::uint64_t link_id) const {
  const auto it = links_.find(link_id);
  if (it == links_.end()) return true;
  const TimeNs now = clock_->now_ns();
  for (const LinkSchedule& s : it->second) {
    if (now >= s.fail_ns && now < s.heal_ns) return false;
  }
  return true;
}

std::vector<LinkTransition> FaultInjector::poll_link_transitions() {
  const TimeNs now = clock_->now_ns();
  std::vector<LinkTransition> out;
  for (auto& [link_id, schedules] : links_) {
    for (LinkSchedule& s : schedules) {
      if (!s.down_reported && now >= s.fail_ns) {
        s.down_reported = true;
        out.push_back(LinkTransition{link_id, false, s.fail_ns});
      }
      if (!s.up_reported && now >= s.heal_ns) {
        s.up_reported = true;
        out.push_back(LinkTransition{link_id, true, s.heal_ns});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LinkTransition& a, const LinkTransition& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              if (a.link_id != b.link_id) return a.link_id < b.link_id;
              return !a.up && b.up;  // a fail precedes a heal at the same tick
            });
  if (events_ != nullptr) {
    for (const LinkTransition& t : out) {
      events_
          ->emit(telemetry::Severity::kWarn, "fault",
                 t.up ? "fault.link.up" : "fault.link.down")
          .u64("link", t.link_id)
          .u64("at_ns", static_cast<std::uint64_t>(t.at_ns));
    }
  }
  return out;
}

void FaultInjector::note_link_drop(std::uint64_t link_id) {
  (void)link_id;
  ++stats_.link_drops;
}

WalFault FaultInjector::next_wal_fault() {
  const std::uint64_t index = wal_appends_++;
  WalFault f;
  if (armed_wal_.kind != WalFaultKind::kNone) {
    f = armed_wal_;
    armed_wal_ = WalFault{};
  } else if (auto it = wal_plan_.find(index); it != wal_plan_.end()) {
    f = it->second;
    wal_plan_.erase(it);
  }
  if (f.kind != WalFaultKind::kNone) {
    ++stats_.wal_faults;
    if (events_ != nullptr) {
      events_->emit(telemetry::Severity::kWarn, "fault", "fault.wal")
          .u64("append", index)
          .u64("kind", static_cast<std::uint64_t>(f.kind))
          .u64("param", f.param);
    }
  }
  return f;
}

}  // namespace colibri
