#include "colibri/common/ids.hpp"

#include <cstdio>
#include <cstring>

namespace colibri {

std::string AsId::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u-%llu", static_cast<unsigned>(isd()),
                static_cast<unsigned long long>(as_number()));
  return buf;
}

HostAddr HostAddr::from_u64(std::uint64_t v) {
  HostAddr a;
  for (int i = 0; i < 8; ++i) {
    a.bytes[15 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return a;
}

std::uint64_t HostAddr::low_u64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[15 - i]) << (8 * i);
  }
  return v;
}

std::string HostAddr::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "h-%016llx",
                static_cast<unsigned long long>(low_u64()));
  return buf;
}

}  // namespace colibri
