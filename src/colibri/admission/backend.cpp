#include "colibri/admission/backend.hpp"

namespace colibri::admission {

// Out-of-line key function: anchors the vtable in this translation unit.
AdmissionBackend::~AdmissionBackend() = default;

}  // namespace colibri::admission
