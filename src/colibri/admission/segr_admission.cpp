#include "colibri/admission/segr_admission.hpp"

namespace colibri::admission {

void SegrAdmission::set_interface_capacity(IfId ifid, BwKbps cap) {
  std::lock_guard lock(mu_);
  ingress_caps_[ifid] = cap;
  ledger_.set_egress_capacity(ifid, cap);
}

BwKbps SegrAdmission::interface_capacity(IfId ifid) const {
  std::lock_guard lock(mu_);
  return interface_capacity_locked(ifid);
}

BwKbps SegrAdmission::interface_capacity_locked(IfId ifid) const {
  auto it = ingress_caps_.find(ifid);
  return it == ingress_caps_.end() ? 0 : it->second;
}

void SegrAdmission::purge_pending(UnixSec now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.expires <= now) {
      ledger_.release(AsId::from_raw(it->first.src_raw), it->first.egress,
                      it->second.demand);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<BwKbps> SegrAdmission::admit(const SegrAdmissionRequest& req) {
  std::lock_guard lock(mu_);
  purge_pending(req.now);

  // A fresh request from this source supersedes its remembered
  // unsatisfied demand on the egress (avoid double counting).
  const SrcEgKey pkey{req.src_as.raw(), req.egress};
  if (auto pit = pending_.find(pkey); pit != pending_.end()) {
    ledger_.release(req.src_as, req.egress, pit->second.demand);
    pending_.erase(pit);
  }

  // Renewal: evaluate as if the old allocation were gone, so a source
  // renewing at equal demand is not treated as doubling it.
  auto prev = allocations_.find(req.key);
  if (prev != allocations_.end()) {
    ledger_.release(prev->second.src, prev->second.egress, prev->second.grant);
  }

  // The first AS on a segment has no inter-domain ingress; its demand is
  // bounded by the egress only.
  const BwKbps ingress_cap = req.ingress == kNoInterface
                                 ? req.demand_kbps
                                 : interface_capacity_locked(req.ingress);
  const TubeGrant grant =
      ledger_.evaluate(req.src_as, ingress_cap, req.egress, req.demand_kbps);

  if (grant.granted_kbps < req.min_bw_kbps || grant.granted_kbps == 0) {
    // Reinstate the old allocation if this was a failed renewal.
    if (prev != allocations_.end()) {
      ledger_.record(prev->second.src, prev->second.egress, prev->second.grant);
    }
    // Remember the unsatisfied demand: competing renewals will now see
    // the contention and shrink toward their shares, so a retry within
    // kDemandMemorySec obtains the requester's fair share.
    TubeGrant demand_only = grant;
    demand_only.granted_kbps = 0;
    if (demand_only.adjusted_demand_kbps > 0) {
      ledger_.record(req.src_as, req.egress, demand_only);
      pending_[pkey] =
          PendingDemand{demand_only, req.now + kDemandMemorySec};
    }
    return Errc::kBandwidthUnavailable;
  }

  ledger_.record(req.src_as, req.egress, grant);
  allocations_[req.key] = Allocation{req.src_as, req.egress, grant};
  return grant.granted_kbps;
}

void SegrAdmission::release(const ResKey& key) {
  std::lock_guard lock(mu_);
  auto it = allocations_.find(key);
  if (it == allocations_.end()) return;
  ledger_.release(it->second.src, it->second.egress, it->second.grant);
  allocations_.erase(it);
}

}  // namespace colibri::admission
