#include "colibri/admission/tube.hpp"

#include <algorithm>

namespace colibri::admission {

void TubeLedger::set_egress_capacity(IfId egress, BwKbps capacity_kbps) {
  egress_[egress].capacity = static_cast<double>(capacity_kbps);
}

BwKbps TubeLedger::egress_capacity(IfId egress) const {
  auto it = egress_.find(egress);
  return it == egress_.end() ? 0 : static_cast<BwKbps>(it->second.capacity);
}

TubeGrant TubeLedger::evaluate(AsId src, BwKbps ingress_cap_kbps, IfId egress,
                               BwKbps demand_kbps) const {
  TubeGrant g;
  auto it = egress_.find(egress);
  if (it == egress_.end() || it->second.capacity <= 0) return g;
  const EgressState& e = it->second;

  // Steps (1) and (2): cap the demand by ingress and egress capacity.
  const double adjusted = std::min<double>(
      {static_cast<double>(demand_kbps), static_cast<double>(ingress_cap_kbps),
       e.capacity});
  g.adjusted_demand_kbps = static_cast<BwKbps>(adjusted);
  if (adjusted <= 0) return g;

  // Step (3): this source's contribution to the share denominator is its
  // raw sum capped at the egress capacity. Compute the denominator as it
  // would look *with* this request included.
  SrcState s;
  if (auto sit = src_.find(SrcKey{src.raw(), egress}); sit != src_.end()) {
    s = sit->second;
  }
  const double old_contrib = std::min(s.raw, e.capacity);
  const double new_contrib = std::min(s.raw + adjusted, e.capacity);
  const double prospective_total = e.total_adjusted - old_contrib + new_contrib;

  // The source's fair share of the egress: proportional to its capped
  // contribution, the whole capacity when uncontended.
  const double share =
      e.capacity * new_contrib / std::max(prospective_total, e.capacity);

  // Three ceilings: the (adjusted) request itself, what remains of the
  // source's share, and what remains un-granted on the interface. The
  // share ceiling is the botnet-size-independence property in action: no
  // request volume lets one source hold more than its share for longer
  // than one renewal period.
  double grant = adjusted;
  grant = std::min(grant, share - s.granted);
  grant = std::min(grant, e.capacity - e.granted_total);
  if (grant < 0) grant = 0;
  g.granted_kbps = static_cast<BwKbps>(grant);
  return g;
}

void TubeLedger::apply_src_delta(AsId src, IfId egress, double raw_delta,
                                 double granted_delta) {
  EgressState& e = egress_[egress];
  SrcState& s = src_[SrcKey{src.raw(), egress}];
  const double old_contrib = std::min(s.raw, e.capacity);
  s.raw += raw_delta;
  if (s.raw < 0) s.raw = 0;
  s.granted += granted_delta;
  if (s.granted < 0) s.granted = 0;
  const double new_contrib = std::min(s.raw, e.capacity);
  e.total_adjusted += new_contrib - old_contrib;
  if (e.total_adjusted < 0) e.total_adjusted = 0;
}

void TubeLedger::record(AsId src, IfId egress, const TubeGrant& grant) {
  apply_src_delta(src, egress, static_cast<double>(grant.adjusted_demand_kbps),
                  static_cast<double>(grant.granted_kbps));
  egress_[egress].granted_total += static_cast<double>(grant.granted_kbps);
}

void TubeLedger::release(AsId src, IfId egress, const TubeGrant& grant) {
  apply_src_delta(src, egress,
                  -static_cast<double>(grant.adjusted_demand_kbps),
                  -static_cast<double>(grant.granted_kbps));
  EgressState& e = egress_[egress];
  e.granted_total -= static_cast<double>(grant.granted_kbps);
  if (e.granted_total < 0) e.granted_total = 0;
}

double TubeLedger::total_adjusted_demand(IfId egress) const {
  auto it = egress_.find(egress);
  return it == egress_.end() ? 0 : it->second.total_adjusted;
}

BwKbps TubeLedger::granted_total(IfId egress) const {
  auto it = egress_.find(egress);
  return it == egress_.end() ? 0
                             : static_cast<BwKbps>(it->second.granted_total);
}

double TubeLedger::source_raw_demand(AsId src, IfId egress) const {
  auto it = src_.find(SrcKey{src.raw(), egress});
  return it == src_.end() ? 0 : it->second.raw;
}

double TubeLedger::source_granted(AsId src, IfId egress) const {
  auto it = src_.find(SrcKey{src.raw(), egress});
  return it == src_.end() ? 0 : it->second.granted;
}

}  // namespace colibri::admission
