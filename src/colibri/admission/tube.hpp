// Bounded-tube-fairness ledger (paper §4.7).
//
// The admission algorithm distributes an egress interface's Colibri
// capacity among competing SegRs proportionally to their *adjusted*
// demand, obtained by
//   (1) limiting each demand by its ingress interface's capacity,
//   (2) limiting each demand by the egress interface's capacity,
//   (3) limiting the total demand of one source AS at one egress
//       interface by that interface's capacity.
// Step (3) is what yields botnet-size independence: a source (or
// coalition, each member individually bounded) cannot inflate its share
// arbitrarily by issuing more requests.
//
// THE key implementation property (Fig. 3): admission must be O(1) in the
// number of existing SegRs. This ledger is the paper's "memoization": it
// maintains, per egress interface, the total adjusted demand and the
// granted total, updated incrementally on every setup / renewal / expiry.
// An admission decision reads three aggregates and never iterates over
// reservations.
#pragma once

#include <unordered_map>

#include "colibri/common/ids.hpp"

namespace colibri::admission {

struct TubeGrant {
  BwKbps adjusted_demand_kbps = 0;  // what the ledger must later release
  BwKbps granted_kbps = 0;          // 0 means "nothing available"
};

class TubeLedger {
 public:
  // Declares the Colibri capacity of an egress interface (from the local
  // traffic matrix, §4.7). Must be called before admitting on it.
  void set_egress_capacity(IfId egress, BwKbps capacity_kbps);
  BwKbps egress_capacity(IfId egress) const;

  // Computes the grant for a demand from `src` entering at an ingress of
  // capacity `ingress_cap` and leaving via `egress` — without recording
  // it. O(1).
  TubeGrant evaluate(AsId src, BwKbps ingress_cap_kbps, IfId egress,
                     BwKbps demand_kbps) const;

  // Records an admitted reservation's contribution to the aggregates.
  void record(AsId src, IfId egress, const TubeGrant& grant);
  // Unwinds a previously recorded contribution (expiry, teardown, or the
  // old version during a renewal).
  void release(AsId src, IfId egress, const TubeGrant& grant);

  // Introspection for tests/diagnostics.
  double total_adjusted_demand(IfId egress) const;
  BwKbps granted_total(IfId egress) const;
  double source_raw_demand(AsId src, IfId egress) const;
  double source_granted(AsId src, IfId egress) const;

 private:
  struct SrcKey {
    std::uint64_t src_raw;
    IfId egress;
    friend bool operator==(const SrcKey&, const SrcKey&) = default;
  };
  struct SrcKeyHash {
    size_t operator()(const SrcKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.src_raw * 0x9E3779B97F4A7C15ULL ^
                                        k.egress);
    }
  };
  struct EgressState {
    double capacity = 0;
    // Σ_sources min(source_raw, capacity): the denominator of the
    // proportional share.
    double total_adjusted = 0;
    double granted_total = 0;
  };

  struct SrcState {
    double raw = 0;      // Σ adjusted demands (uncapped)
    double granted = 0;  // Σ grants currently held by this source
  };

  std::unordered_map<IfId, EgressState> egress_;
  // Per (source, egress): the raw adjusted-demand sum — whose *capped*
  // value is the source's contribution to total_adjusted — and the total
  // bandwidth currently granted to the source. Bounding each source's
  // grants by its proportional share (not merely by the residual
  // capacity) is what makes renewals converge to fairness even against a
  // first-mover that grabbed everything: each of its renewals re-admits
  // against its share and releases the excess.
  std::unordered_map<SrcKey, SrcState, SrcKeyHash> src_;

  // Applies deltas to the (src, egress) state and propagates the capped
  // contribution change into total_adjusted.
  void apply_src_delta(AsId src, IfId egress, double raw_delta,
                       double granted_delta);
};

}  // namespace colibri::admission
