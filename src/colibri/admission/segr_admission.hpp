// Per-AS segment-reservation admission (paper §4.7, Fig. 3).
//
// Wraps the TubeLedger with the bookkeeping of a real CServ: admissions
// record their contribution, renewals swap the old version's contribution
// for the new one, expiries release it. The grant decision itself is O(1)
// in the number of existing SegRs.
//
// Concurrency: SegR admission needs the complete per-egress view (the
// tube shares couple every reservation on an egress), so it runs as a
// single coordinator behind one mutex — the App. D decomposition keeps
// exactly one sub-service for SegReqs for the same reason. The O(1)
// decision keeps the critical section tiny; the sharded concurrency
// lives in the EER path, which dominates request volume.
#pragma once

#include <mutex>
#include <unordered_map>

#include "colibri/admission/tube.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/reservation/segr.hpp"

namespace colibri::admission {

struct SegrAdmissionRequest {
  AsId src_as;
  ResKey key;        // reservation being set up or renewed
  IfId ingress = kNoInterface;
  IfId egress = kNoInterface;
  BwKbps min_bw_kbps = 0;
  BwKbps demand_kbps = 0;
  UnixSec now = 0;  // drives the unsatisfied-demand memory
};

class SegrAdmission {
 public:
  // Capacities come from the local traffic matrix: Colibri share of each
  // interface (ingress capacity bounds demand; egress capacity is what the
  // ledger distributes).
  void set_interface_capacity(IfId ifid, BwKbps colibri_capacity_kbps);
  BwKbps interface_capacity(IfId ifid) const;

  // Decides how much bandwidth this AS grants the request and records the
  // allocation. Fails with kBandwidthUnavailable if the grant would fall
  // below min_bw; in that case the *demand* is remembered for one
  // SegR lifetime (kDemandMemorySec), so renewals of competing
  // reservations see the contention, shrink toward their proportional
  // shares, and a retry succeeds — the mechanism behind "a benign AS can
  // always obtain a finite minimum bandwidth" (§5.2) given the short
  // reservation lifetimes. A second admit() for the same key replaces the
  // previous allocation (renewal semantics).
  Result<BwKbps> admit(const SegrAdmissionRequest& req);

  // Releases the allocation of an expired / torn-down / rejected SegR.
  void release(const ResKey& key);

  // Read-side introspection; callers must be quiesced (tests/diagnostics).
  const TubeLedger& ledger() const { return ledger_; }
  size_t tracked() const {
    std::lock_guard lock(mu_);
    return allocations_.size();
  }
  size_t pending_demands() const {
    std::lock_guard lock(mu_);
    return pending_.size();
  }

  // How long an unsatisfied demand keeps shaping the shares.
  static constexpr std::uint32_t kDemandMemorySec = 300;

 private:
  struct Allocation {
    AsId src;
    IfId egress;
    TubeGrant grant;
  };
  struct SrcEgKey {
    std::uint64_t src_raw;
    IfId egress;
    friend bool operator==(const SrcEgKey&, const SrcEgKey&) = default;
  };
  struct SrcEgHash {
    size_t operator()(const SrcEgKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.src_raw * 0x9E3779B97F4A7C15ULL ^
                                        k.egress);
    }
  };
  struct PendingDemand {
    TubeGrant demand;  // granted_kbps == 0
    UnixSec expires = 0;
  };

  // Callers hold mu_.
  void purge_pending(UnixSec now);
  BwKbps interface_capacity_locked(IfId ifid) const;

  mutable std::mutex mu_;
  TubeLedger ledger_;
  std::unordered_map<IfId, BwKbps> ingress_caps_;
  std::unordered_map<ResKey, Allocation> allocations_;
  // One remembered unsatisfied demand per (source, egress).
  std::unordered_map<SrcEgKey, PendingDemand, SrcEgHash> pending_;
};

}  // namespace colibri::admission
