#include "colibri/admission/eer_admission.hpp"

#include <algorithm>

namespace colibri::admission {

BwKbps TransferLedger::evaluate(const ResKey& up, BwKbps up_bw_kbps,
                                const ResKey& core,
                                BwKbps core_eer_capacity_kbps,
                                BwKbps request_kbps) const {
  const double core_cap = static_cast<double>(core_eer_capacity_kbps);
  const double up_cap = static_cast<double>(up_bw_kbps);

  double raw = 0, alloc = 0;
  if (auto it = pairs_.find(PairKey{up, core}); it != pairs_.end()) {
    raw = it->second.raw_demand;
    alloc = it->second.allocated;
  }
  double total = 0;
  if (auto it = cores_.find(core); it != cores_.end()) {
    total = it->second.total_capped;
  }

  // Prospective demand including this request.
  const double old_contrib = std::min(raw, up_cap);
  const double new_contrib =
      std::min(raw + static_cast<double>(request_kbps), up_cap);
  const double prospective_total = total - old_contrib + new_contrib;

  // Uncontended core-SegR: the share rule imposes no extra limit.
  if (prospective_total <= core_cap) return request_kbps;

  // Contended: this up-SegR's fair share of the core-SegR.
  const double share = core_cap * new_contrib / prospective_total;
  const double grantable = share - alloc;
  if (grantable <= 0) return 0;
  return static_cast<BwKbps>(
      std::min(grantable, static_cast<double>(request_kbps)));
}

void TransferLedger::record(const ResKey& up, BwKbps up_bw_kbps,
                            const ResKey& core, BwKbps demand_kbps,
                            BwKbps granted_kbps) {
  PairState& p = pairs_[PairKey{up, core}];
  CoreState& c = cores_[core];
  const double up_cap = static_cast<double>(up_bw_kbps);
  const double old_contrib = std::min(p.raw_demand, up_cap);
  p.raw_demand += static_cast<double>(demand_kbps);
  p.allocated += static_cast<double>(granted_kbps);
  c.total_capped += std::min(p.raw_demand, up_cap) - old_contrib;
}

void TransferLedger::release(const ResKey& up, BwKbps up_bw_kbps,
                             const ResKey& core, BwKbps demand_kbps,
                             BwKbps granted_kbps) {
  auto it = pairs_.find(PairKey{up, core});
  if (it == pairs_.end()) return;
  PairState& p = it->second;
  CoreState& c = cores_[core];
  const double up_cap = static_cast<double>(up_bw_kbps);
  const double old_contrib = std::min(p.raw_demand, up_cap);
  p.raw_demand = std::max(0.0, p.raw_demand - static_cast<double>(demand_kbps));
  p.allocated = std::max(0.0, p.allocated - static_cast<double>(granted_kbps));
  c.total_capped += std::min(p.raw_demand, up_cap) - old_contrib;
  if (c.total_capped < 0) c.total_capped = 0;
}

double TransferLedger::total_capped_demand(const ResKey& core) const {
  auto it = cores_.find(core);
  return it == cores_.end() ? 0 : it->second.total_capped;
}

Result<BwKbps> EerAdmission::admit(const Request& req, UnixSec now) {
  (void)now;
  if (req.segr_in == nullptr) return Errc::kNoSuchSegment;
  reservation::SegrRecord* in = req.segr_in;
  reservation::SegrRecord* out = req.segr_out;

  // Renewal semantics: temporarily give back the EER's current allocation
  // so only the *increase* competes for free bandwidth (all versions share
  // one monitored flow; the max version is what counts, §4.2/§4.8).
  auto prev = allocations_.find(req.eer_key);
  Allocation old{};
  if (prev != allocations_.end()) {
    old = prev->second;
    if (old.in.segr != nullptr) {
      old.in.segr->eer_allocated_kbps -= old.in.allocated;
    }
    if (old.out.segr != nullptr) {
      old.out.segr->eer_allocated_kbps -= old.out.allocated;
    }
    if (old.transfer_recorded) {
      transfer_.release(old.up_key, old.up_bw, old.core_key, old.demand,
                        old.granted);
    }
  }

  // Availability in each adjacent SegR.
  BwKbps grant = std::min(req.demand_kbps, in->eer_available_kbps());
  if (out != nullptr && out != in) {
    grant = std::min(grant, out->eer_available_kbps());
    // Transfer split between an up- and a core-SegR (§4.7 transfer AS).
    const bool up_core = in->seg_type == topology::SegType::kUp &&
                         out->seg_type == topology::SegType::kCore;
    if (up_core) {
      grant = std::min(grant, transfer_.evaluate(in->key, in->active.bw_kbps,
                                                 out->key, out->active.bw_kbps,
                                                 req.demand_kbps));
    }
  }

  if (grant < req.min_bw_kbps || grant == 0) {
    // Failed: reinstate the old allocation.
    if (prev != allocations_.end()) {
      if (old.in.segr != nullptr) {
        old.in.segr->eer_allocated_kbps += old.in.allocated;
      }
      if (old.out.segr != nullptr) {
        old.out.segr->eer_allocated_kbps += old.out.allocated;
      }
      if (old.transfer_recorded) {
        transfer_.record(old.up_key, old.up_bw, old.core_key, old.demand,
                         old.granted);
      }
    }
    return Errc::kBandwidthUnavailable;
  }

  Allocation alloc{};
  alloc.in = SegrSlice{in, grant};
  in->eer_allocated_kbps += grant;
  if (out != nullptr && out != in) {
    alloc.out = SegrSlice{out, grant};
    out->eer_allocated_kbps += grant;
    if (in->seg_type == topology::SegType::kUp &&
        out->seg_type == topology::SegType::kCore) {
      transfer_.record(in->key, in->active.bw_kbps, out->key, req.demand_kbps,
                       grant);
      alloc.transfer_recorded = true;
      alloc.up_key = in->key;
      alloc.core_key = out->key;
      alloc.up_bw = in->active.bw_kbps;
      alloc.demand = req.demand_kbps;
      alloc.granted = grant;
    }
  }
  allocations_[req.eer_key] = alloc;
  return grant;
}

void EerAdmission::release(const ResKey& eer_key) {
  auto it = allocations_.find(eer_key);
  if (it == allocations_.end()) return;
  Allocation& a = it->second;
  if (a.in.segr != nullptr) {
    a.in.segr->eer_allocated_kbps -=
        std::min(a.in.allocated, a.in.segr->eer_allocated_kbps);
  }
  if (a.out.segr != nullptr) {
    a.out.segr->eer_allocated_kbps -=
        std::min(a.out.allocated, a.out.segr->eer_allocated_kbps);
  }
  if (a.transfer_recorded) {
    transfer_.release(a.up_key, a.up_bw, a.core_key, a.demand, a.granted);
  }
  allocations_.erase(it);
}

}  // namespace colibri::admission
