#include "colibri/admission/eer_admission.hpp"

#include <algorithm>

namespace colibri::admission {

BwKbps TransferLedger::evaluate(const ResKey& up, BwKbps up_bw_kbps,
                                const ResKey& core,
                                BwKbps core_eer_capacity_kbps,
                                BwKbps request_kbps) const {
  const double core_cap = static_cast<double>(core_eer_capacity_kbps);
  const double up_cap = static_cast<double>(up_bw_kbps);

  double raw = 0, alloc = 0;
  if (auto it = pairs_.find(PairKey{up, core}); it != pairs_.end()) {
    raw = it->second.raw_demand;
    alloc = it->second.allocated;
  }
  double total = 0;
  if (auto it = cores_.find(core); it != cores_.end()) {
    total = it->second.total_capped;
  }

  // Prospective demand including this request.
  const double old_contrib = std::min(raw, up_cap);
  const double new_contrib =
      std::min(raw + static_cast<double>(request_kbps), up_cap);
  const double prospective_total = total - old_contrib + new_contrib;

  // Uncontended core-SegR: the share rule imposes no extra limit.
  if (prospective_total <= core_cap) return request_kbps;

  // Contended: this up-SegR's fair share of the core-SegR.
  const double share = core_cap * new_contrib / prospective_total;
  const double grantable = share - alloc;
  if (grantable <= 0) return 0;
  return static_cast<BwKbps>(
      std::min(grantable, static_cast<double>(request_kbps)));
}

void TransferLedger::record(const ResKey& up, BwKbps up_bw_kbps,
                            const ResKey& core, BwKbps demand_kbps,
                            BwKbps granted_kbps) {
  PairState& p = pairs_[PairKey{up, core}];
  CoreState& c = cores_[core];
  const double up_cap = static_cast<double>(up_bw_kbps);
  const double old_contrib = std::min(p.raw_demand, up_cap);
  p.raw_demand += static_cast<double>(demand_kbps);
  p.allocated += static_cast<double>(granted_kbps);
  c.total_capped += std::min(p.raw_demand, up_cap) - old_contrib;
}

void TransferLedger::release(const ResKey& up, BwKbps up_bw_kbps,
                             const ResKey& core, BwKbps demand_kbps,
                             BwKbps granted_kbps) {
  auto it = pairs_.find(PairKey{up, core});
  if (it == pairs_.end()) return;
  PairState& p = it->second;
  CoreState& c = cores_[core];
  const double up_cap = static_cast<double>(up_bw_kbps);
  const double old_contrib = std::min(p.raw_demand, up_cap);
  p.raw_demand = std::max(0.0, p.raw_demand - static_cast<double>(demand_kbps));
  p.allocated = std::max(0.0, p.allocated - static_cast<double>(granted_kbps));
  c.total_capped += std::min(p.raw_demand, up_cap) - old_contrib;
  if (c.total_capped < 0) c.total_capped = 0;
}

double TransferLedger::total_capped_demand(const ResKey& core) const {
  auto it = cores_.find(core);
  return it == cores_.end() ? 0 : it->second.total_capped;
}

EerAdmission::EerAdmission(size_t stripes)
    : stripes_(stripes == 0 ? 1 : stripes) {}

namespace {

// Counter arithmetic shared by admit/unwind; min-guarded so a record
// re-created after a sweep can never underflow its counter.
void sub_allocated(reservation::SegrRecord* rec, BwKbps amount) {
  if (rec == nullptr) return;
  rec->eer_allocated_kbps -= std::min(amount, rec->eer_allocated_kbps);
}

}  // namespace

void EerAdmission::unwind(reservation::ReservationDb& db,
                          const Allocation& a) {
  db.with_segr_pair(
      a.in_key, a.has_out ? std::optional<ResKey>(a.out_key) : std::nullopt,
      [&](reservation::SegrRecord* in, reservation::SegrRecord* out) {
        sub_allocated(in, a.in_allocated);
        sub_allocated(out, a.out_allocated);
      });
  if (a.transfer_recorded) {
    std::lock_guard tl(transfer_mu_);
    transfer_.release(a.up_key, a.up_bw, a.core_key, a.demand, a.granted);
  }
}

Result<BwKbps> EerAdmission::admit(reservation::ReservationDb& db,
                                   const Request& req, UnixSec now) {
  (void)now;
  if (!req.segr_in) return Errc::kNoSuchSegment;

  Stripe& st = stripe(req.eer_key);
  std::lock_guard slock(st.mu);

  auto prev = st.allocations.find(req.eer_key);
  // If the previous allocation rides SegRs outside the requested pair
  // (an EER re-admitted over different segments), unwind it up front —
  // the renewal path always re-requests over the record's own SegRs, so
  // this branch is the exception, not the rule.
  if (prev != st.allocations.end()) {
    const Allocation& old = prev->second;
    auto in_pair = [&](const ResKey& k) {
      return k == *req.segr_in || (req.segr_out && k == *req.segr_out);
    };
    if (!in_pair(old.in_key) || (old.has_out && !in_pair(old.out_key))) {
      unwind(db, old);
      st.allocations.erase(prev);
      prev = st.allocations.end();
    }
  }

  return db.with_segr_pair(
      *req.segr_in, req.segr_out,
      [&](reservation::SegrRecord* in,
          reservation::SegrRecord* out) -> Result<BwKbps> {
        if (in == nullptr) return Errc::kNoSuchSegment;
        auto rec_for = [&](const ResKey& k) -> reservation::SegrRecord* {
          if (in->key == k) return in;
          if (out != nullptr && out->key == k) return out;
          return nullptr;
        };

        // Renewal semantics: temporarily give back the EER's current
        // allocation so only the *increase* competes for free bandwidth
        // (all versions share one monitored flow; the max version is what
        // counts, §4.2/§4.8). Both records are locked, so the transient
        // state is invisible to concurrent admissions.
        Allocation old{};
        const bool had_prev = prev != st.allocations.end();
        if (had_prev) {
          old = prev->second;
          sub_allocated(rec_for(old.in_key), old.in_allocated);
          if (old.has_out) {
            sub_allocated(rec_for(old.out_key), old.out_allocated);
          }
          if (old.transfer_recorded) {
            std::lock_guard tl(transfer_mu_);
            transfer_.release(old.up_key, old.up_bw, old.core_key, old.demand,
                              old.granted);
          }
        }
        auto reinstate = [&] {
          if (!had_prev) return;
          if (auto* r = rec_for(old.in_key)) {
            r->eer_allocated_kbps += old.in_allocated;
          }
          if (old.has_out) {
            if (auto* r = rec_for(old.out_key)) {
              r->eer_allocated_kbps += old.out_allocated;
            }
          }
          if (old.transfer_recorded) {
            std::lock_guard tl(transfer_mu_);
            transfer_.record(old.up_key, old.up_bw, old.core_key, old.demand,
                             old.granted);
          }
        };

        // Availability in each adjacent SegR.
        BwKbps grant = std::min(req.demand_kbps, in->eer_available_kbps());
        const bool distinct = out != nullptr && out != in;
        bool up_core = false;
        if (distinct) {
          grant = std::min(grant, out->eer_available_kbps());
          // Transfer split between an up- and a core-SegR (§4.7).
          up_core = in->seg_type == topology::SegType::kUp &&
                    out->seg_type == topology::SegType::kCore;
          if (up_core) {
            std::lock_guard tl(transfer_mu_);
            grant = std::min(
                grant, transfer_.evaluate(in->key, in->active.bw_kbps,
                                          out->key, out->active.bw_kbps,
                                          req.demand_kbps));
          }
        }

        if (grant < req.min_bw_kbps || grant == 0) {
          reinstate();
          return Errc::kBandwidthUnavailable;
        }

        Allocation alloc{};
        alloc.in_key = in->key;
        alloc.in_allocated = grant;
        in->eer_allocated_kbps += grant;
        if (distinct) {
          alloc.out_key = out->key;
          alloc.has_out = true;
          alloc.out_allocated = grant;
          out->eer_allocated_kbps += grant;
          if (up_core) {
            std::lock_guard tl(transfer_mu_);
            transfer_.record(in->key, in->active.bw_kbps, out->key,
                             req.demand_kbps, grant);
            alloc.transfer_recorded = true;
            alloc.up_key = in->key;
            alloc.core_key = out->key;
            alloc.up_bw = in->active.bw_kbps;
            alloc.demand = req.demand_kbps;
            alloc.granted = grant;
          }
        }
        st.allocations[req.eer_key] = alloc;
        return grant;
      });
}

void EerAdmission::release(reservation::ReservationDb& db,
                           const ResKey& eer_key) {
  Stripe& st = stripe(eer_key);
  std::lock_guard slock(st.mu);
  auto it = st.allocations.find(eer_key);
  if (it == st.allocations.end()) return;
  unwind(db, it->second);
  st.allocations.erase(it);
}

size_t EerAdmission::tracked() const {
  size_t n = 0;
  for (const Stripe& st : stripes_) {
    std::lock_guard lock(st.mu);
    n += st.allocations.size();
  }
  return n;
}

void EerAdmission::for_each_allocation(
    const std::function<void(const AllocationView&)>& fn) const {
  for (const Stripe& st : stripes_) {
    std::lock_guard lock(st.mu);
    for (const auto& [key, a] : st.allocations) {
      fn(AllocationView{key, a.in_key, a.out_key, a.has_out, a.in_allocated,
                        a.out_allocated});
    }
  }
}

}  // namespace colibri::admission
