// Admission strategy seam.
//
// CServ handlers talk to admission exclusively through this interface, so
// alternative reservation models (e.g. Hummingbird-style fixed-price
// bandwidth sales) can plug in behind the same control-plane machinery.
// The bounded-tube-fairness algorithm of the paper (§4.7) is the only
// implementation today; its verdicts, error codes, and telemetry labels
// are untouched by the seam.
//
// Implementations must be safe for concurrent calls: the sharded control
// plane admits EERs and releases expired state from multiple threads.
#pragma once

#include <memory>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/admission/segr_admission.hpp"

namespace colibri::admission {

class AdmissionBackend {
 public:
  virtual ~AdmissionBackend();

  // Identifies the strategy in diagnostics (never in telemetry labels).
  virtual const char* name() const = 0;

  // Capacity wiring from the local traffic matrix (§4.7).
  virtual void set_interface_capacity(IfId ifid, BwKbps capacity_kbps) = 0;
  virtual BwKbps interface_capacity(IfId ifid) const = 0;

  // Segment-reservation admission (forward pass of a SegReq).
  virtual Result<BwKbps> admit_segr(const SegrAdmissionRequest& req) = 0;
  virtual void release_segr(const ResKey& key) = 0;

  // End-to-end-reservation admission; records are resolved against `db`
  // under its shard locks.
  virtual Result<BwKbps> admit_eer(reservation::ReservationDb& db,
                                   const EerAdmission::Request& req,
                                   UnixSec now) = 0;
  virtual void release_eer(reservation::ReservationDb& db,
                           const ResKey& eer_key) = 0;
};

// The paper's bounded-tube fairness admission: a single-coordinator
// SegrAdmission (the decision needs the complete per-egress view) plus a
// stripe-parallel EerAdmission.
class BoundedTubeBackend final : public AdmissionBackend {
 public:
  explicit BoundedTubeBackend(size_t eer_stripes = 1) : eer_(eer_stripes) {}

  const char* name() const override { return "bounded-tube"; }

  void set_interface_capacity(IfId ifid, BwKbps capacity_kbps) override {
    segr_.set_interface_capacity(ifid, capacity_kbps);
  }
  BwKbps interface_capacity(IfId ifid) const override {
    return segr_.interface_capacity(ifid);
  }

  Result<BwKbps> admit_segr(const SegrAdmissionRequest& req) override {
    return segr_.admit(req);
  }
  void release_segr(const ResKey& key) override { segr_.release(key); }

  Result<BwKbps> admit_eer(reservation::ReservationDb& db,
                           const EerAdmission::Request& req,
                           UnixSec now) override {
    return eer_.admit(db, req, now);
  }
  void release_eer(reservation::ReservationDb& db,
                   const ResKey& eer_key) override {
    eer_.release(db, eer_key);
  }

  // Ledger introspection for tests/diagnostics.
  SegrAdmission& segr() { return segr_; }
  const SegrAdmission& segr() const { return segr_; }
  EerAdmission& eer() { return eer_; }
  const EerAdmission& eer() const { return eer_; }

 private:
  SegrAdmission segr_;
  EerAdmission eer_;
};

}  // namespace colibri::admission
