// End-to-end-reservation admission (paper §4.7, Fig. 4).
//
// Transit ASes: grant iff the underlying SegR has enough unallocated EER
// bandwidth — a constant-time counter check (that is Fig. 4's flat line).
// Transfer ASes additionally split the core-SegR bandwidth proportionally
// among the up-SegRs competing for it, using per-core-SegR aggregates
// (again O(1) per decision). Source/destination ASes apply a local policy
// on top (per-host caps, §4.7 "intra-AS admission policy").
#pragma once

#include <unordered_map>

#include "colibri/admission/tube.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/reservation/types.hpp"

namespace colibri::admission {

// Proportional splitter at a transfer AS: for each core-SegR, tracks the
// EER demand arriving through each feeding up-SegR (capped at that
// up-SegR's bandwidth) and the bandwidth already allocated per pair.
class TransferLedger {
 public:
  // Registers/updates the demand a request adds on (up, core); returns the
  // bandwidth the proportional-share rule allows to grant now. O(1).
  BwKbps evaluate(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
                  BwKbps core_eer_capacity_kbps, BwKbps request_kbps) const;

  void record(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
              BwKbps demand_kbps, BwKbps granted_kbps);
  void release(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
               BwKbps demand_kbps, BwKbps granted_kbps);

  double total_capped_demand(const ResKey& core) const;

 private:
  struct PairKey {
    ResKey up;
    ResKey core;
    friend bool operator==(const PairKey&, const PairKey&) = default;
  };
  struct PairHash {
    size_t operator()(const PairKey& k) const noexcept {
      return std::hash<ResKey>{}(k.up) * 31 ^ std::hash<ResKey>{}(k.core);
    }
  };
  struct PairState {
    double raw_demand = 0;  // uncapped Σ of EER requests through this pair
    double allocated = 0;
  };
  struct CoreState {
    double total_capped = 0;  // Σ_up min(raw_demand(up), up_bw)
  };

  std::unordered_map<PairKey, PairState, PairHash> pairs_;
  std::unordered_map<ResKey, CoreState> cores_;
};

// Full per-AS EER admission: checks every adjacent SegR and maintains the
// per-SegR allocation counters. The caller (CServ) passes pointers to the
// SegR records the request rides at this AS (one for transit, two for a
// transfer AS).
class EerAdmission {
 public:
  struct Request {
    ResKey eer_key;
    BwKbps demand_kbps = 0;
    BwKbps min_bw_kbps = 0;
    // Adjacent SegRs at this AS in traversal order (1 or 2 entries).
    reservation::SegrRecord* segr_in = nullptr;
    reservation::SegrRecord* segr_out = nullptr;
  };

  // Grants min over the adjacent SegRs' available bandwidth (and the
  // transfer share when two SegRs meet), records the allocation on each
  // SegR counter. A second admit for the same EER key adjusts the
  // existing allocation (renewal; only the max over versions counts).
  Result<BwKbps> admit(const Request& req, UnixSec now);

  // Releases an EER's allocation (expiry or teardown).
  void release(const ResKey& eer_key);

  const TransferLedger& transfer_ledger() const { return transfer_; }
  size_t tracked() const { return allocations_.size(); }

 private:
  struct SegrSlice {
    reservation::SegrRecord* segr = nullptr;
    BwKbps allocated = 0;
  };
  struct Allocation {
    SegrSlice in;
    SegrSlice out;
    // Transfer-ledger contribution (only when in & out are distinct).
    bool transfer_recorded = false;
    ResKey up_key, core_key;
    BwKbps up_bw = 0;
    BwKbps demand = 0;
    BwKbps granted = 0;
  };

  TransferLedger transfer_;
  std::unordered_map<ResKey, Allocation> allocations_;
};

}  // namespace colibri::admission
