// End-to-end-reservation admission (paper §4.7, Fig. 4).
//
// Transit ASes: grant iff the underlying SegR has enough unallocated EER
// bandwidth — a constant-time counter check (that is Fig. 4's flat line).
// Transfer ASes additionally split the core-SegR bandwidth proportionally
// among the up-SegRs competing for it, using per-core-SegR aggregates
// (again O(1) per decision). Source/destination ASes apply a local policy
// on top (per-host caps, §4.7 "intra-AS admission policy").
//
// Concurrency: requests name their adjacent SegRs by *key*, never by
// pointer — the admission resolves and mutates the records under the
// ReservationDb's shard locks, so a SegR swept mid-flight is simply seen
// as absent instead of becoming a dangling pointer. Allocation
// bookkeeping is striped by a splitmix64 hash of the EER's ResId (the
// same routing as the db shards); the transfer ledger couples up- and
// core-SegRs across stripes and stays behind a single mutex. Lock order:
// stripe mutex -> db shard locks (ascending) -> transfer mutex.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "colibri/admission/tube.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/reservation/db.hpp"

namespace colibri::admission {

// Proportional splitter at a transfer AS: for each core-SegR, tracks the
// EER demand arriving through each feeding up-SegR (capped at that
// up-SegR's bandwidth) and the bandwidth already allocated per pair.
class TransferLedger {
 public:
  // Registers/updates the demand a request adds on (up, core); returns the
  // bandwidth the proportional-share rule allows to grant now. O(1).
  BwKbps evaluate(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
                  BwKbps core_eer_capacity_kbps, BwKbps request_kbps) const;

  void record(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
              BwKbps demand_kbps, BwKbps granted_kbps);
  void release(const ResKey& up, BwKbps up_bw_kbps, const ResKey& core,
               BwKbps demand_kbps, BwKbps granted_kbps);

  double total_capped_demand(const ResKey& core) const;

 private:
  struct PairKey {
    ResKey up;
    ResKey core;
    friend bool operator==(const PairKey&, const PairKey&) = default;
  };
  struct PairHash {
    size_t operator()(const PairKey& k) const noexcept {
      return std::hash<ResKey>{}(k.up) * 31 ^ std::hash<ResKey>{}(k.core);
    }
  };
  struct PairState {
    double raw_demand = 0;  // uncapped Σ of EER requests through this pair
    double allocated = 0;
  };
  struct CoreState {
    double total_capped = 0;  // Σ_up min(raw_demand(up), up_bw)
  };

  std::unordered_map<PairKey, PairState, PairHash> pairs_;
  std::unordered_map<ResKey, CoreState> cores_;
};

// Full per-AS EER admission: checks every adjacent SegR and maintains the
// per-SegR allocation counters. The caller (CServ) passes the keys of the
// SegR records the request rides at this AS (one for transit, two for a
// transfer AS); the records themselves are resolved against the passed
// ReservationDb under its shard locks.
class EerAdmission {
 public:
  // `stripes` partitions the allocation bookkeeping for concurrent
  // admits; 1 stripe degenerates to the single-lock behavior.
  explicit EerAdmission(size_t stripes = 1);

  EerAdmission(const EerAdmission&) = delete;
  EerAdmission& operator=(const EerAdmission&) = delete;

  struct Request {
    ResKey eer_key;
    BwKbps demand_kbps = 0;
    BwKbps min_bw_kbps = 0;
    // Adjacent SegRs at this AS in traversal order (1 or 2 entries).
    std::optional<ResKey> segr_in;
    std::optional<ResKey> segr_out;
  };

  // Grants min over the adjacent SegRs' available bandwidth (and the
  // transfer share when two SegRs meet), records the allocation on each
  // SegR counter. A second admit for the same EER key adjusts the
  // existing allocation (renewal; only the max over versions counts).
  Result<BwKbps> admit(reservation::ReservationDb& db, const Request& req,
                       UnixSec now);

  // Releases an EER's allocation (expiry or teardown). A SegR already
  // swept from the db is skipped — its counters died with it.
  void release(reservation::ReservationDb& db, const ResKey& eer_key);

  size_t stripes() const { return stripes_.size(); }
  // Read-side introspection; callers must be quiesced (tests/diagnostics).
  const TransferLedger& transfer_ledger() const { return transfer_; }
  size_t tracked() const;

  // Copy-out view of one tracked allocation, for cross-checking the
  // stripe bookkeeping against the ReservationDb (audit.hpp).
  struct AllocationView {
    ResKey eer_key;
    ResKey in_key;
    ResKey out_key;
    bool has_out = false;
    BwKbps in_allocated = 0;
    BwKbps out_allocated = 0;
  };
  // Visits every allocation stripe by stripe under that stripe's mutex;
  // `fn` must not re-enter the admission or touch the db.
  void for_each_allocation(
      const std::function<void(const AllocationView&)>& fn) const;

 private:
  struct Allocation {
    ResKey in_key;
    ResKey out_key;
    bool has_out = false;
    BwKbps in_allocated = 0;
    BwKbps out_allocated = 0;
    // Transfer-ledger contribution (only when in & out are distinct).
    bool transfer_recorded = false;
    ResKey up_key, core_key;
    BwKbps up_bw = 0;
    BwKbps demand = 0;
    BwKbps granted = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<ResKey, Allocation> allocations;
  };

  Stripe& stripe(const ResKey& eer_key) {
    return stripes_[reservation::ReservationDb::shard_of(eer_key.res_id,
                                                         stripes_.size())];
  }

  // Unwinds `a` against the db + transfer ledger (no stripe-map change);
  // caller holds the owning stripe's mutex.
  void unwind(reservation::ReservationDb& db, const Allocation& a);

  TransferLedger transfer_;
  mutable std::mutex transfer_mu_;
  std::vector<Stripe> stripes_;
};

}  // namespace colibri::admission
