// Observability demo scenario (used by the colibri_obs tool and tests).
//
// Brings up a two-ISD testbed with the full observability layer wired
// in — packet flight recorders on the source AS's gateway and on every
// on-path border router, the structured event log attached to all
// CServs and policing components, and the process metrics registry —
// then drives a reservation lifecycle through it: SegR provisioning,
// EER admission, clean traffic, a burst of deliberately broken packets
// (tampering, replay, overuse), automatic SegR renewal + activation,
// and final expiry. The artifacts it returns are exactly what the
// three exposition surfaces produce: a metrics snapshot (JSON and
// OpenMetrics), the audit-event JSON lines, and the drained flight
// records.
#pragma once

#include <string>
#include <vector>

#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace_assembler.hpp"

namespace colibri::app {

struct ObsOptions {
  // "default" runs the full observability lifecycle below; "failover"
  // runs the link-failure / backup-cutover timeline instead: a seeded
  // FaultInjector takes the protected core link down mid-traffic, the
  // FailoverManager cuts the paired backup over (cserv.failover.* moves,
  // the failover rule pack fires), the link heals, fail-back resolves
  // the alert. Its artifacts populate the same watch/metrics/events
  // surfaces; the trace/health legs stay empty. "fleet" runs the
  // cross-AS federation timeline (fleet.hpp): per-AS registries, the
  // FleetCollector rollup, and the ConservationAuditor; its rendered
  // fleet tables land in watch_frames/watch_text.
  std::string scenario = "default";
  // Clean data packets pushed end to end.
  int packets = 200;
  // Flight-recorder sampling period (1 = every packet; 0 = drops only).
  std::uint32_t sample_every = 8;
  std::size_t recorder_capacity = 256;
  // Post-mortem forensics root (failover scenario): when non-empty the
  // run persists its telemetry history under `<dir>/history/` and its
  // incident bundles under `<dir>/incidents/`, the layout the offline
  // `colibri_obs history ...` / `colibri_obs incident ...` commands
  // read back after the process is gone.
  std::string forensics_dir;
};

struct ObsArtifacts {
  telemetry::MetricsSnapshot metrics;
  std::string metrics_json;
  std::string openmetrics;
  std::string events_jsonl;   // audit trail, one JSON object per line
  std::string records_jsonl;  // flight records, one JSON object per line
  std::size_t events_count = 0;
  std::size_t records_count = 0;
  int delivered = 0;  // clean packets that crossed the whole path

  // Perfetto/Chrome trace-event JSON covering the multi-AS setup
  // conversation (bus spans, one track per AS, cross-track flow arrows
  // along the causal hop chain), the lifecycle audit events, and the
  // captured data-plane stage spans of the batched leg.
  std::string perfetto_json;
  std::size_t trace_events = 0;
  std::size_t trace_tracks = 0;

  // Assembled causal traces of the setup conversation (one per
  // originated request: each SegR provisioning step, the EER admission)
  // with per-hop latency attribution; `colibri_obs trace --reservation`
  // renders one of these as a waterfall. The cserv.trace.* series of
  // the metrics snapshot are derived from the same assembly.
  std::vector<telemetry::AssembledTrace> traces;

  // Sharded-runtime health surface after the runtime leg: one line per
  // shard (ring depth, high watermark, rejections, heartbeats) plus the
  // stall-detector verdict. The same numbers land in the metrics
  // snapshot under "gateway_runtime.*".
  std::string health_text;
  std::size_t health_shards = 0;
  std::uint64_t health_rejected = 0;
  std::size_t stalled_shards = 0;

  // Live-monitoring surface: the scenario runs a WindowedSampler (10 ms
  // windows under SimClock) and an AlertEngine loaded with every
  // component's default rule pack plus two SLOs; each cut window
  // renders one dashboard frame. `colibri_obs watch` replays the
  // frames; `watch --once` prints the final one (watch_text). The
  // derived gauges and telemetry.alerts.* series land in the metrics
  // snapshot like any other source.
  std::vector<std::string> watch_frames;
  std::string watch_text;  // final frame, rendered at scenario end
  std::uint64_t sampler_windows = 0;
  std::size_t alert_rules = 0;
  std::uint64_t alert_evaluations = 0;
  std::uint64_t alerts_fired = 0;
  std::uint64_t alerts_resolved = 0;
  std::size_t alerts_firing = 0;  // still firing at scenario end

  // Post-mortem forensics surface (scenario "failover"): every cut
  // window lands one frame in a HistoryStore (persistent when
  // ObsOptions::forensics_dir is set), and the firing failover rule
  // opens one incident bundle through the IncidentRecorder.
  std::uint64_t history_frames = 0;
  std::size_t history_segments = 0;
  std::size_t incident_bundles = 0;
  std::string first_incident_rule;

  // Fleet-federation surface (scenario "fleet" only): topology size as
  // the collector saw it and the conservation-audit verdict. The
  // rendered fleet tables double as the watch frames.
  std::size_t fleet_as_count = 0;
  std::size_t fleet_link_count = 0;
  std::uint64_t fleet_windows = 0;
  std::uint64_t audit_passes = 0;
  std::uint64_t audit_checks = 0;       // last audit pass
  std::size_t audit_violations = 0;     // last audit pass
};

// The scenario names run_obs_scenario accepts, in documentation order;
// the CLI prints this list when handed an unknown --scenario.
std::vector<std::string> obs_scenario_names();

// Runs the scenario against a fresh metrics registry, event log, and
// recorders; everything is torn down before returning, so repeated
// calls are independent.
ObsArtifacts run_obs_scenario(const ObsOptions& opts = {});

}  // namespace colibri::app
