// Observability demo scenario (used by the colibri_obs tool and tests).
//
// Brings up a two-ISD testbed with the full observability layer wired
// in — packet flight recorders on the source AS's gateway and on every
// on-path border router, the structured event log attached to all
// CServs and policing components, and the process metrics registry —
// then drives a reservation lifecycle through it: SegR provisioning,
// EER admission, clean traffic, a burst of deliberately broken packets
// (tampering, replay, overuse), automatic SegR renewal + activation,
// and final expiry. The artifacts it returns are exactly what the
// three exposition surfaces produce: a metrics snapshot (JSON and
// OpenMetrics), the audit-event JSON lines, and the drained flight
// records.
#pragma once

#include <string>

#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::app {

struct ObsOptions {
  // Clean data packets pushed end to end.
  int packets = 200;
  // Flight-recorder sampling period (1 = every packet; 0 = drops only).
  std::uint32_t sample_every = 8;
  std::size_t recorder_capacity = 256;
};

struct ObsArtifacts {
  telemetry::MetricsSnapshot metrics;
  std::string metrics_json;
  std::string openmetrics;
  std::string events_jsonl;   // audit trail, one JSON object per line
  std::string records_jsonl;  // flight records, one JSON object per line
  std::size_t events_count = 0;
  std::size_t records_count = 0;
  int delivered = 0;  // clean packets that crossed the whole path
};

// Runs the scenario against a fresh metrics registry, event log, and
// recorders; everything is torn down before returning, so repeated
// calls are independent.
ObsArtifacts run_obs_scenario(const ObsOptions& opts = {});

}  // namespace colibri::app
