// Application-facing reservation session.
//
// Wraps one EER: sends data through the gateway at up to the reserved
// rate and renews the reservation ahead of expiry so versions overlap
// seamlessly (paper §4.2). A transport protocol integrating tightly with
// Colibri can disable congestion control and pace at `bw_kbps()` (§3.2);
// `pace_interval_ns()` exposes that rate for senders.
#pragma once

#include "colibri/common/errors.hpp"
#include "colibri/dataplane/gateway.hpp"

namespace colibri::cserv {
class CServ;
}

namespace colibri::app {

class ReservationSession {
 public:
  ReservationSession(cserv::CServ& cserv, dataplane::Gateway& gateway,
                     const Clock& clock, ResKey key, BwKbps bw_kbps,
                     UnixSec exp_time, ResVer version, BwKbps min_bw,
                     BwKbps max_bw);

  // Emits one data packet over the reservation. kRateLimited when the
  // token bucket is exhausted — backpressure for the transport.
  dataplane::Gateway::Verdict send(std::uint32_t payload_bytes,
                                   dataplane::FastPacket& out);

  // Renews when within `lead_sec` of expiry; no-op otherwise. Returns
  // false if a due renewal failed (session should be re-established).
  bool maybe_renew(std::uint32_t lead_sec = 4);

  const ResKey& key() const { return key_; }
  BwKbps bw_kbps() const { return bw_kbps_; }
  UnixSec exp_time() const { return exp_time_; }
  ResVer version() const { return version_; }
  bool expired() const;

  // Inter-packet gap for pacing at exactly the reserved bandwidth.
  TimeNs pace_interval_ns(std::uint32_t pkt_bytes) const {
    if (bw_kbps_ == 0) return kNsPerSec;
    return static_cast<TimeNs>(static_cast<double>(pkt_bytes) * 8.0 /
                               (static_cast<double>(bw_kbps_) * 1000.0) *
                               kNsPerSec);
  }

 private:
  cserv::CServ* cserv_;
  dataplane::Gateway* gateway_;
  const Clock* clock_;
  ResKey key_;
  BwKbps bw_kbps_;
  UnixSec exp_time_;
  ResVer version_;
  BwKbps min_bw_;
  BwKbps max_bw_;
};

}  // namespace colibri::app
