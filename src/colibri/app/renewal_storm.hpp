// Renewal-storm scenario (paper §3.2 + §9 management scalability).
//
// SegRs set up together expire together: an AS that established its
// segment infrastructure in one batch sees hundreds of thousands of EER
// renewals come due in the same 16-second window. This harness builds
// that workload against the sharded ReservationDb and drains it two
// ways:
//
//  - drain_legacy: one bus round-trip per EER over the reservation's
//    full path (the discipline the pre-sharding RenewalManager used).
//    Every on-path AS re-decodes the request, verifies the accumulated
//    MAC chain, appends its own MAC and re-encodes for the next hop; on
//    the way back each AS computes its hop authenticator (Eq. 4), seals
//    it for the source (Eq. 5) and the response re-crosses the wire;
//    the initiator finally opens every seal. This still *understates*
//    the seed's measured per-renewal cost (BM_EerRenewal through the
//    real bus: ~61 us/item) — it skips DRKey derivation, WAL appends,
//    rate limiting and telemetry.
//  - drain_batched: per-shard, ResId-ordered batches straight into the
//    admission ledger — the RenewalManager drain shape, amortizing all
//    per-item envelope work across the batch.
//
// bench_scale_controlplane sweeps both over shard count x reservation
// count; the stress tests drive drain_batched from multiple threads.
#pragma once

#include <cstdint>
#include <vector>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/reservation/db.hpp"

namespace colibri::app {

struct RenewalStormConfig {
  size_t num_eers = 100'000;
  size_t num_segrs = 64;
  size_t shards = 8;
  // drain_batched parallelism: threads > 1 split the shards round-robin.
  size_t threads = 1;
  // On-path ASes per EER (hop 0 is the owner). The seed's BM_EerRenewal
  // chain (up + core + down across two ISDs) crosses 4 ASes; the legacy
  // drain pays the wire/crypto envelope at every one of them.
  size_t path_hops = 4;
  BwKbps segr_bw_kbps = 40'000'000;
  BwKbps eer_bw_kbps = 100;
  // Every EER version minted by populate() expires at exactly this
  // instant — the correlated storm.
  UnixSec setup_time = 1'000;
  std::uint32_t renew_lifetime_sec = reservation::kEerLifetimeSec;
};

struct RenewalStormStats {
  std::uint64_t renewed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
};

class RenewalStorm {
 public:
  explicit RenewalStorm(RenewalStormConfig cfg = {});

  RenewalStorm(const RenewalStorm&) = delete;
  RenewalStorm& operator=(const RenewalStorm&) = delete;

  reservation::ReservationDb& db() { return db_; }
  admission::EerAdmission& admission() { return admission_; }
  const RenewalStormConfig& config() const { return cfg_; }
  UnixSec storm_expiry() const { return cfg_.setup_time + cfg_.renew_lifetime_sec; }

  // Builds the SegRs and admits every EER, all with the same expiry.
  void populate();

  // Renews every live EER once; see the header comment for the two
  // drain disciplines. Both leave identical db/admission state for the
  // same `now` (the equivalence test asserts this).
  RenewalStormStats drain_legacy(UnixSec now);
  RenewalStormStats drain_batched(UnixSec now);

 private:
  // The synthetic multi-AS path every EER traverses (hop 0 = owner).
  std::vector<topology::Hop> eer_path() const;
  // Renews one EER directly against the admission ledger.
  bool renew_direct(const ResKey& eer_key, UnixSec now);
  RenewalStormStats drain_shard_range(UnixSec now, size_t thread_idx);

  RenewalStormConfig cfg_;
  AsId owner_;
  reservation::ReservationDb db_;
  admission::EerAdmission admission_;
  std::vector<ResKey> segr_keys_;
  std::vector<ResKey> eer_keys_;
};

}  // namespace colibri::app
