// Argument parsing + dispatch of the colibri_obs tool, as a library
// function so tests can drive the CLI surface (including its error
// paths: unknown subcommand, bad option, missing option value,
// nonexistent scenario) without spawning a process.
#pragma once

namespace colibri::app {

// Exactly what colibri_obs's main() does: parse `argv`, run the
// scenario, print to stdout/stderr. Returns the process exit code:
// 0 success, 1 runtime failure (scenario failed, unknown query name,
// reservation not found), 2 usage error (bad flag or subcommand, with a
// usage message on stderr).
int run_obs_cli(int argc, const char* const* argv);

}  // namespace colibri::app
