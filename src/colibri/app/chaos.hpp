// Twin-universe chaos harness (deterministic fault injection, ISSUE 8).
//
// Runs one fully-wired two-ISD deployment through a scripted adversity
// timeline — a probability window of dropped/duplicated/delayed control
// messages, a core-link outage that triggers a backup-reservation
// failover, and a kill-and-restore of one AS's CServ that replays a
// fault-torn WAL under live traffic — all driven by a SimClock and one
// seeded FaultInjector, so the whole scenario is bit-reproducible from
// its seed.
//
// The proof obligation is the *twin universe* check: the same workload
// run once with faults and once without must converge, after the faults
// clear and the traffic re-establishes, to an equivalent reservation
// end-state (structural digest: which reservations exist, on which
// paths, at which bandwidths — ignoring volatile ids/versions that
// legitimately diverge under retries). Recovery is correct exactly when
// the chaos leaves no scar.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "colibri/common/faults.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::topology {
class Topology;
}

namespace colibri::app {

class Testbed;

// The protected core link of the two-ISD chaos/failover scenarios:
// c1a <-> c2a, registered with the FaultInjector under a fixed link id.
inline constexpr AsId kProtectedLinkA{1, 100};
inline constexpr AsId kProtectedLinkB{2, 200};
inline constexpr std::uint64_t kProtectedLinkId = 1;

// The primary of the protection pair: the direct c1a -> c2a core SegR
// (lowest res_id when several exist). nullopt if provisioning failed.
std::optional<ResKey> find_primary_core_segr(Testbed& bed);

// The link-disjoint detour c1a -> c1b -> c2a, built from the topology
// (beacons only discover the direct core segment; the detour is an
// operator-provisioned protection path).
topology::PathSegment protection_backup_segment(
    const topology::Topology& topo);

struct ChaosOptions {
  std::uint64_t seed = 0xC0A05EEDULL;
  // Master switch: false runs the identical workload with no injector
  // attached — the "clean twin".
  bool faults = true;
  // Control-plane message fault window (probabilities are per delivery).
  double drop_p = 0.05;
  double dup_p = 0.02;
  double delay_p = 0.02;
  // Fail the c1a<->c2a core link mid-storm (drives the failover).
  bool fail_link = true;
  // Kill-and-restore the c2a CServ mid-storm, tearing the WAL append the
  // crash interrupts, then recover via restore_from_wal().
  bool crash_cserv = true;
  // Long-lived end-host sessions (ISD-1 children -> ISD-2 children).
  int sessions = 4;
  // Post-mortem forensics trail (telemetry/history, telemetry/incident):
  // when non-empty, the run writes its telemetry history to
  // `<forensics_dir>/history/` and its incident bundles to
  // `<forensics_dir>/incidents/` — the store a dead process leaves for
  // `colibri_obs history`/`incident`. Empty keeps the same pipeline on
  // an in-memory backend (every run still exercises the recorders).
  // The kill-and-restore closes and reopens the history store at the
  // crash, so the trail proves segment recovery under live traffic.
  std::string forensics_dir;
};

// Outcome of one universe run. `digest` is the structural end-state used
// for twin comparison; `history` is the canonical event-log transition
// history (seq numbers excluded) used for same-seed reproducibility.
struct ChaosReport {
  std::uint64_t seed = 0;
  bool faulted = false;
  std::string digest;
  std::string history;

  // Failover (initiating AS c1a).
  std::uint64_t cutovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t unprotected = 0;
  // Detection-to-cutover latency of the last cutover (ns), from the
  // failover event log; 0 when no cutover happened.
  std::uint64_t failover_latency_ns = 0;

  // Injected adversity (all zero in the clean twin).
  FaultStats faults;
  std::uint64_t wal_appends_faulted = 0;

  // Crash recovery.
  bool crash_restored = false;
  std::uint64_t wal_records_recovered = 0;

  // Post-mortem forensics trail.
  std::uint64_t history_frames = 0;            // appended over the run
  std::uint64_t history_frames_recovered = 0;  // at the mid-crash reopen
  std::uint64_t history_segments = 0;          // at scenario end
  std::uint64_t incident_bundles = 0;
  std::uint64_t incidents_suppressed = 0;
  std::string first_incident_rule;  // what the first bundle fired on
  // Live sampler values at scenario end over the retained ring's span
  // [monitor_span_start_ns, monitor_span_end_ns] — the ground truth a
  // reopened on-disk store's queries must agree with.
  TimeNs monitor_span_start_ns = 0;
  TimeNs monitor_span_end_ns = 0;
  std::uint64_t monitored_counter_total = 0;  // prefix-sum of all series

  // Workload health.
  std::uint64_t data_delivered = 0;
  std::uint64_t data_lost = 0;
  std::uint64_t session_reopens = 0;
  std::uint64_t renew_failures = 0;
  std::uint64_t open_failures = 0;
  int sessions_up = 0;  // live sessions at the end (should == sessions)
};

struct ChaosTwinReport {
  ChaosReport faulted;
  ChaosReport clean;
  bool converged = false;  // faulted.digest == clean.digest (non-empty)
};

// Runs one universe under `opts` (honoring opts.faults).
ChaosReport run_chaos_universe(const ChaosOptions& opts);

// Runs the faulted universe and its clean twin and compares digests.
ChaosTwinReport run_chaos_twins(ChaosOptions opts);

}  // namespace colibri::app
