// Fleet observability scenario (colibri_obs fleet; tests, CI smoke).
//
// Brings up a two-ISD testbed with one private MetricsRegistry per AS,
// wires the cross-AS federation layer on top — a FleetCollector
// pulling snapshot deltas from every AS, a ConservationAuditor
// cross-checking the bandwidth-conservation invariants, and an
// AlertEngine watching the audit surface — then drives reserved
// traffic from several EER sessions across the core so the per-AS,
// per-link, and fleet rollups (and the heavy-hitter sketch) have real
// deltas to chew on. Everything runs under SimClock, so the rendered
// topology table, the hitter ranking, and the audit verdict are
// deterministic run to run.
#pragma once

#include <string>
#include <vector>

#include "colibri/telemetry/audit.hpp"
#include "colibri/telemetry/federation.hpp"

namespace colibri::app {

struct FleetOptions {
  // EER sessions opened across the topology (each gets its own
  // deterministic per-reservation traffic level).
  int sessions = 6;
  // Simulated timeline; one fleet window + audit pass per second.
  int seconds = 12;
  // Corrupts one AS's reservation state mid-run (tests: the audit
  // surface and its alert pack must catch it).
  bool inject_corruption = false;
};

struct FleetArtifacts {
  // Topology-wide table rendered at scenario end (`fleet --once`) and
  // after every fleet window (`fleet` replays them).
  std::string table;
  std::vector<std::string> frames;

  std::size_t as_count = 0;
  std::size_t link_count = 0;
  std::uint64_t fleet_windows = 0;
  std::vector<telemetry::FleetTopEntry> hitters;

  std::uint64_t audit_passes = 0;
  std::uint64_t audit_checks = 0;        // last pass
  std::size_t audit_violations = 0;      // last pass
  std::uint64_t audit_violations_total = 0;

  int sessions_opened = 0;
  int delivered = 0;  // data packets that crossed their whole path

  // The fleet export registry's surfaces: fleet.*, telemetry.audit.*,
  // sampler gauges, and alert counters ride the ordinary pipeline.
  telemetry::MetricsSnapshot metrics;
  std::string metrics_json;
  std::string openmetrics;
  std::string events_jsonl;
  std::size_t events_count = 0;

  std::uint64_t sampler_windows = 0;
  std::size_t alert_rules = 0;
  std::uint64_t alert_evaluations = 0;
  std::uint64_t alerts_fired = 0;
  std::size_t alerts_firing = 0;
};

FleetArtifacts run_fleet_scenario(const FleetOptions& opts = {});

}  // namespace colibri::app
