#include "colibri/app/testbed.hpp"

namespace colibri::app {
namespace {

drkey::Key128 key_for(AsId as, std::uint8_t domain) {
  // Deterministic per-AS secrets; a real deployment provisions these out
  // of band.
  drkey::Key128 k;
  const std::uint64_t raw = as.raw() * 0x9E3779B97F4A7C15ULL + domain;
  for (int i = 0; i < 8; ++i) {
    k.bytes[static_cast<size_t>(i)] = static_cast<std::uint8_t>(raw >> (8 * i));
    k.bytes[static_cast<size_t>(8 + i)] =
        static_cast<std::uint8_t>((raw ^ 0xABCDEF) >> (8 * i));
  }
  return k;
}

}  // namespace

Testbed::Testbed(topology::Topology topo, const Clock& clock,
                 cserv::CservConfig cserv_cfg, TestbedOptions opts)
    : topo_(std::move(topo)),
      clock_(&clock),
      cserv_cfg_(std::move(cserv_cfg)),
      opts_(opts),
      pathdb_(topo_) {
  segments_ = topology::discover_segments(topo_);
  pathdb_.insert_all(segments_);

  for (AsId as : topo_.as_ids()) {
    if (opts_.per_as_metrics) {
      as_registries_.emplace(as,
                             std::make_unique<telemetry::MetricsRegistry>());
    }
    AsStack s;
    const cserv::CservConfig cfg = config_for(as);
    const drkey::Key128 drkey_master = key_for(as, 1);
    const drkey::Key128 hop_key = key_for(as, 2);
    s.cserv = std::make_unique<cserv::CServ>(topo_, as, bus_, pki_,
                                             drkey_master, hop_key, clock,
                                             cfg);
    // Gateways and routers report into the same registry as the CServs,
    // so a testbed built against a private registry is fully isolated.
    s.gateway = std::make_unique<dataplane::Gateway>(
        as, clock, dataplane::GatewayConfig{}, cfg.metrics);
    s.router = std::make_unique<dataplane::BorderRouter>(as, hop_key, clock,
                                                         cfg.metrics);
    s.cserv->attach_gateway(s.gateway.get());
    s.daemon = std::make_unique<ColibriDaemon>(*s.cserv, *s.gateway, clock);
    stacks_.emplace(as, std::move(s));
  }
}

cserv::CservConfig Testbed::config_for(AsId as) {
  cserv::CservConfig cfg = cserv_cfg_;
  if (opts_.per_as_metrics) cfg.metrics = as_registries_.at(as).get();
  return cfg;
}

telemetry::MetricsRegistry* Testbed::as_metrics(AsId as) {
  const auto it = as_registries_.find(as);
  return it == as_registries_.end() ? nullptr : it->second.get();
}

cserv::CServ& Testbed::restart_as(AsId as) {
  AsStack& s = stack(as);
  // Destruction order matters: the dying CServ detaches from the bus in
  // its destructor before the replacement attaches under the same AsId.
  s.daemon.reset();
  s.cserv.reset();
  const drkey::Key128 drkey_master = key_for(as, 1);
  const drkey::Key128 hop_key = key_for(as, 2);
  s.cserv = std::make_unique<cserv::CServ>(topo_, as, bus_, pki_, drkey_master,
                                           hop_key, *clock_, config_for(as));
  s.cserv->attach_gateway(s.gateway.get());
  s.daemon = std::make_unique<ColibriDaemon>(*s.cserv, *s.gateway, *clock_);
  return *s.cserv;
}

AsStack& Testbed::stack(AsId as) {
  auto it = stacks_.find(as);
  if (it == stacks_.end()) {
    throw std::out_of_range("no stack for AS " + as.to_string());
  }
  return it->second;
}

size_t Testbed::provision_all_segments(BwKbps min_bw, BwKbps max_bw) {
  size_t ok = 0;
  for (const auto& seg : segments_) {
    cserv::CServ& initiator = cserv(seg.first_as());
    auto r = initiator.setup_segr(seg, min_bw, max_bw);
    if (!r) continue;
    if (initiator.publish_segr(r.value().key, {})) ++ok;
  }
  return ok;
}

void Testbed::tick_all() {
  for (auto& [_, s] : stacks_) s.cserv->tick();
}

}  // namespace colibri::app
