#include "colibri/app/chaos.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "colibri/app/testbed.hpp"
#include "colibri/cserv/failover.hpp"
#include "colibri/cserv/renewal_manager.hpp"
#include "colibri/reservation/persist.hpp"
#include "colibri/sim/faults.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/incident.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri::app {
namespace {

// --- scenario script (all times in simulated seconds) -----------------------
//
// 1000  provision every beacon-discovered segment + the backup SegR
// 1240  renewal storm opens: SegRs (lifetime 300 s) come due, end-host
//       sessions open, churn EERs start flowing through c2a
// 1245  control-message fault window opens
// 1250  c1a<->c2a core link fails        -> failover cutover at c1a
// 1260  c2a CServ killed mid-storm; the WAL append the crash interrupts
//       is torn; restore_from_wal() replays under live traffic
// 1262  link heals                       -> fail-back at c1a
// 1265  message fault window closes
// 1290  storm ends; sessions dropped, EERs (lifetime 16 s) drain out
// 1312  re-establishment: advert caches invalidated, sessions reopened
//       over the restored steady state; digest taken a few ticks later
constexpr TimeNs kSec = kNsPerSec;
constexpr TimeNs kProvisionNs = 1'000 * kSec;
constexpr TimeNs kStormStartNs = 1'240 * kSec;
constexpr int kStormSteps = 50;
constexpr TimeNs kMsgFaultStartNs = 1'245 * kSec;
constexpr TimeNs kMsgFaultEndNs = 1'265 * kSec;
// Mid-step timestamps: the world ticks once per second, so a failure at
// t+0.25s is detected at the next tick — a real, assertable
// detection-to-cutover latency instead of a degenerate zero.
constexpr TimeNs kLinkFailNs = 1'250 * kSec + 250'000'000;
constexpr TimeNs kLinkHealNs = 1'262 * kSec + 500'000'000;
constexpr TimeNs kCrashNs = 1'260 * kSec;
constexpr int kDrainSteps = 22;
constexpr int kVerifySteps = 5;

// The protected core link and the ASes of the two-ISD topology we script.
constexpr std::uint64_t kCoreLinkId = kProtectedLinkId;
constexpr AsId kC1a = kProtectedLinkA;  // failover initiator (pair owner)
constexpr AsId kC1b{1, 101};            // backup detour
constexpr AsId kC2a = kProtectedLinkB;  // crash victim; far link end
constexpr BwKbps kSegrMinBw = 1'000;
constexpr BwKbps kSegrMaxBw = 2'000'000;
constexpr BwKbps kBackupBw = 30'000;  // cheap standby, still fits the EERs
constexpr BwKbps kSessionBw = 5'000;  // min == max: admission is all-or-nothing
constexpr BwKbps kChurnBw = 500;

struct ChaosSession {
  AsId src;
  AsId dst;
  HostAddr src_host;
  HostAddr dst_host;
  std::optional<ReservationSession> session;
  std::vector<topology::Hop> path;  // EER path, cached at open
  bool ever_open = false;
};

IfId iface_to(const topology::Topology& topo, AsId from, AsId to) {
  for (const auto& itf : topo.node(from).interfaces) {
    if (itf.neighbor == to) return itf.id;
  }
  return kNoInterface;
}

bool hop_pair_is(const topology::Hop& x, const topology::Hop& y, AsId a,
                 AsId b) {
  return (x.as == a && y.as == b) || (x.as == b && y.as == a);
}

bool path_crosses(const std::vector<topology::Hop>& hops, AsId a, AsId b) {
  for (size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hop_pair_is(hops[i], hops[i + 1], a, b)) return true;
  }
  return false;
}

std::string hops_str(const std::vector<topology::Hop>& hops) {
  std::string out;
  for (const auto& h : hops) {
    if (!out.empty()) out += '-';
    out += h.as.to_string() + ':' + std::to_string(h.ingress) + '>' +
           std::to_string(h.egress);
  }
  return out;
}

// Structural end-state digest for twin comparison. Includes which
// reservations exist at every AS, on which paths and (for EERs) at which
// bandwidth; excludes what legitimately diverges under faults — EER
// res_ids (retried setups mint fresh ids), SegR bandwidths and versions
// (forecast-driven renewals observe different utilization histories
// mid-chaos), and expiry times.
std::string universe_digest(Testbed& bed, UnixSec now) {
  std::vector<AsId> ases = bed.topology().as_ids();
  std::sort(ases.begin(), ases.end());
  std::string out;
  for (AsId as : ases) {
    const reservation::ReservationDb& db = bed.cserv(as).db();
    std::vector<std::string> lines;
    for (const auto& r : db.segr_snapshot()) {
      if (r.expired(now)) continue;
      lines.push_back("segr " + r.key.src_as.to_string() + '#' +
                      std::to_string(r.key.res_id) +
                      " t=" + std::to_string(static_cast<int>(r.seg_type)) +
                      " path=" + hops_str(r.hops));
    }
    for (const auto& e : db.eer_snapshot()) {
      const BwKbps bw = e.effective_bw(now);
      if (bw == 0) continue;
      lines.push_back("eer " + e.key.src_as.to_string() + ' ' +
                      e.src_host.to_string() + "->" + e.dst_host.to_string() +
                      " bw=" + std::to_string(bw) +
                      " path=" + hops_str(e.path));
    }
    std::sort(lines.begin(), lines.end());
    out += "== " + as.to_string() + '\n';
    for (const auto& l : lines) out += l + '\n';
  }
  return out;
}

// Canonical transition history: every event minus the process-global seq
// (the only field that differs between bit-identical reruns).
std::string canonical_history(const std::vector<telemetry::Event>& events) {
  std::string out;
  for (const auto& ev : events) {
    out += std::to_string(ev.time_ns) + ' ' + ev.component + '.' + ev.name;
    for (const auto& f : ev.fields) {
      out += ' ' + f.key + '=';
      switch (f.kind) {
        case telemetry::EventField::Kind::kU64:
          out += std::to_string(f.u);
          break;
        case telemetry::EventField::Kind::kI64:
          out += std::to_string(f.i);
          break;
        case telemetry::EventField::Kind::kStr:
          out += f.s;
          break;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

std::optional<ResKey> find_primary_core_segr(Testbed& bed) {
  std::optional<ResKey> primary;
  for (const auto& r : bed.cserv(kC1a).db().segr_snapshot()) {
    if (r.key.src_as == kC1a && r.seg_type == topology::SegType::kCore &&
        r.hops.size() == 2 && r.hops.back().as == kC2a) {
      if (!primary || r.key.res_id < primary->res_id) primary = r.key;
    }
  }
  return primary;
}

topology::PathSegment protection_backup_segment(
    const topology::Topology& topo) {
  topology::PathSegment seg;
  seg.type = topology::SegType::kCore;
  seg.hops.push_back({kC1a, kNoInterface, iface_to(topo, kC1a, kC1b)});
  seg.hops.push_back(
      {kC1b, iface_to(topo, kC1b, kC1a), iface_to(topo, kC1b, kC2a)});
  seg.hops.push_back({kC2a, iface_to(topo, kC2a, kC1b), kNoInterface});
  return seg;
}

ChaosReport run_chaos_universe(const ChaosOptions& opts) {
  ChaosReport report;
  report.seed = opts.seed;
  report.faulted = opts.faults;

  SimClock clock;
  clock.set(kProvisionNs);
  telemetry::MetricsRegistry registry;  // private: universes never mix
  telemetry::EventLog events(clock, 1 << 15);
  std::optional<FaultInjector> inj;
  if (opts.faults) {
    inj.emplace(clock, opts.seed, &events);
    if (opts.drop_p + opts.dup_p + opts.delay_p > 0) {
      inj->add_message_plan({kMsgFaultStartNs, kMsgFaultEndNs, 0, opts.drop_p,
                             opts.dup_p, opts.delay_p});
    }
    if (opts.fail_link) {
      inj->schedule_link_failure(kCoreLinkId, kLinkFailNs, kLinkHealNs);
    }
  }

  cserv::CservConfig cfg;
  cfg.metrics = &registry;
  cfg.events = &events;
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg);
  if (inj) bed.bus().attach_fault_injector(&*inj);

  // WAL under the crash victim — fault-decorated only in the faulted
  // universe, attached in both so the workload stays symmetric.
  reservation::MemoryStorage wal_disk;
  std::optional<sim::FaultyStorage> faulty_disk;
  if (inj) faulty_disk.emplace(wal_disk, *inj);
  reservation::ReservationWal wal(faulty_disk ? *faulty_disk
                                              : static_cast<reservation::LogStorage&>(wal_disk));
  bed.cserv(kC2a).attach_wal(&wal);

  // --- forensics: live monitoring + the post-mortem trail -----------------
  // 1 s windows match the step cadence: every step cuts one frame into
  // the history store, and the failover rule pack turns the cutover into
  // the alert edge that opens an incident bundle. Attached in both
  // universes so the workload stays symmetric; only the faulted one
  // trips the rules.
  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = kSec;
  scfg.ring_capacity = 256;  // > every window the run cuts
  // These histograms time real host execution (steady_clock), so they
  // never replay byte-identically; keep them out of the forensic trail
  // so same-seed runs produce identical segments and bundles.
  scfg.series_filter = [](std::string_view name) {
    return name != "cserv.request_latency_ns" &&
           name != "router.validate_latency_ns" &&
           name != "bus.hop_latency_ns";
  };
  telemetry::WindowedSampler sampler(registry, clock, scfg, &registry);
  sampler.track_rate("cserv.setup.ok");
  telemetry::AlertEngine engine(sampler, clock, &events, &registry);
  engine.add_rules(cserv::default_failover_alert_rules());

  std::unique_ptr<telemetry::HistoryBackend> history_backend;
  if (opts.forensics_dir.empty()) {
    history_backend = std::make_unique<telemetry::MemoryHistoryBackend>();
  } else {
    history_backend = std::make_unique<telemetry::DirectoryHistoryBackend>(
        opts.forensics_dir + "/history");
  }
  telemetry::HistoryConfig hcfg;
  hcfg.max_segment_bytes = 4 * 1024;  // several mid-run rotations
  std::optional<telemetry::HistoryStore> history;
  history.emplace(*history_backend, hcfg, &registry);
  std::uint64_t history_frames_before_reopen = 0;

  telemetry::IncidentRecorder incidents(engine);
  incidents.set_event_log(&events);
  incidents.set_sampler(&sampler);
  if (inj) incidents.set_fault_injector(&*inj);
  if (!opts.forensics_dir.empty()) {
    incidents.set_directory(opts.forensics_dir + "/incidents");
  }

  const auto monitor = [&] {
    if (sampler.poll()) {
      (void)engine.evaluate();
      history->append_latest(sampler);
    }
  };

  // --- steady state: segments + protection pair --------------------------
  bed.provision_all_segments(kSegrMinBw, kSegrMaxBw);

  std::optional<ResKey> primary = find_primary_core_segr(bed);
  cserv::FailoverManager fm(bed.cserv(kC1a));
  std::optional<ResKey> backup;
  if (primary) {
    auto b = fm.provision_backup(*primary,
                                 protection_backup_segment(bed.topology()),
                                 kSegrMinBw, kBackupBw);
    if (b) backup = b.value();
  }

  // Renewal managers for every AS, raw-id ordered for a deterministic
  // tick sequence. min_bw / forecast floor sized so the backup never
  // shrinks below what the failed-over EERs need.
  cserv::RenewalManagerConfig rm_cfg;
  rm_cfg.min_bw_kbps = kBackupBw;
  rm_cfg.forecast.floor_kbps = kBackupBw;
  std::map<std::uint64_t, std::unique_ptr<cserv::RenewalManager>> rms;
  for (AsId as : bed.topology().as_ids()) {
    auto rm = std::make_unique<cserv::RenewalManager>(bed.cserv(as), rm_cfg);
    rm->manage_all_local();
    rms[as.raw()] = std::move(rm);
  }

  // --- storm: sessions + chaos timeline ----------------------------------
  clock.set(kStormStartNs);
  const AsId srcs[] = {{1, 110}, {1, 111}, {1, 120}, {1, 112}};
  const AsId dsts[] = {{2, 210}, {2, 211}, {2, 220}, {2, 212}};
  std::vector<ChaosSession> sessions;
  for (int i = 0; i < opts.sessions; ++i) {
    ChaosSession s;
    s.src = srcs[static_cast<size_t>(i) % std::size(srcs)];
    s.dst = dsts[static_cast<size_t>(i) % std::size(dsts)];
    s.src_host = HostAddr::from_u64(0xA000 + static_cast<std::uint64_t>(i));
    s.dst_host = HostAddr::from_u64(0xB000 + static_cast<std::uint64_t>(i));
    sessions.push_back(std::move(s));
  }

  auto try_open = [&](ChaosSession& s) {
    auto r = bed.daemon(s.src).open_session(s.dst, s.src_host, s.dst_host,
                                            kSessionBw, kSessionBw);
    if (!r) {
      ++report.open_failures;
      return;
    }
    if (s.ever_open) ++report.session_reopens;
    s.ever_open = true;
    s.session.emplace(std::move(r.value()));
    s.path.clear();
    if (auto eer = bed.cserv(s.src).db().eer_copy(s.session->key())) {
      s.path = eer->path;
    }
  };

  // Drops the cached primary/backup adverts at a source so the next
  // chain lookup re-queries c1a's registry instead of riding a stale
  // advert across a failover transition.
  auto invalidate_core_adverts = [&](AsId src) {
    if (primary) bed.cserv(src).registry().invalidate(*primary);
    if (backup) bed.cserv(src).registry().invalidate(*backup);
  };

  auto core_link_down = [&] { return inj && !inj->link_up(kCoreLinkId); };

  // Churn traffic through the crash victim: one fire-and-forget EER per
  // step, never renewed, so c2a's WAL keeps appending right up to (and
  // through) the crash.
  auto open_churn = [&](int step) {
    (void)bed.daemon(AsId{2, 210})
        .open_session(AsId{2, 212},
                      HostAddr::from_u64(0xC000 + static_cast<std::uint64_t>(step)),
                      HostAddr::from_u64(0xD000 + static_cast<std::uint64_t>(step)),
                      kChurnBw, kChurnBw);
  };

  auto step_world = [&](bool with_traffic, int step) {
    clock.advance(kSec);
    bed.bus().deliver_delayed();
    if (inj) {
      for (const auto& t : inj->poll_link_transitions()) {
        if (t.link_id != kCoreLinkId) continue;
        if (!t.up) {
          fm.on_link_down(kC1a, kC2a, t.at_ns);
          // Sessions riding the dead link migrate: flush their stale
          // adverts now so the reopen finds the freshly-published backup.
          for (auto& s : sessions) {
            if (s.session && path_crosses(s.path, kC1a, kC2a)) {
              invalidate_core_adverts(s.src);
              s.session.reset();
            }
          }
        } else {
          fm.on_link_up(kC1a, kC2a);
        }
      }
    }

    if (inj && opts.crash_cserv && clock.now_ns() == kCrashNs) {
      // Tear the WAL append the crash interrupts, write it (the churn
      // EER below), then kill and restore the CServ under live traffic.
      inj->arm_wal_fault(WalFaultKind::kTear, 9);
      open_churn(step);
      cserv::CServ& fresh = bed.restart_as(kC2a);
      fresh.attach_wal(&wal);
      report.wal_records_recovered = fresh.restore_from_wal();
      for (const auto& r : fresh.db().segr_snapshot()) {
        if (r.key.src_as == kC2a) fresh.publish_segr(r.key, {});
      }
      auto rm = std::make_unique<cserv::RenewalManager>(fresh, rm_cfg);
      rm->manage_all_local();
      rms[kC2a.raw()] = std::move(rm);
      report.crash_restored = true;
      // The crash takes the collector down with the CServ: seal the
      // history store and reopen it over the same backend, exactly as a
      // restarted process would — recovery replays the intact prefix,
      // then appends continue into a fresh segment.
      history_frames_before_reopen = history->stats().frames_appended;
      history.emplace(*history_backend, hcfg, &registry);
      report.history_frames_recovered = history->stats().frames_recovered;
    } else if (with_traffic) {
      open_churn(step);
    }

    if (with_traffic) {
      for (auto& s : sessions) {
        if (!s.session) {
          try_open(s);
          continue;
        }
        dataplane::FastPacket pkt;
        if (s.session->send(1'000, pkt) == dataplane::Gateway::Verdict::kOk) {
          if (core_link_down() && path_crosses(s.path, kC1a, kC2a)) {
            ++report.data_lost;
          } else {
            bool dropped = false;
            for (const auto& hop : s.path) {
              const auto v = bed.router(hop.as).process(pkt);
              if (v != dataplane::BorderRouter::Verdict::kForward &&
                  v != dataplane::BorderRouter::Verdict::kDeliver) {
                dropped = true;
                break;
              }
            }
            dropped ? ++report.data_lost : ++report.data_delivered;
          }
        }
        if (!s.session->maybe_renew()) ++report.renew_failures;
        if (s.session->expired()) s.session.reset();
      }
    }

    const UnixSec now = clock.now_sec();
    for (auto& [_, rm] : rms) rm->tick(now);
    bed.tick_all();
    monitor();
  };

  for (auto& s : sessions) try_open(s);
  for (int i = 0; i < kStormSteps; ++i) step_world(true, i);

  // --- drain: sessions stop, EERs expire out -----------------------------
  for (auto& s : sessions) s.session.reset();
  for (int i = 0; i < kDrainSteps; ++i) step_world(false, kStormSteps + i);

  // --- re-establish over the healed steady state and verify --------------
  for (auto& s : sessions) {
    invalidate_core_adverts(s.src);
    try_open(s);
  }
  for (int i = 0; i < kVerifySteps; ++i) step_world(true, -1 - i);

  for (const auto& s : sessions) report.sessions_up += s.session.has_value();
  const cserv::FailoverStats fs = fm.snapshot();
  report.cutovers = fs.cutovers;
  report.failbacks = fs.failbacks;
  report.unprotected = fs.unprotected;
  if (inj) {
    report.faults = inj->snapshot();
    if (faulty_disk) report.wal_appends_faulted = faulty_disk->faulted();
  }

  const std::vector<telemetry::Event> evs = events.events();
  for (const auto& ev : evs) {
    if (ev.component == "failover" && ev.name == "failover.cutover") {
      if (auto lat = ev.u64("latency_ns")) report.failover_latency_ns = *lat;
    }
  }
  report.history = canonical_history(evs);
  report.digest = universe_digest(bed, clock.now_sec());

  report.history_frames =
      history_frames_before_reopen + history->stats().frames_appended;
  report.history_segments = history->segment_count();
  report.incident_bundles = incidents.bundle_count();
  report.incidents_suppressed = incidents.suppressed_total();
  if (incidents.bundle_count() > 0) {
    report.first_incident_rule = incidents.bundles().front().rule;
  }
  const auto ring = sampler.recent_windows(scfg.ring_capacity);
  if (!ring.empty()) {
    report.monitor_span_start_ns = ring.front().start_ns;
    report.monitor_span_end_ns = ring.back().end_ns;
    report.monitored_counter_total = sampler.counter_delta(
        "", telemetry::WindowedSampler::kSpanAll, /*prefix=*/true);
  }
  return report;
}

ChaosTwinReport run_chaos_twins(ChaosOptions opts) {
  ChaosTwinReport twins;
  opts.faults = true;
  twins.faulted = run_chaos_universe(opts);
  opts.faults = false;
  twins.clean = run_chaos_universe(opts);
  twins.converged = !twins.faulted.digest.empty() &&
                    twins.faulted.digest == twins.clean.digest;
  return twins;
}

}  // namespace colibri::app
