// End-host networking stack: the Colibri daemon (paper §3.2).
//
// The analogue of the modified SCIONDaemon: applications ask it for
// reservations instead of bare paths. It consults the AS's CServ for
// registered SegR chains to the destination (App. C), picks one (trying
// alternatives on failure — the *path choice* benefit of §2.1), and
// issues the EER setup/renewal requests on the application's behalf.
#pragma once

#include "colibri/app/session.hpp"
#include "colibri/cserv/cserv.hpp"

namespace colibri::app {

class ColibriDaemon {
 public:
  ColibriDaemon(cserv::CServ& cserv, dataplane::Gateway& gateway,
                const Clock& clock)
      : cserv_(&cserv), gateway_(&gateway), clock_(&clock) {}

  // Requests an EER of [min_bw, max_bw] to dst_host in dst_as. Tries each
  // available SegR chain in order until one admits the reservation.
  Result<ReservationSession> open_session(AsId dst_as,
                                          const HostAddr& src_host,
                                          const HostAddr& dst_host,
                                          BwKbps min_bw, BwKbps max_bw);

  // Chains the daemon would try, in order (diagnostics / tests).
  std::vector<std::vector<cserv::SegrAdvert>> candidate_chains(AsId dst_as) {
    return cserv_->lookup_chains(dst_as);
  }

  cserv::CServ& cserv() { return *cserv_; }
  dataplane::Gateway& gateway() { return *gateway_; }

 private:
  cserv::CServ* cserv_;
  dataplane::Gateway* gateway_;
  const Clock* clock_;
};

}  // namespace colibri::app
