// colibri_obs: run the observability demo scenario and dump or query
// what the exposition surfaces produced.
//
//   $ ./colibri_obs                         # everything, sectioned
//   $ ./colibri_obs --dump=openmetrics      # OpenMetrics text only
//   $ ./colibri_obs --dump=events           # audit-event JSON lines
//   $ ./colibri_obs --dump=records          # flight-record JSON lines
//   $ ./colibri_obs --query=router.forwarded
//   $ ./colibri_obs --packets=1000 --sample-every=1
//   $ ./colibri_obs trace --perfetto out.json  # Chrome/Perfetto trace
//   $ ./colibri_obs trace                      # same JSON to stdout
//   $ ./colibri_obs health                     # sharded-runtime health
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "colibri/app/obs.hpp"

namespace {

const char* arg_value(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return nullptr;
  return arg + n + 1;
}

int query(const colibri::telemetry::MetricsSnapshot& m, const char* name) {
  if (auto it = m.counters.find(name); it != m.counters.end()) {
    std::printf("counter %s = %llu\n", name,
                static_cast<unsigned long long>(it->second));
    return 0;
  }
  if (auto it = m.gauges.find(name); it != m.gauges.end()) {
    std::printf("gauge %s = %lld\n", name,
                static_cast<long long>(it->second));
    return 0;
  }
  if (auto it = m.histograms.find(name); it != m.histograms.end()) {
    std::printf("histogram %s: count=%llu sum=%llu p50=%llu p99=%llu\n", name,
                static_cast<unsigned long long>(it->second.count),
                static_cast<unsigned long long>(it->second.sum),
                static_cast<unsigned long long>(it->second.percentile(0.50)),
                static_cast<unsigned long long>(it->second.percentile(0.99)));
    return 0;
  }
  std::fprintf(stderr, "no series named '%s'\n", name);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  colibri::app::ObsOptions opts;
  std::string command;  // "" = dump/query, "trace", "health"
  std::string dump = "all";
  std::string query_name;
  std::string perfetto_path;
  int argi = 1;
  if (argi < argc && (std::strcmp(argv[argi], "trace") == 0 ||
                      std::strcmp(argv[argi], "health") == 0)) {
    command = argv[argi++];
  }
  for (int i = argi; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--dump")) {
      dump = v;
    } else if (const char* v = arg_value(argv[i], "--query")) {
      query_name = v;
    } else if (const char* v = arg_value(argv[i], "--packets")) {
      opts.packets = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--sample-every")) {
      opts.sample_every = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = arg_value(argv[i], "--perfetto")) {
      perfetto_path = v;
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [trace|health]"
                   " [--dump=all|metrics|openmetrics|events|records]"
                   " [--query=NAME] [--packets=N] [--sample-every=N]"
                   " [--perfetto[=]PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const colibri::app::ObsArtifacts art = colibri::app::run_obs_scenario(opts);
  if (art.delivered == 0) {
    std::fprintf(stderr, "scenario failed: no packets delivered\n");
    return 1;
  }

  if (command == "trace") {
    if (perfetto_path.empty()) {
      std::fputs(art.perfetto_json.c_str(), stdout);
      return 0;
    }
    std::FILE* f = std::fopen(perfetto_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", perfetto_path.c_str());
      return 1;
    }
    std::fputs(art.perfetto_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s: %zu trace events on %zu tracks "
                "(load in ui.perfetto.dev)\n",
                perfetto_path.c_str(), art.trace_events, art.trace_tracks);
    return 0;
  }
  if (command == "health") {
    std::printf("# sharded gateway runtime: %zu shards, %llu rejected "
                "submissions, %zu stalled\n",
                art.health_shards,
                static_cast<unsigned long long>(art.health_rejected),
                art.stalled_shards);
    std::fputs(art.health_text.c_str(), stdout);
    return art.stalled_shards == 0 ? 0 : 1;
  }

  if (!query_name.empty()) return query(art.metrics, query_name.c_str());

  const bool all = dump == "all";
  if (all) {
    std::printf("# scenario: delivered=%d events=%zu flight_records=%zu\n\n",
                art.delivered, art.events_count, art.records_count);
  }
  if (all || dump == "metrics") {
    if (all) std::printf("## metrics (json)\n");
    std::printf("%s\n", art.metrics_json.c_str());
  }
  if (all || dump == "openmetrics") {
    if (all) std::printf("\n## metrics (openmetrics)\n");
    std::fputs(art.openmetrics.c_str(), stdout);
  }
  if (all || dump == "events") {
    if (all) std::printf("\n## events (jsonl)\n");
    std::fputs(art.events_jsonl.c_str(), stdout);
  }
  if (all || dump == "records") {
    if (all) std::printf("\n## flight records (jsonl)\n");
    std::fputs(art.records_jsonl.c_str(), stdout);
  }
  if (!(all || dump == "metrics" || dump == "openmetrics" ||
        dump == "events" || dump == "records")) {
    std::fprintf(stderr, "unknown --dump=%s\n", dump.c_str());
    return 2;
  }
  return 0;
}
