// colibri_obs: run the observability demo scenario and dump or query
// what the exposition surfaces produced.
//
//   $ ./colibri_obs                         # everything, sectioned
//   $ ./colibri_obs --dump=openmetrics      # OpenMetrics text only
//   $ ./colibri_obs --dump=events           # audit-event JSON lines
//   $ ./colibri_obs --dump=records          # flight-record JSON lines
//   $ ./colibri_obs --query=router.forwarded
//   $ ./colibri_obs --packets=1000 --sample-every=1
//   $ ./colibri_obs trace --perfetto out.json  # Chrome/Perfetto trace
//   $ ./colibri_obs trace                      # same JSON to stdout
//   $ ./colibri_obs trace --reservation 7      # per-hop setup waterfall
//   $ ./colibri_obs health                     # sharded-runtime health
#include "colibri/app/obs_cli.hpp"

int main(int argc, char** argv) {
  return colibri::app::run_obs_cli(argc, argv);
}
