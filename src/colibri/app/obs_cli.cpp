#include "colibri/app/obs_cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "colibri/app/obs.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/incident.hpp"

namespace colibri::app {
namespace {

const char* arg_value(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return nullptr;
  return arg + n + 1;
}

// "1500000000000" (ns) or "1500s" (seconds).
TimeNs parse_time_ns(const char* v) {
  char* end = nullptr;
  const long long x = std::strtoll(v, &end, 10);
  if (end != nullptr && end[0] == 's' && end[1] == '\0') {
    return static_cast<TimeNs>(x) * kNsPerSec;
  }
  return static_cast<TimeNs>(x);
}

bool read_text_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

// --- offline forensics: colibri_obs incident ... ---------------------------
// Reads bundles a (possibly dead) process left under
// `<--dir>/incidents/`; never runs a scenario.
int run_incident_cli(const char* prog, int argc, const char* const* argv,
                     int argi) {
  const auto sub_usage = [&] {
    std::fprintf(stderr,
                 "usage: %s incident list|show|diff [--dir=FORENSICS_DIR]"
                 " [--id=N] [--a=N] [--b=N]\n",
                 prog);
    return 2;
  };
  if (argi >= argc || argv[argi][0] == '-') return sub_usage();
  const std::string sub = argv[argi++];
  std::string dir = ".";
  std::string id_s, a_s, b_s;
  for (int i = argi; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--dir")) {
      dir = v;
    } else if (const char* v = arg_value(argv[i], "--id")) {
      id_s = v;
    } else if (const char* v = arg_value(argv[i], "--a")) {
      a_s = v;
    } else if (const char* v = arg_value(argv[i], "--b")) {
      b_s = v;
    } else {
      return sub_usage();
    }
  }
  const std::string inc_dir = dir + "/incidents";
  const std::vector<telemetry::IncidentFileInfo> infos =
      telemetry::list_incident_bundles(inc_dir);

  if (sub == "list") {
    if (infos.empty()) {
      std::printf("no incidents under %s\n", inc_dir.c_str());
      return 0;
    }
    for (const auto& info : infos) {
      std::printf("incident %06llu  t=%.3fs  rule=%s  %s\n",
                  static_cast<unsigned long long>(info.id),
                  static_cast<double>(info.time_ns) / 1e9, info.rule.c_str(),
                  info.path.c_str());
    }
    return 0;
  }

  const auto find_by_id = [&](const std::string& s)
      -> const telemetry::IncidentFileInfo* {
    const auto id = static_cast<std::uint64_t>(std::strtoull(s.c_str(),
                                                             nullptr, 10));
    for (const auto& info : infos) {
      if (info.id == id) return &info;
    }
    std::fprintf(stderr, "no incident %s under %s\n", s.c_str(),
                 inc_dir.c_str());
    return nullptr;
  };

  if (sub == "show") {
    if (infos.empty()) {
      std::fprintf(stderr, "no incidents under %s\n", inc_dir.c_str());
      return 1;
    }
    // Default: the newest bundle (highest id; list is filename-sorted).
    const telemetry::IncidentFileInfo* info =
        id_s.empty() ? &infos.back() : find_by_id(id_s);
    if (info == nullptr) return 1;
    std::string body;
    if (!read_text_file(info->path, body)) {
      std::fprintf(stderr, "cannot read %s\n", info->path.c_str());
      return 1;
    }
    std::printf("# incident %06llu  t=%.3fs  rule=%s\n",
                static_cast<unsigned long long>(info->id),
                static_cast<double>(info->time_ns) / 1e9, info->rule.c_str());
    std::fputs(body.c_str(), stdout);
    return 0;
  }

  if (sub == "diff") {
    if (a_s.empty() || b_s.empty()) {
      std::fprintf(stderr, "incident diff requires --a=N and --b=N\n");
      return sub_usage();
    }
    const telemetry::IncidentFileInfo* ia = find_by_id(a_s);
    const telemetry::IncidentFileInfo* ib = find_by_id(b_s);
    if (ia == nullptr || ib == nullptr) return 1;
    std::string ba, bb;
    if (!read_text_file(ia->path, ba) || !read_text_file(ib->path, bb)) {
      std::fprintf(stderr, "cannot read bundle files\n");
      return 1;
    }
    const std::string d = telemetry::diff_incident_bundles(ba, bb);
    if (d.empty()) {
      std::printf("incidents %s and %s are identical\n", a_s.c_str(),
                  b_s.c_str());
      return 0;
    }
    std::printf("--- incident %s\n+++ incident %s\n", a_s.c_str(),
                b_s.c_str());
    std::fputs(d.c_str(), stdout);
    return 1;
  }
  return sub_usage();
}

// --- offline forensics: colibri_obs history ... ----------------------------
// Reopens the history store under `<--dir>/history/` (recovering any
// torn tail) and answers queries against it.
int run_history_cli(const char* prog, int argc, const char* const* argv,
                    int argi) {
  const auto sub_usage = [&] {
    std::fprintf(stderr,
                 "usage: %s history query|rate|p99 --series=NAME"
                 " [--dir=FORENSICS_DIR] [--since=NS|Ns] [--until=NS|Ns]"
                 " [--prefix]\n",
                 prog);
    return 2;
  };
  if (argi >= argc || argv[argi][0] == '-') return sub_usage();
  const std::string sub = argv[argi++];
  if (sub != "query" && sub != "rate" && sub != "p99") return sub_usage();
  std::string dir = ".";
  std::string series;
  TimeNs since = 0;
  TimeNs until = telemetry::HistoryStore::kUntilEnd;
  bool prefix = false;
  for (int i = argi; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--dir")) {
      dir = v;
    } else if (const char* v = arg_value(argv[i], "--series")) {
      series = v;
    } else if (const char* v = arg_value(argv[i], "--since")) {
      since = parse_time_ns(v);
    } else if (const char* v = arg_value(argv[i], "--until")) {
      until = parse_time_ns(v);
    } else if (std::strcmp(argv[i], "--prefix") == 0) {
      prefix = true;
    } else {
      return sub_usage();
    }
  }
  if (series.empty()) {
    std::fprintf(stderr, "history %s requires --series=NAME\n", sub.c_str());
    return sub_usage();
  }

  telemetry::DirectoryHistoryBackend backend(dir + "/history");
  telemetry::HistoryStore store(backend);
  const telemetry::HistoryStats st = store.stats();
  if (store.window_count() == 0) {
    std::fprintf(stderr, "history store under %s/history is empty\n",
                 dir.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "# history: %llu frames in %zu segments recovered"
               " (%llu corrupt, %llu bytes discarded)\n",
               static_cast<unsigned long long>(st.frames_recovered),
               store.segment_count(),
               static_cast<unsigned long long>(st.corrupt_segments),
               static_cast<unsigned long long>(st.discarded_bytes));

  if (sub == "query") {
    std::printf("counter %s = %llu\n", series.c_str(),
                static_cast<unsigned long long>(
                    store.counter_delta(series, since, until, prefix)));
    return 0;
  }
  if (sub == "rate") {
    std::printf("rate %s = %.3f/s\n", series.c_str(),
                store.rate(series, since, until, prefix));
    return 0;
  }
  const std::optional<double> p = store.percentile(series, 0.99, since, until);
  if (!p) {
    std::fprintf(stderr, "histogram %s recorded nothing in the span\n",
                 series.c_str());
    return 1;
  }
  std::printf("p99 %s = %.3f\n", series.c_str(), *p);
  return 0;
}

std::string scenario_list() {
  std::string out;
  for (const std::string& name : obs_scenario_names()) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [trace|health|watch|fleet]"
               " [--dump=all|metrics|openmetrics|events|records]"
               " [--query=NAME] [--packets=N] [--sample-every=N]"
               " [--scenario=%s]"
               " [--perfetto[=]PATH] [--reservation[=]RES_ID]"
               " [--once] [--refresh-ms=N] [--forensics-dir=PATH]\n"
               "       %s incident list|show|diff [--dir=FORENSICS_DIR]"
               " [--id=N] [--a=N] [--b=N]\n"
               "       %s history query|rate|p99 --series=NAME"
               " [--dir=FORENSICS_DIR] [--since=NS|Ns] [--until=NS|Ns]"
               " [--prefix]\n",
               prog, scenario_list().c_str(), prog, prog);
  return 2;
}

int query(const colibri::telemetry::MetricsSnapshot& m, const char* name) {
  if (auto it = m.counters.find(name); it != m.counters.end()) {
    std::printf("counter %s = %llu\n", name,
                static_cast<unsigned long long>(it->second));
    return 0;
  }
  if (auto it = m.gauges.find(name); it != m.gauges.end()) {
    std::printf("gauge %s = %lld\n", name,
                static_cast<long long>(it->second));
    return 0;
  }
  if (auto it = m.histograms.find(name); it != m.histograms.end()) {
    std::printf("histogram %s: count=%llu sum=%llu p50=%llu p99=%llu\n", name,
                static_cast<unsigned long long>(it->second.count),
                static_cast<unsigned long long>(it->second.sum),
                static_cast<unsigned long long>(it->second.percentile(0.50)),
                static_cast<unsigned long long>(it->second.percentile(0.99)));
    return 0;
  }
  std::fprintf(stderr, "no series named '%s'\n", name);
  return 1;
}

}  // namespace

int run_obs_cli(int argc, const char* const* argv) {
  ObsOptions opts;
  std::string command;  // "" = dump/query, "trace", "health", "watch"
  std::string dump = "all";
  std::string query_name;
  std::string perfetto_path;
  std::string reservation;  // trace --reservation: waterfall for one res
  bool once = false;        // watch --once: print the final frame only
  int refresh_ms = 200;     // watch replay cadence
  int argi = 1;
  if (argi < argc && argv[argi][0] != '-') {
    // The forensics commands are offline: they read what a previous
    // (possibly dead) process wrote and never run a scenario.
    if (std::strcmp(argv[argi], "incident") == 0) {
      return run_incident_cli(argv[0], argc, argv, argi + 1);
    }
    if (std::strcmp(argv[argi], "history") == 0) {
      return run_history_cli(argv[0], argc, argv, argi + 1);
    }
    if (std::strcmp(argv[argi], "trace") == 0 ||
        std::strcmp(argv[argi], "health") == 0 ||
        std::strcmp(argv[argi], "watch") == 0 ||
        std::strcmp(argv[argi], "fleet") == 0) {
      command = argv[argi++];
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", argv[argi]);
      return usage(argv[0]);
    }
  }
  // The fleet command *is* the fleet scenario; an explicit conflicting
  // --scenario below still fails validation like any other bad name.
  if (command == "fleet") opts.scenario = "fleet";
  for (int i = argi; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--dump")) {
      dump = v;
    } else if (const char* v = arg_value(argv[i], "--query")) {
      query_name = v;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (const char* v = arg_value(argv[i], "--refresh-ms")) {
      refresh_ms = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--packets")) {
      opts.packets = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--sample-every")) {
      opts.sample_every = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = arg_value(argv[i], "--forensics-dir")) {
      opts.forensics_dir = v;
    } else if (const char* v = arg_value(argv[i], "--scenario")) {
      // A bad name fails the invocation instead of silently running
      // the default; the error names every valid scenario.
      const std::vector<std::string> names = obs_scenario_names();
      if (std::find(names.begin(), names.end(), v) == names.end()) {
        std::fprintf(stderr, "unknown scenario '%s' (valid: %s)\n", v,
                     scenario_list().c_str());
        return usage(argv[0]);
      }
      opts.scenario = v;
    } else if (const char* v = arg_value(argv[i], "--perfetto")) {
      perfetto_path = v;
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else if (const char* v = arg_value(argv[i], "--reservation")) {
      reservation = v;
    } else if (std::strcmp(argv[i], "--reservation") == 0 && i + 1 < argc) {
      reservation = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!reservation.empty() &&
      (command != "trace" ||
       reservation.find_first_not_of("0123456789") != std::string::npos)) {
    std::fprintf(stderr, "--reservation requires the trace command and a "
                         "numeric reservation id\n");
    return usage(argv[0]);
  }
  if (once && command != "watch" && command != "fleet") {
    std::fprintf(stderr, "--once requires the watch or fleet command\n");
    return usage(argv[0]);
  }

  const ObsArtifacts art = run_obs_scenario(opts);
  if (art.delivered == 0) {
    std::fprintf(stderr, "scenario failed: no packets delivered\n");
    return 1;
  }

  if (command == "trace") {
    if (!reservation.empty()) {
      // Hop-by-hop waterfall of the one trace that carried this
      // reservation's setup, bottleneck highlighted.
      const std::int64_t res_id = std::strtoll(reservation.c_str(), nullptr,
                                               10);
      const telemetry::AssembledTrace* t =
          telemetry::TraceAssembler::find_by_res_id(art.traces, res_id);
      if (t == nullptr) {
        std::fprintf(stderr, "no assembled trace for reservation %lld;"
                             " traced reservations:",
                     static_cast<long long>(res_id));
        for (const auto& tr : art.traces) {
          if (tr.res_id() >= 0) {
            std::fprintf(stderr, " %lld", static_cast<long long>(tr.res_id()));
          }
        }
        std::fputc('\n', stderr);
        return 1;
      }
      std::fputs(t->waterfall().c_str(), stdout);
      return 0;
    }
    if (perfetto_path.empty()) {
      std::fputs(art.perfetto_json.c_str(), stdout);
      return 0;
    }
    std::FILE* f = std::fopen(perfetto_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", perfetto_path.c_str());
      return 1;
    }
    std::fputs(art.perfetto_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s: %zu trace events on %zu tracks "
                "(load in ui.perfetto.dev)\n",
                perfetto_path.c_str(), art.trace_events, art.trace_tracks);
    return 0;
  }
  if (command == "watch") {
    // The scenario already ran to completion under SimClock; watch
    // replays the dashboard frame rendered at each sampled window.
    // --once (tests, CI) skips the replay and prints the final frame.
    if (!once) {
      for (const std::string& frame : art.watch_frames) {
        std::fputs("\033[2J\033[H", stdout);
        std::fputs(frame.c_str(), stdout);
        std::fflush(stdout);
        if (refresh_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
        }
      }
      std::fputs("\033[2J\033[H", stdout);
    }
    std::fputs(art.watch_text.c_str(), stdout);
    // A monitoring surface that never sampled or evaluated anything is
    // a failure even when the scenario itself passed.
    return art.sampler_windows > 0 && art.alert_evaluations > 0 ? 0 : 1;
  }
  if (command == "fleet") {
    // Topology-wide federation table. --once (tests, CI) prints the
    // final table; the default replays the per-window tables like
    // watch does.
    if (!once) {
      for (const std::string& frame : art.watch_frames) {
        std::fputs("\033[2J\033[H", stdout);
        std::fputs(frame.c_str(), stdout);
        std::fflush(stdout);
        if (refresh_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
        }
      }
      std::fputs("\033[2J\033[H", stdout);
    }
    std::fputs(art.watch_text.c_str(), stdout);
    // A federation surface that never collected, or an audit that
    // found violations on this clean run, fails the invocation.
    return art.fleet_as_count > 0 && art.fleet_windows > 0 &&
                   art.audit_passes > 0 && art.audit_violations == 0
               ? 0
               : 1;
  }
  if (command == "health") {
    std::printf("# sharded gateway runtime: %zu shards, %llu rejected "
                "submissions, %zu stalled\n",
                art.health_shards,
                static_cast<unsigned long long>(art.health_rejected),
                art.stalled_shards);
    std::fputs(art.health_text.c_str(), stdout);
    return art.stalled_shards == 0 ? 0 : 1;
  }

  if (!query_name.empty()) return query(art.metrics, query_name.c_str());

  const bool all = dump == "all";
  if (all) {
    std::printf("# scenario: delivered=%d events=%zu flight_records=%zu\n\n",
                art.delivered, art.events_count, art.records_count);
  }
  if (all || dump == "metrics") {
    if (all) std::printf("## metrics (json)\n");
    std::printf("%s\n", art.metrics_json.c_str());
  }
  if (all || dump == "openmetrics") {
    if (all) std::printf("\n## metrics (openmetrics)\n");
    std::fputs(art.openmetrics.c_str(), stdout);
  }
  if (all || dump == "events") {
    if (all) std::printf("\n## events (jsonl)\n");
    std::fputs(art.events_jsonl.c_str(), stdout);
  }
  if (all || dump == "records") {
    if (all) std::printf("\n## flight records (jsonl)\n");
    std::fputs(art.records_jsonl.c_str(), stdout);
  }
  if (!(all || dump == "metrics" || dump == "openmetrics" ||
        dump == "events" || dump == "records")) {
    std::fprintf(stderr, "unknown --dump=%s\n", dump.c_str());
    return 2;
  }
  return 0;
}

}  // namespace colibri::app
