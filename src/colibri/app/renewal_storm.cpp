#include "colibri/app/renewal_storm.hpp"

#include <algorithm>
#include <thread>

#include "colibri/common/rand.hpp"
#include "colibri/crypto/cmac.hpp"
#include "colibri/crypto/eax.hpp"
#include "colibri/cserv/wire_internal.hpp"
#include "colibri/dataplane/hvf.hpp"
#include "colibri/proto/codec.hpp"
#include "colibri/proto/messages.hpp"

namespace colibri::app {

namespace {

constexpr std::uint8_t kMacKey[16] = {0x5a, 0x01, 0x02, 0x03, 0x04, 0x05,
                                      0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                      0x0c, 0x0d, 0x0e, 0x0f};
constexpr std::uint8_t kHopKey[16] = {0xc0, 0x11, 0xb1, 0x21, 0x11, 0x22,
                                      0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
                                      0x99, 0xaa, 0xbb, 0xcc};

}  // namespace

RenewalStorm::RenewalStorm(RenewalStormConfig cfg)
    : cfg_(cfg),
      owner_(AsId::from_raw(1)),
      db_(owner_, cfg_.shards),
      admission_(cfg_.shards) {}

std::vector<topology::Hop> RenewalStorm::eer_path() const {
  std::vector<topology::Hop> path;
  path.reserve(std::max<size_t>(1, cfg_.path_hops));
  path.push_back({owner_, kNoInterface, kNoInterface});
  for (size_t h = 1; h < cfg_.path_hops; ++h) {
    path.push_back(
        {AsId::from_raw(0x1000 + static_cast<std::uint64_t>(h)),
         kNoInterface, kNoInterface});
  }
  return path;
}

void RenewalStorm::populate() {
  const topology::Hop hop{owner_, kNoInterface, kNoInterface};
  segr_keys_.reserve(cfg_.num_segrs);
  for (size_t i = 0; i < cfg_.num_segrs; ++i) {
    reservation::SegrRecord rec;
    rec.key = ResKey{owner_, db_.next_res_id()};
    rec.seg_type = topology::SegType::kUp;
    rec.hops = {hop};
    rec.local_hop = 0;
    rec.active.version = 0;
    rec.active.bw_kbps = cfg_.segr_bw_kbps;
    rec.active.exp_time = cfg_.setup_time + reservation::kSegrLifetimeSec;
    segr_keys_.push_back(rec.key);
    db_.upsert_segr(std::move(rec));
  }

  const std::vector<topology::Hop> path = eer_path();
  eer_keys_.reserve(cfg_.num_eers);
  for (size_t i = 0; i < cfg_.num_eers; ++i) {
    const ResKey eer_key{owner_, db_.next_res_id()};
    const ResKey segr_key = segr_keys_[i % segr_keys_.size()];
    admission::EerAdmission::Request req;
    req.eer_key = eer_key;
    req.demand_kbps = cfg_.eer_bw_kbps;
    req.min_bw_kbps = 0;
    req.segr_in = segr_key;
    auto granted = admission_.admit(db_, req, cfg_.setup_time);
    if (!granted) continue;

    reservation::EerRecord rec;
    rec.key = eer_key;
    rec.src_host = HostAddr::from_u64(0x50 + i);
    rec.dst_host = HostAddr::from_u64(0xd0 + i);
    rec.path = path;
    rec.local_hop = 0;
    rec.segrs = {segr_key};
    reservation::EerVersion ver;
    ver.version = 0;
    ver.bw_kbps = granted.value();
    ver.exp_time = storm_expiry();  // the whole fleet comes due together
    rec.versions.push_back(ver);
    eer_keys_.push_back(eer_key);
    db_.upsert_eer(std::move(rec));
  }
}

bool RenewalStorm::renew_direct(const ResKey& eer_key, UnixSec now) {
  ResKey segr_key;
  const bool found =
      db_.with_eer(eer_key, [&](reservation::EerRecord* rec) {
        if (rec == nullptr || rec->segrs.empty()) return false;
        segr_key = rec->segrs.front();
        return true;
      });
  if (!found) return false;

  admission::EerAdmission::Request req;
  req.eer_key = eer_key;
  req.demand_kbps = cfg_.eer_bw_kbps;
  req.min_bw_kbps = 0;
  req.segr_in = segr_key;
  auto granted = admission_.admit(db_, req, now);
  if (!granted) return false;

  db_.with_eer(eer_key, [&](reservation::EerRecord* rec) {
    if (rec == nullptr) return;
    rec->prune(now);
    ResVer next = 0;
    for (const auto& v : rec->versions) next = std::max(next, v.version);
    reservation::EerVersion ver;
    ver.version = static_cast<ResVer>(next + 1);
    ver.bw_kbps = granted.value();
    ver.exp_time = now + cfg_.renew_lifetime_sec;
    rec->versions.push_back(ver);
  });
  return true;
}

RenewalStormStats RenewalStorm::drain_legacy(UnixSec now) {
  RenewalStormStats st;
  // One bus round-trip per item over the EER's full path (Fig. 1a): what
  // every renewal paid before batching. Forward, each on-path AS
  // re-decodes the request, verifies the initiator's MAC, appends its
  // own and re-encodes for the next hop. Backward, each AS computes its
  // hop authenticator (Eq. 4), seals it for the source (Eq. 5), and the
  // response re-crosses the wire; the initiator opens every seal. All
  // crypto/codec state is rebuilt per item, matching the per-request
  // flow of the handlers. The admission decision itself happens at the
  // owner hop via renew_direct — identical end state to drain_batched.
  const std::vector<topology::Hop> path = eer_path();
  Rng rng(0xB10C5);
  for (const ResKey& eer_key : eer_keys_) {
    // Initiator: build + MAC the renewal request (Fig. 1a).
    proto::EerRequest msg;
    msg.min_bw_kbps = 0;
    msg.path = path;
    for (const topology::Hop& h : path) msg.ases.push_back(h.as);
    proto::Packet pkt;
    pkt.type = proto::PacketType::kEerRenewal;
    pkt.is_eer = true;
    pkt.path = path;
    pkt.resinfo.src_as = eer_key.src_as;
    pkt.resinfo.res_id = eer_key.res_id;
    pkt.resinfo.bw_kbps = cfg_.eer_bw_kbps;
    pkt.resinfo.exp_time = now + cfg_.renew_lifetime_sec;
    pkt.resinfo.version = 1;
    pkt.eerinfo.src_host = HostAddr::from_u64(0x50);
    pkt.eerinfo.dst_host = HostAddr::from_u64(0xd0);
    proto::AuthedPayload ap;
    ap.message = msg;
    {
      const Bytes input = proto::auth_input(ap.message, pkt.resinfo);
      crypto::Cmac cmac(kMacKey);
      proto::Mac16 mac;
      cmac.compute(input, mac.data());
      ap.macs.push_back(mac);
    }
    pkt.payload = proto::encode_authed(ap);

    // Forward pass: one wire crossing + handler-side authentication per
    // on-path AS, each appending its MAC to the chain.
    Bytes wire = proto::encode_packet(pkt);
    std::optional<proto::Packet> rpkt;
    bool ok = true;
    for (size_t h = 0; ok && h < path.size(); ++h) {
      rpkt = proto::decode_packet(wire);
      auto rap = rpkt ? proto::decode_authed(rpkt->payload) : std::nullopt;
      ok = rap.has_value();
      if (!ok) break;
      const Bytes input = proto::auth_input(rap->message, rpkt->resinfo);
      crypto::Cmac cmac(kMacKey);
      std::uint8_t tag[crypto::Cmac::kTagSize];
      cmac.compute(input, tag);
      ok = crypto::Cmac::verify_prefix(tag, rap->macs[0].data(), sizeof(tag));
      if (!ok) break;
      proto::Mac16 mac;
      cmac.compute(input, mac.data());
      rap->macs.push_back(mac);
      rpkt->payload = proto::encode_authed(*rap);
      wire = proto::encode_packet(*rpkt);
    }

    ok = ok && renew_direct(eer_key, now);
    if (!ok) {
      ++st.failed;
      continue;
    }

    // Backward pass: each AS contributes its hop authenticator (Eq. 4)
    // sealed for the source (Eq. 5) and the response re-crosses the
    // wire; response codecs re-run at every hop.
    const proto::ResInfo final_ri = rpkt->resinfo;
    proto::ControlResponse resp;
    resp.success = true;
    resp.final_bw_kbps = cfg_.eer_bw_kbps;
    std::vector<Bytes> aads;
    aads.reserve(path.size());
    Bytes resp_wire;
    for (size_t h = path.size(); ok && h-- > 0;) {
      crypto::Aes128 hop_cipher(kHopKey);
      const dataplane::HopAuth sigma = dataplane::compute_hopauth(
          hop_cipher, final_ri, rpkt->eerinfo, kNoInterface, kNoInterface);
      crypto::Eax eax(kMacKey);
      std::uint8_t nonce[16];
      rng.fill(nonce, sizeof(nonce));
      const Bytes aad =
          cserv::wire::hopauth_aad(final_ri, static_cast<std::uint8_t>(h));
      aads.push_back(aad);
      resp.sealed_hopauths.push_back(
          eax.seal(BytesView(nonce, sizeof(nonce)), aad,
                   BytesView(sigma.data(), sigma.size())));
      proto::Packet out;
      out.type = proto::PacketType::kResponse;
      out.is_eer = true;
      out.path = path;
      out.resinfo = final_ri;
      proto::AuthedPayload rap_out;
      rap_out.message = resp;
      out.payload = proto::encode_authed(rap_out);
      resp_wire = proto::encode_packet(out);
      auto hop_pkt = proto::decode_packet(resp_wire);
      auto hop_ap =
          hop_pkt ? proto::decode_authed(hop_pkt->payload) : std::nullopt;
      ok = hop_ap.has_value();
    }

    // Initiator: unseal every hop's authenticator.
    auto resp_pkt = ok ? proto::decode_packet(resp_wire) : std::nullopt;
    auto resp_ap =
        resp_pkt ? proto::decode_authed(resp_pkt->payload) : std::nullopt;
    auto* final_resp = resp_ap
                           ? std::get_if<proto::ControlResponse>(
                                 &resp_ap->message)
                           : nullptr;
    ok = final_resp != nullptr &&
         final_resp->sealed_hopauths.size() == path.size();
    for (size_t h = 0; ok && h < path.size(); ++h) {
      crypto::Eax eax(kMacKey);
      ok = eax.open(aads[h], final_resp->sealed_hopauths[h]).has_value();
    }
    if (!ok) {
      ++st.failed;
      continue;
    }
    ++st.renewed;
  }
  st.batches = eer_keys_.empty() ? 0 : 1;
  st.max_batch = eer_keys_.size();
  return st;
}

RenewalStormStats RenewalStorm::drain_shard_range(UnixSec now,
                                                  size_t thread_idx) {
  RenewalStormStats st;
  const size_t stride = std::max<size_t>(1, cfg_.threads);
  for (size_t s = thread_idx; s < db_.num_shards(); s += stride) {
    const std::vector<ResKey> keys = db_.eer_keys_of_shard(s);
    if (keys.empty()) continue;
    ++st.batches;
    st.max_batch = std::max<std::uint64_t>(st.max_batch, keys.size());
    for (const ResKey& key : keys) {
      if (renew_direct(key, now)) {
        ++st.renewed;
      } else {
        ++st.failed;
      }
    }
  }
  return st;
}

RenewalStormStats RenewalStorm::drain_batched(UnixSec now) {
  if (cfg_.threads <= 1) return drain_shard_range(now, 0);
  std::vector<RenewalStormStats> per_thread(cfg_.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg_.threads);
  for (size_t t = 0; t < cfg_.threads; ++t) {
    workers.emplace_back(
        [this, now, t, &per_thread] { per_thread[t] = drain_shard_range(now, t); });
  }
  for (auto& w : workers) w.join();
  RenewalStormStats st;
  for (const RenewalStormStats& p : per_thread) {
    st.renewed += p.renewed;
    st.failed += p.failed;
    st.batches += p.batches;
    st.max_batch = std::max(st.max_batch, p.max_batch);
  }
  return st;
}

}  // namespace colibri::app
