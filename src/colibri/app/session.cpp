#include "colibri/app/session.hpp"

#include "colibri/cserv/cserv.hpp"

namespace colibri::app {

ReservationSession::ReservationSession(cserv::CServ& cserv,
                                       dataplane::Gateway& gateway,
                                       const Clock& clock, ResKey key,
                                       BwKbps bw_kbps, UnixSec exp_time,
                                       ResVer version, BwKbps min_bw,
                                       BwKbps max_bw)
    : cserv_(&cserv),
      gateway_(&gateway),
      clock_(&clock),
      key_(key),
      bw_kbps_(bw_kbps),
      exp_time_(exp_time),
      version_(version),
      min_bw_(min_bw),
      max_bw_(max_bw) {}

dataplane::Gateway::Verdict ReservationSession::send(
    std::uint32_t payload_bytes, dataplane::FastPacket& out) {
  return gateway_->process(key_.res_id, payload_bytes, out);
}

bool ReservationSession::expired() const {
  return exp_time_ <= clock_->now_sec();
}

bool ReservationSession::maybe_renew(std::uint32_t lead_sec) {
  if (clock_->now_sec() + lead_sec < exp_time_) return true;  // not due yet
  auto r = cserv_->renew_eer(key_, min_bw_, max_bw_);
  if (!r) return false;
  bw_kbps_ = r.value().bw_kbps;
  exp_time_ = r.value().exp_time;
  version_ = r.value().version;
  return true;
}

}  // namespace colibri::app
