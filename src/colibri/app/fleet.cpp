#include "colibri/app/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "colibri/app/session.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/openmetrics.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri::app {

namespace {

// One open reservation plus everything the traffic loop needs to drive
// it: the frozen path (the db record is swept on expiry) and the
// per-reservation counter name bumped into every on-path registry.
struct FleetSession {
  ReservationSession session;
  std::vector<topology::Hop> path;
  std::string res_series;  // "res.<id>.bytes"
  int packets_per_sec = 0;
};

std::string render_fleet_table(const Testbed& bed,
                               const std::vector<AsId>& ases,
                               const telemetry::FleetCollector& collector,
                               const telemetry::ConservationAuditor& auditor,
                               const telemetry::AlertEngine& engine,
                               TimeNs now_ns) {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof(line), "== colibri fleet @ t=%.1fs ==\n",
                static_cast<double>(now_ns) / 1e9);
  out += line;
  std::snprintf(line, sizeof(line),
                "fleet: %zu ASes %zu links windows=%llu tracked=%zu "
                "dropped=%llu\n",
                collector.member_count(), collector.link_count(),
                static_cast<unsigned long long>(collector.windows_sampled()),
                collector.tracked_series(),
                static_cast<unsigned long long>(collector.dropped_series()));
  out += line;
  std::snprintf(line, sizeof(line),
                "rates: eer %7.0f/s  fwd %7.0f/s  res %9.0f B/s\n",
                collector.fleet_rate("cserv.eer_granted"),
                collector.fleet_rate("router.forwarded"),
                collector.fleet_rate("res."));
  out += line;
  out += "as           fwd/s      res B/s\n";
  for (const AsId as : ases) {
    const std::string name = as.to_string();
    std::snprintf(line, sizeof(line), "%-10s %7.0f %12.0f\n", name.c_str(),
                  collector.as_rate(name, "router.forwarded"),
                  collector.as_rate(name, "res."));
    out += line;
  }
  (void)bed;
  const auto top = collector.top_hitters();
  out += "top reservations (space-saving sketch):\n";
  for (std::size_t i = 0; i < top.size(); ++i) {
    std::snprintf(line, sizeof(line), "  #%zu res %s: est %llu B (+/-%llu)\n",
                  i + 1, top[i].key.c_str(),
                  static_cast<unsigned long long>(top[i].estimate),
                  static_cast<unsigned long long>(top[i].error));
    out += line;
  }
  const telemetry::AuditReport rep = auditor.last_report();
  std::snprintf(line, sizeof(line),
                "audit: %s checks=%llu violations=%zu passes=%llu\n",
                rep.clean() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rep.checks),
                rep.violations.size(),
                static_cast<unsigned long long>(auditor.passes()));
  out += line;
  for (std::size_t i = 0; i < rep.violations.size() && i < 4; ++i) {
    const telemetry::AuditViolation& v = rep.violations[i];
    std::snprintf(line, sizeof(line), "  !! %s at %s: %s\n", v.check.c_str(),
                  v.as.to_string().c_str(), v.detail.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "alerts: rules=%zu evaluations=%llu firing=%zu\n",
                engine.rule_count(),
                static_cast<unsigned long long>(engine.evaluations()),
                engine.firing_count());
  out += line;
  return out;
}

}  // namespace

FleetArtifacts run_fleet_scenario(const FleetOptions& opts) {
  SimClock clock(1'000 * kNsPerSec);
  telemetry::MetricsRegistry fleet_registry;  // the federation surface
  telemetry::EventLog events(clock);
  FleetArtifacts out;

  // Per-AS registries: the whole point of the scenario is that no
  // single registry sees the fleet — only the collector does.
  cserv::CservConfig cfg;
  cfg.events = &events;
  TestbedOptions topts;
  topts.per_as_metrics = true;
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg, topts);

  // as_ids() iterates a hash map; sort so member order — and with it
  // every rollup, table row, and export — is deterministic.
  std::vector<AsId> ases = bed.topology().as_ids();
  std::sort(ases.begin(), ases.end(),
            [](AsId a, AsId b) { return a.raw() < b.raw(); });

  telemetry::FleetCollectorConfig fcfg;
  fcfg.period_ns = kNsPerSec;
  fcfg.ring_capacity = 64;
  telemetry::FleetCollector collector(clock, fcfg, &fleet_registry);
  for (const AsId as : ases) {
    collector.add_member(as.to_string(), *bed.as_metrics(as));
  }
  for (const AsId as : ases) {
    for (const auto& itf : bed.topology().node(as).interfaces) {
      // Each core link once, from its lower-numbered endpoint.
      if (itf.type != topology::LinkType::kCore) continue;
      if (itf.neighbor.raw() <= as.raw()) continue;
      collector.add_link(as.to_string() + "~" + itf.neighbor.to_string(),
                         as.to_string(), itf.neighbor.to_string());
    }
  }
  collector.add_rollup("cserv.eer_granted");
  collector.add_rollup("cserv.seg_granted");
  collector.add_rollup("gateway.forwarded");
  collector.add_rollup("router.forwarded");
  collector.add_rollup("res.");  // fleet-wide reservation bytes

  telemetry::ConservationAuditor auditor(clock, &events, &fleet_registry);
  for (const AsId as : ases) {
    auditor.add_target({as.to_string(), as, &bed.cserv(as).db(),
                        bed.cserv(as).eer_admission(),
                        &bed.topology().node(as)});
  }

  // The audit/fleet surfaces ride the ordinary monitoring pipeline: a
  // sampler over the export registry feeds the audit alert pack.
  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = kNsPerSec;
  scfg.ring_capacity = 64;
  telemetry::WindowedSampler sampler(fleet_registry, clock, scfg,
                                     &fleet_registry);
  sampler.track_rate("fleet.windows");
  telemetry::AlertEngine engine(sampler, clock, &events, &fleet_registry);
  engine.add_rules(telemetry::default_audit_alert_rules());

  // Baseline windows: the first collector/sampler poll only records the
  // snapshot to delta against.
  clock.advance(kNsPerSec);
  (void)collector.poll();
  (void)sampler.poll();

  bed.provision_all_segments(/*min_bw=*/1'000, /*max_bw=*/2'000'000);

  // Cross-ISD sessions between leaf ASes, one per slot, each with its
  // own deterministic traffic level so the heavy-hitter ranking is a
  // fixed permutation (slot i sends i+1 packets per second).
  const std::vector<AsId> srcs = {{1, 110}, {1, 111}, {1, 112},
                                  {1, 120}, {1, 121}, {1, 122}};
  const std::vector<AsId> dsts = {{2, 210}, {2, 211}, {2, 212},
                                  {2, 220}, {2, 221}, {2, 222}};
  std::vector<FleetSession> sessions;
  for (int i = 0; i < opts.sessions; ++i) {
    const AsId src = srcs[static_cast<std::size_t>(i) % srcs.size()];
    const AsId dst = dsts[static_cast<std::size_t>(i) % dsts.size()];
    auto r = bed.daemon(src).open_session(
        dst, HostAddr::from_u64(0xA000 + static_cast<std::uint64_t>(i)),
        HostAddr::from_u64(0xB000 + static_cast<std::uint64_t>(i)),
        /*min_bw=*/1'000, /*max_bw=*/5'000 + 1'000 * i);
    if (!r) continue;
    const auto eer = bed.cserv(src).db().eer_copy(r.value().key());
    if (!eer) continue;
    // ResIds are minted per source AS, so qualify the series with the
    // src — otherwise two sessions from different ASes merge into one
    // sketch key.
    const ResKey key = r.value().key();
    FleetSession s{std::move(r.value()), eer->path,
                   "res." + key.src_as.to_string() + ":" +
                       std::to_string(key.res_id) + ".bytes",
                   i + 1};
    sessions.push_back(std::move(s));
    ++out.sessions_opened;
  }

  for (int sec = 0; sec < opts.seconds; ++sec) {
    clock.advance(kNsPerSec);
    for (FleetSession& s : sessions) {
      for (int p = 0; p < s.packets_per_sec; ++p) {
        dataplane::FastPacket pkt;
        if (s.session.send(1'000, pkt) != dataplane::Gateway::Verdict::kOk) {
          continue;
        }
        bool dropped = false;
        for (const auto& hop : s.path) {
          const auto v = bed.router(hop.as).process(pkt);
          if (v != dataplane::BorderRouter::Verdict::kForward &&
              v != dataplane::BorderRouter::Verdict::kDeliver) {
            dropped = true;
            break;
          }
          // Per-reservation accounting at every on-path AS; the
          // collector sums these across members, so one reservation is
          // one sketch key with path-length-weighted bytes.
          bed.as_metrics(hop.as)->counter(s.res_series).inc(1'000);
        }
        out.delivered += !dropped;
      }
      (void)s.session.maybe_renew();
    }
    bed.tick_all();

    if (opts.inject_corruption && sec == opts.seconds / 2) {
      // Bit-flip-grade corruption on the first core AS's first SegR:
      // its EER allocation counter now exceeds the tube. Only the
      // auditor can see this — no admission path ever re-reads it.
      const AsId victim{1, 100};
      const auto segrs = bed.cserv(victim).db().segr_snapshot();
      if (!segrs.empty()) {
        bed.cserv(victim).db().with_segr(
            segrs.front().key, [](reservation::SegrRecord* r) {
              if (r != nullptr) {
                r->eer_allocated_kbps = r->active.bw_kbps * 2 + 1;
              }
            });
      }
    }

    (void)collector.poll();
    (void)auditor.run(clock.now_sec());
    if (sampler.poll()) (void)engine.evaluate();
    out.frames.push_back(render_fleet_table(bed, ases, collector, auditor,
                                            engine, clock.now_ns()));
  }

  out.table = render_fleet_table(bed, ases, collector, auditor, engine,
                                 clock.now_ns());
  out.as_count = collector.member_count();
  out.link_count = collector.link_count();
  out.fleet_windows = collector.windows_sampled();
  out.hitters = collector.top_hitters();

  const telemetry::AuditReport last = auditor.last_report();
  out.audit_passes = auditor.passes();
  out.audit_checks = last.checks;
  out.audit_violations = last.violations.size();
  out.audit_violations_total = auditor.violations_total();

  out.sampler_windows = sampler.windows_sampled();
  out.alert_rules = engine.rule_count();
  out.alert_evaluations = engine.evaluations();
  out.alerts_fired = engine.fired_total();
  out.alerts_firing = engine.firing_count();

  out.metrics = fleet_registry.snapshot();
  out.metrics_json = out.metrics.to_json();
  out.openmetrics = telemetry::to_openmetrics(out.metrics);
  out.events_count = events.size();
  out.events_jsonl = events.to_jsonl();
  return out;
}

}  // namespace colibri::app
