#include "colibri/app/daemon.hpp"

namespace colibri::app {

Result<ReservationSession> ColibriDaemon::open_session(
    AsId dst_as, const HostAddr& src_host, const HostAddr& dst_host,
    BwKbps min_bw, BwKbps max_bw) {
  const auto chains = cserv_->lookup_chains(dst_as);
  if (chains.empty()) return Errc::kNoSuchSegment;

  Errc last_error = Errc::kBandwidthUnavailable;
  for (const auto& chain : chains) {
    std::vector<ResKey> segrs;
    segrs.reserve(chain.size());
    for (const auto& advert : chain) segrs.push_back(advert.key);
    auto r = cserv_->setup_eer(segrs, src_host, dst_host, min_bw, max_bw);
    if (r) {
      const auto& res = r.value();
      return ReservationSession(*cserv_, *gateway_, *clock_, res.key,
                                res.bw_kbps, res.exp_time, res.version, min_bw,
                                max_bw);
    }
    // Path choice (§2.1): on failure, retry over the next chain.
    last_error = r.error();
  }
  return last_error;
}

}  // namespace colibri::app
