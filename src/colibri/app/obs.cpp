#include "colibri/app/obs.hpp"

#include <vector>

#include "colibri/app/testbed.hpp"
#include "colibri/cserv/renewal_manager.hpp"
#include "colibri/telemetry/openmetrics.hpp"

namespace colibri::app {

ObsArtifacts run_obs_scenario(const ObsOptions& opts) {
  SimClock clock(1'000 * kNsPerSec);
  telemetry::MetricsRegistry registry;
  telemetry::EventLog events(clock);

  cserv::CservConfig cfg;
  cfg.metrics = &registry;
  cfg.events = &events;
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg);
  bed.provision_all_segments(/*min_bw=*/1'000, /*max_bw=*/2'000'000);

  const AsId src_as{1, 112}, dst_as{2, 212};
  auto session = bed.daemon(src_as).open_session(
      dst_as, HostAddr::from_u64(0xA11CE), HostAddr::from_u64(0xB0B),
      /*min_bw=*/1'000, /*max_bw=*/50'000);
  ObsArtifacts out;
  if (!session.ok()) return out;

  const auto* eer = bed.cserv(src_as).db().eers().find(session.value().key());
  if (eer == nullptr) return out;
  // The record is swept once the EER expires below; keep our own copy.
  const std::vector<topology::Hop> path = eer->path;

  // Flight recorders: one on the source gateway, one per on-path router.
  telemetry::FlightRecorder::Config rcfg;
  rcfg.capacity = opts.recorder_capacity;
  rcfg.sample_every = opts.sample_every;
  telemetry::FlightRecorder gw_rec(rcfg);
  bed.gateway(src_as).attach_flight_recorder(&gw_rec);
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> router_recs;
  for (const auto& hop : path) {
    router_recs.push_back(std::make_unique<telemetry::FlightRecorder>(rcfg));
    bed.router(hop.as).attach_flight_recorder(router_recs.back().get());
  }

  // Policing at the first transit AS, with escalations on the event log.
  dataplane::Blocklist blocklist(&registry);
  dataplane::DuplicateSuppression dupsup;
  blocklist.set_event_log(&events);
  dataplane::BorderRouter& first_router = bed.router(path[0].as);
  first_router.attach_blocklist(&blocklist);
  first_router.attach_dupsup(&dupsup);

  // Clean traffic end to end, paced at the reserved rate.
  dataplane::FastPacket last_good{};
  bool have_good = false;
  for (int i = 0; i < opts.packets; ++i) {
    dataplane::FastPacket pkt;
    if (session.value().send(1'000, pkt) != dataplane::Gateway::Verdict::kOk) {
      continue;
    }
    const dataplane::FastPacket fresh = pkt;
    bool dropped = false;
    for (const auto& hop : path) {
      const auto v = bed.router(hop.as).process(pkt);
      if (v != dataplane::BorderRouter::Verdict::kForward &&
          v != dataplane::BorderRouter::Verdict::kDeliver) {
        dropped = true;
        break;
      }
    }
    out.delivered += !dropped;
    last_good = fresh;
    have_good = true;
    clock.advance(session.value().pace_interval_ns(1'000));
  }

  if (have_good) {
    // Tampered bandwidth field: rejected by the HVF check (Eq. 6).
    dataplane::FastPacket evil = last_good;
    evil.resinfo.bw_kbps *= 100;
    (void)first_router.process(evil);
    // Replay of an already-seen packet: caught by duplicate suppression.
    dataplane::FastPacket replay = last_good;
    (void)first_router.process(replay);
    (void)first_router.process(replay);
  }
  // Unknown reservation at the gateway.
  dataplane::FastPacket unknown_out;
  (void)bed.gateway(src_as).process(0xDEAD'BEEF, 1'000, unknown_out);
  // A confirmed offense escalates: blocklist + CServ denial.
  const dataplane::OffenseReport offense{AsId{2, 999}, 42, clock.now_ns(),
                                         50'000};
  blocklist.report(offense);
  bed.cserv(path[0].as).report_offense(offense);

  // Automatic SegR renewal: jump to within the renewal lead of expiry.
  std::vector<std::unique_ptr<cserv::RenewalManager>> managers;
  for (AsId as : bed.topology().as_ids()) {
    managers.push_back(std::make_unique<cserv::RenewalManager>(bed.cserv(as)));
    managers.back()->manage_all_local();
  }
  clock.set((1'000 + reservation::kSegrLifetimeSec - 30) * kNsPerSec);
  for (auto& m : managers) m->tick(clock.now_sec());

  // Let the EER run out; the sweep emits the expiry audit events.
  clock.advance(60 * kNsPerSec);
  bed.tick_all();

  out.metrics = registry.snapshot();
  out.metrics_json = out.metrics.to_json();
  out.openmetrics = telemetry::to_openmetrics(out.metrics);
  out.events_count = events.size();
  out.events_jsonl = events.to_jsonl();
  std::string records;
  std::size_t n_records = 0;
  auto drain_into = [&](telemetry::FlightRecorder& r) {
    n_records += r.size();
    records += r.to_jsonl();
  };
  drain_into(gw_rec);
  for (auto& r : router_recs) drain_into(*r);
  out.records_count = n_records;
  out.records_jsonl = std::move(records);

  // Detach before the local recorders/policing objects go out of scope.
  bed.gateway(src_as).attach_flight_recorder(nullptr);
  for (size_t i = 0; i < path.size(); ++i) {
    bed.router(path[i].as).attach_flight_recorder(nullptr);
  }
  first_router.attach_blocklist(nullptr);
  first_router.attach_dupsup(nullptr);
  return out;
}

}  // namespace colibri::app
