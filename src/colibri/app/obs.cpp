#include "colibri/app/obs.hpp"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "colibri/app/chaos.hpp"
#include "colibri/app/fleet.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/cserv/failover.hpp"
#include "colibri/cserv/renewal_manager.hpp"
#include "colibri/dataplane/shard.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/incident.hpp"
#include "colibri/telemetry/openmetrics.hpp"
#include "colibri/telemetry/timeseries.hpp"
#include "colibri/telemetry/trace_export.hpp"

namespace colibri::app {
namespace {

// One dashboard frame: current + peak windowed rates for the headline
// series, the windowed admission p99, shard health as the sampler sees
// it, SLO budgets, and the alert-engine tallies with any firing rules.
std::string render_watch_frame(const telemetry::WindowedSampler& sampler,
                               const telemetry::AlertEngine& engine,
                               TimeNs now_ns) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "== colibri watch @ t=%.3fs  windows=%llu (period %lld ms) ==\n",
                static_cast<double>(now_ns) / 1e9,
                static_cast<unsigned long long>(sampler.windows_sampled()),
                static_cast<long long>(sampler.period_ns() / 1'000'000));
  out += line;
  const auto rate_row = [&](const char* label, const char* series,
                            bool prefix) {
    std::snprintf(line, sizeof(line), "%-24s %12.0f/s  peak %12.0f/s\n", label,
                  sampler.rate(series, kNsPerSec, prefix),
                  sampler.peak_rate(series, prefix));
    out += line;
  };
  rate_row("gateway.forwarded", "gateway.forwarded", false);
  rate_row("router.forwarded", "router.forwarded", false);
  rate_row("router.drop.*", "router.drop.", true);
  rate_row("gateway_shard.*.fwd", "gateway_shard.", true);
  const auto p99 = sampler.windowed_percentile("cserv.request_latency_ns",
                                               0.99, 10 * kNsPerSec);
  std::snprintf(line, sizeof(line), "admission p99 (10s): %s\n",
                p99 ? (std::to_string(static_cast<long long>(*p99)) + " ns")
                          .c_str()
                    : "no data");
  out += line;
  const auto shards = sampler.gauge_level("gateway_runtime.shard.count");
  const auto depth =
      sampler.gauge_level("gateway_runtime.shard.", /*prefix=*/true);
  if (shards) {
    std::snprintf(line, sizeof(line),
                  "shards: %lld  max shard gauge: %lld\n",
                  static_cast<long long>(*shards),
                  static_cast<long long>(depth.value_or(0)));
    out += line;
  }
  // Fleet-federation state, present only when a FleetCollector exports
  // into this registry (the fleet scenario).
  if (const auto fleet = sampler.gauge_level("fleet.as_count")) {
    std::snprintf(
        line, sizeof(line),
        "fleet: ases=%lld links=%lld tracked=%lld audit violations=%lld\n",
        static_cast<long long>(*fleet),
        static_cast<long long>(
            sampler.gauge_level("fleet.link_count").value_or(0)),
        static_cast<long long>(
            sampler.gauge_level("fleet.series_tracked").value_or(0)),
        static_cast<long long>(
            sampler.gauge_level("telemetry.audit.last_violations")
                .value_or(0)));
    out += line;
  }
  // Protection-pair state, present only when a FailoverManager exports
  // into this registry (the failover scenario).
  if (const auto prot = sampler.gauge_level("cserv.failover.protected")) {
    std::snprintf(line, sizeof(line),
                  "failover: protected=%lld active=%lld cutovers %9.0f/s\n",
                  static_cast<long long>(*prot),
                  static_cast<long long>(
                      sampler.gauge_level("cserv.failover.active").value_or(0)),
                  sampler.rate("cserv.failover.cutovers", kNsPerSec));
    out += line;
  }
  for (const auto& s : engine.slo_status()) {
    std::snprintf(line, sizeof(line),
                  "slo %-20s burn %6.2f  budget %5.1f%%  [%s]\n",
                  s.name.c_str(), s.burn_rate, s.budget_remaining * 100.0,
                  telemetry::alert_state_name(s.state));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "alerts: rules=%zu evaluations=%llu firing=%zu fired=%llu "
                "resolved=%llu\n",
                engine.rule_count(),
                static_cast<unsigned long long>(engine.evaluations()),
                engine.firing_count(),
                static_cast<unsigned long long>(engine.fired_total()),
                static_cast<unsigned long long>(engine.resolved_total()));
  out += line;
  for (const auto& st : engine.status()) {
    if (st.state == telemetry::AlertState::kInactive) continue;
    std::snprintf(line, sizeof(line), "  [%s] %s value=%.2f\n",
                  telemetry::alert_state_name(st.state), st.name.c_str(),
                  st.last_value);
    out += line;
  }
  return out;
}

// The failover timeline: steady reserved traffic over the primary core
// SegR, a FaultInjector-scheduled outage of the protected link, backup
// cutover (the failover rule pack fires), heal, fail-back (it
// resolves), then traffic re-established over the primary. Every leg
// cuts monitored windows, so `watch` replays the incident end to end.
// The timeline is fixed (options only select the scenario).
ObsArtifacts run_failover_scenario(const ObsOptions& opts) {
  SimClock clock(1'000 * kNsPerSec);
  telemetry::MetricsRegistry registry;
  telemetry::EventLog events(clock);
  ObsArtifacts out;

  cserv::CservConfig cfg;
  cfg.metrics = &registry;
  cfg.events = &events;
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg);
  FaultInjector inj(clock, /*seed=*/0xFA110, &events);
  bed.bus().attach_fault_injector(&inj);

  // 1 s windows: the incident runs on a seconds timeline, one frame per
  // simulated second.
  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = kNsPerSec;
  scfg.ring_capacity = 256;
  telemetry::WindowedSampler sampler(registry, clock, scfg, &registry);
  sampler.track_rate("gateway.forwarded");
  sampler.track_rate("router.forwarded");
  sampler.track_rate("cserv.failover.cutovers");
  telemetry::AlertEngine engine(sampler, clock, &events, &registry);
  engine.add_rules(cserv::default_cserv_alert_rules());
  engine.add_rules(cserv::default_failover_alert_rules());

  // Post-mortem trail: every cut window is appended to the history
  // store, and the firing failover rule opens an incident bundle. With
  // opts.forensics_dir set, both survive the process for the offline
  // `colibri_obs history` / `colibri_obs incident` commands.
  std::unique_ptr<telemetry::HistoryBackend> history_backend;
  if (opts.forensics_dir.empty()) {
    history_backend = std::make_unique<telemetry::MemoryHistoryBackend>();
  } else {
    history_backend = std::make_unique<telemetry::DirectoryHistoryBackend>(
        opts.forensics_dir + "/history");
  }
  telemetry::HistoryStore history(*history_backend, {}, &registry);
  telemetry::IncidentRecorder incidents(engine);
  incidents.set_event_log(&events);
  incidents.set_sampler(&sampler);
  incidents.set_fault_injector(&inj);
  if (!opts.forensics_dir.empty()) {
    incidents.set_directory(opts.forensics_dir + "/incidents");
  }

  const auto monitor = [&] {
    if (sampler.poll()) {
      (void)engine.evaluate();
      history.append_latest(sampler);
      out.watch_frames.push_back(
          render_watch_frame(sampler, engine, clock.now_ns()));
    }
  };
  clock.advance(scfg.period_ns);
  (void)sampler.poll();  // baseline window

  bed.provision_all_segments(/*min_bw=*/1'000, /*max_bw=*/2'000'000);
  const std::optional<ResKey> primary = find_primary_core_segr(bed);
  cserv::FailoverManager fm(bed.cserv(kProtectedLinkA));
  std::optional<ResKey> backup;
  if (primary) {
    auto b = fm.provision_backup(*primary,
                                 protection_backup_segment(bed.topology()),
                                 /*min_bw=*/1'000, /*max_bw=*/30'000);
    if (b) backup = b.value();
  }

  // Outage window: down 5 s into the timeline, healed 10 s later.
  inj.schedule_link_failure(kProtectedLinkId, clock.now_ns() + 5 * kNsPerSec,
                            clock.now_ns() + 15 * kNsPerSec);

  const AsId src_as{1, 112}, dst_as{2, 212};
  const HostAddr src_host = HostAddr::from_u64(0xA11CE);
  const HostAddr dst_host = HostAddr::from_u64(0xB0B);

  // Flight recorder on the source gateway: the incident bundle embeds
  // its ring, so the black box holds the last packets the gateway saw
  // before the alert fired.
  telemetry::FlightRecorder::Config rcfg;
  rcfg.sample_every = 1;  // keep every decision; the ring bounds memory
  telemetry::FlightRecorder gw_rec(rcfg);
  bed.gateway(src_as).attach_flight_recorder(&gw_rec);
  incidents.add_flight_recorder("gateway.src", &gw_rec);

  std::optional<ReservationSession> session;
  std::vector<topology::Hop> path;
  const auto reopen = [&] {
    if (primary) bed.cserv(src_as).registry().invalidate(*primary);
    if (backup) bed.cserv(src_as).registry().invalidate(*backup);
    auto r = bed.daemon(src_as).open_session(dst_as, src_host, dst_host,
                                             1'000, 5'000);
    if (!r) return;
    session.emplace(std::move(r.value()));
    if (auto eer = bed.cserv(src_as).db().eer_copy(session->key())) {
      path = eer->path;
    }
  };
  reopen();

  // Fixed 30 s timeline (5 s steady / 10 s outage / 15 s healed);
  // opts.packets paces the default scenario only.
  for (int i = 0; i < 30; ++i) {
    clock.advance(kNsPerSec);
    bed.bus().deliver_delayed();
    for (const auto& t : inj.poll_link_transitions()) {
      if (t.link_id != kProtectedLinkId) continue;
      if (!t.up) {
        fm.on_link_down(kProtectedLinkA, kProtectedLinkB, t.at_ns);
        session.reset();  // the EER rode the dead link; migrate
        reopen();         // ...onto the freshly-published backup
      } else {
        fm.on_link_up(kProtectedLinkA, kProtectedLinkB);
        session.reset();  // drift back to the primary
        reopen();
      }
    }
    if (!session) reopen();
    if (session) {
      bool crosses_down = !inj.link_up(kProtectedLinkId);
      if (crosses_down) {
        crosses_down = false;
        for (size_t h = 0; h + 1 < path.size(); ++h) {
          const auto a = path[h].as, b = path[h + 1].as;
          crosses_down |= (a == kProtectedLinkA && b == kProtectedLinkB) ||
                          (a == kProtectedLinkB && b == kProtectedLinkA);
        }
      }
      dataplane::FastPacket pkt;
      if (!crosses_down &&
          session->send(1'000, pkt) == dataplane::Gateway::Verdict::kOk) {
        bool dropped = false;
        for (const auto& hop : path) {
          const auto v = bed.router(hop.as).process(pkt);
          if (v != dataplane::BorderRouter::Verdict::kForward &&
              v != dataplane::BorderRouter::Verdict::kDeliver) {
            dropped = true;
            break;
          }
        }
        out.delivered += !dropped;
      }
      if (!session->maybe_renew()) session.reset();
    }
    bed.tick_all();
    monitor();
  }

  out.watch_text = render_watch_frame(sampler, engine, clock.now_ns());
  out.sampler_windows = sampler.windows_sampled();
  out.alert_rules = engine.rule_count();
  out.alert_evaluations = engine.evaluations();
  out.alerts_fired = engine.fired_total();
  out.alerts_resolved = engine.resolved_total();
  out.alerts_firing = engine.firing_count();
  out.metrics = registry.snapshot();
  out.metrics_json = out.metrics.to_json();
  out.openmetrics = telemetry::to_openmetrics(out.metrics);
  out.events_count = events.size();
  out.events_jsonl = events.to_jsonl();
  out.history_frames = history.stats().frames_appended;
  out.history_segments = history.segment_count();
  out.incident_bundles = incidents.bundle_count();
  if (incidents.bundle_count() > 0) {
    out.first_incident_rule = incidents.bundles().front().rule;
  }
  return out;
}

// The fleet-federation timeline, mapped onto the common artifact
// shape: the rendered fleet tables are the watch frames (each carries
// a "fleet:" headline), the export registry's snapshot is the metrics
// surface, and the audit verdict rides the fleet_* / audit_* fields.
ObsArtifacts run_fleet_obs_scenario(const ObsOptions& /*opts*/) {
  FleetArtifacts fa = run_fleet_scenario();
  ObsArtifacts out;
  out.fleet_as_count = fa.as_count;
  out.fleet_link_count = fa.link_count;
  out.fleet_windows = fa.fleet_windows;
  out.audit_passes = fa.audit_passes;
  out.audit_checks = fa.audit_checks;
  out.audit_violations = fa.audit_violations;
  out.delivered = fa.delivered;
  out.sampler_windows = fa.sampler_windows;
  out.alert_rules = fa.alert_rules;
  out.alert_evaluations = fa.alert_evaluations;
  out.alerts_fired = fa.alerts_fired;
  out.alerts_firing = fa.alerts_firing;
  out.watch_frames = std::move(fa.frames);
  out.watch_text = std::move(fa.table);
  out.metrics = std::move(fa.metrics);
  out.metrics_json = std::move(fa.metrics_json);
  out.openmetrics = std::move(fa.openmetrics);
  out.events_jsonl = std::move(fa.events_jsonl);
  out.events_count = fa.events_count;
  return out;
}

}  // namespace

std::vector<std::string> obs_scenario_names() {
  return {"default", "failover", "fleet"};
}

ObsArtifacts run_obs_scenario(const ObsOptions& opts) {
  if (opts.scenario == "failover") return run_failover_scenario(opts);
  if (opts.scenario == "fleet") return run_fleet_obs_scenario(opts);
  SimClock clock(1'000 * kNsPerSec);
  telemetry::MetricsRegistry registry;
  telemetry::EventLog events(clock);
  ObsArtifacts out;

  cserv::CservConfig cfg;
  cfg.metrics = &registry;
  cfg.events = &events;
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg);

  // Live-monitoring plane: 10 ms windows keep the SimClock-paced packet
  // loop (~160 us/packet) cutting several windows; the engine carries
  // every component's default rule pack plus two SLOs. Both re-export
  // into the same registry, so the derived gauges and alert counters
  // ride the snapshot below.
  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = 10'000'000;
  scfg.ring_capacity = 256;
  telemetry::WindowedSampler sampler(registry, clock, scfg, &registry);
  sampler.track_rate("gateway.forwarded");
  sampler.track_rate("router.forwarded");
  sampler.track_rate("router.drop.");
  sampler.track_percentiles("cserv.request_latency_ns");
  for (int s = 0; s < 4; ++s) {
    sampler.track_watermark("gateway_runtime.shard." + std::to_string(s) +
                            ".ring_depth");
  }
  telemetry::AlertEngine engine(sampler, clock, &events, &registry);
  engine.add_rules(cserv::default_cserv_alert_rules());
  engine.add_rules(dataplane::default_router_alert_rules());
  engine.add_rules(dataplane::ShardedGatewayRuntime::default_alert_rules(
      /*shard_count=*/4, /*ring_depth_threshold=*/48));
  {
    telemetry::Slo lat;
    lat.name = "admission-latency";
    lat.kind = telemetry::Slo::Kind::kLatency;
    lat.objective = 0.001;
    lat.series = "cserv.request_latency_ns";
    lat.latency_threshold_ns = 50'000'000;
    engine.add_slo(lat);
    telemetry::Slo del;
    del.name = "router-delivery";
    del.kind = telemetry::Slo::Kind::kFraction;
    del.objective = 0.05;  // <=5% of router verdicts may be drops
    del.series = "router.drop.";
    del.total_series = "router.";
    engine.add_slo(del);
  }
  const auto monitor = [&] {
    if (sampler.poll()) {
      (void)engine.evaluate();
      out.watch_frames.push_back(
          render_watch_frame(sampler, engine, clock.now_ns()));
    }
  };
  // Baseline window before the lifecycle starts: the first sample only
  // records the snapshot to delta against, so the provisioning burst
  // lands whole in window 1.
  clock.advance(scfg.period_ns);
  (void)sampler.poll();

  // Lifecycle tracing: every bus hop call of the setup conversation —
  // segment provisioning and the end-to-end EER admission — is
  // collected as a span; the admission handlers annotate their span
  // with the verdict they reached at that AS.
  bed.bus().tracer().enable();
  bed.provision_all_segments(/*min_bw=*/1'000, /*max_bw=*/2'000'000);

  const AsId src_as{1, 112}, dst_as{2, 212};
  auto session = bed.daemon(src_as).open_session(
      dst_as, HostAddr::from_u64(0xA11CE), HostAddr::from_u64(0xB0B),
      /*min_bw=*/1'000, /*max_bw=*/50'000);
  const telemetry::SpanTrace setup_trace = bed.bus().tracer().take();
  bed.bus().tracer().disable();
  if (!session.ok()) return out;

  // Stitch the captured spans into causal trees (one per originated
  // request) and register the assembler so cserv.trace.* — per-hop
  // latency histograms, orphan/truncated counters — lands in the
  // snapshot taken below.
  telemetry::TraceAssembler assembler(&registry);
  assembler.add_capture(setup_trace);
  out.traces = assembler.assemble();

  const auto eer = bed.cserv(src_as).db().eer_copy(session.value().key());
  if (!eer) return out;
  // The record is swept once the EER expires below; keep our own copy.
  const std::vector<topology::Hop> path = eer->path;

  // Flight recorders: one on the source gateway, one per on-path router.
  telemetry::FlightRecorder::Config rcfg;
  rcfg.capacity = opts.recorder_capacity;
  rcfg.sample_every = opts.sample_every;
  telemetry::FlightRecorder gw_rec(rcfg);
  bed.gateway(src_as).attach_flight_recorder(&gw_rec);
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> router_recs;
  for (const auto& hop : path) {
    router_recs.push_back(std::make_unique<telemetry::FlightRecorder>(rcfg));
    bed.router(hop.as).attach_flight_recorder(router_recs.back().get());
  }

  // Policing at the first transit AS, with escalations on the event log.
  dataplane::Blocklist blocklist(&registry);
  dataplane::DuplicateSuppression dupsup;
  blocklist.set_event_log(&events);
  dataplane::BorderRouter& first_router = bed.router(path[0].as);
  first_router.attach_blocklist(&blocklist);
  first_router.attach_dupsup(&dupsup);

  // Clean traffic end to end, paced at the reserved rate.
  dataplane::FastPacket last_good{};
  bool have_good = false;
  for (int i = 0; i < opts.packets; ++i) {
    dataplane::FastPacket pkt;
    if (session.value().send(1'000, pkt) != dataplane::Gateway::Verdict::kOk) {
      continue;
    }
    const dataplane::FastPacket fresh = pkt;
    bool dropped = false;
    for (const auto& hop : path) {
      const auto v = bed.router(hop.as).process(pkt);
      if (v != dataplane::BorderRouter::Verdict::kForward &&
          v != dataplane::BorderRouter::Verdict::kDeliver) {
        dropped = true;
        break;
      }
    }
    out.delivered += !dropped;
    last_good = fresh;
    have_good = true;
    clock.advance(session.value().pace_interval_ns(1'000));
    monitor();
  }

  if (have_good) {
    // Tampered bandwidth field: rejected by the HVF check (Eq. 6).
    dataplane::FastPacket evil = last_good;
    evil.resinfo.bw_kbps *= 100;
    (void)first_router.process(evil);
    // Replay of an already-seen packet: caught by duplicate suppression.
    dataplane::FastPacket replay = last_good;
    (void)first_router.process(replay);
    (void)first_router.process(replay);
  }
  // Unknown reservation at the gateway.
  dataplane::FastPacket unknown_out;
  (void)bed.gateway(src_as).process(0xDEAD'BEEF, 1'000, unknown_out);
  // A confirmed offense escalates: blocklist + CServ denial.
  const dataplane::OffenseReport offense{AsId{2, 999}, 42, clock.now_ns(),
                                         50'000};
  blocklist.report(offense);
  bed.cserv(path[0].as).report_offense(offense);
  // Cut a window over the attack burst so its drop counters show up as
  // a rate spike instead of dissolving into the next long window.
  clock.advance(scfg.period_ns);
  monitor();

  // Batched data-plane leg with the per-stage profiler on and capturing
  // spans: the same reservation pushed through the gateway's staged
  // pipeline, then the resulting packets through the first router's
  // batch pipeline. This is what fills "gateway.stage.*" /
  // "router.stage.*" and the stage tracks of the Perfetto export.
  dataplane::Gateway& gw = bed.gateway(src_as);
  gw.profiler().set_enabled(true);
  gw.profiler().set_span_capture(64);
  first_router.profiler().set_enabled(true);
  first_router.profiler().set_span_capture(64);
  {
    constexpr std::size_t kBatch = 32;
    ResId ids[kBatch];
    std::uint32_t pls[kBatch];
    dataplane::FastPacket outp[kBatch];
    dataplane::Gateway::Verdict gv[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids[i] = session.value().key().res_id;
      pls[i] = 1'000;
    }
    (void)gw.process_batch(ids, pls, kBatch, outp, gv);
    dataplane::PacketBatch batch;
    for (std::size_t i = 0; i < kBatch; ++i) {
      if (gv[i] == dataplane::Gateway::Verdict::kOk) batch.push(outp[i]);
    }
    dataplane::BorderRouter::Verdict rv[dataplane::PacketBatch::kCapacity];
    if (!batch.empty()) first_router.process_batch(batch, rv);
  }
  gw.profiler().set_enabled(false);
  first_router.profiler().set_enabled(false);

  // Sharded-runtime health leg: the source AS's reservation state
  // sharded four ways, driven through the SPSC rings by this thread
  // while the workers drain. A deliberately small ring makes the
  // backpressure counters move on a busy machine.
  dataplane::ShardedGateway sharded(src_as, clock, /*num_shards=*/4, {},
                                    &registry);
  gw.for_each_entry([&](ResId id, const dataplane::GatewayEntry& e) {
    sharded.shard(sharded.shard_of(id)).install_entry(id, e);
  });
  dataplane::ShardedGatewayRuntime runtime(sharded, /*ring_capacity=*/64,
                                           &registry);
  runtime.start();
  {
    const ResId res = session.value().key().res_id;
    for (int i = 0; i < 2'000; ++i) {
      // Mix known and unknown ids so the shard verdicts spread across
      // forwarded and drop.no-such-reservation; retry rejected
      // submissions so every request is eventually accepted.
      const ResId id =
          (i % 4 == 3) ? static_cast<ResId>(0xDEAD'0000ULL + i) : res;
      while (!runtime.submit(id, 1'000)) std::this_thread::yield();
    }
    runtime.drain();
  }
  (void)runtime.check_stalls();  // baseline
  const std::vector<size_t> stalled = runtime.check_stalls();
  runtime.stop();
  // Window over the runtime leg, cut only after stop(): the SimClock
  // must never move while the workers run (they read it concurrently
  // and SimClock::advance is not thread-safe), so the whole burst
  // lands in one window.
  clock.advance(scfg.period_ns);
  monitor();

  // Automatic SegR renewal: jump to within the renewal lead of expiry.
  std::vector<std::unique_ptr<cserv::RenewalManager>> managers;
  for (AsId as : bed.topology().as_ids()) {
    managers.push_back(std::make_unique<cserv::RenewalManager>(bed.cserv(as)));
    managers.back()->manage_all_local();
  }
  clock.set((1'000 + reservation::kSegrLifetimeSec - 30) * kNsPerSec);
  for (auto& m : managers) m->tick(clock.now_sec());
  monitor();  // one giant window across the jump; renewals land here

  // Let the EER run out; the sweep emits the expiry audit events.
  clock.advance(60 * kNsPerSec);
  bed.tick_all();
  monitor();

  out.watch_text = render_watch_frame(sampler, engine, clock.now_ns());
  out.sampler_windows = sampler.windows_sampled();
  out.alert_rules = engine.rule_count();
  out.alert_evaluations = engine.evaluations();
  out.alerts_fired = engine.fired_total();
  out.alerts_resolved = engine.resolved_total();
  out.alerts_firing = engine.firing_count();

  out.metrics = registry.snapshot();
  out.metrics_json = out.metrics.to_json();
  out.openmetrics = telemetry::to_openmetrics(out.metrics);
  out.events_count = events.size();
  out.events_jsonl = events.to_jsonl();
  std::string records;
  std::size_t n_records = 0;
  auto drain_into = [&](telemetry::FlightRecorder& r) {
    n_records += r.size();
    records += r.to_jsonl();
  };
  drain_into(gw_rec);
  for (auto& r : router_recs) drain_into(*r);
  out.records_count = n_records;
  out.records_jsonl = std::move(records);

  // Perfetto export: setup spans (one track per AS), lifecycle events
  // (tracks keyed by the emitting AS), and the captured stage spans of
  // the batched data-plane leg.
  telemetry::PerfettoTraceBuilder ptb;
  ptb.add_span_trace(setup_trace, "control-plane", "setup");
  ptb.add_events(events.events(), "lifecycle");
  ptb.add_stage_spans(gw.profiler(), gw.profiler().spans(), "data-plane",
                      "gateway " + src_as.to_string());
  ptb.add_stage_spans(first_router.profiler(), first_router.profiler().spans(),
                      "data-plane", "router " + path[0].as.to_string());
  out.perfetto_json = ptb.to_json();
  out.trace_events = ptb.event_count();
  out.trace_tracks = ptb.track_count();

  // Health surface: one line per shard plus the stall verdict.
  out.health_shards = runtime.shard_count();
  out.stalled_shards = stalled.size();
  for (size_t i = 0; i < runtime.shard_count(); ++i) {
    const auto h = runtime.shard_health(i);
    out.health_rejected += h.rejected;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "shard %zu: submitted=%llu processed=%llu ok=%llu "
                  "batches=%llu rejected=%llu ring_depth=%llu "
                  "high_watermark=%llu heartbeats=%llu\n",
                  i, static_cast<unsigned long long>(h.submitted),
                  static_cast<unsigned long long>(h.processed),
                  static_cast<unsigned long long>(h.ok),
                  static_cast<unsigned long long>(h.batches),
                  static_cast<unsigned long long>(h.rejected),
                  static_cast<unsigned long long>(h.ring_depth),
                  static_cast<unsigned long long>(h.high_watermark),
                  static_cast<unsigned long long>(h.heartbeats));
    out.health_text += line;
  }
  out.health_text += stalled.empty()
                         ? "stall detector: all workers live\n"
                         : "stall detector: " +
                               std::to_string(stalled.size()) +
                               " shard(s) stalled\n";

  // Detach before the local recorders/policing objects go out of scope.
  bed.gateway(src_as).attach_flight_recorder(nullptr);
  for (size_t i = 0; i < path.size(); ++i) {
    bed.router(path[i].as).attach_flight_recorder(nullptr);
  }
  first_router.attach_blocklist(nullptr);
  first_router.attach_dupsup(nullptr);
  return out;
}

}  // namespace colibri::app
