// In-process Colibri deployment builder.
//
// Instantiates the full per-AS stack (CServ, gateway, border router,
// daemon) for every AS of a topology, wired over one message bus and one
// simulated PKI, with beacon-discovered path segments loaded into a
// shared PathDb. This is the "SCIONLab local topology" equivalent used by
// the examples, the integration tests, and the control-plane benchmarks.
#pragma once

#include <memory>
#include <unordered_map>

#include "colibri/app/daemon.hpp"
#include "colibri/cserv/cserv.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/topology/beacon.hpp"
#include "colibri/topology/pathdb.hpp"

namespace colibri::app {

struct AsStack {
  std::unique_ptr<cserv::CServ> cserv;
  std::unique_ptr<dataplane::Gateway> gateway;
  std::unique_ptr<dataplane::BorderRouter> router;
  std::unique_ptr<ColibriDaemon> daemon;
};

struct TestbedOptions {
  // Give every AS its own private MetricsRegistry instead of sharing
  // cserv_cfg.metrics across the bed — the wiring the fleet federation
  // layer (telemetry/federation.hpp) collects from. The registries are
  // owned by the testbed and survive restart_as().
  bool per_as_metrics = false;
};

class Testbed {
 public:
  Testbed(topology::Topology topo, const Clock& clock,
          cserv::CservConfig cserv_cfg = {}, TestbedOptions opts = {});

  AsStack& stack(AsId as);
  cserv::CServ& cserv(AsId as) { return *stack(as).cserv; }
  dataplane::Gateway& gateway(AsId as) { return *stack(as).gateway; }
  dataplane::BorderRouter& router(AsId as) { return *stack(as).router; }
  ColibriDaemon& daemon(AsId as) { return *stack(as).daemon; }

  const topology::Topology& topology() const { return topo_; }
  topology::PathDb& pathdb() { return pathdb_; }
  cserv::MessageBus& bus() { return bus_; }
  drkey::SimulatedPki& pki() { return pki_; }

  // The AS's private registry (nullptr unless per_as_metrics).
  telemetry::MetricsRegistry* as_metrics(AsId as);

  // Sets up and publishes SegRs (public, no whitelist) along every
  // beacon-discovered segment at `bw` demand; returns how many succeeded.
  // With this done, any host can immediately request EERs anywhere.
  size_t provision_all_segments(BwKbps min_bw, BwKbps max_bw);

  // Runs the housekeeping tick on every CServ.
  void tick_all();

  // Crash-and-restart of one AS's control plane: tears down the CServ
  // (which detaches from the bus, dropping all in-memory reservation
  // state, tokens, and cached adverts) and its daemon, then rebuilds
  // both with the same keys and config. The gateway and border router
  // survive — the data plane keeps forwarding on installed state while
  // the control plane is gone, the "kill-and-restore under live
  // traffic" scenario. The caller re-attaches a WAL and calls
  // restore_from_wal() to recover state.
  cserv::CServ& restart_as(AsId as);

 private:
  // Config for one AS's CServ: the shared config with the metrics
  // registry swapped for the AS's private one when per_as_metrics.
  cserv::CservConfig config_for(AsId as);

  topology::Topology topo_;
  const Clock* clock_;
  cserv::CservConfig cserv_cfg_;
  TestbedOptions opts_;
  cserv::MessageBus bus_;
  drkey::SimulatedPki pki_;
  topology::PathDb pathdb_;
  std::vector<topology::PathSegment> segments_;
  std::unordered_map<AsId, std::unique_ptr<telemetry::MetricsRegistry>>
      as_registries_;
  std::unordered_map<AsId, AsStack> stacks_;
};

}  // namespace colibri::app
