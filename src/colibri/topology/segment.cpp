#include "colibri/topology/segment.hpp"

#include <algorithm>

#include "colibri/topology/topology.hpp"

namespace colibri::topology {

const char* seg_type_name(SegType t) {
  switch (t) {
    case SegType::kUp: return "up";
    case SegType::kCore: return "core";
    case SegType::kDown: return "down";
  }
  return "?";
}

PathSegment PathSegment::reversed() const {
  PathSegment r;
  switch (type) {
    case SegType::kUp: r.type = SegType::kDown; break;
    case SegType::kDown: r.type = SegType::kUp; break;
    case SegType::kCore: r.type = SegType::kCore; break;
  }
  r.hops.reserve(hops.size());
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    r.hops.push_back(Hop{it->as, it->egress, it->ingress});
  }
  return r;
}

std::string PathSegment::to_string() const {
  std::string s = seg_type_name(type);
  s += ":";
  for (const auto& h : hops) {
    s += " " + h.as.to_string() + "[" + std::to_string(h.ingress) + "," +
         std::to_string(h.egress) + "]";
  }
  return s;
}

std::string Path::to_string() const {
  std::string s = "path:";
  for (const auto& h : hops) {
    s += " " + h.as.to_string() + "[" + std::to_string(h.ingress) + "," +
         std::to_string(h.egress) + "]";
  }
  return s;
}

namespace {

// Appends `seg` to `out`, merging the joint AS if `out` already ends with
// the segment's first AS. Returns false on a connection mismatch.
bool append_segment(std::vector<Hop>& out, const PathSegment& seg) {
  if (seg.hops.empty()) return false;
  size_t start = 0;
  if (!out.empty()) {
    if (out.back().as != seg.first_as()) return false;
    // Transfer AS: keep its ingress from the earlier segment, take its
    // egress from the later one.
    out.back().egress = seg.hops.front().egress;
    start = 1;
  }
  for (size_t i = start; i < seg.hops.size(); ++i) out.push_back(seg.hops[i]);
  return true;
}

}  // namespace

std::optional<Path> combine_segments(const PathSegment* up,
                                     const PathSegment* core,
                                     const PathSegment* down) {
  Path path;
  for (const PathSegment* seg : {up, core, down}) {
    if (seg == nullptr) continue;
    if (!append_segment(path.hops, *seg)) return std::nullopt;
  }
  if (path.hops.empty()) return std::nullopt;
  return path;
}

std::optional<Path> combine_with_shortcut(const PathSegment& up,
                                          const PathSegment& down) {
  // Cut at the earliest AS on the up-segment that also appears on the
  // down-segment (and at its latest occurrence there), which skips the
  // largest detour through the core.
  for (size_t i = 0; i < up.hops.size(); ++i) {
    const AsId as = up.hops[i].as;
    for (size_t j = down.hops.size(); j-- > 0;) {
      if (down.hops[j].as != as) continue;
      Path path;
      path.hops.assign(up.hops.begin(), up.hops.begin() + i + 1);
      path.hops.back().egress = down.hops[j].egress;
      path.hops.insert(path.hops.end(), down.hops.begin() + j + 1,
                       down.hops.end());
      return path;
    }
  }
  return std::nullopt;
}

bool path_valid(const Path& path, const Topology& topo) {
  if (path.hops.empty()) return false;
  if (path.hops.front().ingress != kNoInterface) return false;
  if (path.hops.back().egress != kNoInterface) return false;
  for (size_t i = 0; i < path.hops.size(); ++i) {
    const Hop& h = path.hops[i];
    if (!topo.has_as(h.as)) return false;
    const auto& node = topo.node(h.as);
    if (i + 1 < path.hops.size()) {
      const Interface* eg = node.find_interface(h.egress);
      if (eg == nullptr) return false;
      if (eg->neighbor != path.hops[i + 1].as) return false;
      if (eg->neighbor_ifid != path.hops[i + 1].ingress) return false;
    }
  }
  return true;
}

}  // namespace colibri::topology
