// SCION-like AS-level topology model (paper §2.2).
//
// ASes are grouped into ISDs; core ASes provide inter-ISD connectivity and
// are linked by core links, non-core ASes hang off providers via
// parent-child links. Every inter-domain link terminates in an AS-local
// interface (IfId), the unit Colibri's admission algorithm allocates
// bandwidth on. Each AS also carries a local traffic matrix describing the
// Colibri share of each interface (paper §4.7: "each AS can define a local
// traffic matrix").
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "colibri/common/ids.hpp"

namespace colibri::topology {

enum class LinkType : std::uint8_t {
  kCore,         // core AS <-> core AS
  kParentChild,  // provider (parent) <-> customer (child)
};

// One endpoint's view of an inter-domain link.
struct Interface {
  IfId id = kNoInterface;
  AsId neighbor;
  IfId neighbor_ifid = kNoInterface;
  LinkType type = LinkType::kCore;
  bool to_parent = false;  // for kParentChild: true on the child side
  BwKbps capacity_kbps = 0;
};

// Fraction of each interface's capacity available to the three traffic
// classes (paper §3.4: default 75 % EER data / 5 % control / 20 %
// best-effort). These splits come from bilateral neighbor agreements.
struct TrafficSplit {
  double eer_data = 0.75;
  double control = 0.05;
  double best_effort = 0.20;
};

struct AsNode {
  AsId id;
  bool core = false;
  std::vector<Interface> interfaces;
  TrafficSplit split;

  const Interface* find_interface(IfId ifid) const;
  // Colibri-usable bandwidth on an interface (capacity x EER share).
  BwKbps colibri_capacity(IfId ifid) const;
  BwKbps control_capacity(IfId ifid) const;
};

class Topology {
 public:
  void add_as(AsId id, bool core);

  // Adds a bidirectional link; allocates fresh interface ids on both sides
  // and returns them as (ifid at a, ifid at b). For parent-child links,
  // `a` is the parent (provider).
  std::pair<IfId, IfId> add_link(AsId a, AsId b, LinkType type,
                                 BwKbps capacity_kbps);

  bool has_as(AsId id) const { return nodes_.count(id) != 0; }
  const AsNode& node(AsId id) const;
  AsNode& node(AsId id);

  std::vector<AsId> as_ids() const;
  std::vector<AsId> core_ases() const;
  size_t as_count() const { return nodes_.size(); }

 private:
  std::unordered_map<AsId, AsNode> nodes_;
};

// Convenience builders used by tests, examples, and benchmarks.
namespace builders {

// Two ISDs, two core ASes each (full core mesh), `children_per_core`
// non-core children per core AS, one grandchild under the first child of
// each core. A small but structurally complete SCION topology.
Topology two_isd_topology(BwKbps link_capacity_kbps = 40'000'000);

// A single chain of `n` ASes: core at index 0..core_count-1, then a
// provider chain. Used by path-length sweeps.
Topology chain_topology(int n, BwKbps link_capacity_kbps = 40'000'000);

}  // namespace builders

}  // namespace colibri::topology
