// Path segments and end-to-end paths (paper §2.2, §3.3).
//
// SCION decomposes global routing into up-segments (non-core AS → core),
// core-segments (core ↔ core), and down-segments (core → non-core). A full
// end-to-end path combines at most one of each. Hops are represented as
// (AS, ingress interface, egress interface) triples in the direction of
// travel — exactly the representation Colibri's Path header field uses
// (paper Eq. 2b).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "colibri/common/ids.hpp"

namespace colibri::topology {

class Topology;

enum class SegType : std::uint8_t { kUp = 0, kCore = 1, kDown = 2 };

const char* seg_type_name(SegType t);

// One AS's hop entry, in the direction of the segment/path. The first
// hop's ingress and the last hop's egress are kNoInterface.
struct Hop {
  AsId as;
  IfId ingress = kNoInterface;
  IfId egress = kNoInterface;

  friend constexpr auto operator<=>(const Hop&, const Hop&) = default;
};

struct PathSegment {
  SegType type = SegType::kUp;
  std::vector<Hop> hops;

  AsId first_as() const { return hops.front().as; }
  AsId last_as() const { return hops.back().as; }
  size_t length() const { return hops.size(); }

  // A segment traversed in the opposite direction (up <-> down).
  PathSegment reversed() const;

  std::string to_string() const;

  friend bool operator==(const PathSegment&, const PathSegment&) = default;
};

// Full end-to-end AS-level path.
struct Path {
  std::vector<Hop> hops;

  AsId src_as() const { return hops.front().as; }
  AsId dst_as() const { return hops.back().as; }
  size_t length() const { return hops.size(); }
  bool empty() const { return hops.empty(); }

  std::string to_string() const;

  friend bool operator==(const Path&, const Path&) = default;
};

// Combines up to three segments into an end-to-end path. Segments must
// join end-to-start (up.last == core.first, core.last == down.first); the
// joint AS appears once in the result with ingress from the earlier
// segment and egress into the later one (it is the *transfer AS*, §4.1).
// Returns nullopt if the segments do not connect.
std::optional<Path> combine_segments(const PathSegment* up,
                                     const PathSegment* core,
                                     const PathSegment* down);

// Shortcut combination (paper §2.2): if the up- and down-segments cross at
// a common non-core AS, the path can cut over there without transiting the
// core. Returns nullopt if the segments share no AS.
std::optional<Path> combine_with_shortcut(const PathSegment& up,
                                          const PathSegment& down);

// Validates that a path is consistent with the topology: every hop's
// egress interface connects to the next hop's AS and ingress interface.
bool path_valid(const Path& path, const Topology& topo);

}  // namespace colibri::topology
