#include "colibri/topology/topology.hpp"

#include <algorithm>

namespace colibri::topology {

const Interface* AsNode::find_interface(IfId ifid) const {
  for (const auto& intf : interfaces) {
    if (intf.id == ifid) return &intf;
  }
  return nullptr;
}

BwKbps AsNode::colibri_capacity(IfId ifid) const {
  const Interface* intf = find_interface(ifid);
  if (intf == nullptr) return 0;
  return static_cast<BwKbps>(static_cast<double>(intf->capacity_kbps) *
                             split.eer_data);
}

BwKbps AsNode::control_capacity(IfId ifid) const {
  const Interface* intf = find_interface(ifid);
  if (intf == nullptr) return 0;
  return static_cast<BwKbps>(static_cast<double>(intf->capacity_kbps) *
                             split.control);
}

void Topology::add_as(AsId id, bool core) {
  AsNode node;
  node.id = id;
  node.core = core;
  nodes_.emplace(id, std::move(node));
}

std::pair<IfId, IfId> Topology::add_link(AsId a, AsId b, LinkType type,
                                         BwKbps capacity_kbps) {
  AsNode& na = node(a);
  AsNode& nb = node(b);
  const IfId ia = static_cast<IfId>(na.interfaces.size() + 1);
  const IfId ib = static_cast<IfId>(nb.interfaces.size() + 1);
  na.interfaces.push_back(Interface{ia, b, ib, type, /*to_parent=*/false,
                                    capacity_kbps});
  nb.interfaces.push_back(Interface{ib, a, ia, type,
                                    /*to_parent=*/type == LinkType::kParentChild,
                                    capacity_kbps});
  return {ia, ib};
}

const AsNode& Topology::node(AsId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("unknown AS " + id.to_string());
  return it->second;
}

AsNode& Topology::node(AsId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("unknown AS " + id.to_string());
  return it->second;
}

std::vector<AsId> Topology::as_ids() const {
  std::vector<AsId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<AsId> Topology::core_ases() const {
  std::vector<AsId> ids;
  for (const auto& [id, n] : nodes_) {
    if (n.core) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

namespace builders {

Topology two_isd_topology(BwKbps cap) {
  Topology t;
  // ISD 1 cores: 1-100, 1-101; ISD 2 cores: 2-200, 2-201.
  const AsId c1a{1, 100}, c1b{1, 101}, c2a{2, 200}, c2b{2, 201};
  for (AsId c : {c1a, c1b, c2a, c2b}) t.add_as(c, /*core=*/true);
  // Full core mesh.
  t.add_link(c1a, c1b, LinkType::kCore, cap);
  t.add_link(c1a, c2a, LinkType::kCore, cap);
  t.add_link(c1a, c2b, LinkType::kCore, cap);
  t.add_link(c1b, c2a, LinkType::kCore, cap);
  t.add_link(c1b, c2b, LinkType::kCore, cap);
  t.add_link(c2a, c2b, LinkType::kCore, cap);

  // Two children per core, one grandchild under the first child.
  auto add_children = [&](AsId core, IsdId isd, std::uint64_t base) {
    const AsId child1{isd, base}, child2{isd, base + 1}, grand{isd, base + 2};
    t.add_as(child1, false);
    t.add_as(child2, false);
    t.add_as(grand, false);
    t.add_link(core, child1, LinkType::kParentChild, cap);
    t.add_link(core, child2, LinkType::kParentChild, cap);
    t.add_link(child1, grand, LinkType::kParentChild, cap);
  };
  add_children(c1a, 1, 110);
  add_children(c1b, 1, 120);
  add_children(c2a, 2, 210);
  add_children(c2b, 2, 220);
  return t;
}

Topology chain_topology(int n, BwKbps cap) {
  Topology t;
  if (n <= 0) return t;
  std::vector<AsId> ids;
  for (int i = 0; i < n; ++i) {
    const AsId id{1, static_cast<std::uint64_t>(100 + i)};
    // First two ASes form the "core" so the chain has a valid up/core/down
    // structure when needed.
    t.add_as(id, /*core=*/i < 2);
    ids.push_back(id);
  }
  for (int i = 0; i + 1 < n; ++i) {
    const LinkType type = (i == 0) ? LinkType::kCore : LinkType::kParentChild;
    t.add_link(ids[i], ids[i + 1], type, cap);
  }
  return t;
}

}  // namespace builders

}  // namespace colibri::topology
