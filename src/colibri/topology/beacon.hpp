// Beacon-style path-segment discovery (paper §2.2).
//
// Models SCION's beaconing outcome rather than the asynchronous protocol:
// core ASes flood PCBs down parent-child links, yielding down-segments to
// every reachable non-core AS (up-segments are their reversals), and
// across core links, yielding core-segments between core-AS pairs. To
// provide *path choice* (§2.1), discovery enumerates up to
// `max_paths_per_pair` distinct segments per (src, dst) pair, shortest
// first, bounded by `max_hops`.
#pragma once

#include <vector>

#include "colibri/topology/segment.hpp"
#include "colibri/topology/topology.hpp"

namespace colibri::topology {

struct BeaconConfig {
  size_t max_paths_per_pair = 3;
  size_t max_hops = 8;
};

// All discovered segments (up, core, and down) for the topology.
std::vector<PathSegment> discover_segments(const Topology& topo,
                                           const BeaconConfig& cfg = {});

}  // namespace colibri::topology
