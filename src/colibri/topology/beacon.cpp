#include "colibri/topology/beacon.hpp"

#include <algorithm>
#include <map>

namespace colibri::topology {
namespace {

// Depth-first enumeration of simple paths from `origin` over links
// admitted by `follow`, recording a segment for every AS reached.
struct Explorer {
  const Topology& topo;
  const BeaconConfig& cfg;
  // (origin, destination) -> collected segments.
  std::map<std::pair<AsId, AsId>, std::vector<PathSegment>>& found;
  SegType type;

  std::vector<Hop> stack;
  std::vector<AsId> visited;

  template <typename FollowFn>
  void explore(AsId origin, FollowFn&& follow) {
    visited.push_back(origin);
    stack.push_back(Hop{origin, kNoInterface, kNoInterface});
    dfs(origin, follow);
    stack.pop_back();
    visited.pop_back();
  }

  template <typename FollowFn>
  void dfs(AsId current, FollowFn&& follow) {
    if (stack.size() >= cfg.max_hops) return;
    const AsNode& node = topo.node(current);
    for (const Interface& intf : node.interfaces) {
      if (!follow(node, intf)) continue;
      if (std::find(visited.begin(), visited.end(), intf.neighbor) !=
          visited.end()) {
        continue;  // simple paths only
      }
      stack.back().egress = intf.id;
      stack.push_back(Hop{intf.neighbor, intf.neighbor_ifid, kNoInterface});
      visited.push_back(intf.neighbor);

      record(stack.front().as, intf.neighbor);
      dfs(intf.neighbor, follow);

      visited.pop_back();
      stack.pop_back();
      stack.back().egress = kNoInterface;
    }
  }

  void record(AsId origin, AsId dst) {
    auto& bucket = found[{origin, dst}];
    if (bucket.size() >= cfg.max_paths_per_pair) return;
    PathSegment seg;
    seg.type = type;
    seg.hops = stack;
    seg.hops.back().egress = kNoInterface;
    bucket.push_back(std::move(seg));
  }
};

// Keep the shortest `max_paths_per_pair` segments per pair (DFS order is
// not length-ordered, so sort before truncating).
void sort_and_trim(std::map<std::pair<AsId, AsId>, std::vector<PathSegment>>& m,
                   size_t keep) {
  for (auto& [_, segs] : m) {
    std::stable_sort(segs.begin(), segs.end(),
                     [](const PathSegment& a, const PathSegment& b) {
                       return a.length() < b.length();
                     });
    if (segs.size() > keep) segs.resize(keep);
  }
}

}  // namespace

std::vector<PathSegment> discover_segments(const Topology& topo,
                                           const BeaconConfig& cfg) {
  std::map<std::pair<AsId, AsId>, std::vector<PathSegment>> down_found;
  std::map<std::pair<AsId, AsId>, std::vector<PathSegment>> core_found;

  // Over-collect so sort_and_trim keeps the *shortest* k, not the first k
  // in DFS order.
  BeaconConfig wide = cfg;
  wide.max_paths_per_pair = cfg.max_paths_per_pair * 4;

  for (AsId core_as : topo.core_ases()) {
    // Down-segments: follow parent->child links away from the core.
    Explorer down{topo, wide, down_found, SegType::kDown, {}, {}};
    down.explore(core_as, [](const AsNode& node, const Interface& intf) {
      return intf.type == LinkType::kParentChild && !intf.to_parent &&
             (node.core || true);
    });

    // Core-segments: follow core links only.
    Explorer core{topo, wide, core_found, SegType::kCore, {}, {}};
    core.explore(core_as, [](const AsNode&, const Interface& intf) {
      return intf.type == LinkType::kCore;
    });
  }

  sort_and_trim(down_found, cfg.max_paths_per_pair);
  sort_and_trim(core_found, cfg.max_paths_per_pair);

  std::vector<PathSegment> result;
  for (const auto& [key, segs] : down_found) {
    for (const auto& seg : segs) {
      // Only keep down-segments ending at non-core ASes (core-to-core
      // connectivity goes through core-segments).
      if (topo.node(key.second).core) continue;
      result.push_back(seg);
      result.push_back(seg.reversed());  // matching up-segment
    }
  }
  for (const auto& [_, segs] : core_found) {
    for (const auto& seg : segs) result.push_back(seg);
  }
  return result;
}

}  // namespace colibri::topology
