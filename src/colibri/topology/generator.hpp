// Synthetic Internet-scale topology generator.
//
// SUBSTITUTION (DESIGN.md §2): the paper argues Colibri scales to "large,
// highly-interconnected networks like today's Internet"; lacking a CAIDA
// AS-relationship dump, this generator produces structurally similar
// SCION-style topologies: several ISDs, a densely meshed core, a
// provider hierarchy with configurable fan-out and depth, and optional
// multi-homing (non-core ASes with a second provider), which is what
// creates real path diversity. Deterministic for a given seed.
#pragma once

#include "colibri/common/rand.hpp"
#include "colibri/topology/topology.hpp"

namespace colibri::topology {

struct GeneratorConfig {
  int isds = 3;
  int cores_per_isd = 3;
  // Hierarchy below each core AS: `fanout` children per AS, `depth`
  // levels (depth 1 = only direct customers).
  int fanout = 3;
  int depth = 2;
  // Probability that a non-core AS is multi-homed to a second provider
  // in the same ISD.
  double multihome_prob = 0.3;
  // Fraction of core-AS pairs (within and across ISDs) that get a link;
  // intra-ISD cores are always fully meshed.
  double core_mesh_density = 0.5;
  BwKbps core_link_kbps = 400'000'000;    // 400 Gbps
  BwKbps transit_link_kbps = 100'000'000; // 100 Gbps
  std::uint64_t seed = 1;
};

Topology generate_topology(const GeneratorConfig& cfg);

// AS count the configuration will produce (cores + hierarchy).
size_t expected_as_count(const GeneratorConfig& cfg);

}  // namespace colibri::topology
