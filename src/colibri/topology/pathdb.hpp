// Path-segment database: the end-host/CServ view of discovered segments.
//
// Stores segments indexed by type and endpoints and answers the queries
// Colibri needs (paper §3.3, App. C): "give me segment combinations that
// connect AS S to AS D", returning full end-to-end paths built from at
// most one up-, one core-, and one down-segment, including shortcuts.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "colibri/topology/segment.hpp"
#include "colibri/topology/topology.hpp"

namespace colibri::topology {

// A path together with the segments it was assembled from, so the caller
// can make a SegR-backed EER request over the same decomposition.
struct AssembledPath {
  Path path;
  std::vector<PathSegment> segments;  // 1-3 entries, in traversal order
  bool shortcut = false;
};

class PathDb {
 public:
  explicit PathDb(const Topology& topo) : topo_(&topo) {}

  void insert(PathSegment seg);
  void insert_all(std::vector<PathSegment> segs);

  // Segments of `type` from src to dst (exact endpoints).
  std::vector<const PathSegment*> segments(SegType type, AsId src,
                                           AsId dst) const;
  // Up-segments starting at `src` (any core destination); down-segments
  // ending at `dst` (any core origin).
  std::vector<const PathSegment*> up_segments_from(AsId src) const;
  std::vector<const PathSegment*> down_segments_to(AsId dst) const;

  // All end-to-end paths from src to dst constructible from stored
  // segments, shortest first, at most `limit`.
  std::vector<AssembledPath> paths(AsId src, AsId dst, size_t limit = 8) const;

  size_t size() const { return store_.size(); }

 private:
  const Topology* topo_;
  std::vector<PathSegment> store_;
  // (type, first, last) -> indexes into store_.
  std::map<std::tuple<SegType, AsId, AsId>, std::vector<size_t>> index_;
};

}  // namespace colibri::topology
