#include "colibri/topology/generator.hpp"

#include <vector>

namespace colibri::topology {

size_t expected_as_count(const GeneratorConfig& cfg) {
  // Per core: fanout + fanout^2 + ... + fanout^depth descendants.
  size_t per_core = 0;
  size_t level = 1;
  for (int d = 0; d < cfg.depth; ++d) {
    level *= static_cast<size_t>(cfg.fanout);
    per_core += level;
  }
  return static_cast<size_t>(cfg.isds) *
         static_cast<size_t>(cfg.cores_per_isd) * (1 + per_core);
}

Topology generate_topology(const GeneratorConfig& cfg) {
  Topology topo;
  Rng rng(cfg.seed);

  // Core ASes: AS number 1..cores_per_isd within each ISD.
  std::vector<std::vector<AsId>> cores(static_cast<size_t>(cfg.isds));
  for (int isd = 0; isd < cfg.isds; ++isd) {
    for (int c = 0; c < cfg.cores_per_isd; ++c) {
      const AsId id{static_cast<IsdId>(isd + 1),
                    static_cast<std::uint64_t>(c + 1)};
      topo.add_as(id, /*core=*/true);
      cores[static_cast<size_t>(isd)].push_back(id);
    }
  }

  // Intra-ISD core mesh: full.
  for (const auto& isd_cores : cores) {
    for (size_t i = 0; i < isd_cores.size(); ++i) {
      for (size_t j = i + 1; j < isd_cores.size(); ++j) {
        topo.add_link(isd_cores[i], isd_cores[j], LinkType::kCore,
                      cfg.core_link_kbps);
      }
    }
  }
  // Inter-ISD core links: sampled at core_mesh_density, but at least one
  // link between every ISD pair so the graph stays connected.
  for (size_t a = 0; a < cores.size(); ++a) {
    for (size_t b = a + 1; b < cores.size(); ++b) {
      bool connected = false;
      for (AsId ca : cores[a]) {
        for (AsId cb : cores[b]) {
          if (rng.uniform() < cfg.core_mesh_density) {
            topo.add_link(ca, cb, LinkType::kCore, cfg.core_link_kbps);
            connected = true;
          }
        }
      }
      if (!connected) {
        topo.add_link(cores[a][0], cores[b][0], LinkType::kCore,
                      cfg.core_link_kbps);
      }
    }
  }

  // Customer hierarchy under each core AS.
  for (int isd = 0; isd < cfg.isds; ++isd) {
    const auto isd_id = static_cast<IsdId>(isd + 1);
    std::uint64_t next_as = 1000;
    // All non-core ASes of this ISD, by level, for multi-homing pools.
    std::vector<std::vector<AsId>> levels;

    std::vector<AsId> parents = cores[static_cast<size_t>(isd)];
    for (int d = 0; d < cfg.depth; ++d) {
      std::vector<AsId> children;
      for (AsId parent : parents) {
        for (int f = 0; f < cfg.fanout; ++f) {
          const AsId child{isd_id, next_as++};
          topo.add_as(child, /*core=*/false);
          topo.add_link(parent, child, LinkType::kParentChild,
                        cfg.transit_link_kbps);
          // Multi-homing: a second provider from the parent's level.
          if (rng.uniform() < cfg.multihome_prob) {
            const auto& pool = parents;
            const AsId second = pool[rng.below(pool.size())];
            if (second != parent) {
              topo.add_link(second, child, LinkType::kParentChild,
                            cfg.transit_link_kbps);
            }
          }
          children.push_back(child);
        }
      }
      levels.push_back(children);
      parents = std::move(children);
    }
  }
  return topo;
}

}  // namespace colibri::topology
