#include "colibri/topology/pathdb.hpp"

#include <algorithm>

namespace colibri::topology {

void PathDb::insert(PathSegment seg) {
  const auto key = std::make_tuple(seg.type, seg.first_as(), seg.last_as());
  // De-duplicate.
  for (size_t idx : index_[key]) {
    if (store_[idx] == seg) return;
  }
  store_.push_back(std::move(seg));
  index_[key].push_back(store_.size() - 1);
}

void PathDb::insert_all(std::vector<PathSegment> segs) {
  for (auto& s : segs) insert(std::move(s));
}

std::vector<const PathSegment*> PathDb::segments(SegType type, AsId src,
                                                 AsId dst) const {
  std::vector<const PathSegment*> out;
  auto it = index_.find(std::make_tuple(type, src, dst));
  if (it == index_.end()) return out;
  for (size_t idx : it->second) out.push_back(&store_[idx]);
  return out;
}

std::vector<const PathSegment*> PathDb::up_segments_from(AsId src) const {
  std::vector<const PathSegment*> out;
  for (const auto& [key, idxs] : index_) {
    if (std::get<0>(key) != SegType::kUp || std::get<1>(key) != src) continue;
    for (size_t idx : idxs) out.push_back(&store_[idx]);
  }
  return out;
}

std::vector<const PathSegment*> PathDb::down_segments_to(AsId dst) const {
  std::vector<const PathSegment*> out;
  for (const auto& [key, idxs] : index_) {
    if (std::get<0>(key) != SegType::kDown || std::get<2>(key) != dst) continue;
    for (size_t idx : idxs) out.push_back(&store_[idx]);
  }
  return out;
}

std::vector<AssembledPath> PathDb::paths(AsId src, AsId dst,
                                         size_t limit) const {
  std::vector<AssembledPath> out;
  const bool src_core = topo_->node(src).core;
  const bool dst_core = topo_->node(dst).core;

  auto push = [&](Path p, std::vector<PathSegment> segs, bool shortcut) {
    if (p.src_as() != src || p.dst_as() != dst) return;
    for (const auto& existing : out) {
      if (existing.path == p) return;
    }
    out.push_back(AssembledPath{std::move(p), std::move(segs), shortcut});
  };

  // Case: same AS — no inter-domain path needed; empty result by design.
  if (src == dst) return out;

  // Direct single-segment paths.
  if (src_core && dst_core) {
    for (const auto* c : segments(SegType::kCore, src, dst)) {
      push(Path{c->hops}, {*c}, false);
    }
  }
  if (!src_core) {
    for (const auto* u : segments(SegType::kUp, src, dst)) {
      push(Path{u->hops}, {*u}, false);
    }
  }
  if (!dst_core) {
    for (const auto* d : segments(SegType::kDown, src, dst)) {
      push(Path{d->hops}, {*d}, false);
    }
  }

  const auto ups = src_core ? std::vector<const PathSegment*>{}
                            : up_segments_from(src);
  const auto downs = dst_core ? std::vector<const PathSegment*>{}
                              : down_segments_to(dst);

  // up + down sharing the joint core AS, and shortcuts.
  for (const auto* u : ups) {
    for (const auto* d : downs) {
      if (u->last_as() == d->first_as()) {
        if (auto p = combine_segments(u, nullptr, d)) {
          push(std::move(*p), {*u, *d}, false);
        }
      }
      if (auto p = combine_with_shortcut(*u, *d)) {
        if (p->length() < u->length() + d->length() - 1) {
          push(std::move(*p), {*u, *d}, true);
        }
      }
    }
  }

  // up + core (to core dst), core + down (from core src).
  if (dst_core) {
    for (const auto* u : ups) {
      for (const auto* c : segments(SegType::kCore, u->last_as(), dst)) {
        if (auto p = combine_segments(u, c, nullptr)) {
          push(std::move(*p), {*u, *c}, false);
        }
      }
    }
  }
  if (src_core) {
    for (const auto* d : downs) {
      for (const auto* c : segments(SegType::kCore, src, d->first_as())) {
        if (auto p = combine_segments(nullptr, c, d)) {
          push(std::move(*p), {*c, *d}, false);
        }
      }
    }
  }

  // up + core + down.
  for (const auto* u : ups) {
    for (const auto* d : downs) {
      for (const auto* c :
           segments(SegType::kCore, u->last_as(), d->first_as())) {
        if (auto p = combine_segments(u, c, d)) {
          push(std::move(*p), {*u, *c, *d}, false);
        }
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const AssembledPath& a, const AssembledPath& b) {
                     return a.path.length() < b.path.length();
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace colibri::topology
