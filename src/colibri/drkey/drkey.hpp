// DRKey: dynamically-recreatable symmetric keys (paper §2.3, Eq. 1).
//
// Every AS A holds a per-epoch secret value K_A. The AS-level key shared
// with AS B is derived on the fly:
//
//     K_{A→B} = PRF_{K_A}(B)
//
// A can recompute this faster than a memory lookup (one AES-CMAC); B must
// fetch it once per epoch from A's key server over a PKI-protected channel
// (see keyserver.hpp). Host-level keys K_{A→B:H} hang off the AS-level key
// so per-host state is never needed either.
#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/crypto/cmac.hpp"

namespace colibri::drkey {

struct Key128 {
  std::array<std::uint8_t, 16> bytes{};

  friend constexpr auto operator<=>(const Key128&, const Key128&) = default;
};

// Validity window of a secret value / derived key. The paper uses
// roughly one day; the value is configurable for tests.
struct Epoch {
  UnixSec begin = 0;
  UnixSec end = 0;

  bool contains(UnixSec t) const { return begin <= t && t < end; }
  friend constexpr auto operator<=>(const Epoch&, const Epoch&) = default;
};

inline constexpr std::uint32_t kDefaultEpochSeconds = 24 * 3600;

// Derives K_{A→B} from A's secret value.
Key128 derive_as_key(const Key128& secret_value, AsId dst);

// Derives the host-level key K_{A→B:H} from the AS-level key. The paper
// footnote 2 mentions protocol- and host-specific keys; we implement the
// host level, keyed by the end-host address.
Key128 derive_host_key(const Key128& as_key, const HostAddr& host);

// Per-AS secret-value schedule: deterministic per-epoch secret values
// derived from a long-term master secret, so any epoch's value can be
// recreated without storing history.
class SecretValueSchedule {
 public:
  SecretValueSchedule(const Key128& master, AsId owner,
                      std::uint32_t epoch_seconds = kDefaultEpochSeconds);

  Epoch epoch_at(UnixSec t) const;
  Key128 secret_value(UnixSec t) const;

  AsId owner() const { return owner_; }
  std::uint32_t epoch_seconds() const { return epoch_seconds_; }

 private:
  Key128 master_;
  AsId owner_;
  std::uint32_t epoch_seconds_;
};

// Fast-side derivation engine for AS A: recreates K_{A→B} (and host keys)
// on the fly for any destination AS and point in time. This is what the
// CServ and border routers use to authenticate incoming control traffic
// without any per-source state (paper §5.3).
class Engine {
 public:
  Engine(const Key128& master, AsId owner,
         std::uint32_t epoch_seconds = kDefaultEpochSeconds)
      : schedule_(master, owner, epoch_seconds) {}

  Key128 as_key(AsId dst, UnixSec at) const {
    return derive_as_key(schedule_.secret_value(at), dst);
  }
  Key128 host_key(AsId dst, const HostAddr& host, UnixSec at) const {
    return derive_host_key(as_key(dst, at), host);
  }

  AsId owner() const { return schedule_.owner(); }
  const SecretValueSchedule& schedule() const { return schedule_; }

 private:
  SecretValueSchedule schedule_;
};

}  // namespace colibri::drkey
