#include "colibri/drkey/keyserver.hpp"

namespace colibri::drkey {

Key128 SimulatedPki::enroll(AsId as) {
  auto it = signing_secrets_.find(as);
  if (it != signing_secrets_.end()) return it->second;
  // Derive a unique signing secret per AS; the directory is the trust root.
  Key128 secret;
  const std::uint64_t seed = as.raw() ^ (++counter_ << 32) ^ 0x5151A151;
  Bytes msg;
  put_le(msg, seed);
  put_le(msg, as.raw());
  const auto digest = crypto::Sha256::hash(msg);
  std::copy(digest.begin(), digest.begin() + 16, secret.bytes.begin());
  signing_secrets_.emplace(as, secret);
  return secret;
}

bool SimulatedPki::verify(AsId signer, BytesView msg,
                          const crypto::Sha256::Digest& sig) const {
  auto it = signing_secrets_.find(signer);
  if (it == signing_secrets_.end()) return false;
  return sign(it->second, msg) == sig;
}

crypto::Sha256::Digest SimulatedPki::sign(const Key128& signing_secret,
                                          BytesView msg) {
  return crypto::hmac_sha256(
      BytesView(signing_secret.bytes.data(), signing_secret.bytes.size()), msg);
}

Bytes KeyServer::response_message(AsId owner, AsId requester, const Key128& key,
                                  const Epoch& epoch) {
  Bytes msg;
  put_le(msg, owner.raw());
  put_le(msg, requester.raw());
  put_le(msg, epoch.begin);
  put_le(msg, epoch.end);
  append_bytes(msg, BytesView(key.bytes.data(), key.bytes.size()));
  return msg;
}

KeyResponse KeyServer::fetch(AsId requester, UnixSec at) const {
  KeyResponse r;
  r.key = engine_.as_key(requester, at);
  r.epoch = engine_.schedule().epoch_at(at);
  const Bytes msg =
      response_message(engine_.owner(), requester, r.key, r.epoch);
  r.signature = SimulatedPki::sign(signing_secret_, msg);
  return r;
}

bool KeyCache::insert(AsId remote, const KeyResponse& response) {
  const Bytes msg = KeyServer::response_message(remote, owner_, response.key,
                                                response.epoch);
  if (!pki_->verify(remote, msg, response.signature)) return false;
  cache_[CacheKey{remote.raw(), response.epoch.begin}] =
      Entry{response.key, response.epoch};
  return true;
}

std::optional<Key128> KeyCache::lookup(AsId remote, UnixSec at) const {
  // Epochs are aligned, so probing the containing epoch requires knowing
  // the remote's epoch length; we scan candidates instead (cache entries
  // per remote are at most two: current + prefetched next).
  for (const auto& [k, e] : cache_) {
    if (k.as_raw == remote.raw() && e.epoch.contains(at)) return e.key;
  }
  return std::nullopt;
}

size_t KeyCache::expire(UnixSec now) {
  size_t removed = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.epoch.end <= now) {
      it = cache_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace colibri::drkey
