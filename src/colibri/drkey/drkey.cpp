#include "colibri/drkey/drkey.hpp"

#include <cstring>

namespace colibri::drkey {
namespace {

Key128 prf(const Key128& key, const std::uint8_t* msg, size_t len) {
  crypto::Cmac cmac(key.bytes.data());
  Key128 out;
  std::uint8_t tag[crypto::Cmac::kTagSize];
  cmac.compute(msg, len, tag);
  std::memcpy(out.bytes.data(), tag, 16);
  return out;
}

}  // namespace

Key128 derive_as_key(const Key128& secret_value, AsId dst) {
  std::uint8_t msg[16] = {};
  msg[0] = 0x01;  // derivation level: AS
  const std::uint64_t raw = dst.raw();
  for (int i = 0; i < 8; ++i) {
    msg[1 + i] = static_cast<std::uint8_t>(raw >> (8 * i));
  }
  return prf(secret_value, msg, sizeof(msg));
}

Key128 derive_host_key(const Key128& as_key, const HostAddr& host) {
  std::uint8_t msg[17];
  msg[0] = 0x02;  // derivation level: host
  std::memcpy(msg + 1, host.bytes, 16);
  return prf(as_key, msg, sizeof(msg));
}

SecretValueSchedule::SecretValueSchedule(const Key128& master, AsId owner,
                                         std::uint32_t epoch_seconds)
    : master_(master), owner_(owner), epoch_seconds_(epoch_seconds) {}

Epoch SecretValueSchedule::epoch_at(UnixSec t) const {
  const UnixSec begin = t - (t % epoch_seconds_);
  return Epoch{begin, begin + epoch_seconds_};
}

Key128 SecretValueSchedule::secret_value(UnixSec t) const {
  const Epoch e = epoch_at(t);
  std::uint8_t msg[16] = {};
  msg[0] = 0x00;  // derivation level: secret value
  for (int i = 0; i < 4; ++i) {
    msg[1 + i] = static_cast<std::uint8_t>(e.begin >> (8 * i));
  }
  const std::uint64_t raw = owner_.raw();
  for (int i = 0; i < 8; ++i) {
    msg[5 + i] = static_cast<std::uint8_t>(raw >> (8 * i));
  }
  return prf(master_, msg, sizeof(msg));
}

}  // namespace colibri::drkey
