// DRKey key server and slow-side key cache.
//
// The slow side of the DRKey asymmetry: AS B cannot derive K_{A→B} itself
// and fetches it from A's key server once per epoch, protected by
// public-key cryptography (paper §2.3). SUBSTITUTION (see DESIGN.md §2):
// instead of a full X.509/CP-PKI, we model the authenticity of the fetch
// with a SimulatedPki that signs responses with HMAC-SHA256 under per-AS
// signing secrets held by a trust-root directory. The fetch is off the
// critical path (once per ~day per AS pair); everything performance- or
// security-relevant downstream uses the real symmetric keys.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "colibri/common/bytes.hpp"
#include "colibri/crypto/sha256.hpp"
#include "colibri/drkey/drkey.hpp"

namespace colibri::drkey {

// Trust-root directory standing in for the PKI: issues per-AS signing
// secrets and verifies response signatures. One instance is shared by all
// ASes in a simulation (analogous to globally distributed trust roots).
class SimulatedPki {
 public:
  // Idempotently registers an AS and returns its signing secret.
  Key128 enroll(AsId as);

  bool verify(AsId signer, BytesView msg, const crypto::Sha256::Digest& sig) const;
  static crypto::Sha256::Digest sign(const Key128& signing_secret, BytesView msg);

 private:
  std::unordered_map<AsId, Key128> signing_secrets_;
  std::uint64_t counter_ = 0;
};

struct KeyResponse {
  Key128 key;
  Epoch epoch;
  crypto::Sha256::Digest signature;
};

// Key server of one AS. Owns (a reference to) the AS's derivation engine
// and answers fetch requests for K_{owner→requester}.
class KeyServer {
 public:
  KeyServer(const Engine& engine, const Key128& signing_secret)
      : engine_(engine), signing_secret_(signing_secret) {}

  KeyResponse fetch(AsId requester, UnixSec at) const;

  static Bytes response_message(AsId owner, AsId requester, const Key128& key,
                                const Epoch& epoch);

 private:
  const Engine& engine_;
  Key128 signing_secret_;
};

// Slow-side cache at AS B holding fetched keys K_{A→B}, keyed by (A, epoch
// start). Verifies signatures on insert; callers prefetch ahead of time
// (the paper: "they can be fetched ahead of time and only need to be
// infrequently renewed").
class KeyCache {
 public:
  KeyCache(AsId owner, const SimulatedPki& pki) : owner_(owner), pki_(&pki) {}

  // Fetch-and-cache from a remote key server. Returns false if the
  // signature fails to verify (the key is then not cached).
  bool insert(AsId remote, const KeyResponse& response);

  std::optional<Key128> lookup(AsId remote, UnixSec at) const;

  // Drops entries whose epoch ended before `now`.
  size_t expire(UnixSec now);

  size_t size() const { return cache_.size(); }
  AsId owner() const { return owner_; }

 private:
  struct CacheKey {
    std::uint64_t as_raw;
    UnixSec epoch_begin;
    friend constexpr auto operator<=>(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.as_raw * 0x9E3779B97F4A7C15ULL ^
                                        k.epoch_begin);
    }
  };
  struct Entry {
    Key128 key;
    Epoch epoch;
  };

  AsId owner_;
  const SimulatedPki* pki_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> cache_;
};

}  // namespace colibri::drkey
