// In-process control-plane transport.
//
// SUBSTITUTION (DESIGN.md §2): the paper's CServs talk gRPC-over-QUIC;
// here a message bus routes *serialized* Colibri packets between the
// CServs of a simulation, hop by hop. Requests are synchronous chains —
// the request recursion walking down the path and the response
// propagating back on unwind mirrors the RPC call chain, and every hop
// pays real encode/decode cost so the control-plane benchmarks include
// serialization like the paper's do.
//
// Telemetry: every call records the wall time spent in the destination's
// handler — which, for a chained request, includes all downstream hops —
// into the "bus.hop_latency_ns" histogram. Enabling the SpanCollector
// additionally captures the full nested forward/unwind span tree of a
// request (per-hop latency via SpanTrace::self_time_ns); when disabled,
// tracing costs one predictable branch per call.
// Distributed tracing: each bus delivery carries (or is assigned) a
// proto::TraceContext — 128-bit trace id, per-hop span id, parent span
// id — so the spans recorded at every AS stitch into one causal tree
// (telemetry::TraceAssembler). Context ids are generated from the
// initiator's Clock reading and per-bus sequence counters, never from
// wall-clock randomness, keeping SimClock runs and the twin-universe
// differential tests bit-reproducible.
#pragma once

#include <chrono>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "colibri/common/bytes.hpp"
#include "colibri/common/faults.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/proto/packet.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri::cserv {

// Point-in-time view of the bus counters (see snapshot()).
struct BusStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class MessageBus : public telemetry::MetricsSource {
 public:
  // A handler consumes a serialized request packet and returns the
  // serialized response packet.
  using Handler = std::function<Bytes(BytesView)>;

  // Registers with `registry` (nullptr = none); metrics export under
  // "bus.*".
  explicit MessageBus(telemetry::MetricsRegistry* registry =
                          &telemetry::MetricsRegistry::global())
      : registration_(registry, this) {}
  ~MessageBus() override = default;

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  void attach(AsId as, Handler handler) { handlers_[as] = std::move(handler); }
  void detach(AsId as) { handlers_.erase(as); }

  bool reachable(AsId as) const { return handlers_.contains(as); }

  // Delivers a request to `dst` and returns its response. Empty response
  // means the destination is unreachable or refused to answer. When
  // tracing is enabled, the trace context is peeked out of kChanPacket
  // frames (or derived from the caller's context for auxiliary channels
  // like key fetches) and installed as the current context for the
  // duration of the handler, so nested forwards chain causally.
  Bytes call(AsId dst, BytesView request);

  // --- fault injection (chaos tests) -----------------------------------
  // With an injector attached, every call() asks for a verdict first:
  // dropped requests return an empty response (indistinguishable from an
  // unreachable peer), duplicated requests invoke the handler twice, and
  // delayed requests are queued until deliver_delayed(). The injector
  // must outlive the bus (or be detached with nullptr).
  void attach_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Pumps the delayed queue: each queued request is delivered late as a
  // one-way message (its response is discarded — the original caller
  // already saw a timeout), in send order, after every message sent
  // since the delay — which is exactly a reorder. Requests delayed again
  // during the pump stay queued for the next call. Returns the number
  // replayed.
  std::size_t deliver_delayed();
  std::size_t delayed_pending() const { return delayed_.size(); }

  // Span tracing (see telemetry/trace.hpp): enable, run a request, take.
  telemetry::SpanCollector& tracer() { return tracer_; }
  bool tracing_active() const { return tracer_.enabled(); }

  // --- distributed-tracing context -------------------------------------
  // Context of the request currently being delivered (absent outside a
  // traced delivery).
  const proto::TraceContext& current_context() const { return current_ctx_; }
  // Starts a fresh sampled trace for a request originated on this bus.
  // `now_ns` is the initiator's Clock reading: mixed into the trace id so
  // distinct SimClock scenarios get distinct ids while identical runs
  // reproduce identical traces. Returns a zeroed context when tracing is
  // off — propagation then costs nothing on the wire.
  proto::TraceContext new_root_context(std::int64_t now_ns);
  // Child of the current context (same trace, fresh span id, parent =
  // current span); zeroed when there is no current context.
  proto::TraceContext child_context();
  // Swaps the current context (used by CServ::originate, which processes
  // hop 0 inline without a bus call); returns the previous one.
  proto::TraceContext exchange_context(const proto::TraceContext& ctx) {
    proto::TraceContext prev = current_ctx_;
    current_ctx_ = ctx;
    return prev;
  }

  // Uniform stats accessors: consistent point-in-time view + reset.
  BusStats snapshot() const { return {messages_.value(), bytes_.value()}; }
  void reset() {
    messages_.reset();
    bytes_.reset();
    hop_latency_ns_.reset();
  }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("bus.messages", messages_.value());
    sink.counter("bus.bytes", bytes_.value());
    const auto latency = hop_latency_ns_.snapshot();
    if (latency.count != 0) sink.histogram("bus.hop_latency_ns", latency);
    if (faults_ != nullptr) {
      sink.counter("bus.fault.dropped", faults_dropped_.value());
      sink.counter("bus.fault.duplicated", faults_duplicated_.value());
      sink.counter("bus.fault.delayed", faults_delayed_.value());
      sink.counter("bus.fault.replayed", faults_replayed_.value());
    }
  }

  // Legacy accessors, kept as thin views of the counters.
  std::uint64_t message_count() const { return messages_.value(); }
  std::uint64_t byte_count() const { return bytes_.value(); }

 private:
  static std::int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::uint64_t next_span_id();

  // The fault-free delivery path shared by call() and deliver_delayed().
  Bytes deliver(AsId dst, BytesView request);

  std::unordered_map<AsId, Handler> handlers_;
  FaultInjector* faults_ = nullptr;
  std::vector<std::pair<AsId, Bytes>> delayed_;
  telemetry::Counter faults_dropped_;
  telemetry::Counter faults_duplicated_;
  telemetry::Counter faults_delayed_;
  telemetry::Counter faults_replayed_;
  telemetry::Counter messages_;
  telemetry::Counter bytes_;
  telemetry::Histogram hop_latency_ns_;
  telemetry::SpanCollector tracer_;
  proto::TraceContext current_ctx_;
  std::uint64_t trace_seq_ = 0;  // one per new_root_context
  std::uint64_t span_seq_ = 0;   // one per generated span id
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::cserv
