// In-process control-plane transport.
//
// SUBSTITUTION (DESIGN.md §2): the paper's CServs talk gRPC-over-QUIC;
// here a message bus routes *serialized* Colibri packets between the
// CServs of a simulation, hop by hop. Requests are synchronous chains —
// the request recursion walking down the path and the response
// propagating back on unwind mirrors the RPC call chain, and every hop
// pays real encode/decode cost so the control-plane benchmarks include
// serialization like the paper's do.
#pragma once

#include <functional>
#include <unordered_map>

#include "colibri/common/bytes.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::cserv {

class MessageBus {
 public:
  // A handler consumes a serialized request packet and returns the
  // serialized response packet.
  using Handler = std::function<Bytes(BytesView)>;

  void attach(AsId as, Handler handler) { handlers_[as] = std::move(handler); }
  void detach(AsId as) { handlers_.erase(as); }

  bool reachable(AsId as) const { return handlers_.contains(as); }

  // Delivers a request to `dst` and returns its response. Empty response
  // means the destination is unreachable or refused to answer.
  Bytes call(AsId dst, BytesView request) {
    auto it = handlers_.find(dst);
    if (it == handlers_.end()) return {};
    ++messages_;
    bytes_ += request.size();
    return it->second(request);
  }

  std::uint64_t message_count() const { return messages_; }
  std::uint64_t byte_count() const { return bytes_; }

 private:
  std::unordered_map<AsId, Handler> handlers_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace colibri::cserv
