// In-process control-plane transport.
//
// SUBSTITUTION (DESIGN.md §2): the paper's CServs talk gRPC-over-QUIC;
// here a message bus routes *serialized* Colibri packets between the
// CServs of a simulation, hop by hop. Requests are synchronous chains —
// the request recursion walking down the path and the response
// propagating back on unwind mirrors the RPC call chain, and every hop
// pays real encode/decode cost so the control-plane benchmarks include
// serialization like the paper's do.
//
// Telemetry: every call records the wall time spent in the destination's
// handler — which, for a chained request, includes all downstream hops —
// into the "bus.hop_latency_ns" histogram. Enabling the SpanCollector
// additionally captures the full nested forward/unwind span tree of a
// request (per-hop latency via SpanTrace::self_time_ns); when disabled,
// tracing costs one predictable branch per call.
#pragma once

#include <chrono>
#include <functional>
#include <unordered_map>

#include "colibri/common/bytes.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri::cserv {

// Point-in-time view of the bus counters (see snapshot()).
struct BusStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class MessageBus : public telemetry::MetricsSource {
 public:
  // A handler consumes a serialized request packet and returns the
  // serialized response packet.
  using Handler = std::function<Bytes(BytesView)>;

  // Registers with `registry` (nullptr = none); metrics export under
  // "bus.*".
  explicit MessageBus(telemetry::MetricsRegistry* registry =
                          &telemetry::MetricsRegistry::global())
      : registration_(registry, this) {}
  ~MessageBus() override = default;

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  void attach(AsId as, Handler handler) { handlers_[as] = std::move(handler); }
  void detach(AsId as) { handlers_.erase(as); }

  bool reachable(AsId as) const { return handlers_.contains(as); }

  // Delivers a request to `dst` and returns its response. Empty response
  // means the destination is unreachable or refused to answer.
  Bytes call(AsId dst, BytesView request) {
    auto it = handlers_.find(dst);
    if (it == handlers_.end()) return {};
    messages_.inc();
    bytes_.inc(request.size());
    const std::int64_t t0 = steady_ns();
    std::size_t span = 0;
    const bool tracing = tracer_.enabled();
    if (tracing) span = tracer_.open(dst.to_string(), t0, request.size());
    Bytes response = it->second(request);
    const std::int64_t t1 = steady_ns();
    hop_latency_ns_.record_shared(static_cast<std::uint64_t>(t1 - t0));
    if (tracing) tracer_.close(span, t1);
    return response;
  }

  // Span tracing (see telemetry/trace.hpp): enable, run a request, take.
  telemetry::SpanCollector& tracer() { return tracer_; }

  // Uniform stats accessors: consistent point-in-time view + reset.
  BusStats snapshot() const { return {messages_.value(), bytes_.value()}; }
  void reset() {
    messages_.reset();
    bytes_.reset();
    hop_latency_ns_.reset();
  }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("bus.messages", messages_.value());
    sink.counter("bus.bytes", bytes_.value());
    const auto latency = hop_latency_ns_.snapshot();
    if (latency.count != 0) sink.histogram("bus.hop_latency_ns", latency);
  }

  // Legacy accessors, kept as thin views of the counters.
  std::uint64_t message_count() const { return messages_.value(); }
  std::uint64_t byte_count() const { return bytes_.value(); }

 private:
  static std::int64_t steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::unordered_map<AsId, Handler> handlers_;
  telemetry::Counter messages_;
  telemetry::Counter bytes_;
  telemetry::Histogram hop_latency_ns_;
  telemetry::SpanCollector tracer_;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::cserv
