// Control-plane rate limiting (paper §4.2, §5.3).
//
// Two limiters guard the CServ against DoC-style resource exhaustion:
// a per-source-AS request limiter ("the CServ can very efficiently filter
// unauthentic packets and employ per-AS rate limiting") and a
// per-reservation renewal limiter ("CServs can rate-limit the amount of
// renewal requests for an EER, e.g., to one per second").
#pragma once

#include <unordered_map>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::cserv {

// Sliding-refill counter: allows `rate_per_sec` events per second with a
// burst of `burst`.
class RequestLimiter {
 public:
  RequestLimiter(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst) {}

  bool allow(std::uint64_t key, TimeNs now);

  size_t tracked() const { return state_.size(); }
  // Drops entries idle for more than `idle_ns`.
  void expire(TimeNs now, TimeNs idle_ns);

 private:
  struct State {
    double tokens;
    TimeNs last;
  };
  double rate_;
  double burst_;
  std::unordered_map<std::uint64_t, State> state_;
};

struct RateLimitConfig {
  double per_as_requests_per_sec = 100.0;
  double per_as_burst = 200.0;
  double renewals_per_reservation_per_sec = 1.0;
  double renewal_burst = 2.0;
};

class ControlRateLimiter {
 public:
  explicit ControlRateLimiter(const RateLimitConfig& cfg = {})
      : cfg_(cfg),
        per_as_(cfg.per_as_requests_per_sec, cfg.per_as_burst),
        per_res_(cfg.renewals_per_reservation_per_sec, cfg.renewal_burst) {}

  bool allow_request(AsId src, TimeNs now) {
    return per_as_.allow(src.raw(), now);
  }
  bool allow_renewal(const ResKey& key, TimeNs now) {
    return per_res_.allow(key.src_as.raw() ^
                              (static_cast<std::uint64_t>(key.res_id) << 32),
                          now);
  }

  const RateLimitConfig& config() const { return cfg_; }

 private:
  RateLimitConfig cfg_;
  RequestLimiter per_as_;
  RequestLimiter per_res_;
};

}  // namespace colibri::cserv
