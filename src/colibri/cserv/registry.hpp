// SegR registry and hierarchical dissemination cache (paper App. C).
//
// After establishing a SegR, its initiator may register it publicly with
// a whitelist of ASes allowed to build EERs over it. End hosts query
// their local CServ, which serves from its cache and falls back to
// querying remote CServs, caching what it learns — the hierarchical
// caching that keeps EER-setup latency low.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::cserv {

// Public description of a registered SegR, enough for a remote AS to
// request EERs over it.
struct SegrAdvert {
  ResKey key;
  topology::SegType seg_type = topology::SegType::kUp;
  std::vector<topology::Hop> hops;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
  // Empty whitelist = public; otherwise only listed ASes may use it.
  std::vector<AsId> whitelist;

  AsId first_as() const { return hops.front().as; }
  AsId last_as() const { return hops.back().as; }
  bool usable_by(AsId as) const;
  bool expired(UnixSec now) const { return exp_time <= now; }
};

class SegrRegistry {
 public:
  // Registration by the local initiator.
  void register_segr(SegrAdvert advert);
  void unregister(const ResKey& key);

  // Cache insertion of adverts learned from remote CServs.
  void cache_remote(SegrAdvert advert) { register_segr(std::move(advert)); }
  // Invalidate a cached advert (e.g., after a remote version switch was
  // detected during EER setup, App. C).
  void invalidate(const ResKey& key) { unregister(key); }

  // Adverts usable by `requester` connecting `from` -> `to`.
  std::vector<SegrAdvert> query(AsId requester, AsId from, AsId to,
                                UnixSec now) const;
  // All adverts of a given type starting (up/core) or ending (down) at an
  // AS; used to stitch multi-segment EER paths.
  std::vector<SegrAdvert> query_from(AsId requester, AsId from,
                                     UnixSec now) const;
  std::vector<SegrAdvert> query_to(AsId requester, AsId to, UnixSec now) const;

  std::optional<SegrAdvert> find(const ResKey& key) const;
  size_t size() const { return adverts_.size(); }
  size_t expire(UnixSec now);

 private:
  std::unordered_map<ResKey, SegrAdvert> adverts_;
};

}  // namespace colibri::cserv
