// Internal wire helpers shared by cserv.cpp and handlers.cpp: bus channel
// framing, registry-advert serialization, key-fetch serialization, and the
// AAD binding for sealed hop authenticators. Not part of the public API.
#pragma once

#include <optional>

#include "colibri/cserv/registry.hpp"
#include "colibri/drkey/keyserver.hpp"
#include "colibri/proto/packet.hpp"

namespace colibri::cserv::wire {

// Bus channel tags (first byte of every bus message).
inline constexpr std::uint8_t kChanPacket = 0;
inline constexpr std::uint8_t kChanRegistryQuery = 1;
inline constexpr std::uint8_t kChanKeyFetch = 2;
inline constexpr std::uint8_t kChanDownSegrRequest = 3;

// Frames a serialized packet for the bus (responses travel back as the
// handler's raw return value and are not framed).
inline Bytes packet_frame(const Bytes& encoded_packet) {
  Bytes out;
  out.reserve(encoded_packet.size() + 1);
  out.push_back(kChanPacket);
  append_bytes(out, encoded_packet);
  return out;
}

// --- SegrAdvert ---------------------------------------------------------

inline void put_advert(Bytes& out, const SegrAdvert& a) {
  put_le(out, a.key.src_as.raw());
  put_le(out, a.key.res_id);
  out.push_back(static_cast<std::uint8_t>(a.seg_type));
  put_le(out, static_cast<std::uint16_t>(a.hops.size()));
  for (const auto& h : a.hops) {
    put_le(out, h.as.raw());
    put_le(out, static_cast<std::uint16_t>(h.ingress));
    put_le(out, static_cast<std::uint16_t>(h.egress));
  }
  put_le(out, a.bw_kbps);
  put_le(out, a.exp_time);
  put_le(out, static_cast<std::uint16_t>(a.whitelist.size()));
  for (AsId w : a.whitelist) put_le(out, w.raw());
}

inline std::optional<SegrAdvert> get_advert(ByteReader& r) {
  SegrAdvert a;
  a.key.src_as = AsId::from_raw(r.read<std::uint64_t>());
  a.key.res_id = r.read<std::uint32_t>();
  a.seg_type = static_cast<topology::SegType>(r.read<std::uint8_t>());
  const auto nh = r.read<std::uint16_t>();
  a.hops.reserve(nh);
  for (std::uint16_t i = 0; i < nh; ++i) {
    topology::Hop h;
    h.as = AsId::from_raw(r.read<std::uint64_t>());
    h.ingress = r.read<std::uint16_t>();
    h.egress = r.read<std::uint16_t>();
    a.hops.push_back(h);
  }
  a.bw_kbps = r.read<std::uint32_t>();
  a.exp_time = r.read<std::uint32_t>();
  const auto nw = r.read<std::uint16_t>();
  a.whitelist.reserve(nw);
  for (std::uint16_t i = 0; i < nw; ++i) {
    a.whitelist.push_back(AsId::from_raw(r.read<std::uint64_t>()));
  }
  if (!r.ok() || a.hops.empty()) return std::nullopt;
  return a;
}

// --- registry query -------------------------------------------------------

struct RegistryQuery {
  AsId requester;
  AsId from;
  AsId to;  // 0 = any destination (query_from)
};

inline Bytes encode_registry_query(const RegistryQuery& q) {
  Bytes out;
  out.push_back(kChanRegistryQuery);
  put_le(out, q.requester.raw());
  put_le(out, q.from.raw());
  put_le(out, q.to.raw());
  return out;
}

// --- key fetch --------------------------------------------------------------

inline Bytes encode_key_fetch(AsId requester, UnixSec at) {
  Bytes out;
  out.push_back(kChanKeyFetch);
  put_le(out, requester.raw());
  put_le(out, at);
  return out;
}

inline Bytes encode_key_response(const drkey::KeyResponse& kr) {
  Bytes out;
  append_bytes(out, BytesView(kr.key.bytes.data(), kr.key.bytes.size()));
  put_le(out, kr.epoch.begin);
  put_le(out, kr.epoch.end);
  append_bytes(out, BytesView(kr.signature.data(), kr.signature.size()));
  return out;
}

inline std::optional<drkey::KeyResponse> decode_key_response(BytesView wire) {
  ByteReader r(wire);
  drkey::KeyResponse kr;
  r.read_bytes(kr.key.bytes.data(), kr.key.bytes.size());
  kr.epoch.begin = r.read<std::uint32_t>();
  kr.epoch.end = r.read<std::uint32_t>();
  r.read_bytes(kr.signature.data(), kr.signature.size());
  if (!r.ok()) return std::nullopt;
  return kr;
}

// --- down-SegR request (§3.3) -------------------------------------------------
// "For down-SegRs, the first AS only sets up a SegR upon an explicit
// request by the last AS." The last AS names the segment and the desired
// bandwidth; the core AS initiates the setup and answers with the result.

struct DownSegrRequest {
  AsId requester;
  BwKbps min_bw_kbps = 0;
  BwKbps max_bw_kbps = 0;
  std::vector<topology::Hop> hops;  // the down-segment, first AS = target
};

inline Bytes encode_down_request(const DownSegrRequest& q) {
  Bytes out;
  out.push_back(kChanDownSegrRequest);
  put_le(out, q.requester.raw());
  put_le(out, q.min_bw_kbps);
  put_le(out, q.max_bw_kbps);
  put_le(out, static_cast<std::uint16_t>(q.hops.size()));
  for (const auto& h : q.hops) {
    put_le(out, h.as.raw());
    put_le(out, static_cast<std::uint16_t>(h.ingress));
    put_le(out, static_cast<std::uint16_t>(h.egress));
  }
  return out;
}

inline std::optional<DownSegrRequest> decode_down_request(BytesView body) {
  ByteReader r(body);
  DownSegrRequest q;
  q.requester = AsId::from_raw(r.read<std::uint64_t>());
  q.min_bw_kbps = r.read<std::uint32_t>();
  q.max_bw_kbps = r.read<std::uint32_t>();
  const auto nh = r.read<std::uint16_t>();
  q.hops.reserve(nh);
  for (std::uint16_t i = 0; i < nh; ++i) {
    topology::Hop h;
    h.as = AsId::from_raw(r.read<std::uint64_t>());
    h.ingress = r.read<std::uint16_t>();
    h.egress = r.read<std::uint16_t>();
    q.hops.push_back(h);
  }
  if (!r.ok() || q.hops.empty()) return std::nullopt;
  return q;
}

struct DownSegrResponse {
  Errc code = Errc::kInternal;
  ResKey key;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
};

inline Bytes encode_down_response(const DownSegrResponse& resp) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(resp.code));
  put_le(out, resp.key.src_as.raw());
  put_le(out, resp.key.res_id);
  put_le(out, resp.bw_kbps);
  put_le(out, resp.exp_time);
  return out;
}

inline std::optional<DownSegrResponse> decode_down_response(BytesView body) {
  ByteReader r(body);
  DownSegrResponse resp;
  resp.code = static_cast<Errc>(r.read<std::uint8_t>());
  resp.key.src_as = AsId::from_raw(r.read<std::uint64_t>());
  resp.key.res_id = r.read<std::uint32_t>();
  resp.bw_kbps = r.read<std::uint32_t>();
  resp.exp_time = r.read<std::uint32_t>();
  if (!r.ok()) return std::nullopt;
  return resp;
}

// --- sealed-HopAuth AAD ------------------------------------------------------
// Binds σ_i to the final reservation parameters and the hop index, so a
// sealed authenticator cannot be replayed for a different reservation,
// version, bandwidth, or position.
inline Bytes hopauth_aad(const proto::ResInfo& final_ri, std::uint8_t hop) {
  Bytes aad;
  put_le(aad, final_ri.src_as.raw());
  put_le(aad, final_ri.res_id);
  put_le(aad, final_ri.bw_kbps);
  put_le(aad, final_ri.exp_time);
  aad.push_back(final_ri.version);
  aad.push_back(hop);
  return aad;
}

}  // namespace colibri::cserv::wire
