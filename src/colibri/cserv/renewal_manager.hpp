// Automatic SegR renewal (paper §3.2).
//
// "The CServ requests and renews SegRs according to expected traffic
// requirements." This manager owns that loop for the SegRs an AS
// initiated: on every tick it renews reservations approaching expiry —
// sized by a per-SegR demand forecaster fed from observed EER
// utilization — and activates the new version, so the AS's segment
// infrastructure stays alive indefinitely without operator involvement
// (the management-scalability story of §9).
//
// Correlated-expiry storms (many SegRs set up together all coming due in
// the same tick) are drained in per-shard batches: one planning scan
// groups the due keys by their ReservationDb shard and sorts each batch
// by ResId, so the drain touches one shard's keys at a time in a
// deterministic order instead of hopping shards per the hash order of
// the forecaster map.
#pragma once

#include <unordered_map>
#include <vector>

#include "colibri/cserv/cserv.hpp"
#include "colibri/cserv/forecast.hpp"

namespace colibri::cserv {

struct RenewalManagerConfig {
  // Renew when within this many seconds of the active version's expiry.
  std::uint32_t lead_sec = 60;
  BwKbps min_bw_kbps = 1'000;
  ForecastConfig forecast;
  // Re-publish renewed SegRs with their previous whitelist.
  bool republish = true;
};

// Point-in-time view of the manager's counters (see snapshot()).
struct RenewalStats {
  std::uint64_t renewed = 0;
  std::uint64_t activated = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
};

// One shard's worth of due renewals, ResId-ordered.
struct RenewalBatch {
  size_t shard = 0;
  std::vector<ResKey> due;
};

class RenewalManager : public telemetry::MetricsSource {
 public:
  // Exports "cserv.renewal.*" to the owning CServ's metrics registry.
  RenewalManager(CServ& cserv, const RenewalManagerConfig& cfg = {})
      : cserv_(&cserv),
        cfg_(cfg),
        registration_(cserv.metrics_registry(), this) {}
  ~RenewalManager() override = default;

  RenewalManager(const RenewalManager&) = delete;
  RenewalManager& operator=(const RenewalManager&) = delete;

  // Starts managing a SegR this AS initiated.
  void manage(const ResKey& key) { forecasters_.try_emplace(key, cfg_.forecast); }
  void unmanage(const ResKey& key) { forecasters_.erase(key); }
  size_t managed() const { return forecasters_.size(); }

  // Convenience: manage every SegR currently initiated by this AS.
  size_t manage_all_local();

  // Planning scan: feeds the forecasters from current utilization, drops
  // reservations that vanished, and buckets everything due at `now` into
  // per-shard, ResId-ordered batches (ascending shard index).
  std::vector<RenewalBatch> plan(UnixSec now);

  // One maintenance pass: plan(), then drain every batch — renew +
  // activate whatever is due. Call alongside CServ::tick().
  void tick(UnixSec now);

  // Uniform stats accessors: consistent point-in-time view + reset.
  RenewalStats snapshot() const {
    return {metrics_.renewed.value(), metrics_.activated.value(),
            metrics_.failed.value(), metrics_.batches.value()};
  }
  void reset() {
    metrics_.renewed.reset();
    metrics_.activated.reset();
    metrics_.failed.reset();
    metrics_.batches.reset();
    last_batch_max_ = 0;
  }
  // Legacy view, kept as a thin alias of snapshot().
  RenewalStats stats() const { return snapshot(); }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("cserv.renewal.renewed", metrics_.renewed.value());
    sink.counter("cserv.renewal.activated", metrics_.activated.value());
    sink.counter("cserv.renewal.failed", metrics_.failed.value());
    sink.counter("cserv.renewal.batches", metrics_.batches.value());
    sink.gauge("cserv.renewal.managed",
               static_cast<std::int64_t>(forecasters_.size()));
    sink.gauge("cserv.renewal.last_batch_max",
               static_cast<std::int64_t>(last_batch_max_));
  }

 private:
  // Renews (or activates a live pending version of) one due SegR.
  void renew_one(const ResKey& key, UnixSec now);

  CServ* cserv_;
  RenewalManagerConfig cfg_;
  std::unordered_map<ResKey, DemandForecaster> forecasters_;
  struct Metrics {
    telemetry::Counter renewed;
    telemetry::Counter activated;
    telemetry::Counter failed;
    telemetry::Counter batches;
  };
  Metrics metrics_;
  size_t last_batch_max_ = 0;  // largest batch drained by the latest tick
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::cserv
