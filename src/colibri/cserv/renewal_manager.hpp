// Automatic SegR renewal (paper §3.2).
//
// "The CServ requests and renews SegRs according to expected traffic
// requirements." This manager owns that loop for the SegRs an AS
// initiated: on every tick it renews reservations approaching expiry —
// sized by a per-SegR demand forecaster fed from observed EER
// utilization — and activates the new version, so the AS's segment
// infrastructure stays alive indefinitely without operator involvement
// (the management-scalability story of §9).
#pragma once

#include <unordered_map>

#include "colibri/cserv/cserv.hpp"
#include "colibri/cserv/forecast.hpp"

namespace colibri::cserv {

struct RenewalManagerConfig {
  // Renew when within this many seconds of the active version's expiry.
  std::uint32_t lead_sec = 60;
  BwKbps min_bw_kbps = 1'000;
  ForecastConfig forecast;
  // Re-publish renewed SegRs with their previous whitelist.
  bool republish = true;
};

// Point-in-time view of the manager's counters (see snapshot()).
struct RenewalStats {
  std::uint64_t renewed = 0;
  std::uint64_t activated = 0;
  std::uint64_t failed = 0;
};

class RenewalManager : public telemetry::MetricsSource {
 public:
  // Exports "cserv.renewal.*" to the owning CServ's metrics registry.
  RenewalManager(CServ& cserv, const RenewalManagerConfig& cfg = {})
      : cserv_(&cserv),
        cfg_(cfg),
        registration_(cserv.metrics_registry(), this) {}
  ~RenewalManager() override = default;

  RenewalManager(const RenewalManager&) = delete;
  RenewalManager& operator=(const RenewalManager&) = delete;

  // Starts managing a SegR this AS initiated.
  void manage(const ResKey& key) { forecasters_.try_emplace(key, cfg_.forecast); }
  void unmanage(const ResKey& key) { forecasters_.erase(key); }
  size_t managed() const { return forecasters_.size(); }

  // Convenience: manage every SegR currently initiated by this AS.
  size_t manage_all_local();

  // One maintenance pass: feed forecasters from current utilization,
  // renew + activate whatever is due, drop reservations that vanished.
  // Call alongside CServ::tick().
  void tick(UnixSec now);

  // Uniform stats accessors: consistent point-in-time view + reset.
  RenewalStats snapshot() const {
    return {metrics_.renewed.value(), metrics_.activated.value(),
            metrics_.failed.value()};
  }
  void reset() {
    metrics_.renewed.reset();
    metrics_.activated.reset();
    metrics_.failed.reset();
  }
  // Legacy view, kept as a thin alias of snapshot().
  RenewalStats stats() const { return snapshot(); }

  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("cserv.renewal.renewed", metrics_.renewed.value());
    sink.counter("cserv.renewal.activated", metrics_.activated.value());
    sink.counter("cserv.renewal.failed", metrics_.failed.value());
    sink.gauge("cserv.renewal.managed",
               static_cast<std::int64_t>(forecasters_.size()));
  }

 private:
  CServ* cserv_;
  RenewalManagerConfig cfg_;
  std::unordered_map<ResKey, DemandForecaster> forecasters_;
  struct Metrics {
    telemetry::Counter renewed;
    telemetry::Counter activated;
    telemetry::Counter failed;
  };
  Metrics metrics_;
  telemetry::ScopedSource registration_;
};

}  // namespace colibri::cserv
