// Automatic SegR renewal (paper §3.2).
//
// "The CServ requests and renews SegRs according to expected traffic
// requirements." This manager owns that loop for the SegRs an AS
// initiated: on every tick it renews reservations approaching expiry —
// sized by a per-SegR demand forecaster fed from observed EER
// utilization — and activates the new version, so the AS's segment
// infrastructure stays alive indefinitely without operator involvement
// (the management-scalability story of §9).
#pragma once

#include <unordered_map>

#include "colibri/cserv/cserv.hpp"
#include "colibri/cserv/forecast.hpp"

namespace colibri::cserv {

struct RenewalManagerConfig {
  // Renew when within this many seconds of the active version's expiry.
  std::uint32_t lead_sec = 60;
  BwKbps min_bw_kbps = 1'000;
  ForecastConfig forecast;
  // Re-publish renewed SegRs with their previous whitelist.
  bool republish = true;
};

struct RenewalStats {
  std::uint64_t renewed = 0;
  std::uint64_t activated = 0;
  std::uint64_t failed = 0;
};

class RenewalManager {
 public:
  RenewalManager(CServ& cserv, const RenewalManagerConfig& cfg = {})
      : cserv_(&cserv), cfg_(cfg) {}

  // Starts managing a SegR this AS initiated.
  void manage(const ResKey& key) { forecasters_.try_emplace(key, cfg_.forecast); }
  void unmanage(const ResKey& key) { forecasters_.erase(key); }
  size_t managed() const { return forecasters_.size(); }

  // Convenience: manage every SegR currently initiated by this AS.
  size_t manage_all_local();

  // One maintenance pass: feed forecasters from current utilization,
  // renew + activate whatever is due, drop reservations that vanished.
  // Call alongside CServ::tick().
  void tick(UnixSec now);

  const RenewalStats& stats() const { return stats_; }

 private:
  CServ* cserv_;
  RenewalManagerConfig cfg_;
  std::unordered_map<ResKey, DemandForecaster> forecasters_;
  RenewalStats stats_;
};

}  // namespace colibri::cserv
