#include "colibri/cserv/cserv.hpp"

#include <algorithm>
#include <chrono>

#include "colibri/crypto/eax.hpp"
#include "colibri/cserv/wire_internal.hpp"

namespace colibri::cserv {

// Defined in handlers.cpp.
Bytes process_request_bridge(CServ& self, proto::Packet pkt);

namespace {

// Paper §3.3: "the initiator can determine the location of potential
// bottlenecks" — render the refusing AS from a response's fail_hop.
std::string bottleneck_context(const std::vector<AsId>& ases,
                               std::uint8_t fail_hop) {
  if (fail_hop >= ases.size()) return {};
  return "at " + ases[fail_hop].to_string() + " (hop " +
         std::to_string(fail_hop) + ")";
}

}  // namespace

CServ::CServ(const topology::Topology& topo, AsId local, MessageBus& bus,
             drkey::SimulatedPki& pki, const drkey::Key128& drkey_master,
             const drkey::Key128& hop_key, const Clock& clock,
             CservConfig cfg)
    : topo_(&topo),
      local_(local),
      bus_(&bus),
      pki_(&pki),
      drkey_engine_(drkey_master, local),
      key_server_(drkey_engine_, pki.enroll(local)),
      key_cache_(local, pki),
      hop_key_(hop_key),
      clock_(&clock),
      cfg_(cfg),
      db_(local, cfg.control_plane_shards),
      rate_limiter_(cfg.rate_limits),
      rng_(local.raw() ^ 0xC011B121C0DEULL),
      registration_(cfg.metrics, this) {
  if (cfg_.admission_factory) {
    admission_ = cfg_.admission_factory(local, cfg_.control_plane_shards);
    bounded_ = dynamic_cast<admission::BoundedTubeBackend*>(admission_.get());
  } else {
    auto backend = std::make_unique<admission::BoundedTubeBackend>(
        cfg_.control_plane_shards);
    bounded_ = backend.get();
    admission_ = std::move(backend);
  }
  // Interface capacities from the local traffic matrix (§4.7): the Colibri
  // share of each inter-domain link, plus the internal pseudo-interface 0
  // for traffic terminating in this AS.
  const topology::AsNode& node = topo.node(local);
  for (const auto& intf : node.interfaces) {
    admission_->set_interface_capacity(intf.id,
                                       node.colibri_capacity(intf.id));
  }
  admission_->set_interface_capacity(kNoInterface,
                                     cfg_.internal_capacity_kbps);
  bus_->attach(local, [this](BytesView wire) { return handle(wire); });
}

CServ::~CServ() { bus_->detach(local_); }

admission::SegrAdmission& CServ::segr_admission() {
  // Requires the bounded-tube backend (the default); a custom
  // admission_factory has no tube ledger to introspect.
  return bounded_->segr();
}

Bytes CServ::handle(BytesView wire) {
  if (wire.empty()) return {};
  const std::uint8_t chan = wire[0];
  const BytesView body = wire.subspan(1);
  switch (chan) {
    case wire::kChanPacket: return handle_packet(body);
    case wire::kChanRegistryQuery: return handle_registry_query(body);
    case wire::kChanKeyFetch: return handle_key_fetch(body);
    case wire::kChanDownSegrRequest: return handle_down_segr_request(body);
    default: return {};
  }
}

Bytes CServ::handle_packet(BytesView body) {
  auto pkt = proto::decode_packet(body);
  if (!pkt) return {};
  return process_request_bridge(*this, std::move(*pkt));
}

Bytes CServ::handle_registry_query(BytesView body) {
  ByteReader r(body);
  const AsId requester = AsId::from_raw(r.read<std::uint64_t>());
  const AsId from = AsId::from_raw(r.read<std::uint64_t>());
  const AsId to = AsId::from_raw(r.read<std::uint64_t>());
  if (!r.ok()) return {};
  const UnixSec now = clock_->now_sec();
  const std::vector<SegrAdvert> adverts =
      to.valid() ? registry_.query(requester, from, to, now)
                 : registry_.query_from(requester, from, now);
  Bytes out;
  put_le(out, static_cast<std::uint16_t>(adverts.size()));
  for (const auto& a : adverts) wire::put_advert(out, a);
  return out;
}

Bytes CServ::handle_key_fetch(BytesView body) {
  ByteReader r(body);
  const AsId requester = AsId::from_raw(r.read<std::uint64_t>());
  const UnixSec at = r.read<std::uint32_t>();
  if (!r.ok()) return {};
  return wire::encode_key_response(key_server_.fetch(requester, at));
}

proto::Packet CServ::make_response_packet(
    const proto::Packet& request, const proto::ControlResponse& resp) const {
  proto::Packet out;
  out.type = proto::PacketType::kResponse;
  out.is_eer = request.is_eer;
  out.current_hop = request.current_hop;
  out.path = request.path;
  out.resinfo = request.resinfo;
  out.eerinfo = request.eerinfo;
  proto::AuthedPayload ap;
  ap.message = resp;
  out.payload = proto::encode_authed(ap);
  return out;
}

std::optional<drkey::Key128> CServ::fetch_remote_key(AsId remote) {
  const UnixSec now = clock_->now_sec();
  if (remote == local_) return drkey_engine_.as_key(local_, now);
  if (auto cached = key_cache_.lookup(remote, now)) return cached;
  const Bytes resp = bus_->call(remote, wire::encode_key_fetch(local_, now));
  auto kr = wire::decode_key_response(resp);
  if (!kr || !key_cache_.insert(remote, *kr)) return std::nullopt;
  return kr->key;
}

Result<proto::AuthedPayload> CServ::build_authed(
    const proto::ControlMessage& msg, const proto::ResInfo& ri,
    const std::vector<AsId>& ases) {
  proto::AuthedPayload ap;
  ap.message = msg;
  const Bytes input = proto::auth_input(msg, ri);
  ap.macs.reserve(ases.size());
  for (AsId as : ases) {
    // K_{AS_i→me}: slow side — fetched from AS_i's key server and cached
    // for the epoch (§2.3).
    auto key = fetch_remote_key(as);
    if (!key) return Errc::kAuthFailed;
    crypto::Cmac cmac(key->bytes.data());
    proto::Mac16 mac;
    cmac.compute(input, mac.data());
    ap.macs.push_back(mac);
  }
  return ap;
}

Result<proto::ControlResponse> CServ::originate(
    proto::Packet pkt, const std::vector<AsId>& ases) {
  (void)ases;
  // The initiator is hop 0 of its own request; process locally, which
  // recursively forwards down the path via the bus. The full forward +
  // unwind wall time lands in the request-latency histogram.
  //
  // Distributed tracing: hop 0 never crosses the bus, so the root of the
  // trace is created here — a fresh trace id (derived from this AS's
  // Clock and the bus sequence, reproducible under SimClock) and a root
  // span covering the local processing. Downstream hops chain off it via
  // the context stamped into forwarded packets.
  const bool tracing = bus_->tracing_active();
  proto::TraceContext root_ctx;
  proto::TraceContext prev_ctx;
  std::size_t root_span = 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (tracing) {
    root_ctx = bus_->new_root_context(clock_->now_ns());
    pkt.trace = root_ctx;
    pkt.has_trace = root_ctx.present();
    root_span = bus_->tracer().open(
        local_.to_string(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t0.time_since_epoch())
            .count(),
        pkt.wire_size());
    bus_->tracer().set_trace_ids(root_span, root_ctx.trace_hi,
                                 root_ctx.trace_lo, root_ctx.span_id,
                                 /*parent_span_id=*/0);
    prev_ctx = bus_->exchange_context(root_ctx);
  }
  const Bytes resp_wire = process_request_bridge(*this, std::move(pkt));
  const auto t1 = std::chrono::steady_clock::now();
  if (tracing) {
    (void)bus_->exchange_context(prev_ctx);
    bus_->tracer().close(root_span,
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             t1.time_since_epoch())
                             .count());
  }
  metrics_.request_latency_ns.record_shared(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count()));
  auto resp_pkt = proto::decode_packet(resp_wire);
  if (!resp_pkt) return Errc::kInternal;
  auto resp_ap = proto::decode_authed(resp_pkt->payload);
  if (!resp_ap) return Errc::kInternal;
  auto* resp = std::get_if<proto::ControlResponse>(&resp_ap->message);
  if (resp == nullptr) return Errc::kInternal;
  return *resp;
}

// --- SegR initiator API -------------------------------------------------------

Result<ReservationResult> CServ::setup_segr(const topology::PathSegment& seg,
                                            BwKbps min_bw, BwKbps max_bw) {
  if (seg.hops.empty() || seg.first_as() != local_) return Errc::kMalformed;

  proto::SegRequest msg;
  msg.seg_type = seg.type;
  msg.min_bw_kbps = min_bw;
  msg.max_bw_kbps = max_bw;
  for (const auto& h : seg.hops) msg.ases.push_back(h.as);

  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegSetup;
  pkt.is_eer = false;
  pkt.path = seg.hops;
  pkt.resinfo.src_as = local_;
  pkt.resinfo.res_id = db_.next_res_id();
  pkt.resinfo.bw_kbps = max_bw;
  pkt.resinfo.exp_time = clock_->now_sec() + cfg_.segr_lifetime_sec;
  pkt.resinfo.version = 0;

  auto authed = build_authed(msg, pkt.resinfo, msg.ases);
  if (!authed) return authed.error();
  pkt.payload = proto::encode_authed(authed.value());

  auto resp = originate(std::move(pkt), msg.ases);
  if (!resp) return resp.error();
  if (!resp.value().success) {
    return Result<ReservationResult>(
        resp.value().fail_code,
        bottleneck_context(msg.ases, resp.value().fail_hop));
  }

  segr_tokens_[ResKey{local_, pkt.resinfo.res_id}] = resp.value().tokens;
  return ReservationResult{ResKey{local_, pkt.resinfo.res_id},
                           resp.value().final_bw_kbps, pkt.resinfo.exp_time,
                           0};
}

Result<ReservationResult> CServ::renew_segr(const ResKey& key, BwKbps min_bw,
                                            BwKbps max_bw) {
  const auto rec = db_.segr_copy(key);
  if (!rec || key.src_as != local_) return Errc::kNoSuchReservation;

  proto::SegRequest msg;
  msg.seg_type = rec->seg_type;
  msg.min_bw_kbps = min_bw;
  msg.max_bw_kbps = max_bw;
  for (const auto& h : rec->hops) msg.ases.push_back(h.as);

  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegRenewal;
  pkt.is_eer = false;
  pkt.path = rec->hops;
  pkt.resinfo.src_as = local_;
  pkt.resinfo.res_id = key.res_id;
  pkt.resinfo.bw_kbps = max_bw;
  pkt.resinfo.exp_time = clock_->now_sec() + cfg_.segr_lifetime_sec;
  pkt.resinfo.version = static_cast<ResVer>(rec->active.version + 1);

  auto authed = build_authed(msg, pkt.resinfo, msg.ases);
  if (!authed) return authed.error();
  pkt.payload = proto::encode_authed(authed.value());

  const ResVer new_ver = pkt.resinfo.version;
  const UnixSec new_exp = pkt.resinfo.exp_time;
  auto resp = originate(std::move(pkt), msg.ases);
  if (!resp) return resp.error();
  if (!resp.value().success) {
    return Result<ReservationResult>(
        resp.value().fail_code,
        bottleneck_context(msg.ases, resp.value().fail_hop));
  }
  segr_tokens_[key] = resp.value().tokens;
  return ReservationResult{key, resp.value().final_bw_kbps, new_exp, new_ver};
}

Result<void> CServ::activate_segr(const ResKey& key, ResVer version) {
  const auto rec = db_.segr_copy(key);
  if (!rec || key.src_as != local_) return Errc::kNoSuchReservation;
  if (!rec->pending || rec->pending->version != version) {
    return Errc::kBadVersion;
  }

  proto::SegActivation msg{version};
  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegActivation;
  pkt.is_eer = false;
  pkt.path = rec->hops;
  pkt.resinfo.src_as = local_;
  pkt.resinfo.res_id = key.res_id;
  pkt.resinfo.bw_kbps = rec->pending->bw_kbps;
  pkt.resinfo.exp_time = rec->pending->exp_time;
  pkt.resinfo.version = version;

  std::vector<AsId> ases;
  for (const auto& h : rec->hops) ases.push_back(h.as);
  auto authed = build_authed(msg, pkt.resinfo, ases);
  if (!authed) return authed.error();
  pkt.payload = proto::encode_authed(authed.value());

  auto resp = originate(std::move(pkt), ases);
  if (!resp) return resp.error();
  if (!resp.value().success) {
    return Result<void>(resp.value().fail_code,
                        bottleneck_context(ases, resp.value().fail_hop));
  }
  return {};
}

bool CServ::publish_segr(const ResKey& key, std::vector<AsId> whitelist) {
  const auto rec = db_.segr_copy(key);
  if (!rec) return false;
  SegrAdvert a;
  a.key = key;
  a.seg_type = rec->seg_type;
  a.hops = rec->hops;
  a.bw_kbps = rec->active.bw_kbps;
  a.exp_time = rec->active.exp_time;
  a.whitelist = std::move(whitelist);
  registry_.register_segr(std::move(a));
  return true;
}

const std::vector<proto::Hvf>* CServ::segr_tokens(const ResKey& key) const {
  auto it = segr_tokens_.find(key);
  return it == segr_tokens_.end() ? nullptr : &it->second;
}

Result<ReservationResult> CServ::request_down_segr(
    const topology::PathSegment& down_seg, BwKbps min_bw, BwKbps max_bw) {
  if (down_seg.hops.empty() || down_seg.type != topology::SegType::kDown ||
      down_seg.last_as() != local_) {
    return Errc::kMalformed;
  }
  wire::DownSegrRequest q;
  q.requester = local_;
  q.min_bw_kbps = min_bw;
  q.max_bw_kbps = max_bw;
  q.hops = down_seg.hops;
  const Bytes resp_wire =
      bus_->call(down_seg.first_as(), wire::encode_down_request(q));
  auto resp = wire::decode_down_response(resp_wire);
  if (!resp) return Errc::kInternal;
  if (resp->code != Errc::kOk) return resp->code;
  // Cache the advert locally so the daemon can use the SegR right away.
  SegrAdvert advert;
  advert.key = resp->key;
  advert.seg_type = topology::SegType::kDown;
  advert.hops = down_seg.hops;
  advert.bw_kbps = resp->bw_kbps;
  advert.exp_time = resp->exp_time;
  advert.whitelist = {local_};
  registry_.cache_remote(std::move(advert));
  return ReservationResult{resp->key, resp->bw_kbps, resp->exp_time, 0};
}

Bytes CServ::handle_down_segr_request(BytesView body) {
  auto q = wire::decode_down_request(body);
  wire::DownSegrResponse resp;
  if (!q || q->hops.front().as != local_) {
    resp.code = Errc::kMalformed;
    return wire::encode_down_response(resp);
  }
  // Only the last AS of the segment may request it (§3.3).
  if (q->hops.back().as != q->requester) {
    resp.code = Errc::kPolicyDenied;
    return wire::encode_down_response(resp);
  }
  if (!rate_limiter_.allow_request(q->requester, clock_->now_ns()) ||
      denied_sources_.contains(q->requester)) {
    resp.code = Errc::kRateLimited;
    return wire::encode_down_response(resp);
  }
  topology::PathSegment seg;
  seg.type = topology::SegType::kDown;
  seg.hops = q->hops;
  auto r = setup_segr(seg, q->min_bw_kbps, q->max_bw_kbps);
  if (!r) {
    resp.code = r.error();
    return wire::encode_down_response(resp);
  }
  // Publish whitelisted for the requesting AS.
  publish_segr(r.value().key, {q->requester});
  resp.code = Errc::kOk;
  resp.key = r.value().key;
  resp.bw_kbps = r.value().bw_kbps;
  resp.exp_time = r.value().exp_time;
  return wire::encode_down_response(resp);
}

// --- EER initiator API ----------------------------------------------------------

Result<ReservationResult> CServ::setup_eer(const std::vector<ResKey>& segrs,
                                           const HostAddr& src_host,
                                           const HostAddr& dst_host,
                                           BwKbps min_bw, BwKbps max_bw) {
  if (segrs.empty() || segrs.size() > 3) return Errc::kMalformed;

  // Resolve advert metadata for every SegR (local registry, then the
  // initiating AS's registry — App. C) and stitch the full path.
  std::vector<SegrAdvert> adverts;
  for (const ResKey& sk : segrs) {
    auto local_hit = registry_.find(sk);
    if (!local_hit) {
      // Ask the SegR's initiator.
      const Bytes resp = bus_->call(
          sk.src_as,
          wire::encode_registry_query(wire::RegistryQuery{local_, sk.src_as,
                                                          AsId{}}));
      ByteReader r(resp);
      const auto n = r.read<std::uint16_t>();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        if (auto a = wire::get_advert(r)) {
          registry_.cache_remote(*a);
          if (a->key == sk) local_hit = *a;
        }
      }
    }
    if (!local_hit) return Errc::kNoSuchSegment;
    adverts.push_back(std::move(*local_hit));
  }

  // Stitch segments into the e2e path (transfer ASes merge, §4.1).
  std::vector<topology::Hop> path;
  for (const auto& a : adverts) {
    size_t start = 0;
    if (!path.empty()) {
      if (path.back().as != a.hops.front().as) return Errc::kNoSuchSegment;
      path.back().egress = a.hops.front().egress;
      start = 1;
    }
    path.insert(path.end(), a.hops.begin() + start, a.hops.end());
  }
  if (path.front().as != local_) return Errc::kMalformed;
  if (path.size() > dataplane::kMaxHops) return Errc::kMalformed;

  proto::EerRequest msg;
  msg.min_bw_kbps = min_bw;
  msg.path = path;
  for (const auto& h : path) msg.ases.push_back(h.as);
  msg.segrs = segrs;

  proto::Packet pkt;
  pkt.type = proto::PacketType::kEerSetup;
  pkt.is_eer = true;
  pkt.path = path;
  pkt.resinfo.src_as = local_;
  pkt.resinfo.res_id = db_.next_res_id();
  pkt.resinfo.bw_kbps = max_bw;
  pkt.resinfo.exp_time = clock_->now_sec() + cfg_.eer_lifetime_sec;
  pkt.resinfo.version = 0;
  pkt.eerinfo.src_host = src_host;
  pkt.eerinfo.dst_host = dst_host;

  return finish_eer_request(std::move(pkt), msg);
}

Result<ReservationResult> CServ::renew_eer(const ResKey& key, BwKbps min_bw,
                                           BwKbps max_bw) {
  const auto rec = db_.eer_copy(key);
  if (!rec || key.src_as != local_) return Errc::kNoSuchReservation;

  proto::EerRequest msg;
  msg.min_bw_kbps = min_bw;
  msg.path = rec->path;
  for (const auto& h : rec->path) msg.ases.push_back(h.as);
  msg.segrs = rec->segrs;

  ResVer next_ver = 0;
  for (const auto& v : rec->versions) {
    next_ver = std::max<ResVer>(next_ver, v.version);
  }
  ++next_ver;

  proto::Packet pkt;
  pkt.type = proto::PacketType::kEerRenewal;
  pkt.is_eer = true;
  pkt.path = rec->path;
  pkt.resinfo.src_as = local_;
  pkt.resinfo.res_id = key.res_id;
  pkt.resinfo.bw_kbps = max_bw;
  pkt.resinfo.exp_time = clock_->now_sec() + cfg_.eer_lifetime_sec;
  pkt.resinfo.version = next_ver;
  pkt.eerinfo.src_host = rec->src_host;
  pkt.eerinfo.dst_host = rec->dst_host;

  return finish_eer_request(std::move(pkt), msg);
}

Result<ReservationResult> CServ::finish_eer_request(proto::Packet pkt,
                                                    proto::EerRequest msg) {
  auto authed = build_authed(msg, pkt.resinfo, msg.ases);
  if (!authed) return authed.error();
  pkt.payload = proto::encode_authed(authed.value());

  const proto::ResInfo req_ri = pkt.resinfo;
  const proto::EerInfo eerinfo = pkt.eerinfo;
  auto resp_r = originate(std::move(pkt), msg.ases);
  if (!resp_r) return resp_r.error();
  const proto::ControlResponse& resp = resp_r.value();
  if (!resp.success) {
    return Result<ReservationResult>(
        resp.fail_code, bottleneck_context(msg.ases, resp.fail_hop));
  }

  // Unseal the hop authenticators (Eq. 5) with the per-AS DRKeys and
  // install the reservation at the gateway (Fig. 1b step 5).
  proto::ResInfo final_ri = req_ri;
  final_ri.bw_kbps = resp.final_bw_kbps;
  std::vector<dataplane::HopAuth> sigmas;
  sigmas.reserve(msg.ases.size());
  for (size_t i = 0; i < msg.ases.size(); ++i) {
    auto key = fetch_remote_key(msg.ases[i]);
    if (!key) return Errc::kAuthFailed;
    crypto::Eax eax(key->bytes.data());
    const Bytes aad = wire::hopauth_aad(final_ri, static_cast<std::uint8_t>(i));
    if (i >= resp.sealed_hopauths.size()) return Errc::kInternal;
    auto opened = eax.open(aad, resp.sealed_hopauths[i]);
    if (!opened || opened->size() != 16) return Errc::kAuthFailed;
    dataplane::HopAuth sigma;
    std::copy(opened->begin(), opened->end(), sigma.begin());
    sigmas.push_back(sigma);
  }
  if (gateway_ != nullptr) {
    gateway_->install(final_ri, eerinfo, msg.path, sigmas);
  }
  return ReservationResult{final_ri.key(), final_ri.bw_kbps,
                           final_ri.exp_time, final_ri.version};
}

// --- dissemination (App. C) --------------------------------------------------------

std::vector<SegrAdvert> CServ::lookup_segrs(AsId from, AsId to) {
  const UnixSec now = clock_->now_sec();
  auto local_query = [&]() {
    return to.valid() ? registry_.query(local_, from, to, now)
                      : registry_.query_from(local_, from, now);
  };
  auto local_hits = local_query();
  if (!local_hits.empty()) return local_hits;

  // Miss: query remote CServs (the segment's initiator and, for
  // down-segments, the destination) and cache what comes back.
  for (AsId remote : {from, to}) {
    if (remote == local_ || !remote.valid()) continue;
    const Bytes resp = bus_->call(
        remote,
        wire::encode_registry_query(wire::RegistryQuery{local_, from, to}));
    ByteReader r(resp);
    const auto n = r.read<std::uint16_t>();
    for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
      if (auto a = wire::get_advert(r)) registry_.cache_remote(*a);
    }
  }
  return local_query();
}

std::vector<std::vector<SegrAdvert>> CServ::lookup_chains(AsId dst) {
  const UnixSec now = clock_->now_sec();
  std::vector<std::vector<SegrAdvert>> chains;

  // Direct segment local -> dst.
  for (auto& a : lookup_segrs(local_, dst)) chains.push_back({a});

  // Up (local -> core) [+ core] + down (core' -> dst).
  const auto ups = registry_.query_from(local_, local_, now);
  auto downs_to_dst = [&](AsId core_origin) {
    return lookup_segrs(core_origin, dst);
  };
  for (const auto& up : ups) {
    if (up.seg_type != topology::SegType::kUp) continue;
    const AsId joint = up.last_as();
    // up + down at the same core AS.
    for (auto& down : downs_to_dst(joint)) {
      if (down.seg_type != topology::SegType::kDown) continue;
      chains.push_back({up, down});
    }
    // up + core + down.
    for (auto& core : lookup_segrs(joint, AsId{})) {
      if (core.seg_type != topology::SegType::kCore ||
          core.first_as() != joint) {
        continue;
      }
      for (auto& down : downs_to_dst(core.last_as())) {
        if (down.seg_type != topology::SegType::kDown) continue;
        chains.push_back({up, core, down});
      }
    }
  }
  return chains;
}

// --- policing & housekeeping ---------------------------------------------------------

void CServ::report_offense(const dataplane::OffenseReport& offense) {
  offense_log_.push_back(offense);
  // Misbehavior is established with certainty (cryptographic checks +
  // deterministic monitoring), so drastic measures are safe (§4.8):
  // deny all future reservations from the offender.
  const bool newly_denied = denied_sources_.insert(offense.offender).second;
  if (cfg_.events != nullptr && newly_denied) {
    cfg_.events
        ->emit(telemetry::Severity::kError, "cserv", "source.denied")
        .str("as", local_.to_string())
        .str("offender", offense.offender.to_string())
        .u64("res_id", offense.reservation)
        .u64("excess_bytes", offense.excess_bytes);
  }
}

void CServ::tick() {
  const UnixSec now = clock_->now_sec();
  // EERs first (their admission state gives back bandwidth on the SegR
  // records they ride). Sweeps are two-phase: callbacks run on copies
  // outside the shard locks, so release_eer may re-lock the db freely.
  db_.sweep_eers(now, [this](const reservation::EerRecord& rec) {
    admission_->release_eer(db_, rec.key);
    if (wal_ != nullptr) wal_->log_eer_erase(rec.key);
    if (cfg_.events != nullptr) {
      cfg_.events->emit(telemetry::Severity::kInfo, "cserv", "eer.expired")
          .str("as", local_.to_string())
          .str("src_as", rec.key.src_as.to_string())
          .u64("res_id", rec.key.res_id);
    }
  });
  db_.sweep_segrs(now, [this](const reservation::SegrRecord& rec) {
    admission_->release_segr(rec.key);
    if (wal_ != nullptr) wal_->log_segr_erase(rec.key);
    if (cfg_.events != nullptr) {
      cfg_.events->emit(telemetry::Severity::kInfo, "cserv", "segr.expired")
          .str("as", local_.to_string())
          .str("src_as", rec.key.src_as.to_string())
          .u64("res_id", rec.key.res_id);
    }
  });
  registry_.expire(now);
  key_cache_.expire(now);
}

size_t CServ::restore_from_wal() {
  if (wal_ == nullptr) return 0;
  const size_t applied = wal_->recover(db_);

  // Rebuild the admission ledgers (derived state): every recovered SegR
  // re-registers its active allocation; EER allocations are carried by
  // the recovered eer_allocated_kbps counters, which the recovery
  // re-derives below so EerAdmission's release bookkeeping stays exact.
  for (const auto& rec : db_.segr_snapshot()) {
    admission::SegrAdmissionRequest req;
    req.now = clock_->now_sec();
    req.src_as = rec.key.src_as;
    req.key = rec.key;
    req.ingress = rec.ingress();
    req.egress = rec.egress();
    req.min_bw_kbps = 0;
    req.demand_kbps = rec.active.bw_kbps;
    (void)admission_->admit_segr(req);
    // The per-SegR EER counter is rebuilt from the EER records next, so
    // reset whatever the snapshot carried.
    db_.with_segr(rec.key, [](reservation::SegrRecord* stored) {
      if (stored != nullptr) stored->eer_allocated_kbps = 0;
    });
  }

  const UnixSec now = clock_->now_sec();
  for (const auto& rec : db_.eer_snapshot()) {
    admission::EerAdmission::Request req;
    req.eer_key = rec.key;
    req.demand_kbps = rec.effective_bw(now);
    req.min_bw_kbps = 0;
    for (const ResKey& sk : rec.segrs) {
      if (!db_.contains_segr(sk)) continue;
      if (!req.segr_in) {
        req.segr_in = sk;
      } else if (!req.segr_out) {
        req.segr_out = sk;
      }
    }
    if (req.segr_in && req.demand_kbps > 0) {
      (void)admission_->admit_eer(db_, req, now);
    }
  }
  return applied;
}

CservStats CServ::snapshot() const {
  CservStats s;
  s.seg_requests = metrics_.seg_requests.value();
  s.seg_granted = metrics_.seg_granted.value();
  s.eer_requests = metrics_.eer_requests.value();
  s.eer_granted = metrics_.eer_granted.value();
  s.auth_failures = metrics_.auth_failures.value();
  s.rate_limited = metrics_.rate_limited.value();
  s.policy_denied = metrics_.policy_denied.value();
  return s;
}

void CServ::reset() {
  metrics_.seg_requests.reset();
  metrics_.seg_granted.reset();
  metrics_.eer_requests.reset();
  metrics_.eer_granted.reset();
  metrics_.auth_failures.reset();
  metrics_.rate_limited.reset();
  metrics_.policy_denied.reset();
  metrics_.request_latency_ns.reset();
}

void CServ::collect_metrics(telemetry::MetricSink& sink) const {
  sink.counter("cserv.seg_requests", metrics_.seg_requests.value());
  sink.counter("cserv.seg_granted", metrics_.seg_granted.value());
  sink.counter("cserv.eer_requests", metrics_.eer_requests.value());
  sink.counter("cserv.eer_granted", metrics_.eer_granted.value());
  sink.counter("cserv.deny.auth-failed", metrics_.auth_failures.value());
  sink.counter("cserv.deny.rate-limited", metrics_.rate_limited.value());
  sink.counter("cserv.deny.policy-denied", metrics_.policy_denied.value());
  const auto latency = metrics_.request_latency_ns.snapshot();
  if (latency.count != 0) {
    sink.histogram("cserv.request_latency_ns", latency);
  }
  sink.gauge("cserv.db.shards", static_cast<std::int64_t>(db_.num_shards()));
  sink.gauge("cserv.db.segr_count",
             static_cast<std::int64_t>(db_.segr_count()));
  sink.gauge("cserv.db.eer_count", static_cast<std::int64_t>(db_.eer_count()));
}

std::vector<telemetry::AlertRule> default_cserv_alert_rules(
    std::uint64_t admission_p99_ns, std::uint64_t renewal_backlog) {
  std::vector<telemetry::AlertRule> rules;
  {
    telemetry::AlertRule r;
    r.name = "cserv.admission-p99";
    r.series = "cserv.request_latency_ns";
    r.signal = telemetry::AlertSignal::kPercentile;
    r.quantile = 0.99;
    r.span_ns = 10 * kNsPerSec;
    r.cmp = telemetry::AlertCmp::kAbove;
    r.threshold = static_cast<double>(admission_p99_ns);
    r.for_ns = kNsPerSec;
    r.severity = telemetry::Severity::kWarn;
    rules.push_back(std::move(r));
  }
  {
    telemetry::AlertRule r;
    r.name = "cserv.renewal-backlog";
    r.series = "cserv.renewal.last_batch_max";
    r.signal = telemetry::AlertSignal::kGauge;
    r.cmp = telemetry::AlertCmp::kAbove;
    r.threshold = static_cast<double>(renewal_backlog);
    r.severity = telemetry::Severity::kWarn;
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace colibri::cserv
