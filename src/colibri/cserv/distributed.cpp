#include "colibri/cserv/distributed.hpp"

namespace colibri::cserv {

DistributedEerService::DistributedEerService(int sub_services) {
  if (sub_services < 1) sub_services = 1;
  subs_.reserve(static_cast<size_t>(sub_services));
  for (int i = 0; i < sub_services; ++i) {
    subs_.push_back(std::make_unique<EerSubService>(i));
  }
}

EerSubService& DistributedEerService::route(const ResKey& first_segr) {
  const size_t h = std::hash<ResKey>{}(first_segr);
  return *subs_[h % subs_.size()];
}

}  // namespace colibri::cserv
