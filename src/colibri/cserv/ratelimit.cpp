#include "colibri/cserv/ratelimit.hpp"

namespace colibri::cserv {

bool RequestLimiter::allow(std::uint64_t key, TimeNs now) {
  auto [it, inserted] = state_.try_emplace(key, State{burst_, now});
  State& s = it->second;
  if (!inserted && now > s.last) {
    s.tokens += rate_ * static_cast<double>(now - s.last) / kNsPerSec;
    if (s.tokens > burst_) s.tokens = burst_;
    s.last = now;
  }
  if (s.tokens < 1.0) return false;
  s.tokens -= 1.0;
  return true;
}

void RequestLimiter::expire(TimeNs now, TimeNs idle_ns) {
  for (auto it = state_.begin(); it != state_.end();) {
    if (now - it->second.last > idle_ns) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace colibri::cserv
