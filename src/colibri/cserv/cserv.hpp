// The Colibri service (paper §3.2-3.3, §4.4-4.7).
//
// One CServ per AS handles every control-plane task: requesting and
// renewing SegRs, serving registered SegRs to end hosts and remote CServs
// (App. C), admitting SegReqs/EEReqs with the bounded-tube-fairness
// algorithm, issuing SegR tokens (Eq. 3) and AEAD-sealed hop
// authenticators (Eq. 5), rate-limiting control traffic, and policing
// offenders reported by border routers.
//
// All inter-AS communication crosses the MessageBus as serialized Colibri
// packets; a request travels hop-by-hop down the path and the response is
// assembled on the unwind — mirroring the paper's forward/backward passes
// (Fig. 1a/1b).
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "colibri/admission/backend.hpp"
#include "colibri/common/rand.hpp"
#include "colibri/cserv/bus.hpp"
#include "colibri/cserv/ratelimit.hpp"
#include "colibri/cserv/registry.hpp"
#include "colibri/dataplane/blocklist.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/drkey/keyserver.hpp"
#include "colibri/proto/codec.hpp"
#include "colibri/proto/messages.hpp"
#include "colibri/reservation/db.hpp"
#include "colibri/reservation/persist.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/topology/pathdb.hpp"

namespace colibri::cserv {

class FailoverManager;

struct CservConfig {
  // Capacity assumed for traffic terminating inside the AS (the pseudo
  // egress interface 0 of the last AS on a segment).
  BwKbps internal_capacity_kbps = 400'000'000;
  // Source/destination-AS policy: per-host cap on a single EER (§4.7
  // "intra-AS admission policy", freely definable per AS).
  BwKbps per_host_eer_cap_kbps = 10'000'000;
  std::uint32_t segr_lifetime_sec = reservation::kSegrLifetimeSec;
  std::uint32_t eer_lifetime_sec = reservation::kEerLifetimeSec;
  // Shard count for the reservation db (and EER-admission stripes):
  // concurrent setup/renewal/expiry paths lock per shard, never globally.
  size_t control_plane_shards = 8;
  // Admission strategy override (nullptr = the paper's bounded-tube
  // fairness). Called once at construction with (local AS, shard count).
  std::function<std::unique_ptr<admission::AdmissionBackend>(AsId, size_t)>
      admission_factory;
  RateLimitConfig rate_limits;
  // Registry this CServ exports its metrics to (nullptr = none).
  telemetry::MetricsRegistry* metrics = &telemetry::MetricsRegistry::global();
  // Structured event log for the reservation lifecycle audit trail
  // (nullptr = no events). Owned by the caller; must outlive the CServ.
  telemetry::EventLog* events = nullptr;
};

// Point-in-time view of one CServ's admission counters (see snapshot()).
struct CservStats {
  std::uint64_t seg_requests = 0;
  std::uint64_t seg_granted = 0;
  std::uint64_t eer_requests = 0;
  std::uint64_t eer_granted = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t policy_denied = 0;
};

struct ReservationResult {
  ResKey key;
  BwKbps bw_kbps = 0;
  UnixSec exp_time = 0;
  ResVer version = 0;
};

class CServ : public telemetry::MetricsSource {
 public:
  CServ(const topology::Topology& topo, AsId local, MessageBus& bus,
        drkey::SimulatedPki& pki, const drkey::Key128& drkey_master,
        const drkey::Key128& hop_key, const Clock& clock,
        CservConfig cfg = {});
  ~CServ();

  CServ(const CServ&) = delete;
  CServ& operator=(const CServ&) = delete;

  // Uniform stats accessors: consistent point-in-time view + reset.
  CservStats snapshot() const;
  void reset();
  void collect_metrics(telemetry::MetricSink& sink) const override;
  telemetry::MetricsRegistry* metrics_registry() const { return cfg_.metrics; }
  telemetry::EventLog* event_log() const { return cfg_.events; }

  // --- wiring ------------------------------------------------------------
  void attach_gateway(dataplane::Gateway* gw) { gateway_ = gw; }
  SegrRegistry& registry() { return registry_; }
  reservation::ReservationDb& db() { return db_; }
  const reservation::ReservationDb& db() const { return db_; }
  const drkey::Key128& hop_key() const { return hop_key_; }
  const drkey::Engine& drkey_engine() const { return drkey_engine_; }
  admission::AdmissionBackend& admission_backend() { return *admission_; }
  // Bounded-tube ledger introspection (tests/diagnostics); only valid
  // with the default backend.
  admission::SegrAdmission& segr_admission();
  // EER stripe introspection for the conservation auditor; nullptr when
  // a custom admission backend is installed.
  const admission::EerAdmission* eer_admission() const {
    return bounded_ != nullptr ? &bounded_->eer() : nullptr;
  }
  AsId local_as() const { return local_; }
  const Clock& clock() const { return *clock_; }
  // Legacy view, kept as a thin alias of snapshot().
  CservStats stats() const { return snapshot(); }

  // Backup-reservation failover (see failover.hpp). The manager registers
  // itself here; the renewal manager consults it to skip failed-over
  // primaries.
  void attach_failover(FailoverManager* fm) { failover_ = fm; }
  FailoverManager* failover() const { return failover_; }

  // Destination-side hook: the destination host "has to explicitly accept
  // the EER request" (§4.4). Default accepts everything.
  using HostAcceptor = std::function<bool(const proto::EerInfo&, BwKbps)>;
  void set_host_acceptor(HostAcceptor acceptor) {
    host_acceptor_ = std::move(acceptor);
  }

  // --- initiator API (called by the local AS / its hosts) ----------------
  // Sets up a new SegR along `seg`. On success, all on-path ASes have
  // recorded the reservation and this CServ holds the tokens.
  Result<ReservationResult> setup_segr(const topology::PathSegment& seg,
                                       BwKbps min_bw, BwKbps max_bw);
  // Renews an existing SegR (new pending version; activate separately).
  Result<ReservationResult> renew_segr(const ResKey& key, BwKbps min_bw,
                                       BwKbps max_bw);
  // Explicitly switches the pending version live on all on-path ASes.
  Result<void> activate_segr(const ResKey& key, ResVer version);

  // Publishes an established SegR for use by `whitelist` (empty = public).
  bool publish_segr(const ResKey& key, std::vector<AsId> whitelist);

  // Tokens returned for a SegR this AS initiated (Eq. 3); used as HVFs on
  // control packets sent over that SegR.
  const std::vector<proto::Hvf>* segr_tokens(const ResKey& key) const;

  // §3.3: a down-SegR is only set up by its first (core) AS upon an
  // explicit request by the last AS — this call, made at the last AS,
  // asks the core AS to initiate a down-SegR along `down_seg` and publish
  // it whitelisted for this AS.
  Result<ReservationResult> request_down_segr(
      const topology::PathSegment& down_seg, BwKbps min_bw, BwKbps max_bw);

  // Sets up an EER over the given SegRs (1-3, in traversal order), which
  // must join into a path from this AS to the destination AS.
  Result<ReservationResult> setup_eer(const std::vector<ResKey>& segrs,
                                      const HostAddr& src_host,
                                      const HostAddr& dst_host, BwKbps min_bw,
                                      BwKbps max_bw);
  Result<ReservationResult> renew_eer(const ResKey& key, BwKbps min_bw,
                                      BwKbps max_bw);

  // App. C: segment lookup for end hosts — serves from the local registry,
  // queries the remote CServ (and caches) on miss.
  std::vector<SegrAdvert> lookup_segrs(AsId from, AsId to);
  // Convenience: find SegR chains covering src->dst (up to 3 segments).
  std::vector<std::vector<SegrAdvert>> lookup_chains(AsId dst);

  // --- policing (§4.8) ----------------------------------------------------
  void report_offense(const dataplane::OffenseReport& offense);
  bool reservations_denied_for(AsId src) const {
    return denied_sources_.contains(src);
  }

  // --- durability (§6.1 "transactional database") --------------------------
  // Attaches a write-ahead log: every reservation mutation is logged
  // before it is applied, so the service can be restarted without losing
  // state. The storage must outlive the CServ.
  void attach_wal(reservation::ReservationWal* wal) { wal_ = wal; }
  // Replays the attached WAL into the reservation DB and rebuilds the
  // admission ledgers from the recovered records (allocations are derived
  // state and are not persisted). Returns the number of records applied.
  size_t restore_from_wal();

  // --- housekeeping -------------------------------------------------------
  // Expires reservations and releases their admission state.
  void tick();

  // --- bus entry point ----------------------------------------------------
  // Channel-tagged message dispatcher (packet / registry query / key
  // fetch); registered with the bus at construction.
  Bytes handle(BytesView wire);

 private:
  friend class Handlers;

  struct PendingToken {
    proto::Hvf token;
  };

  // Implemented in handlers.cpp.
  Bytes handle_packet(BytesView wire);
  Bytes handle_registry_query(BytesView wire);
  Bytes handle_key_fetch(BytesView wire);
  Bytes handle_down_segr_request(BytesView wire);

  proto::Packet make_response_packet(const proto::Packet& request,
                                     const proto::ControlResponse& resp) const;

  // Fetches (and caches) K_{remote->local} for opening sealed HopAuths and
  // for MACing requests toward remote verifiers.
  std::optional<drkey::Key128> fetch_remote_key(AsId remote);

  // Builds per-AS payload MACs for an outgoing request.
  Result<proto::AuthedPayload> build_authed(const proto::ControlMessage& msg,
                                            const proto::ResInfo& ri,
                                            const std::vector<AsId>& ases);

  // Shared tail of setup_eer/renew_eer: authenticate, originate, unseal
  // the returned hop authenticators, install at the gateway.
  Result<ReservationResult> finish_eer_request(proto::Packet pkt,
                                               proto::EerRequest msg);

  // Runs the full forward pass for a request originated here.
  Result<proto::ControlResponse> originate(proto::Packet pkt,
                                           const std::vector<AsId>& ases);

  const topology::Topology* topo_;
  AsId local_;
  MessageBus* bus_;
  drkey::SimulatedPki* pki_;
  drkey::Engine drkey_engine_;
  drkey::KeyServer key_server_;
  drkey::KeyCache key_cache_;
  drkey::Key128 hop_key_;
  const Clock* clock_;
  CservConfig cfg_;

  reservation::ReservationDb db_;
  std::unique_ptr<admission::AdmissionBackend> admission_;
  admission::BoundedTubeBackend* bounded_ = nullptr;  // when default backend
  SegrRegistry registry_;
  ControlRateLimiter rate_limiter_;
  dataplane::Gateway* gateway_ = nullptr;
  reservation::ReservationWal* wal_ = nullptr;
  FailoverManager* failover_ = nullptr;
  HostAcceptor host_acceptor_;
  std::unordered_set<AsId> denied_sources_;
  std::vector<dataplane::OffenseReport> offense_log_;
  std::unordered_map<ResKey, std::vector<proto::Hvf>> segr_tokens_;
  Rng rng_;

  // Control-plane admission counters; shared between the initiator API
  // and the bus handlers, so increments are full RMW (inc()).
  struct Metrics {
    telemetry::Counter seg_requests;
    telemetry::Counter seg_granted;
    telemetry::Counter eer_requests;
    telemetry::Counter eer_granted;
    telemetry::Counter auth_failures;
    telemetry::Counter rate_limited;
    telemetry::Counter policy_denied;
    telemetry::Histogram request_latency_ns;  // originate() wall time
  };
  Metrics metrics_;
  telemetry::ScopedSource registration_;
};

// Default monitoring rule pack for the control plane (see
// telemetry/alerts.hpp): fires when the windowed admission p99
// (cserv.request_latency_ns over the last 10 s) exceeds
// `admission_p99_ns`, and when a renewal batch grows beyond
// `renewal_backlog` items (cserv.renewal.last_batch_max) — the two
// leading indicators of a renewal storm outpacing the admission path.
std::vector<telemetry::AlertRule> default_cserv_alert_rules(
    std::uint64_t admission_p99_ns = 50'000'000,
    std::uint64_t renewal_backlog = 4'096);

}  // namespace colibri::cserv
