#include "colibri/cserv/bus.hpp"

// Header-only implementation; this translation unit anchors the target.
