#include "colibri/cserv/bus.hpp"

#include "colibri/proto/codec.hpp"

namespace colibri::cserv {
namespace {

// Channel tag of packet frames; mirrors wire::kChanPacket
// (wire_internal.hpp pulls in the registry/keyserver headers, which this
// low-level TU must not depend on).
constexpr std::uint8_t kPacketChannel = 0;

// splitmix64 finalizer: bijective, cheap, and spreads sequential
// counters over the full 64-bit space so ids from different buses or
// scenarios do not collide on low bits.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t MessageBus::next_span_id() {
  // Never zero: zero span ids mean "absent context".
  std::uint64_t id = mix64(++span_seq_);
  if (id == 0) id = mix64(++span_seq_);
  return id;
}

proto::TraceContext MessageBus::new_root_context(std::int64_t now_ns) {
  if (!tracer_.enabled()) return {};
  proto::TraceContext ctx;
  ++trace_seq_;
  ctx.trace_hi =
      mix64(static_cast<std::uint64_t>(now_ns) ^ (trace_seq_ << 32));
  ctx.trace_lo = mix64(trace_seq_);
  ctx.span_id = next_span_id();
  ctx.parent_span_id = 0;
  ctx.flags = proto::TraceContext::kSampled;
  return ctx;
}

proto::TraceContext MessageBus::child_context() {
  if (!current_ctx_.present()) return {};
  proto::TraceContext ctx = current_ctx_;
  ctx.parent_span_id = current_ctx_.span_id;
  ctx.span_id = next_span_id();
  return ctx;
}

Bytes MessageBus::call(AsId dst, BytesView request) {
  if (faults_ != nullptr) {
    switch (faults_->message_verdict(dst.raw())) {
      case MessageFault::kDrop:
        faults_dropped_.inc();
        return {};
      case MessageFault::kDelay:
        faults_delayed_.inc();
        delayed_.emplace_back(dst, Bytes(request.begin(), request.end()));
        return {};
      case MessageFault::kDuplicate:
        faults_duplicated_.inc();
        (void)deliver(dst, request);  // first copy; its response is lost
        break;
      case MessageFault::kDeliver:
        break;
    }
  }
  return deliver(dst, request);
}

std::size_t MessageBus::deliver_delayed() {
  std::vector<std::pair<AsId, Bytes>> batch;
  batch.swap(delayed_);
  for (const auto& [dst, req] : batch) {
    faults_replayed_.inc();
    (void)deliver(dst, BytesView(req));
  }
  return batch.size();
}

Bytes MessageBus::deliver(AsId dst, BytesView request) {
  auto it = handlers_.find(dst);
  if (it == handlers_.end()) return {};
  messages_.inc();
  bytes_.inc(request.size());
  const std::int64_t t0 = steady_ns();
  std::size_t span = 0;
  bool span_open = false;
  proto::TraceContext prev_ctx;
  const bool tracing = tracer_.enabled();
  if (tracing) {
    // The context rides in the packet header; auxiliary channels
    // (registry queries, key fetches) carry none, but when issued from
    // inside a traced handler they are causally part of that request —
    // chain them as children so the assembled tree attributes their
    // latency to the hop that paid for it.
    proto::TraceContext ctx;
    if (!request.empty() && request[0] == kPacketChannel) {
      ctx = proto::peek_trace_context(request.subspan(1));
    }
    if (!ctx.present()) ctx = child_context();
    if (!ctx.present() || ctx.sampled()) {
      span = tracer_.open(dst.to_string(), t0, request.size());
      if (ctx.present()) {
        tracer_.set_trace_ids(span, ctx.trace_hi, ctx.trace_lo, ctx.span_id,
                              ctx.parent_span_id);
      }
      span_open = true;
    }
    prev_ctx = exchange_context(ctx);
  }
  Bytes response = it->second(request);
  const std::int64_t t1 = steady_ns();
  hop_latency_ns_.record_shared(static_cast<std::uint64_t>(t1 - t0));
  if (tracing) {
    current_ctx_ = prev_ctx;
    if (span_open) tracer_.close(span, t1);
  }
  return response;
}

}  // namespace colibri::cserv
