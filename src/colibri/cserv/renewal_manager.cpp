#include "colibri/cserv/renewal_manager.hpp"

namespace colibri::cserv {

size_t RenewalManager::manage_all_local() {
  size_t added = 0;
  cserv_->db().segrs().for_each([&](const reservation::SegrRecord& rec) {
    if (rec.key.src_as == cserv_->local_as() &&
        !forecasters_.contains(rec.key)) {
      forecasters_.try_emplace(rec.key, cfg_.forecast);
      ++added;
    }
  });
  return added;
}

void RenewalManager::tick(UnixSec now) {
  std::vector<ResKey> gone;
  for (auto& [key, forecaster] : forecasters_) {
    auto* rec = cserv_->db().segrs().find(key);
    if (rec == nullptr) {
      gone.push_back(key);
      continue;
    }
    // Observe utilization: the EER bandwidth currently riding this SegR.
    forecaster.observe(rec->eer_allocated_kbps);

    if (rec->active.exp_time > now + cfg_.lead_sec) continue;  // not due
    if (rec->pending && rec->pending->exp_time > now + cfg_.lead_sec) {
      // A pending version exists (e.g. from a manual renewal): activate it
      // instead of stacking another renewal on top.
      if (cserv_->activate_segr(key, rec->pending->version).ok()) {
        metrics_.activated.inc();
      }
      continue;
    }

    // Renew at the forecast demand, never below the current utilization
    // (shrinking under live EERs would strand them at version switch).
    const BwKbps demand =
        std::max(forecaster.recommend(), rec->eer_allocated_kbps);
    auto renewed = cserv_->renew_segr(key, cfg_.min_bw_kbps, demand);
    telemetry::EventLog* events = cserv_->event_log();
    if (!renewed.ok()) {
      metrics_.failed.inc();
      if (events != nullptr) {
        events->emit(telemetry::Severity::kWarn, "renewal", "segr.failed")
            .str("as", cserv_->local_as().to_string())
            .str("src_as", key.src_as.to_string())
            .u64("res_id", key.res_id)
            .str("reason", errc_name(renewed.error()))
            .u64("demand_kbps", demand);
      }
      continue;
    }
    metrics_.renewed.inc();
    if (events != nullptr) {
      events->emit(telemetry::Severity::kInfo, "renewal", "segr.renewed")
          .str("as", cserv_->local_as().to_string())
          .str("src_as", key.src_as.to_string())
          .u64("res_id", key.res_id)
          .u64("version", renewed.value().version)
          .u64("bw_kbps", renewed.value().bw_kbps)
          .u64("exp_time", renewed.value().exp_time);
    }
    if (cserv_->activate_segr(key, renewed.value().version).ok()) {
      metrics_.activated.inc();
      if (events != nullptr) {
        events->emit(telemetry::Severity::kInfo, "renewal", "segr.activated")
            .str("as", cserv_->local_as().to_string())
            .str("src_as", key.src_as.to_string())
            .u64("res_id", key.res_id)
            .u64("version", renewed.value().version);
      }
      if (cfg_.republish) {
        // Preserve the advert (and its whitelist) across the version bump.
        std::vector<AsId> whitelist;
        if (auto advert = cserv_->registry().find(key)) {
          whitelist = advert->whitelist;
        }
        cserv_->publish_segr(key, std::move(whitelist));
      }
    }
  }
  for (const auto& key : gone) forecasters_.erase(key);
}

}  // namespace colibri::cserv
