#include "colibri/cserv/renewal_manager.hpp"

#include <algorithm>

#include "colibri/cserv/failover.hpp"

namespace colibri::cserv {

size_t RenewalManager::manage_all_local() {
  size_t added = 0;
  cserv_->db().for_each_segr([&](const reservation::SegrRecord& rec) {
    if (rec.key.src_as == cserv_->local_as() &&
        !forecasters_.contains(rec.key)) {
      forecasters_.try_emplace(rec.key, cfg_.forecast);
      ++added;
    }
  });
  return added;
}

std::vector<RenewalBatch> RenewalManager::plan(UnixSec now) {
  const reservation::ReservationDb& db = cserv_->db();
  std::vector<std::vector<ResKey>> buckets(db.num_shards());
  std::vector<ResKey> gone;
  for (auto& [key, forecaster] : forecasters_) {
    const auto rec = db.segr_copy(key);
    if (!rec) {
      gone.push_back(key);
      continue;
    }
    // Observe utilization: the EER bandwidth currently riding this SegR.
    forecaster.observe(rec->eer_allocated_kbps);
    if (rec->active.exp_time > now + cfg_.lead_sec) continue;  // not due
    buckets[db.shard_of(key.res_id)].push_back(key);
  }
  for (const auto& key : gone) forecasters_.erase(key);

  std::vector<RenewalBatch> batches;
  for (size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    std::sort(buckets[s].begin(), buckets[s].end(),
              [](const ResKey& a, const ResKey& b) {
                return a.res_id != b.res_id ? a.res_id < b.res_id
                                            : a.src_as.raw() < b.src_as.raw();
              });
    batches.push_back(RenewalBatch{s, std::move(buckets[s])});
  }
  return batches;
}

void RenewalManager::renew_one(const ResKey& key, UnixSec now) {
  const auto rec = cserv_->db().segr_copy(key);
  if (!rec) return;  // swept between plan and drain
  if (cserv_->failover() != nullptr &&
      cserv_->failover()->renewal_suppressed(key)) {
    // Failed-over primary: its path crosses a dead link, so renewing it
    // would chase that link with control traffic. The backup keeps
    // renewing under its own key; the primary resumes after fail-back.
    return;
  }
  if (rec->pending && rec->pending->exp_time > now + cfg_.lead_sec) {
    // A pending version exists (e.g. from a manual renewal): activate it
    // instead of stacking another renewal on top.
    if (cserv_->activate_segr(key, rec->pending->version).ok()) {
      metrics_.activated.inc();
    }
    return;
  }

  // Renew at the forecast demand, never below the current utilization
  // (shrinking under live EERs would strand them at version switch).
  auto it = forecasters_.find(key);
  const BwKbps forecast = it != forecasters_.end() ? it->second.recommend() : 0;
  const BwKbps demand = std::max(forecast, rec->eer_allocated_kbps);
  auto renewed = cserv_->renew_segr(key, cfg_.min_bw_kbps, demand);
  telemetry::EventLog* events = cserv_->event_log();
  if (!renewed.ok()) {
    metrics_.failed.inc();
    if (events != nullptr) {
      events->emit(telemetry::Severity::kWarn, "renewal", "segr.failed")
          .str("as", cserv_->local_as().to_string())
          .str("src_as", key.src_as.to_string())
          .u64("res_id", key.res_id)
          .str("reason", errc_name(renewed.error()))
          .u64("demand_kbps", demand);
    }
    return;
  }
  metrics_.renewed.inc();
  if (events != nullptr) {
    events->emit(telemetry::Severity::kInfo, "renewal", "segr.renewed")
        .str("as", cserv_->local_as().to_string())
        .str("src_as", key.src_as.to_string())
        .u64("res_id", key.res_id)
        .u64("version", renewed.value().version)
        .u64("bw_kbps", renewed.value().bw_kbps)
        .u64("exp_time", renewed.value().exp_time);
  }
  if (cserv_->activate_segr(key, renewed.value().version).ok()) {
    metrics_.activated.inc();
    if (events != nullptr) {
      events->emit(telemetry::Severity::kInfo, "renewal", "segr.activated")
          .str("as", cserv_->local_as().to_string())
          .str("src_as", key.src_as.to_string())
          .u64("res_id", key.res_id)
          .u64("version", renewed.value().version);
    }
    if (cfg_.republish) {
      // Preserve the advert (and its whitelist) across the version bump.
      std::vector<AsId> whitelist;
      if (auto advert = cserv_->registry().find(key)) {
        whitelist = advert->whitelist;
      }
      cserv_->publish_segr(key, std::move(whitelist));
    }
  }
}

void RenewalManager::tick(UnixSec now) {
  const std::vector<RenewalBatch> batches = plan(now);
  size_t max_batch = 0;
  for (const RenewalBatch& batch : batches) {
    metrics_.batches.inc();
    max_batch = std::max(max_batch, batch.due.size());
    for (const ResKey& key : batch.due) renew_one(key, now);
  }
  last_batch_max_ = max_batch;
}

}  // namespace colibri::cserv
