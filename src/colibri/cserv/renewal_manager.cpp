#include "colibri/cserv/renewal_manager.hpp"

namespace colibri::cserv {

size_t RenewalManager::manage_all_local() {
  size_t added = 0;
  cserv_->db().segrs().for_each([&](const reservation::SegrRecord& rec) {
    if (rec.key.src_as == cserv_->local_as() &&
        !forecasters_.contains(rec.key)) {
      forecasters_.try_emplace(rec.key, cfg_.forecast);
      ++added;
    }
  });
  return added;
}

void RenewalManager::tick(UnixSec now) {
  std::vector<ResKey> gone;
  for (auto& [key, forecaster] : forecasters_) {
    auto* rec = cserv_->db().segrs().find(key);
    if (rec == nullptr) {
      gone.push_back(key);
      continue;
    }
    // Observe utilization: the EER bandwidth currently riding this SegR.
    forecaster.observe(rec->eer_allocated_kbps);

    if (rec->active.exp_time > now + cfg_.lead_sec) continue;  // not due
    if (rec->pending && rec->pending->exp_time > now + cfg_.lead_sec) {
      // A pending version exists (e.g. from a manual renewal): activate it
      // instead of stacking another renewal on top.
      if (cserv_->activate_segr(key, rec->pending->version).ok()) {
        metrics_.activated.inc();
      }
      continue;
    }

    // Renew at the forecast demand, never below the current utilization
    // (shrinking under live EERs would strand them at version switch).
    const BwKbps demand =
        std::max(forecaster.recommend(), rec->eer_allocated_kbps);
    auto renewed = cserv_->renew_segr(key, cfg_.min_bw_kbps, demand);
    if (!renewed.ok()) {
      metrics_.failed.inc();
      continue;
    }
    metrics_.renewed.inc();
    if (cserv_->activate_segr(key, renewed.value().version).ok()) {
      metrics_.activated.inc();
      if (cfg_.republish) {
        // Preserve the advert (and its whitelist) across the version bump.
        std::vector<AsId> whitelist;
        if (auto advert = cserv_->registry().find(key)) {
          whitelist = advert->whitelist;
        }
        cserv_->publish_segr(key, std::move(whitelist));
      }
    }
  }
  for (const auto& key : gone) forecasters_.erase(key);
}

}  // namespace colibri::cserv
