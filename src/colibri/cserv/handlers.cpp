// On-path request processing: the forward pass (admission hop by hop) and
// the backward pass (token / HopAuth issuance) of Fig. 1a/1b.
#include <algorithm>
#include <chrono>

#include "colibri/crypto/eax.hpp"
#include "colibri/cserv/cserv.hpp"
#include "colibri/cserv/wire_internal.hpp"
#include "colibri/dataplane/hvf.hpp"

namespace colibri::cserv {

// Friend of CServ; stateless — every function takes the service as `self`.
class Handlers {
 public:
  static Bytes process_request(CServ& self, proto::Packet pkt);

 private:
  static Bytes fail(CServ& self, const proto::Packet& pkt, Errc code,
                    std::uint8_t hop);
  static Bytes respond(CServ& self, const proto::Packet& pkt,
                       const proto::ControlResponse& resp);

  static bool verify_payload_mac(CServ& self, const proto::AuthedPayload& ap,
                                 const proto::ResInfo& ri, std::uint8_t hop);

  static Bytes handle_seg(CServ& self, proto::Packet& pkt,
                          proto::AuthedPayload& ap);
  static Bytes handle_seg_activation(CServ& self, proto::Packet& pkt,
                                     proto::AuthedPayload& ap);
  static Bytes handle_eer(CServ& self, proto::Packet& pkt,
                          proto::AuthedPayload& ap);

  static Bytes forward_and_unwind_seg(CServ& self, proto::Packet& pkt,
                                      proto::AuthedPayload& ap,
                                      const proto::SegRequest& msg,
                                      BwKbps my_grant);
  static Bytes forward_and_unwind_eer(CServ& self, proto::Packet& pkt,
                                      proto::AuthedPayload& ap,
                                      const proto::EerRequest& msg,
                                      BwKbps my_grant);

  static void store_segr(CServ& self, const proto::Packet& pkt,
                         const proto::SegRequest& msg, BwKbps final_bw,
                         bool renewal);
  static void store_eer(CServ& self, const proto::Packet& pkt,
                        const proto::EerRequest& msg, BwKbps final_bw);
};

namespace {

const char* request_name(proto::PacketType t) {
  switch (t) {
    case proto::PacketType::kSegSetup: return "seg-setup";
    case proto::PacketType::kSegRenewal: return "seg-renewal";
    case proto::PacketType::kSegActivation: return "seg-activation";
    case proto::PacketType::kEerSetup: return "eer-setup";
    case proto::PacketType::kEerRenewal: return "eer-renewal";
    default: return "unknown";
  }
}

// Re-stamps the trace context for the next hop: the forwarded packet
// becomes a child span of this AS's delivery span, so each AS on the
// path opens a child of the upstream hop (never a disconnected root).
// No-op when tracing is off — the packet then carries no trace block
// and the wire bytes are identical to the pre-extension format.
void stamp_child_context(MessageBus& bus, proto::Packet& fwd) {
  if (!bus.tracing_active()) return;
  const proto::TraceContext ctx = bus.child_context();
  fwd.trace = ctx;
  fwd.has_trace = ctx.present();
}

// Times the admission-algorithm call when (and only when) this request
// is being traced; the annotation feeds per-hop attribution — "how much
// of this hop's self time was the admission decision".
class AdmissionTimer {
 public:
  explicit AdmissionTimer(telemetry::SpanCollector& tracer)
      : tracer_(tracer), armed_(tracer.in_span()) {
    if (armed_) {
      t0_ = std::chrono::steady_clock::now().time_since_epoch().count();
    }
  }
  ~AdmissionTimer() {
    if (armed_) {
      const std::int64_t t1 =
          std::chrono::steady_clock::now().time_since_epoch().count();
      tracer_.annotate("admission_ns", std::to_string(t1 - t0_));
    }
  }

 private:
  telemetry::SpanCollector& tracer_;
  bool armed_;
  std::int64_t t0_ = 0;
};

}  // namespace

Bytes Handlers::fail(CServ& self, const proto::Packet& pkt, Errc code,
                     std::uint8_t hop) {
  // Every refusal funnels through here, so this is the single audit
  // point for denials: the event names the refusing AS (the bottleneck
  // location the initiator learns per §3.3) and the unified reason.
  if (self.cfg_.events != nullptr) {
    self.cfg_.events
        ->emit(telemetry::Severity::kWarn, "cserv", "request.denied")
        .str("as", self.local_.to_string())
        .str("request", request_name(pkt.type))
        .str("reason", errc_name(code))
        .str("at", self.local_.to_string())
        .u64("hop", hop)
        .str("src_as", pkt.resinfo.src_as.to_string())
        .u64("res_id", pkt.resinfo.res_id);
  }
  telemetry::SpanCollector& tracer = self.bus_->tracer();
  if (tracer.in_span()) {
    tracer.annotate("verdict", "denied");
    tracer.annotate("reason", errc_name(code));
    tracer.annotate("res_id", std::to_string(pkt.resinfo.res_id));
  }
  proto::ControlResponse resp;
  resp.success = false;
  resp.fail_code = code;
  resp.fail_hop = hop;
  return respond(self, pkt, resp);
}

Bytes Handlers::respond(CServ& self, const proto::Packet& pkt,
                        const proto::ControlResponse& resp) {
  return proto::encode_packet(self.make_response_packet(pkt, resp));
}

bool Handlers::verify_payload_mac(CServ& self, const proto::AuthedPayload& ap,
                                  const proto::ResInfo& ri, std::uint8_t hop) {
  if (hop >= ap.macs.size()) return false;
  // K_{me -> SrcAS}: derived on the fly from the local secret value — no
  // per-source state, which is what makes request filtering DoC-resistant
  // (§5.3).
  const drkey::Key128 key =
      self.drkey_engine_.as_key(ri.src_as, self.clock_->now_sec());
  const Bytes input = proto::auth_input(ap.message, ri);
  crypto::Cmac cmac(key.bytes.data());
  std::uint8_t tag[crypto::Cmac::kTagSize];
  cmac.compute(input, tag);
  return crypto::Cmac::verify_prefix(tag, ap.macs[hop].data(), sizeof(tag));
}

Bytes Handlers::process_request(CServ& self, proto::Packet pkt) {
  auto ap = proto::decode_authed(pkt.payload);
  if (!ap) return fail(self, pkt, Errc::kMalformed, pkt.current_hop);

  switch (pkt.type) {
    case proto::PacketType::kSegSetup:
    case proto::PacketType::kSegRenewal:
      return handle_seg(self, pkt, *ap);
    case proto::PacketType::kSegActivation:
      return handle_seg_activation(self, pkt, *ap);
    case proto::PacketType::kEerSetup:
    case proto::PacketType::kEerRenewal:
      return handle_eer(self, pkt, *ap);
    default:
      return fail(self, pkt, Errc::kMalformed, pkt.current_hop);
  }
}

// --- segment reservations ---------------------------------------------------

Bytes Handlers::handle_seg(CServ& self, proto::Packet& pkt,
                           proto::AuthedPayload& ap) {
  auto* msg = std::get_if<proto::SegRequest>(&ap.message);
  const std::uint8_t hop = pkt.current_hop;
  if (msg == nullptr || hop >= msg->ases.size() ||
      msg->ases.size() != pkt.path.size() || msg->ases[hop] != self.local_) {
    return fail(self, pkt, Errc::kMalformed, hop);
  }
  self.metrics_.seg_requests.inc();
  const TimeNs now = self.clock_->now_ns();

  if (!verify_payload_mac(self, ap, pkt.resinfo, hop)) {
    self.metrics_.auth_failures.inc();
    return fail(self, pkt, Errc::kAuthFailed, hop);
  }
  if (!self.rate_limiter_.allow_request(pkt.resinfo.src_as, now)) {
    self.metrics_.rate_limited.inc();
    return fail(self, pkt, Errc::kRateLimited, hop);
  }
  if (self.denied_sources_.contains(pkt.resinfo.src_as)) {
    return fail(self, pkt, Errc::kBlocked, hop);
  }
  const bool renewal = pkt.type == proto::PacketType::kSegRenewal;
  if (renewal) {
    if (!self.db_.contains_segr(pkt.resinfo.key())) {
      return fail(self, pkt, Errc::kNoSuchReservation, hop);
    }
    if (!self.rate_limiter_.allow_renewal(pkt.resinfo.key(), now)) {
      self.metrics_.rate_limited.inc();
      return fail(self, pkt, Errc::kRateLimited, hop);
    }
  }

  // Admission (§4.7): how much can this AS grant between the request's
  // ingress and egress interfaces? O(1) in existing SegRs.
  admission::SegrAdmissionRequest areq;
  areq.now = self.clock_->now_sec();
  areq.src_as = pkt.resinfo.src_as;
  areq.key = pkt.resinfo.key();
  areq.ingress = pkt.path[hop].ingress;
  areq.egress = pkt.path[hop].egress;
  areq.min_bw_kbps = msg->min_bw_kbps;
  areq.demand_kbps = msg->max_bw_kbps;
  auto admitted = [&] {
    AdmissionTimer timer(self.bus_->tracer());
    return self.admission_->admit_segr(areq);
  }();
  if (!admitted) {
    // Clean up and tell the initiator where the bottleneck is (§3.3).
    return fail(self, pkt, admitted.error(), hop);
  }
  return forward_and_unwind_seg(self, pkt, ap, *msg, admitted.value());
}

Bytes Handlers::forward_and_unwind_seg(CServ& self, proto::Packet& pkt,
                                       proto::AuthedPayload& ap,
                                       const proto::SegRequest& msg,
                                       BwKbps my_grant) {
  const std::uint8_t hop = pkt.current_hop;
  const bool renewal = pkt.type == proto::PacketType::kSegRenewal;
  const bool last = hop + 1u >= msg.ases.size();

  Bytes resp_wire;
  if (last) {
    proto::ControlResponse resp;
    resp.success = true;
    BwKbps final_bw = my_grant;
    auto granted = msg.granted;
    granted.push_back(my_grant);
    for (BwKbps g : granted) final_bw = std::min(final_bw, g);
    resp.final_bw_kbps = std::min(final_bw, msg.max_bw_kbps);
    resp.tokens.assign(msg.ases.size(), proto::Hvf{});
    resp_wire = respond(self, pkt, resp);
  } else {
    // Forward pass: record our grant and hand the request to the next AS.
    auto* fwd_msg = std::get_if<proto::SegRequest>(&ap.message);
    fwd_msg->granted.push_back(my_grant);
    proto::Packet fwd = pkt;
    fwd.current_hop = hop + 1;
    fwd.payload = proto::encode_authed(ap);
    stamp_child_context(*self.bus_, fwd);
    resp_wire = self.bus_->call(msg.ases[hop + 1], wire::packet_frame(proto::encode_packet(fwd)));
  }

  // Backward pass.
  auto resp_pkt = proto::decode_packet(resp_wire);
  auto resp_ap = resp_pkt ? proto::decode_authed(resp_pkt->payload)
                          : std::nullopt;
  auto* resp = resp_ap ? std::get_if<proto::ControlResponse>(&resp_ap->message)
                       : nullptr;
  if (resp == nullptr) {
    self.admission_->release_segr(pkt.resinfo.key());
    return fail(self, pkt, Errc::kInternal, hop);
  }
  if (!resp->success) {
    // Unsuccessful request: clean up the temporary allocation (§3.3).
    if (renewal) {
      // Restore the active version's allocation.
      if (const auto rec = self.db_.segr_copy(pkt.resinfo.key())) {
        admission::SegrAdmissionRequest restore;
        restore.now = self.clock_->now_sec();
        restore.src_as = pkt.resinfo.src_as;
        restore.key = pkt.resinfo.key();
        restore.ingress = pkt.path[hop].ingress;
        restore.egress = pkt.path[hop].egress;
        restore.min_bw_kbps = 0;
        restore.demand_kbps = rec->active.bw_kbps;
        (void)self.admission_->admit_segr(restore);
      }
    } else {
      self.admission_->release_segr(pkt.resinfo.key());
    }
    return resp_wire;
  }

  // Success: store the final bandwidth, shrink the ledger entry to it, and
  // contribute our token (Eq. 3).
  const BwKbps final_bw = resp->final_bw_kbps;
  admission::SegrAdmissionRequest finalize;
  finalize.now = self.clock_->now_sec();
  finalize.src_as = pkt.resinfo.src_as;
  finalize.key = pkt.resinfo.key();
  finalize.ingress = pkt.path[hop].ingress;
  finalize.egress = pkt.path[hop].egress;
  finalize.min_bw_kbps = 0;
  finalize.demand_kbps = final_bw;
  (void)self.admission_->admit_segr(finalize);

  store_segr(self, pkt, msg, final_bw, renewal);

  proto::ResInfo final_ri = pkt.resinfo;
  final_ri.bw_kbps = final_bw;
  crypto::Aes128 hop_cipher(self.hop_key_.bytes.data());
  if (hop < resp->tokens.size()) {
    resp->tokens[hop] = dataplane::compute_seg_hvf(
        hop_cipher, final_ri, pkt.path[hop].ingress, pkt.path[hop].egress);
  }
  self.metrics_.seg_granted.inc();
  if (self.cfg_.events != nullptr) {
    self.cfg_.events
        ->emit(telemetry::Severity::kInfo, "cserv",
               renewal ? "segr.renewed" : "segr.admitted")
        .str("as", self.local_.to_string())
        .str("src_as", pkt.resinfo.src_as.to_string())
        .u64("res_id", pkt.resinfo.res_id)
        .u64("version", pkt.resinfo.version)
        .u64("bw_kbps", final_bw)
        .u64("exp_time", pkt.resinfo.exp_time)
        .u64("hop", hop);
  }
  // Trace-context propagation: this handler ran under the bus span of
  // the hop call that delivered the request, so tag that span with what
  // this AS decided — the Perfetto export then shows the admission
  // verdict on every hop of the setup without a context parameter.
  telemetry::SpanCollector& tracer = self.bus_->tracer();
  if (tracer.in_span()) {
    tracer.annotate("verdict", renewal ? "segr.renewed" : "segr.admitted");
    tracer.annotate("res_id", std::to_string(pkt.resinfo.res_id));
    tracer.annotate("bw_kbps", std::to_string(final_bw));
  }

  resp_pkt->payload = proto::encode_authed(*resp_ap);
  return proto::encode_packet(*resp_pkt);
}

void Handlers::store_segr(CServ& self, const proto::Packet& pkt,
                          const proto::SegRequest& msg, BwKbps final_bw,
                          bool renewal) {
  reservation::SegrVersion ver;
  ver.version = pkt.resinfo.version;
  ver.bw_kbps = final_bw;
  ver.exp_time = pkt.resinfo.exp_time;

  if (renewal) {
    const bool updated = self.db_.with_segr(
        pkt.resinfo.key(), [&](reservation::SegrRecord* stored) {
          if (stored == nullptr) return false;
          stored->pending = ver;  // explicit activation switches it live (§4.2)
          if (self.wal_ != nullptr) self.wal_->log_segr_upsert(*stored);
          return true;
        });
    if (updated) return;
  }
  reservation::SegrRecord rec;
  rec.key = pkt.resinfo.key();
  rec.seg_type = msg.seg_type;
  rec.hops.resize(pkt.path.size());
  for (size_t i = 0; i < pkt.path.size(); ++i) {
    rec.hops[i] = pkt.path[i];
    rec.hops[i].as = msg.ases[i];
  }
  rec.local_hop = pkt.current_hop;
  rec.active = ver;
  self.db_.upsert_segr(std::move(rec), [&](reservation::SegrRecord& stored) {
    if (self.wal_ != nullptr) self.wal_->log_segr_upsert(stored);
  });
}

Bytes Handlers::handle_seg_activation(CServ& self, proto::Packet& pkt,
                                      proto::AuthedPayload& ap) {
  auto* msg = std::get_if<proto::SegActivation>(&ap.message);
  const std::uint8_t hop = pkt.current_hop;
  if (msg == nullptr) return fail(self, pkt, Errc::kMalformed, hop);
  if (!verify_payload_mac(self, ap, pkt.resinfo, hop)) {
    self.metrics_.auth_failures.inc();
    return fail(self, pkt, Errc::kAuthFailed, hop);
  }
  const auto rec = self.db_.segr_copy(pkt.resinfo.key());
  if (!rec) {
    return fail(self, pkt, Errc::kNoSuchReservation, hop);
  }
  if (!rec->pending || rec->pending->version != msg->version) {
    return fail(self, pkt, Errc::kBadVersion, hop);
  }

  const bool last = hop + 1u >= rec->hops.size();
  Bytes resp_wire;
  if (last) {
    proto::ControlResponse resp;
    resp.success = true;
    resp.final_bw_kbps = rec->pending->bw_kbps;
    resp_wire = respond(self, pkt, resp);
  } else {
    proto::Packet fwd = pkt;
    fwd.current_hop = hop + 1;
    stamp_child_context(*self.bus_, fwd);
    resp_wire =
        self.bus_->call(rec->hops[hop + 1].as, wire::packet_frame(proto::encode_packet(fwd)));
  }
  auto resp_pkt = proto::decode_packet(resp_wire);
  auto resp_ap =
      resp_pkt ? proto::decode_authed(resp_pkt->payload) : std::nullopt;
  auto* resp = resp_ap ? std::get_if<proto::ControlResponse>(&resp_ap->message)
                       : nullptr;
  if (resp == nullptr || !resp->success) return resp_wire;

  // Switch: only one version of a SegR is ever live (§4.2). Re-validate
  // under the shard lock — the record may have been swept or renewed
  // again while the activation crossed the bus.
  reservation::SegrVersion activated;
  const bool switched = self.db_.with_segr(
      pkt.resinfo.key(), [&](reservation::SegrRecord* stored) {
        if (stored == nullptr || !stored->pending ||
            stored->pending->version != msg->version) {
          return false;
        }
        stored->active = *stored->pending;
        stored->pending.reset();
        activated = stored->active;
        if (self.wal_ != nullptr) self.wal_->log_segr_upsert(*stored);
        return true;
      });
  if (!switched) return fail(self, pkt, Errc::kBadVersion, hop);
  if (self.cfg_.events != nullptr) {
    self.cfg_.events
        ->emit(telemetry::Severity::kInfo, "cserv", "segr.activated")
        .str("as", self.local_.to_string())
        .str("src_as", pkt.resinfo.src_as.to_string())
        .u64("res_id", pkt.resinfo.res_id)
        .u64("version", msg->version)
        .u64("bw_kbps", activated.bw_kbps)
        .u64("exp_time", activated.exp_time);
  }
  telemetry::SpanCollector& tracer = self.bus_->tracer();
  if (tracer.in_span()) {
    tracer.annotate("verdict", "segr.activated");
    tracer.annotate("res_id", std::to_string(pkt.resinfo.res_id));
    tracer.annotate("version", std::to_string(msg->version));
  }
  return resp_wire;
}

// --- end-to-end reservations --------------------------------------------------

Bytes Handlers::handle_eer(CServ& self, proto::Packet& pkt,
                           proto::AuthedPayload& ap) {
  auto* msg = std::get_if<proto::EerRequest>(&ap.message);
  const std::uint8_t hop = pkt.current_hop;
  if (msg == nullptr || hop >= msg->ases.size() ||
      msg->ases.size() != msg->path.size() || msg->ases[hop] != self.local_) {
    return fail(self, pkt, Errc::kMalformed, hop);
  }
  self.metrics_.eer_requests.inc();
  const TimeNs now = self.clock_->now_ns();
  const UnixSec now_sec = self.clock_->now_sec();

  if (!verify_payload_mac(self, ap, pkt.resinfo, hop)) {
    self.metrics_.auth_failures.inc();
    return fail(self, pkt, Errc::kAuthFailed, hop);
  }
  if (!self.rate_limiter_.allow_request(pkt.resinfo.src_as, now)) {
    self.metrics_.rate_limited.inc();
    return fail(self, pkt, Errc::kRateLimited, hop);
  }
  if (self.denied_sources_.contains(pkt.resinfo.src_as)) {
    return fail(self, pkt, Errc::kBlocked, hop);
  }
  const bool renewal = pkt.type == proto::PacketType::kEerRenewal;
  if (renewal && !self.rate_limiter_.allow_renewal(pkt.resinfo.key(), now)) {
    self.metrics_.rate_limited.inc();
    return fail(self, pkt, Errc::kRateLimited, hop);
  }

  // Locate the SegR(s) this EER rides at this AS: one for source/transit/
  // destination ASes, two at a transfer AS (§4.1). The checks below run
  // on copies; admission re-reads the records under their shard locks.
  std::optional<ResKey> segr_in;
  std::optional<ResKey> segr_out;
  std::vector<reservation::SegrRecord> rides;
  for (const ResKey& sk : msg->segrs) {
    auto rec = self.db_.segr_copy(sk);
    if (!rec) continue;
    if (!segr_in) {
      segr_in = sk;
    } else if (!segr_out) {
      segr_out = sk;
    } else {
      continue;
    }
    rides.push_back(std::move(*rec));
  }
  if (!segr_in) {
    return fail(self, pkt, Errc::kNoSuchSegment, hop);
  }
  for (const reservation::SegrRecord& rec : rides) {
    if (rec.expired(now_sec)) {
      // App. C: signal expiry so the initiator can invalidate its cache
      // and retry with the new version.
      return fail(self, pkt, Errc::kExpired, hop);
    }
  }
  // Whitelist enforcement by the SegR's initiating AS (App. C).
  for (const reservation::SegrRecord& rec : rides) {
    if (rec.hops[rec.local_hop].as != rec.hops[0].as) continue;
    if (rec.key.src_as != self.local_) continue;
    if (auto advert = self.registry_.find(rec.key);
        advert && !advert->usable_by(pkt.resinfo.src_as)) {
      return fail(self, pkt, Errc::kNotWhitelisted, hop);
    }
  }

  // The demanded bandwidth travels in the header ResInfo (§4.4).
  BwKbps demand = pkt.resinfo.bw_kbps;
  // Source/destination policy (§4.7): per-host cap.
  const bool is_source = hop == 0;
  const bool is_dest = hop + 1u >= msg->ases.size();
  if (is_source || is_dest) {
    if (msg->min_bw_kbps > self.cfg_.per_host_eer_cap_kbps) {
      self.metrics_.policy_denied.inc();
      return fail(self, pkt, Errc::kPolicyDenied, hop);
    }
    demand = std::min(demand, self.cfg_.per_host_eer_cap_kbps);
  }
  // Destination host acceptance (§4.4).
  if (is_dest && self.host_acceptor_ &&
      !self.host_acceptor_(pkt.eerinfo, demand)) {
    self.metrics_.policy_denied.inc();
    return fail(self, pkt, Errc::kPolicyDenied, hop);
  }

  admission::EerAdmission::Request areq;
  areq.eer_key = pkt.resinfo.key();
  areq.demand_kbps = demand;
  areq.min_bw_kbps = msg->min_bw_kbps;
  areq.segr_in = segr_in;
  areq.segr_out = segr_out;
  auto admitted = [&] {
    AdmissionTimer timer(self.bus_->tracer());
    return self.admission_->admit_eer(self.db_, areq, now_sec);
  }();
  if (!admitted) return fail(self, pkt, admitted.error(), hop);

  return forward_and_unwind_eer(self, pkt, ap, *msg, admitted.value());
}

Bytes Handlers::forward_and_unwind_eer(CServ& self, proto::Packet& pkt,
                                       proto::AuthedPayload& ap,
                                       const proto::EerRequest& msg,
                                       BwKbps my_grant) {
  const std::uint8_t hop = pkt.current_hop;
  const bool last = hop + 1u >= msg.ases.size();

  Bytes resp_wire;
  if (last) {
    proto::ControlResponse resp;
    resp.success = true;
    BwKbps final_bw = my_grant;
    auto granted = msg.granted;
    granted.push_back(my_grant);
    for (BwKbps g : granted) final_bw = std::min(final_bw, g);
    resp.final_bw_kbps = std::min(final_bw, pkt.resinfo.bw_kbps);
    resp.sealed_hopauths.assign(msg.ases.size(), Bytes{});
    resp_wire = respond(self, pkt, resp);
  } else {
    auto* fwd_msg = std::get_if<proto::EerRequest>(&ap.message);
    fwd_msg->granted.push_back(my_grant);
    // At a transfer AS the request payload is copied into a fresh Colibri
    // packet for the next SegR (§4.4); in this model that is the re-encoded
    // packet handed to the next AS.
    proto::Packet fwd = pkt;
    fwd.current_hop = hop + 1;
    fwd.payload = proto::encode_authed(ap);
    stamp_child_context(*self.bus_, fwd);
    resp_wire = self.bus_->call(msg.ases[hop + 1], wire::packet_frame(proto::encode_packet(fwd)));
  }

  auto resp_pkt = proto::decode_packet(resp_wire);
  auto resp_ap =
      resp_pkt ? proto::decode_authed(resp_pkt->payload) : std::nullopt;
  auto* resp = resp_ap ? std::get_if<proto::ControlResponse>(&resp_ap->message)
                       : nullptr;
  if (resp == nullptr) {
    self.admission_->release_eer(self.db_, pkt.resinfo.key());
    return fail(self, pkt, Errc::kInternal, hop);
  }
  if (!resp->success) {
    self.admission_->release_eer(self.db_, pkt.resinfo.key());
    return resp_wire;
  }

  const BwKbps final_bw = resp->final_bw_kbps;
  store_eer(self, pkt, msg, final_bw);

  // Issue the hop authenticator σ_i over the *final* reservation
  // parameters (Eq. 4) and seal it for the source AS (Eq. 5).
  proto::ResInfo final_ri = pkt.resinfo;
  final_ri.bw_kbps = final_bw;
  crypto::Aes128 hop_cipher(self.hop_key_.bytes.data());
  const dataplane::HopAuth sigma = dataplane::compute_hopauth(
      hop_cipher, final_ri, pkt.eerinfo, msg.path[hop].ingress,
      msg.path[hop].egress);

  const drkey::Key128 seal_key =
      self.drkey_engine_.as_key(pkt.resinfo.src_as, self.clock_->now_sec());
  crypto::Eax eax(seal_key.bytes.data());
  std::uint8_t nonce[16];
  self.rng_.fill(nonce, sizeof(nonce));
  const Bytes aad = wire::hopauth_aad(final_ri, hop);
  if (hop < resp->sealed_hopauths.size()) {
    resp->sealed_hopauths[hop] =
        eax.seal(BytesView(nonce, sizeof(nonce)), aad,
                 BytesView(sigma.data(), sigma.size()));
  }
  self.metrics_.eer_granted.inc();
  if (self.cfg_.events != nullptr) {
    self.cfg_.events
        ->emit(telemetry::Severity::kInfo, "cserv",
               pkt.type == proto::PacketType::kEerRenewal ? "eer.renewed"
                                                          : "eer.admitted")
        .str("as", self.local_.to_string())
        .str("src_as", pkt.resinfo.src_as.to_string())
        .u64("res_id", pkt.resinfo.res_id)
        .u64("version", pkt.resinfo.version)
        .u64("bw_kbps", final_bw)
        .u64("exp_time", pkt.resinfo.exp_time)
        .u64("hop", hop);
  }
  telemetry::SpanCollector& tracer = self.bus_->tracer();
  if (tracer.in_span()) {
    tracer.annotate("verdict", pkt.type == proto::PacketType::kEerRenewal
                                   ? "eer.renewed"
                                   : "eer.admitted");
    tracer.annotate("res_id", std::to_string(pkt.resinfo.res_id));
    tracer.annotate("bw_kbps", std::to_string(final_bw));
  }

  resp_pkt->payload = proto::encode_authed(*resp_ap);
  return proto::encode_packet(*resp_pkt);
}

void Handlers::store_eer(CServ& self, const proto::Packet& pkt,
                         const proto::EerRequest& msg, BwKbps final_bw) {
  reservation::EerVersion ver;
  ver.version = pkt.resinfo.version;
  ver.bw_kbps = final_bw;
  ver.exp_time = pkt.resinfo.exp_time;

  const bool updated = self.db_.with_eer(
      pkt.resinfo.key(), [&](reservation::EerRecord* stored) {
        if (stored == nullptr) return false;
        stored->prune(self.clock_->now_sec());
        stored->versions.push_back(ver);
        if (self.wal_ != nullptr) self.wal_->log_eer_upsert(*stored);
        return true;
      });
  if (updated) return;
  reservation::EerRecord rec;
  rec.key = pkt.resinfo.key();
  rec.src_host = pkt.eerinfo.src_host;
  rec.dst_host = pkt.eerinfo.dst_host;
  rec.path = msg.path;
  rec.local_hop = pkt.current_hop;
  rec.segrs = msg.segrs;
  rec.versions.push_back(ver);
  self.db_.upsert_eer(std::move(rec), [&](reservation::EerRecord& stored) {
    if (self.wal_ != nullptr) self.wal_->log_eer_upsert(stored);
  });
}

// Out-of-line bridge used by CServ (declared friend).
Bytes process_request_bridge(CServ& self, proto::Packet pkt) {
  return Handlers::process_request(self, std::move(pkt));
}

}  // namespace colibri::cserv
