#include "colibri/cserv/registry.hpp"

#include <algorithm>

namespace colibri::cserv {

bool SegrAdvert::usable_by(AsId as) const {
  if (whitelist.empty() || as == first_as()) return true;
  return std::find(whitelist.begin(), whitelist.end(), as) != whitelist.end();
}

void SegrRegistry::register_segr(SegrAdvert advert) {
  adverts_[advert.key] = std::move(advert);
}

void SegrRegistry::unregister(const ResKey& key) { adverts_.erase(key); }

std::vector<SegrAdvert> SegrRegistry::query(AsId requester, AsId from, AsId to,
                                            UnixSec now) const {
  std::vector<SegrAdvert> out;
  for (const auto& [_, a] : adverts_) {
    if (a.first_as() == from && a.last_as() == to && !a.expired(now) &&
        a.usable_by(requester)) {
      out.push_back(a);
    }
  }
  return out;
}

std::vector<SegrAdvert> SegrRegistry::query_from(AsId requester, AsId from,
                                                 UnixSec now) const {
  std::vector<SegrAdvert> out;
  for (const auto& [_, a] : adverts_) {
    if (a.first_as() == from && !a.expired(now) && a.usable_by(requester)) {
      out.push_back(a);
    }
  }
  return out;
}

std::vector<SegrAdvert> SegrRegistry::query_to(AsId requester, AsId to,
                                               UnixSec now) const {
  std::vector<SegrAdvert> out;
  for (const auto& [_, a] : adverts_) {
    if (a.last_as() == to && !a.expired(now) && a.usable_by(requester)) {
      out.push_back(a);
    }
  }
  return out;
}

std::optional<SegrAdvert> SegrRegistry::find(const ResKey& key) const {
  auto it = adverts_.find(key);
  if (it == adverts_.end()) return std::nullopt;
  return it->second;
}

size_t SegrRegistry::expire(UnixSec now) {
  size_t removed = 0;
  for (auto it = adverts_.begin(); it != adverts_.end();) {
    if (it->second.expired(now)) {
      it = adverts_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace colibri::cserv
