// Distributed Colibri service (paper App. D).
//
// A core AS under heavy load decomposes its CServ into sub-services:
// a single *coordinator* handling all SegReqs (SegR admission needs the
// complete view), and per-interface *ingress/egress sub-services* handling
// EEReqs, each owning the admission state of a disjoint subset of SegRs.
// A load balancer routes every EEReq by its underlying SegR so all
// requests over one SegR land on the same sub-service — which is what
// makes the decomposition correct (the EER decision depends only on the
// adjacent SegRs' state). Sub-services can then run on separate cores or
// machines; here each owns an independent admission ledger and can be
// driven from separate threads.
#pragma once

#include <memory>
#include <vector>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/reservation/db.hpp"

namespace colibri::cserv {

// One ingress/egress sub-service: EER admission over the SegRs it owns.
// The reservation db is shared (sharded internally); each sub-service
// owns an independent EerAdmission ledger.
class EerSubService {
 public:
  explicit EerSubService(int index) : index_(index) {}

  int index() const { return index_; }
  size_t handled() const { return handled_; }

  Result<BwKbps> admit(reservation::ReservationDb& db,
                       const admission::EerAdmission::Request& req,
                       UnixSec now) {
    ++handled_;
    return admission_.admit(db, req, now);
  }
  void release(reservation::ReservationDb& db, const ResKey& eer_key) {
    admission_.release(db, eer_key);
  }

 private:
  int index_;
  admission::EerAdmission admission_;
  size_t handled_ = 0;
};

// Load balancer + sub-service pool. SegR ownership is determined by a
// stable hash of the SegR key, so every EEReq that rides a given SegR is
// processed by the same sub-service (App. D's correctness requirement).
class DistributedEerService {
 public:
  explicit DistributedEerService(int sub_services);

  // Routes by the first underlying SegR of the request.
  EerSubService& route(const ResKey& first_segr);

  Result<BwKbps> admit(reservation::ReservationDb& db,
                       const ResKey& first_segr,
                       const admission::EerAdmission::Request& req,
                       UnixSec now) {
    return route(first_segr).admit(db, req, now);
  }
  void release(reservation::ReservationDb& db, const ResKey& first_segr,
               const ResKey& eer_key) {
    route(first_segr).release(db, eer_key);
  }

  int size() const { return static_cast<int>(subs_.size()); }
  const EerSubService& sub(int i) const { return *subs_[i]; }

 private:
  std::vector<std::unique_ptr<EerSubService>> subs_;
};

}  // namespace colibri::cserv
