// Pre-provisioned backup reservations with fast failover (ROADMAP item 5).
//
// Coded Path Protection (PAPERS.md) is the reference point for proactive
// protection, and Flyover's minimal critical-traffic reservations
// motivate keeping the standby cheap: an AS pairs a SegR it initiated
// (the primary) with a link-disjoint backup SegR provisioned ahead of
// time at minimal bandwidth — admitted on-path and kept alive by the
// renewal manager, but not advertised, so it carries no EERs and costs
// only its floor allocation.
//
// On link-failure detection (on_link_down — fed from the FaultInjector's
// transition feed in simulation, a routing/BFD feed in deployment), every
// pair whose primary crosses the dead link and whose backup avoids it
// cuts over: the primary's advert is withdrawn, the backup is published
// in its place (new EER setups immediately ride the detour), and the
// primary's renewals are suppressed so control traffic stops chasing the
// dead link. When the link heals (on_link_up), fail-back restores the
// original advertising and the backup returns to cheap standby.
//
// Every transition moves the cserv.failover.* counters and emits a
// structured event (component "failover"), and
// default_failover_alert_rules() turns the active-pairs gauge into an
// alert that fires for the duration of a cutover — the signal
// `colibri_obs watch --scenario=failover` renders live.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/topology/segment.hpp"

namespace colibri::cserv {

class CServ;
struct ReservationResult;

// Point-in-time view of the failover counters (see snapshot()).
struct FailoverStats {
  std::uint64_t cutovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t unprotected = 0;   // cutover wanted, no usable backup
  std::uint64_t active = 0;        // pairs currently failed over
  std::uint64_t protected_pairs = 0;
};

class FailoverManager : public telemetry::MetricsSource {
 public:
  // Exports "cserv.failover.*" to the owning CServ's metrics registry
  // and registers itself with the CServ (renewal suppression hook). The
  // CServ must outlive the manager.
  explicit FailoverManager(CServ& cserv);
  ~FailoverManager() override;

  FailoverManager(const FailoverManager&) = delete;
  FailoverManager& operator=(const FailoverManager&) = delete;

  // Provisions a cheap standby SegR along `backup_seg` and pairs it with
  // `primary`. The backup is fully set up (every on-path AS admitted it)
  // but not published — it waits unadvertised until a cutover. Returns
  // the backup's key.
  Result<ResKey> provision_backup(const ResKey& primary,
                                  const topology::PathSegment& backup_seg,
                                  BwKbps min_bw, BwKbps max_bw);
  // Pairs an already-established backup SegR with a primary.
  void pair(const ResKey& primary, const ResKey& backup);

  // Link-state hooks. `detected_ns` is when the failure was detected
  // (Clock time); cutover latency = handling time - detected_ns. Returns
  // the number of pairs cut over / failed back.
  std::size_t on_link_down(AsId a, AsId b, TimeNs detected_ns);
  std::size_t on_link_up(AsId a, AsId b);

  // True while `key` is a failed-over primary: its path crosses a dead
  // link, so the renewal manager skips it (the backup renews under its
  // own key).
  bool renewal_suppressed(const ResKey& key) const;
  bool failed_over(const ResKey& primary) const;
  std::optional<ResKey> backup_of(const ResKey& primary) const;

  FailoverStats snapshot() const;
  void collect_metrics(telemetry::MetricSink& sink) const override;

 private:
  struct PairState {
    ResKey primary;
    ResKey backup;
    bool active = false;  // failed over right now
    // The dead link (raw AsIds, normalized a < b) while active.
    std::uint64_t link_a = 0;
    std::uint64_t link_b = 0;
    // The primary's advert whitelist at cutover, restored on fail-back.
    std::vector<AsId> primary_whitelist;
  };

  static bool path_uses_link(const std::vector<topology::Hop>& hops, AsId a,
                             AsId b);

  CServ* cserv_;
  // Insertion-ordered so cutovers and fail-backs process pairs in a
  // deterministic order.
  std::vector<PairState> pairs_;
  telemetry::Counter cutovers_;
  telemetry::Counter failbacks_;
  telemetry::Counter unprotected_;
  telemetry::Histogram latency_ns_;
  telemetry::ScopedSource registration_;
};

// Monitoring rule pack for failover (see telemetry/alerts.hpp): the
// active-pairs gauge above zero fires immediately (severity error) and
// resolves on fail-back; a nonzero unprotected-failure rate over the
// last 10 s fires too — a pair lost its primary with no usable detour.
std::vector<telemetry::AlertRule> default_failover_alert_rules();

}  // namespace colibri::cserv
