#include "colibri/cserv/failover.hpp"

#include <algorithm>

#include "colibri/cserv/cserv.hpp"

namespace colibri::cserv {
namespace {

// Normalized (a, b) raw pair so link identity is direction-free.
std::pair<std::uint64_t, std::uint64_t> link_key(AsId a, AsId b) {
  return std::minmax(a.raw(), b.raw());
}

}  // namespace

FailoverManager::FailoverManager(CServ& cserv)
    : cserv_(&cserv), registration_(cserv.metrics_registry(), this) {
  cserv_->attach_failover(this);
}

FailoverManager::~FailoverManager() {
  if (cserv_->failover() == this) cserv_->attach_failover(nullptr);
}

bool FailoverManager::path_uses_link(const std::vector<topology::Hop>& hops,
                                     AsId a, AsId b) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (link_key(hops[i].as, hops[i + 1].as) == link_key(a, b)) return true;
  }
  return false;
}

Result<ResKey> FailoverManager::provision_backup(
    const ResKey& primary, const topology::PathSegment& backup_seg,
    BwKbps min_bw, BwKbps max_bw) {
  auto r = cserv_->setup_segr(backup_seg, min_bw, max_bw);
  if (!r) return r.error();
  pair(primary, r.value().key);
  if (telemetry::EventLog* events = cserv_->event_log()) {
    events->emit(telemetry::Severity::kInfo, "failover", "failover.protected")
        .str("as", cserv_->local_as().to_string())
        .u64("primary_id", primary.res_id)
        .u64("backup_id", r.value().key.res_id)
        .u64("backup_bw_kbps", r.value().bw_kbps);
  }
  return r.value().key;
}

void FailoverManager::pair(const ResKey& primary, const ResKey& backup) {
  for (PairState& p : pairs_) {
    if (p.primary == primary) {
      p.backup = backup;
      return;
    }
  }
  PairState p;
  p.primary = primary;
  p.backup = backup;
  pairs_.push_back(std::move(p));
}

std::size_t FailoverManager::on_link_down(AsId a, AsId b, TimeNs detected_ns) {
  const auto [la, lb] = link_key(a, b);
  const TimeNs now_ns = cserv_->clock().now_ns();
  const UnixSec now = cserv_->clock().now_sec();
  telemetry::EventLog* events = cserv_->event_log();
  std::size_t cutovers = 0;
  for (PairState& p : pairs_) {
    if (p.active) continue;
    const auto prec = cserv_->db().segr_copy(p.primary);
    if (!prec || !path_uses_link(prec->hops, a, b)) continue;
    const auto brec = cserv_->db().segr_copy(p.backup);
    if (!brec || path_uses_link(brec->hops, a, b) ||
        brec->active.exp_time <= now) {
      // The primary is dead and the standby is unusable (gone, expired,
      // or sharing the failed link — not disjoint after all).
      unprotected_.inc();
      if (events != nullptr) {
        events
            ->emit(telemetry::Severity::kError, "failover",
                   "failover.unprotected")
            .str("as", cserv_->local_as().to_string())
            .u64("primary_id", p.primary.res_id)
            .u64("link_a", la)
            .u64("link_b", lb);
      }
      continue;
    }
    // Cutover: withdraw the primary's advert (remembering its whitelist
    // for fail-back) and advertise the backup in its place.
    if (auto advert = cserv_->registry().find(p.primary)) {
      p.primary_whitelist = advert->whitelist;
      cserv_->registry().unregister(p.primary);
    }
    cserv_->publish_segr(p.backup, {});
    p.active = true;
    p.link_a = la;
    p.link_b = lb;
    cutovers_.inc();
    const TimeNs latency = now_ns - detected_ns;
    latency_ns_.record_shared(
        static_cast<std::uint64_t>(latency < 0 ? 0 : latency));
    ++cutovers;
    if (events != nullptr) {
      events->emit(telemetry::Severity::kWarn, "failover", "failover.cutover")
          .str("as", cserv_->local_as().to_string())
          .str("primary_src", p.primary.src_as.to_string())
          .u64("primary_id", p.primary.res_id)
          .u64("backup_id", p.backup.res_id)
          .u64("link_a", la)
          .u64("link_b", lb)
          .u64("latency_ns", static_cast<std::uint64_t>(latency < 0 ? 0
                                                                    : latency));
    }
  }
  return cutovers;
}

std::size_t FailoverManager::on_link_up(AsId a, AsId b) {
  const auto [la, lb] = link_key(a, b);
  telemetry::EventLog* events = cserv_->event_log();
  std::size_t failbacks = 0;
  for (PairState& p : pairs_) {
    if (!p.active || p.link_a != la || p.link_b != lb) continue;
    // Fail-back: the primary resumes service (and renewals), the backup
    // returns to unadvertised standby.
    const bool republished =
        cserv_->publish_segr(p.primary, std::move(p.primary_whitelist));
    cserv_->registry().unregister(p.backup);
    p.primary_whitelist.clear();
    p.active = false;
    p.link_a = p.link_b = 0;
    failbacks_.inc();
    ++failbacks;
    if (events != nullptr) {
      events->emit(telemetry::Severity::kInfo, "failover", "failover.restored")
          .str("as", cserv_->local_as().to_string())
          .str("primary_src", p.primary.src_as.to_string())
          .u64("primary_id", p.primary.res_id)
          .u64("backup_id", p.backup.res_id)
          .u64("republished", republished ? 1 : 0);
    }
  }
  return failbacks;
}

bool FailoverManager::renewal_suppressed(const ResKey& key) const {
  for (const PairState& p : pairs_) {
    if (p.active && p.primary == key) return true;
  }
  return false;
}

bool FailoverManager::failed_over(const ResKey& primary) const {
  return renewal_suppressed(primary);
}

std::optional<ResKey> FailoverManager::backup_of(const ResKey& primary) const {
  for (const PairState& p : pairs_) {
    if (p.primary == primary) return p.backup;
  }
  return std::nullopt;
}

FailoverStats FailoverManager::snapshot() const {
  FailoverStats s;
  s.cutovers = cutovers_.value();
  s.failbacks = failbacks_.value();
  s.unprotected = unprotected_.value();
  s.protected_pairs = pairs_.size();
  for (const PairState& p : pairs_) {
    if (p.active) ++s.active;
  }
  return s;
}

void FailoverManager::collect_metrics(telemetry::MetricSink& sink) const {
  const FailoverStats s = snapshot();
  sink.counter("cserv.failover.cutovers", s.cutovers);
  sink.counter("cserv.failover.failbacks", s.failbacks);
  sink.counter("cserv.failover.unprotected", s.unprotected);
  sink.gauge("cserv.failover.active", static_cast<std::int64_t>(s.active));
  sink.gauge("cserv.failover.protected",
             static_cast<std::int64_t>(s.protected_pairs));
  const auto latency = latency_ns_.snapshot();
  if (latency.count != 0) {
    sink.histogram("cserv.failover.latency_ns", latency);
  }
}

std::vector<telemetry::AlertRule> default_failover_alert_rules() {
  std::vector<telemetry::AlertRule> rules;
  {
    telemetry::AlertRule r;
    r.name = "cserv.failover-active";
    r.series = "cserv.failover.active";
    r.signal = telemetry::AlertSignal::kGauge;
    r.cmp = telemetry::AlertCmp::kAbove;
    r.threshold = 0;
    r.for_ns = 0;  // a cutover is an incident from its first sample
    r.severity = telemetry::Severity::kError;
    rules.push_back(std::move(r));
  }
  {
    telemetry::AlertRule r;
    r.name = "cserv.failover-unprotected";
    r.series = "cserv.failover.unprotected";
    r.signal = telemetry::AlertSignal::kRate;
    r.span_ns = 10 * kNsPerSec;
    r.cmp = telemetry::AlertCmp::kAbove;
    r.threshold = 0;
    r.severity = telemetry::Severity::kError;
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace colibri::cserv
