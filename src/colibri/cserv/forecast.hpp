// Traffic forecasting for SegR demand (paper §3.2).
//
// "Since link utilization often exhibits repeating patterns over time, an
// AS can forecast future requirements and reserve appropriate bandwidth
// for segments in advance." This estimator combines an EWMA of observed
// demand with a decaying peak tracker, and recommends the demand for the
// next SegR renewal with configurable headroom — so a CServ renews at
// realistic sizes instead of a static guess.
#pragma once

#include <algorithm>
#include <cstdint>

#include "colibri/common/clock.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::cserv {

struct ForecastConfig {
  double ewma_alpha = 0.2;     // weight of the newest sample
  double peak_decay = 0.95;    // per-sample decay of the peak tracker
  double headroom = 1.25;      // renewal demand = max(ewma, peak) x headroom
  BwKbps floor_kbps = 1'000;   // never recommend below this
};

class DemandForecaster {
 public:
  explicit DemandForecaster(const ForecastConfig& cfg = {}) : cfg_(cfg) {}

  // Feeds one observation of used bandwidth (e.g. the EER-allocated kbps
  // of the SegR at the end of an interval).
  void observe(BwKbps used_kbps) {
    const double x = static_cast<double>(used_kbps);
    ewma_ = samples_ == 0 ? x : cfg_.ewma_alpha * x + (1 - cfg_.ewma_alpha) * ewma_;
    peak_ = std::max(peak_ * cfg_.peak_decay, x);
    ++samples_;
  }

  // Demand to request at the next renewal.
  BwKbps recommend() const {
    const double base = std::max(ewma_, peak_) * cfg_.headroom;
    return std::max(cfg_.floor_kbps, static_cast<BwKbps>(base));
  }

  double ewma() const { return ewma_; }
  double peak() const { return peak_; }
  std::uint64_t samples() const { return samples_; }

 private:
  ForecastConfig cfg_;
  double ewma_ = 0;
  double peak_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace colibri::cserv
