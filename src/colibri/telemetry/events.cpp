#include "colibri/telemetry/events.hpp"

#include <atomic>
#include <cstdlib>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

std::string Event::to_json() const {
  std::string out;
  out.reserve(128 + 32 * fields.size());
  out += "{\"time_ns\":";
  out += std::to_string(time_ns);
  out += ",\"seq\":";
  out += std::to_string(seq);
  out += ",\"severity\":\"";
  out += severity_name(severity);
  out += "\",\"component\":";
  append_json_string(out, component);
  out += ",\"name\":";
  append_json_string(out, name);
  out += ",\"fields\":{";
  bool first = true;
  for (const EventField& f : fields) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, f.key);
    out.push_back(':');
    switch (f.kind) {
      case EventField::Kind::kU64: out += std::to_string(f.u); break;
      case EventField::Kind::kI64: out += std::to_string(f.i); break;
      case EventField::Kind::kStr: append_json_string(out, f.s); break;
    }
  }
  out += "}}";
  return out;
}

namespace {

// Minimal parser for exactly the JSON subset Event::to_json() emits.
// Not a general JSON parser: object keys are unescaped in the order the
// exporter writes them, values are integers or strings.
struct LineParser {
  std::string_view s;
  std::size_t pos = 0;
  bool ok = true;

  void expect(char c) {
    if (pos < s.size() && s[pos] == c) {
      ++pos;
    } else {
      ok = false;
    }
  }
  bool peek(char c) const { return pos < s.size() && s[pos] == c; }

  std::string string() {
    std::string out;
    expect('"');
    while (ok && pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\' && pos < s.size()) {
        const char e = s[pos++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // Exactly four hex digits; \uZZZZ is malformed, not 0.
            if (pos + 4 > s.size()) {
              ok = false;
              return out;
            }
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s[pos + static_cast<std::size_t>(i)];
              unsigned d;
              if (h >= '0' && h <= '9') {
                d = static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                d = static_cast<unsigned>(h - 'a') + 10;
              } else if (h >= 'A' && h <= 'F') {
                d = static_cast<unsigned>(h - 'A') + 10;
              } else {
                ok = false;
                return out;
              }
              v = v * 16 + d;
            }
            pos += 4;
            // UTF-16 surrogate halves are not code points; the exporter
            // never emits them and pairing is out of scope here.
            if (v >= 0xD800 && v <= 0xDFFF) {
              ok = false;
              return out;
            }
            if (v >= 0x800) {
              out.push_back(static_cast<char>(0xE0 | (v >> 12)));
              out.push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
              continue;
            }
            if (v >= 0x80) {
              out.push_back(static_cast<char>(0xC0 | (v >> 6)));
              out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
              continue;
            }
            c = static_cast<char>(v);
            break;
          }
          default: ok = false; return out;
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  // Parses an integer; sets `negative` so the caller can pick the kind.
  std::int64_t integer(bool& negative) {
    negative = peek('-');
    const std::size_t start = pos;
    if (negative) ++pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    if (pos == start + (negative ? 1u : 0u)) {
      ok = false;
      return 0;
    }
    return std::strtoll(std::string(s.substr(start, pos - start)).c_str(),
                        nullptr, 10);
  }

  void key(std::string_view expected) {
    const std::string k = string();
    if (k != expected) ok = false;
    expect(':');
  }
};

// The exporter only ever writes well-formed UTF-8 (append_json_string
// escapes control bytes); a line whose decoded strings are not valid
// UTF-8 was not written by us and is rejected rather than re-exported.
bool utf8_valid(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size()) {
    const auto b = static_cast<unsigned char>(s[i]);
    std::size_t len;
    unsigned min_cp;
    unsigned cp;
    if (b < 0x80) {
      ++i;
      continue;
    } else if ((b & 0xE0) == 0xC0) {
      len = 2; min_cp = 0x80; cp = b & 0x1Fu;
    } else if ((b & 0xF0) == 0xE0) {
      len = 3; min_cp = 0x800; cp = b & 0x0Fu;
    } else if ((b & 0xF8) == 0xF0) {
      len = 4; min_cp = 0x10000; cp = b & 0x07u;
    } else {
      return false;  // stray continuation or invalid lead byte
    }
    if (i + len > s.size()) return false;
    for (std::size_t k = 1; k < len; ++k) {
      const auto cont = static_cast<unsigned char>(s[i + k]);
      if ((cont & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cont & 0x3Fu);
    }
    // Overlong encodings and surrogate/overflow code points are invalid.
    if (cp < min_cp || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    i += len;
  }
  return true;
}

Severity severity_from_name(std::string_view n, bool& ok) {
  if (n == "debug") return Severity::kDebug;
  if (n == "info") return Severity::kInfo;
  if (n == "warn") return Severity::kWarn;
  if (n == "error") return Severity::kError;
  ok = false;
  return Severity::kInfo;
}

}  // namespace

std::optional<Event> Event::from_json(std::string_view line) {
  LineParser p{line};
  Event ev;
  bool neg = false;

  p.expect('{');
  p.key("time_ns");
  ev.time_ns = p.integer(neg);
  p.expect(',');
  p.key("seq");
  ev.seq = static_cast<std::uint64_t>(p.integer(neg));
  if (neg) p.ok = false;
  p.expect(',');
  p.key("severity");
  ev.severity = severity_from_name(p.string(), p.ok);
  p.expect(',');
  p.key("component");
  ev.component = p.string();
  p.expect(',');
  p.key("name");
  ev.name = p.string();
  p.expect(',');
  p.key("fields");
  p.expect('{');
  bool expect_field = false;  // a consumed ',' promises another field
  while (p.ok && (expect_field || !p.peek('}'))) {
    expect_field = false;
    EventField f;
    f.key = p.string();
    // The exporter never writes the same field key twice; a duplicate
    // means the line was hand-edited or corrupted, and keeping both
    // (or either) silently would misattribute whichever one lookup
    // helpers happen to return.
    for (const EventField& existing : ev.fields) {
      if (existing.key == f.key) p.ok = false;
    }
    p.expect(':');
    if (p.peek('"')) {
      f.kind = EventField::Kind::kStr;
      f.s = p.string();
    } else {
      const std::int64_t v = p.integer(neg);
      if (neg) {
        f.kind = EventField::Kind::kI64;
        f.i = v;
      } else {
        f.kind = EventField::Kind::kU64;
        f.u = static_cast<std::uint64_t>(v);
      }
    }
    ev.fields.push_back(std::move(f));
    // A comma must be followed by another field: `{"k":1,}` is
    // malformed, not an empty continuation.
    if (p.peek(',')) {
      p.expect(',');
      expect_field = true;
    }
  }
  p.expect('}');
  p.expect('}');
  // Nothing may follow the closing brace, and every decoded string must
  // be the valid UTF-8 the exporter writes.
  if (!p.ok || p.pos != line.size()) return std::nullopt;
  if (!utf8_valid(ev.component) || !utf8_valid(ev.name)) return std::nullopt;
  for (const EventField& f : ev.fields) {
    if (!utf8_valid(f.key) || !utf8_valid(f.s)) return std::nullopt;
  }
  return ev;
}

const EventField* Event::field(std::string_view key) const {
  for (const EventField& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

std::optional<std::uint64_t> Event::u64(std::string_view key) const {
  const EventField* f = field(key);
  if (f == nullptr) return std::nullopt;
  switch (f->kind) {
    case EventField::Kind::kU64: return f->u;
    case EventField::Kind::kI64: return static_cast<std::uint64_t>(f->i);
    case EventField::Kind::kStr: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::string> Event::str(std::string_view key) const {
  const EventField* f = field(key);
  if (f == nullptr || f->kind != EventField::Kind::kStr) return std::nullopt;
  return f->s;
}

void EventLog::append(Event ev) {
  // Process-global, not per-log: a deployment runs one EventLog per
  // registry but tools merge the JSONL streams, and the merged order
  // must be reconstructible.
  static std::atomic<std::uint64_t> next_seq{0};
  ev.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(ev));
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<Event> EventLog::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out{events_.begin(), events_.end()};
  events_.clear();
  return out;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string EventLog::to_jsonl() const {
  std::string out;
  for (const Event& ev : events()) {
    out += ev.to_json();
    out += '\n';
  }
  return out;
}

}  // namespace colibri::telemetry
