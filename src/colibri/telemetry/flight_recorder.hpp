// Packet flight recorder: per-instance forensic traces of data-plane
// decisions.
//
// PR 1's MetricsRegistry answers "how many packets were dropped"; the
// flight recorder answers "*why this packet*, at which hop, under what
// state". Each router/gateway instance owns one recorder — a fixed-size
// ring of POD FlightRecords preallocated at construction, so the hot
// path never allocates: recording one decision is a handful of stores
// into a stack-local record plus (when the record is kept) one struct
// copy into the ring.
//
// Two capture modes compose:
//  * deterministic 1-in-N sampling (`sample_every`) — a countdown, no
//    RNG, so replaying the same packet stream records the same packets;
//  * always-record-on-drop (`record_drops`) — every non-forward verdict
//    is kept regardless of the sampling phase, because drops are the
//    rare, interesting events the paper's protection argument (§4,
//    Table 2) rests on.
//
// Like the telemetry counters, a recorder is single-writer: exactly one
// thread drives the owning router/gateway instance at a time (the
// multicore benchmarks shard instances per core). drain() is called
// from the same thread between bursts, mirroring snapshot()/reset().
//
// The disabled path costs one pointer test in the component
// (`recorder_ == nullptr`, perfectly predicted); an attached-but-idle
// recorder costs one predictable branch per packet (`armed()`).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/common/ids.hpp"

namespace colibri::telemetry {

// One recorded per-packet decision. POD, fixed size, no pointers.
struct FlightRecord {
  // Identity ------------------------------------------------------------
  std::uint64_t seq = 0;     // monotonically increasing commit number
  TimeNs time_ns = 0;        // decision time (component's clock)
  std::uint8_t component = 0;  // FlightRecorder::kRouter / kGateway
  std::uint8_t verdict = 0;    // raw component verdict enum value
  std::uint8_t errc = 0;       // errc_from_verdict() at decision time
  bool forced_by_drop = false;  // kept by record_drops, not sampling

  // Packet / reservation ------------------------------------------------
  std::uint64_t src_as = 0;  // AsId::raw()
  ResId res_id = 0;
  ResVer version = 0;
  std::uint8_t hop = 0;     // current_hop at decision
  IfId if_in = 0;
  IfId if_eg = 0;
  std::uint32_t timestamp = 0;   // high-precision in-packet timestamp
  std::uint32_t wire_bytes = 0;
  UnixSec exp_time = 0;

  // Decision-time state (0xFF / zero when not consulted) ----------------
  static constexpr std::uint8_t kNotConsulted = 0xFF;
  std::array<std::uint8_t, 4> hvf_got{};   // packet HVF prefix
  std::array<std::uint8_t, 4> hvf_want{};  // recomputed HVF prefix
  bool hvf_checked = false;
  std::uint8_t dupsup_verdict = kNotConsulted;  // DuplicateSuppression::Verdict
  std::uint8_t ofd_verdict = kNotConsulted;     // OverUseFlowDetector::Verdict
  std::uint64_t bucket_available_bytes = 0;     // token bucket at decision
  bool bucket_checked = false;

  std::string to_json() const;
};

class FlightRecorder {
 public:
  static constexpr std::uint8_t kRouter = 0;
  static constexpr std::uint8_t kGateway = 1;

  struct Config {
    // Ring capacity; rounded up to a power of two. Memory is allocated
    // once here and never again.
    std::size_t capacity = 1024;
    // Keep every Nth decision (0 = no sampling).
    std::uint32_t sample_every = 0;
    // Keep every drop decision regardless of sampling phase.
    bool record_drops = true;
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(const Config& cfg);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // True when any capture mode is on; components consult this before
  // paying for detail capture. One predictable branch.
  bool armed() const { return sample_every_ != 0 || record_drops_; }

  // Deterministic sampling decision for the next packet; advances the
  // 1-in-N phase. Call exactly once per processed packet while armed.
  bool sample_tick() {
    if (sample_every_ == 0) return false;
    if (--sample_countdown_ != 0) return false;
    sample_countdown_ = sample_every_;
    return true;
  }

  bool record_drops() const { return record_drops_; }

  // Copies `r` into the ring (overwriting the oldest record when full)
  // and assigns its commit sequence number. No allocation.
  void commit(const FlightRecord& r) {
    FlightRecord& slot = ring_[static_cast<std::size_t>(head_) & mask_];
    slot = r;
    slot.seq = head_++;
  }

  // Records committed since construction (monotonic; keeps counting
  // after wrap-around).
  std::uint64_t committed() const { return head_; }
  // Records lost to wrap-around.
  std::uint64_t overwritten() const {
    return head_ > capacity() ? head_ - capacity() : 0;
  }
  std::size_t size() const {
    return static_cast<std::size_t>(
        head_ > capacity() ? capacity() : head_);
  }
  std::size_t capacity() const { return mask_ + 1; }

  // Oldest-first copy of the live window; the ring keeps recording.
  std::vector<FlightRecord> records() const;
  // records() + clears the ring (sampling phase is preserved).
  std::vector<FlightRecord> drain();
  void clear() { head_ = 0; }

  // JSON-lines export of records(), one record per line.
  std::string to_jsonl() const;

  // Reconfigure capture modes (capacity is fixed at construction).
  void set_sampling(std::uint32_t every_n) {
    sample_every_ = every_n;
    sample_countdown_ = every_n;
  }
  void set_record_drops(bool on) { record_drops_ = on; }

 private:
  std::vector<FlightRecord> ring_;
  std::size_t mask_;
  std::uint64_t head_ = 0;
  std::uint32_t sample_every_ = 0;
  std::uint32_t sample_countdown_ = 0;
  bool record_drops_ = true;
};

}  // namespace colibri::telemetry
