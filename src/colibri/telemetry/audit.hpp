// Continuous bandwidth-conservation auditing across the fleet.
//
// Every per-AS invariant Colibri relies on has a cross-AS counterpart
// no single AS can check alone: the EER bandwidth an AS admitted onto
// a SegR must fit inside that SegR's bandwidth (the bounded-tube
// promise, §4.7), the EerAdmission stripe ledgers must agree with the
// ReservationDb's per-SegR counters they claim to mirror, the active
// SegRs leaving an interface must fit the link's Colibri share, and
// every on-path AS must hold the *same* view of a reservation — equal
// bandwidth, no silently missing members. Corruption that survives a
// WAL recovery (a bit-flipped record, a torn append) shows up exactly
// as a divergence between ASes or between a ledger and its db, which
// is why the auditor is the proof surface for the fault-injection
// suite: every injected ledger/WAL fault must surface as a violation,
// and a clean run must report zero.
//
// The auditor is read-only and quiescence-assuming: run() scans
// db snapshots and stripe ledgers of the registered targets, so call
// it from a housekeeping point (after tick_all()), not mid-admission.
// Violations emit "audit.violation" events, move telemetry.audit.*
// counters, and feed the default_audit_alert_rules() pack, so one
// corrupted record travels the whole alerting pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/common/clock.hpp"
#include "colibri/reservation/db.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/topology/topology.hpp"

namespace colibri::telemetry {

// One AS under audit. `eer` and `node` are optional: without the
// stripe ledger the ledger checks are skipped, without the topology
// node the link-capacity checks are skipped.
struct AuditTarget {
  std::string name;  // display name, e.g. the AS id
  AsId as;
  const reservation::ReservationDb* db = nullptr;
  const admission::EerAdmission* eer = nullptr;
  const topology::AsNode* node = nullptr;
};

struct AuditViolation {
  // "tube.over_allocation", "tube.oversubscribed", "ledger.orphan",
  // "ledger.mismatch", "link.overcommit", "fleet.segr_divergence",
  // "fleet.segr_missing", "fleet.eer_divergence", "fleet.eer_missing".
  std::string check;
  std::string detail;
  AsId as;
  ResId res_id = 0;
};

struct AuditReport {
  std::uint64_t checks = 0;  // individual comparisons performed
  std::vector<AuditViolation> violations;
  bool clean() const { return violations.empty(); }
};

class ConservationAuditor : public MetricsSource {
 public:
  // Violations log to `events` (nullptr = no audit trail); metrics
  // export through `registry` (nullptr = query-only).
  ConservationAuditor(const Clock& clock, EventLog* events = nullptr,
                      MetricsRegistry* registry = nullptr);
  ~ConservationAuditor() override = default;

  ConservationAuditor(const ConservationAuditor&) = delete;
  ConservationAuditor& operator=(const ConservationAuditor&) = delete;

  void add_target(AuditTarget target);
  std::size_t target_count() const { return targets_.size(); }

  // One full audit pass at reservation time `now`; returns the report
  // and updates the metric/event surfaces.
  AuditReport run(UnixSec now);

  std::uint64_t passes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return passes_;
  }
  std::uint64_t violations_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_total_;
  }
  // Copy, not reference: run() replaces the report under mu_.
  AuditReport last_report() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_;
  }

  // telemetry.audit.* series.
  void collect_metrics(MetricSink& sink) const override;

 private:
  void record(AuditReport& report, std::string check, AsId as, ResId res_id,
              std::string detail);

  const Clock* clock_;
  EventLog* events_;
  std::vector<AuditTarget> targets_;

  mutable std::mutex mu_;  // guards the pass/violation state below
  std::uint64_t passes_ = 0;
  std::uint64_t checks_total_ = 0;
  std::uint64_t violations_total_ = 0;
  std::map<std::string, std::uint64_t> by_check_;
  AuditReport last_;

  ScopedSource registration_;
};

// Alert pack for the audit surface: any violation fires an error-level
// alert; a silent auditor (no passes while targets are registered)
// fires a watchdog.
std::vector<AlertRule> default_audit_alert_rules();

}  // namespace colibri::telemetry
