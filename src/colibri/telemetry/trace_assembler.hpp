// Cross-AS trace assembly: stitches per-AS span captures into causal
// trees and attributes per-hop latency.
//
// Every traced control-plane request carries a TraceContext (128-bit
// trace id + per-hop span ids, see proto/packet.hpp); each AS records a
// span stamped with those ids. This assembler groups spans by trace id,
// links children to parents through ctx_parent → ctx_span (which works
// across independent captures — the ids live on the wire, not in any
// one collector), and derives the hop-by-hop attribution a single
// capture cannot give: where a slow or failed multi-AS admission spent
// its time.
//
// Irregularities are first-class: a span whose parent id never shows up
// in any capture is kept as an orphan root (and counted), truncated
// spans (cut off by a take()) are flagged, and spans with no trace ids
// at all are counted as untraced and skipped. The counts surface as
// cserv.trace.* metrics next to per-hop latency histograms when the
// assembler is registered with a MetricsRegistry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri::telemetry {

// One hop of an assembled trace: a span plus its tree position and
// derived latency attribution.
struct HopAttribution {
  std::string as;  // span name = destination AS of the hop call
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root
  int depth = 0;                     // hops from the root (0 = initiator)
  std::int64_t start_ns = 0;         // relative to the capture origin
  std::int64_t total_ns = 0;         // whole subtree (downstream included)
  std::int64_t self_ns = 0;          // total minus direct children
  std::int64_t admission_ns = -1;    // admission-algorithm share; -1 unknown
  bool truncated = false;
  bool orphan = false;  // parent id missing from every capture
  // Annotations copied off the span (verdict, res_id, bw_kbps, ...).
  std::vector<std::pair<std::string, std::string>> args;

  // First value of `key` among the annotations; empty when absent.
  std::string arg(std::string_view key) const;
};

// One causal tree: all hops of one traced request, in depth-first
// (= path traversal) order starting at the root.
struct AssembledTrace {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::vector<HopAttribution> hops;

  std::string trace_id_hex() const;
  // Reservation id annotated by the handlers, parsed from the first hop
  // that carries one; -1 when the trace never touched a reservation.
  std::int64_t res_id() const;
  // End-to-end wall time: the root hop's subtree.
  std::int64_t total_ns() const;
  // Index of the hop with the largest self time — where the request
  // actually spent its budget.
  std::size_t bottleneck() const;
  // Human-readable hop-by-hop waterfall with the bottleneck highlighted.
  std::string waterfall() const;
};

class TraceAssembler : public MetricsSource {
 public:
  // Registers with `registry` (nullptr = none); metrics export under
  // "cserv.trace.*".
  explicit TraceAssembler(MetricsRegistry* registry = nullptr)
      : registration_(registry, this) {}

  // Feeds one capture (e.g. a SpanCollector::take() result). Captures
  // may be added in any order; spans without trace ids are counted as
  // untraced and dropped.
  void add_capture(const SpanTrace& capture);

  // Links everything added so far into causal trees (insertion order of
  // first appearance) and updates the metrics. Pending spans are
  // consumed.
  std::vector<AssembledTrace> assemble();

  // Finds the trace that carries `res_id` (annotated by the admission
  // handlers); nullptr when no assembled trace touched it.
  static const AssembledTrace* find_by_res_id(
      const std::vector<AssembledTrace>& traces, std::int64_t res_id);

  void collect_metrics(MetricSink& sink) const override;

 private:
  std::vector<Span> pending_;
  Counter assembled_;
  Counter orphan_spans_;
  Counter truncated_spans_;
  Counter untraced_spans_;
  Histogram hop_total_ns_;
  Histogram hop_self_ns_;
  Histogram admission_ns_;
  ScopedSource registration_;
};

}  // namespace colibri::telemetry
