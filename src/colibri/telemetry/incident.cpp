#include "colibri/telemetry/incident.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace colibri::telemetry {
namespace {

// One canonical event object: Event::to_json() minus the process-global
// seq, which is the only field that differs between bit-identical
// same-seed runs (the chaos harness's canonical history makes the same
// exclusion). Bundles must be byte-stable to be diffable evidence.
std::string event_json_no_seq(const Event& ev) {
  std::string out;
  out += "{\"time_ns\":";
  out += std::to_string(ev.time_ns);
  out += ",\"severity\":\"";
  out += severity_name(ev.severity);
  out += "\",\"component\":";
  append_json_string(out, ev.component);
  out += ",\"name\":";
  append_json_string(out, ev.name);
  out += ",\"fields\":{";
  bool first = true;
  for (const EventField& f : ev.fields) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, f.key);
    out.push_back(':');
    switch (f.kind) {
      case EventField::Kind::kU64: out += std::to_string(f.u); break;
      case EventField::Kind::kI64: out += std::to_string(f.i); break;
      case EventField::Kind::kStr: append_json_string(out, f.s); break;
    }
  }
  out += "}}";
  return out;
}

// JSONL -> JSON array (flight-recorder export reuse).
std::string jsonl_to_array(const std::string& jsonl) {
  std::string out = "[";
  bool first = true;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) {
      if (!first) out.push_back(',');
      first = false;
      out.append(jsonl, start, end - start);
    }
    start = end + 1;
  }
  out.push_back(']');
  return out;
}

std::string window_json(const SampleWindow& w) {
  std::string out = "{\"start_ns\":";
  out += std::to_string(w.start_ns);
  out += ",\"end_ns\":";
  out += std::to_string(w.end_ns);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : w.counter_deltas) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, level] : w.gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(level);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : w.histogram_deltas) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"p50\":";
    out += std::to_string(static_cast<std::int64_t>(std::llround(
        h.percentile(0.50))));
    out += ",\"p99\":";
    out += std::to_string(static_cast<std::int64_t>(std::llround(
        h.percentile(0.99))));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string transition_json(const AlertTransition& t) {
  std::string out = "{\"edge\":\"";
  out += t.edge == AlertTransition::Edge::kFiring ? "firing" : "resolved";
  out += "\",\"time_ns\":";
  out += std::to_string(t.time_ns);
  out += ",\"rule\":";
  append_json_string(out, t.name);
  out += ",\"series\":";
  append_json_string(out, t.series);
  out += ",\"severity\":\"";
  out += severity_name(t.severity);
  out += "\",\"value_milli\":";
  out += std::to_string(std::llround(t.value * 1000.0));
  out += ",\"for_ns\":";
  out += std::to_string(t.for_ns);
  out += '}';
  return out;
}

std::string bundle_filename(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "incident-%06llu.json",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

IncidentRecorder::IncidentRecorder(AlertEngine& engine, IncidentConfig cfg)
    : engine_(&engine), cfg_(cfg) {
  engine.add_transition_observer(
      [this](const AlertTransition& t) { on_transition(t); });
}

void IncidentRecorder::set_event_log(const EventLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  events_ = log;
}

void IncidentRecorder::set_sampler(const WindowedSampler* sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  sampler_ = sampler;
}

void IncidentRecorder::set_fault_injector(const FaultInjector* inj) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = inj;
}

void IncidentRecorder::set_span_collector(const SpanCollector* collector) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_ = collector;
}

void IncidentRecorder::add_flight_recorder(std::string name,
                                           const FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorders_.emplace_back(std::move(name), recorder);
}

void IncidentRecorder::add_section(std::string name,
                                   std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  sections_.emplace_back(std::move(name), std::move(provider));
}

void IncidentRecorder::set_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = std::move(dir);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
}

void IncidentRecorder::on_transition(const AlertTransition& t) {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.push_back(t);
  while (recent_.size() > cfg_.max_transitions) recent_.pop_front();
  if (t.edge != AlertTransition::Edge::kFiring) return;

  // Debounce: an edge inside the window rides the *next* bundle's
  // suppressed list instead of opening its own.
  if (any_bundle_ && t.time_ns - last_bundle_ns_ < cfg_.debounce_ns) {
    suppressed_pending_.emplace_back(t.time_ns, t.name);
    ++suppressed_total_;
    return;
  }

  IncidentBundle bundle;
  bundle.id = next_id_++;
  bundle.time_ns = t.time_ns;
  bundle.rule = t.name;
  bundle.json = capture_locked(t);
  if (!dir_.empty()) {
    const std::string path =
        (std::filesystem::path(dir_) / bundle_filename(bundle.id)).string();
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      std::fwrite(bundle.json.data(), 1, bundle.json.size(), f);
      std::fclose(f);
      bundle.path = path;
    }
  }
  bundles_.push_back(std::move(bundle));
  while (bundles_.size() > cfg_.max_bundles) bundles_.pop_front();
  suppressed_pending_.clear();
  last_bundle_ns_ = t.time_ns;
  any_bundle_ = true;
}

std::string IncidentRecorder::capture_locked(const AlertTransition& t) {
  // One top-level key per line: `incident diff` compares bundles
  // line-by-line, so a changed section diffs as one line, not as one
  // opaque blob.
  std::string out = "{\n";
  out += "\"schema\": \"colibri.incident.v1\",\n";
  out += "\"id\": " + std::to_string(next_id_ - 1) + ",\n";
  out += "\"time_ns\": " + std::to_string(t.time_ns) + ",\n";
  out += "\"trigger\": " + transition_json(t) + ",\n";

  out += "\"suppressed\": [";
  bool first = true;
  for (const auto& [when, rule] : suppressed_pending_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"time_ns\":" + std::to_string(when) + ",\"rule\":";
    append_json_string(out, rule);
    out.push_back('}');
  }
  out += "],\n";

  // Full rule/SLO state at the edge — the engine dispatches observers
  // without its lock held, so these queries are safe from here.
  out += "\"alerts\": [";
  first = true;
  for (const AlertStatus& st : engine_->status()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, st.name);
    out += ",\"state\":\"";
    out += alert_state_name(st.state);
    out += "\",\"severity\":\"";
    out += severity_name(st.severity);
    out += "\",\"value_milli\":";
    out += std::to_string(std::llround(st.last_value * 1000.0));
    out += ",\"has_value\":";
    out += st.has_value ? "true" : "false";
    out += ",\"since_ns\":";
    out += std::to_string(st.since_ns);
    out += ",\"times_fired\":";
    out += std::to_string(st.times_fired);
    out.push_back('}');
  }
  out += "],\n";

  out += "\"slos\": [";
  first = true;
  for (const SloStatus& st : engine_->slo_status()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, st.name);
    out += ",\"state\":\"";
    out += alert_state_name(st.state);
    out += "\",\"burn_rate_milli\":";
    out += std::to_string(std::llround(st.burn_rate * 1000.0));
    out += ",\"budget_remaining_milli\":";
    out += std::to_string(std::llround(st.budget_remaining * 1000.0));
    out += ",\"bad\":";
    out += std::to_string(st.bad);
    out += ",\"total\":";
    out += std::to_string(st.total);
    out.push_back('}');
  }
  out += "],\n";

  out += "\"recent_transitions\": [";
  first = true;
  for (const AlertTransition& tr : recent_) {
    if (!first) out.push_back(',');
    first = false;
    out += transition_json(tr);
  }
  out += "],\n";

  out += "\"events\": [";
  if (events_ != nullptr) {
    const std::vector<Event> evs = events_->events();
    const std::size_t skip =
        evs.size() > cfg_.max_events ? evs.size() - cfg_.max_events : 0;
    first = true;
    for (std::size_t i = skip; i < evs.size(); ++i) {
      if (!first) out.push_back(',');
      first = false;
      out += event_json_no_seq(evs[i]);
    }
  }
  out += "],\n";

  out += "\"windows\": [";
  if (sampler_ != nullptr) {
    first = true;
    for (const SampleWindow& w : sampler_->recent_windows(cfg_.max_windows)) {
      if (!first) out.push_back(',');
      first = false;
      out += window_json(w);
    }
  }
  out += "],\n";

  out += "\"flight_records\": {";
  first = true;
  for (const auto& [name, rec] : recorders_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += jsonl_to_array(rec->to_jsonl());
  }
  out += "},\n";

  out += "\"faults\": ";
  if (faults_ != nullptr) {
    const FaultStats fs = faults_->snapshot();
    out += "{\"msg_delivered\":" + std::to_string(fs.msg_delivered);
    out += ",\"msg_dropped\":" + std::to_string(fs.msg_dropped);
    out += ",\"msg_duplicated\":" + std::to_string(fs.msg_duplicated);
    out += ",\"msg_delayed\":" + std::to_string(fs.msg_delayed);
    out += ",\"link_drops\":" + std::to_string(fs.link_drops);
    out += ",\"wal_faults\":" + std::to_string(fs.wal_faults);
    out.push_back('}');
  } else {
    out += "null";
  }
  out += ",\n";

  out += "\"spans\": ";
  out += spans_ != nullptr ? spans_->trace().to_json() : "null";
  out += ",\n";

  out += "\"sections\": {";
  first = true;
  for (const auto& [name, provider] : sections_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += provider();
  }
  out += "}\n}\n";
  return out;
}

std::size_t IncidentRecorder::bundle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_.size();
}

std::vector<IncidentBundle> IncidentRecorder::bundles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {bundles_.begin(), bundles_.end()};
}

std::uint64_t IncidentRecorder::suppressed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_total_;
}

// --- offline analysis -------------------------------------------------------

namespace {

// Scrapes `"key": <digits>` or `"key":<digits>` out of bundle text.
std::uint64_t scrape_u64(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  std::size_t pos = at + needle.size();
  while (pos < text.size() && text[pos] == ' ') ++pos;
  std::uint64_t v = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(text[pos++] - '0');
  }
  return v;
}

std::string scrape_str(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  std::size_t pos = at + needle.size();
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos >= text.size() || text[pos] != '"') return {};
  ++pos;
  std::string out;
  while (pos < text.size() && text[pos] != '"') out.push_back(text[pos++]);
  return out;
}

std::string read_file(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

}  // namespace

std::vector<IncidentFileInfo> list_incident_bundles(const std::string& dir) {
  std::vector<IncidentFileInfo> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("incident-", 0) != 0 ||
        name.size() < 5 || name.substr(name.size() - 5) != ".json") {
      continue;
    }
    const std::string text = read_file(entry.path().string());
    IncidentFileInfo info;
    info.path = entry.path().string();
    info.id = scrape_u64(text, "id");
    info.time_ns = static_cast<TimeNs>(scrape_u64(text, "time_ns"));
    info.rule = scrape_str(text, "rule");
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const IncidentFileInfo& a, const IncidentFileInfo& b) {
              return a.path < b.path;
            });
  return out;
}

std::string diff_incident_bundles(const std::string& a, const std::string& b) {
  const auto split = [](const std::string& text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
    return lines;
  };
  const std::vector<std::string> la = split(a), lb = split(b);
  std::string out;
  const std::size_t n = std::max(la.size(), lb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* va = i < la.size() ? &la[i] : nullptr;
    const std::string* vb = i < lb.size() ? &lb[i] : nullptr;
    if (va != nullptr && vb != nullptr && *va == *vb) continue;
    if (va != nullptr) out += "- " + *va + "\n";
    if (vb != nullptr) out += "+ " + *vb + "\n";
  }
  return out;
}

}  // namespace colibri::telemetry
