// Lightweight span tracing for the control plane.
//
// A control-plane request travels hop-by-hop down the path and the
// response is assembled on the unwind (paper Fig. 1a/1b); the MessageBus
// opens one span per hop call, so a collected trace is the full nested
// forward/unwind tree of a request. Spans record wall duration of the
// whole subtree; `SpanTrace::self_time_ns()` subtracts the direct
// children, giving the per-hop processing (forward + unwind work at that
// AS, excluding downstream).
//
// Spans carry a process-unique id, a category ("bus", ...) and typed
// key/value args; code running *inside* an open span (the CServ
// admission handlers) annotates the innermost span through the
// collector — that is how a reservation id propagates hop-by-hop
// through a setup without threading a context parameter through every
// call. The Perfetto exporter (trace_export.hpp) renders the result
// one track per AS.
//
// Collection is opt-in: when disabled (the default) the bus pays one
// predictable branch per call and records nothing — the
// zero-overhead-when-unused guarantee documented in DESIGN.md.
//
// take()/enable() while spans are still open is well-defined: the open
// spans are closed-as-truncated in the drained trace (duration -1,
// truncated flag set) and the epoch advances, so a close() issued for a
// span from before the drain is recognized by its stale epoch and
// ignored instead of corrupting the next trace.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace colibri::telemetry {

struct Span {
  std::string name;              // e.g. destination AS of the hop call
  std::string category;          // "bus" for hop calls; free-form
  std::uint64_t id = 0;          // unique per collector, never reused
  std::int32_t parent = -1;      // index into SpanTrace::spans, -1 = root
  std::int32_t depth = 0;        // nesting depth (0 = initiator's call)
  std::int64_t start_ns = 0;     // relative to the trace start
  std::int64_t duration_ns = 0;  // wall time of the subtree; -1 truncated
  std::uint64_t bytes = 0;       // request payload size
  bool truncated = false;        // still open when the trace was drained
  // Distributed-tracing identity (zero = span not part of a cross-AS
  // trace). Raw u64s rather than a proto type: telemetry sits below
  // proto in the library layering. ctx_span names this hop on the wire;
  // ctx_parent names the upstream hop's span — the TraceAssembler links
  // captures into one causal tree through these.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t ctx_span = 0;
  std::uint64_t ctx_parent = 0;
  // Annotations attached while the span was open (res_id, verdict, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

struct SpanTrace {
  std::vector<Span> spans;
  std::int64_t origin_ns = 0;  // absolute time of start_ns == 0

  // Span duration minus its direct children: the hop's own processing.
  std::int64_t self_time_ns(std::size_t i) const;
  std::string to_json() const;
};

class SpanCollector {
 public:
  bool enabled() const { return enabled_; }

  // Clears any previous trace and starts collecting. Spans left open by
  // an earlier epoch are abandoned (their close() becomes a no-op).
  void enable() {
    enabled_ = true;
    trace_ = {};
    stack_.clear();
    origin_ns_ = -1;
    ++epoch_;
  }
  void disable() { enabled_ = false; }

  // Drains the collected trace (collection stays enabled). Spans still
  // open are closed-as-truncated in the returned trace; their pending
  // close() calls are ignored.
  SpanTrace take();
  const SpanTrace& trace() const { return trace_; }

  // Recording API (used by the MessageBus). `open` returns an opaque
  // token to pass back to `close`; a token from before the last take()
  // or enable() closes nothing.
  std::size_t open(std::string name, std::int64_t now_ns, std::uint64_t bytes,
                   std::string category = "bus");
  void close(std::size_t token, std::int64_t now_ns);
  // Stamps the distributed-tracing identity onto an open span; a stale
  // token (from before the last take()/enable()) is ignored like close().
  void set_trace_ids(std::size_t token, std::uint64_t trace_hi,
                     std::uint64_t trace_lo, std::uint64_t span_id,
                     std::uint64_t parent_span_id);

  // Attaches a key/value arg to the innermost open span; no-op when
  // disabled or no span is open. This is the trace-context propagation
  // hook: handlers running under a bus span tag it with what they
  // decided (reservation id, admission verdict, granted bandwidth).
  void annotate(std::string_view key, std::string_view value);
  // True iff a span is currently open (annotations would attach).
  bool in_span() const { return enabled_ && !stack_.empty(); }

 private:
  static constexpr std::uint32_t kIndexBits = 32;

  bool enabled_ = false;
  std::int64_t origin_ns_ = -1;
  std::uint64_t epoch_ = 1;
  std::uint64_t next_id_ = 1;
  SpanTrace trace_;
  std::vector<std::size_t> stack_;  // indices of currently open spans
};

}  // namespace colibri::telemetry
