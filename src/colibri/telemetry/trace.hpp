// Lightweight span tracing for the control plane.
//
// A control-plane request travels hop-by-hop down the path and the
// response is assembled on the unwind (paper Fig. 1a/1b); the MessageBus
// opens one span per hop call, so a collected trace is the full nested
// forward/unwind tree of a request. Spans record wall duration of the
// whole subtree; `SpanTrace::self_time_ns()` subtracts the direct
// children, giving the per-hop processing (forward + unwind work at that
// AS, excluding downstream).
//
// Collection is opt-in: when disabled (the default) the bus pays one
// predictable branch per call and records nothing — the
// zero-overhead-when-unused guarantee documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace colibri::telemetry {

struct Span {
  std::string name;              // e.g. destination AS of the hop call
  std::int32_t parent = -1;      // index into SpanTrace::spans, -1 = root
  std::int32_t depth = 0;        // nesting depth (0 = initiator's call)
  std::int64_t start_ns = 0;     // relative to the trace start
  std::int64_t duration_ns = 0;  // wall time of the whole subtree
  std::uint64_t bytes = 0;       // request payload size
};

struct SpanTrace {
  std::vector<Span> spans;

  // Span duration minus its direct children: the hop's own processing.
  std::int64_t self_time_ns(std::size_t i) const;
  std::string to_json() const;
};

class SpanCollector {
 public:
  bool enabled() const { return enabled_; }

  // Clears any previous trace and starts collecting.
  void enable() {
    enabled_ = true;
    trace_.spans.clear();
    stack_.clear();
    origin_ns_ = -1;
  }
  void disable() { enabled_ = false; }

  // Drains the collected trace (collection stays enabled).
  SpanTrace take();
  const SpanTrace& trace() const { return trace_; }

  // Recording API (used by the MessageBus). `open` returns the span
  // index to pass back to `close`.
  std::size_t open(std::string name, std::int64_t now_ns, std::uint64_t bytes);
  void close(std::size_t index, std::int64_t now_ns);

 private:
  bool enabled_ = false;
  std::int64_t origin_ns_ = -1;
  SpanTrace trace_;
  std::vector<std::size_t> stack_;  // indices of currently open spans
};

}  // namespace colibri::telemetry
