// Fleet-wide metrics federation: the cross-AS rollup layer on top of
// the per-AS MetricsRegistry.
//
// Every telemetry surface so far is per-AS: one registry per control
// plane, one sampler per registry. A topology-wide question — "what is
// the whole fleet admitting per second", "which reservation consumes
// the most bandwidth anywhere" — needs a collector that visits every
// AS's registry, takes snapshot deltas (the same delta machinery
// WindowedSampler applies to a single registry), and rolls the deltas
// up hierarchically: per-AS -> per-link -> fleet.
//
// Memory is bounded by construction: the collector remembers previous
// values only for series it actually rolls up (the registered rollup
// families plus per-reservation counters under `reservation_prefix`),
// capped fleet-wide at `max_tracked_series`. Series beyond the budget
// are dropped *and counted* (fleet.series_dropped) — a truncated view
// must never read as a complete one. Per-reservation counters feed a
// space-saving top-K sketch, so fleet-wide heavy hitters surface with
// O(k) state no matter how many reservations exist.
//
// Collection is Clock-driven like WindowedSampler: poll() cuts a fleet
// window only when one period of Clock time has elapsed, so a SimClock
// scenario federates deterministically — identical runs produce
// identical fleet windows, heavy-hitter rankings, and fleet.* exports.
// The collector is itself a MetricsSource: registered with an export
// registry it re-exports the fleet rollup as fleet.* series through
// the ordinary JSON-snapshot / OpenMetrics pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri::telemetry {

struct FleetCollectorConfig {
  // Minimum Clock time between fleet windows; poll() calls inside one
  // period are no-ops (same contract as WindowedSampler).
  TimeNs period_ns = kNsPerSec;
  // Fleet windows retained for span queries.
  std::size_t ring_capacity = 16;
  // Heavy-hitter sketch capacity (space-saving: O(top_k) state).
  std::size_t top_k = 8;
  // Counters named "<reservation_prefix><id>.<rest>" feed the sketch,
  // keyed by <id>, valued by the per-window delta.
  std::string reservation_prefix = "res.";
  // Fleet-wide cap on remembered previous-value entries across all
  // members. Beyond it, new series are dropped and counted.
  std::size_t max_tracked_series = 65536;
};

// One heavy-hitter entry: `estimate` over-counts by at most `error`
// (the space-saving guarantee), so estimate - error is a lower bound on
// the reservation's true accumulated delta.
struct FleetTopEntry {
  std::string key;
  std::uint64_t estimate = 0;
  std::uint64_t error = 0;
};

class FleetCollector : public MetricsSource {
 public:
  // Exports fleet.* through `export_registry` (nullptr = query-only).
  FleetCollector(const Clock& clock, FleetCollectorConfig cfg = {},
                 MetricsRegistry* export_registry = nullptr);
  ~FleetCollector() override = default;

  FleetCollector(const FleetCollector&) = delete;
  FleetCollector& operator=(const FleetCollector&) = delete;

  // Registers one AS's registry under `name` (e.g. "1-10"). The
  // registry must outlive the collector. Member order is rollup order,
  // which keeps every export deterministic.
  void add_member(std::string name, const MetricsRegistry& registry);
  // Registers an inter-AS link as a named member pair; its rollup is
  // the sum of the two endpoints' deltas. Unknown member names throw.
  void add_link(std::string name, std::string_view member_a,
                std::string_view member_b);
  // Registers a counter family to roll up (trailing '.' = prefix sum,
  // e.g. "router.drop.").
  void add_rollup(std::string series);

  // Cuts a new fleet window if at least one period elapsed; the first
  // poll only captures the baseline (no window). Returns true when a
  // window was cut. Run one collection loop per collector.
  bool poll();

  // --- queries -----------------------------------------------------------
  // Per-second fleet-wide rate of a rollup family over `span_ns` of the
  // retained ring (kSpanAll = whole ring).
  double fleet_rate(std::string_view series,
                    TimeNs span_ns = WindowedSampler::kSpanAll) const;
  // Per-member / per-link rate over the latest window only (0 before
  // the first window or for unknown names).
  double as_rate(std::string_view member, std::string_view series) const;
  double link_rate(std::string_view link, std::string_view series) const;
  // Heavy hitters, highest estimate first (ties broken by key).
  std::vector<FleetTopEntry> top_hitters() const;

  std::size_t member_count() const;
  std::size_t link_count() const;
  std::size_t window_count() const;       // retained in the ring
  std::uint64_t windows_sampled() const;  // total since construction
  std::size_t tracked_series() const;     // prev-value entries, fleet-wide
  std::uint64_t dropped_series() const;   // budget-exceeded drops
  const std::vector<std::string>& member_names() const { return names_; }

  // fleet.as_count, fleet.link_count, fleet.windows, fleet.series_*,
  // fleet.top.*, and one fleet.rate.<family> gauge per rollup family.
  void collect_metrics(MetricSink& sink) const override;

 private:
  struct Member {
    std::string name;
    const MetricsRegistry* registry = nullptr;
    // Previous values of matched series only (the memory budget).
    std::map<std::string, std::uint64_t> prev;
    // Latest-window delta per rollup family.
    std::map<std::string, std::uint64_t> last_deltas;
  };
  struct Link {
    std::string name;
    std::size_t a = 0;  // member indices
    std::size_t b = 0;
  };
  struct SketchEntry {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  // Rollup family the counter belongs to, or nullptr.
  const std::string* match_rollup(std::string_view name) const;
  // Space-saving update: admit `key` with weight `delta`.
  void sketch_add(const std::string& key, std::uint64_t delta);

  const Clock* clock_;
  FleetCollectorConfig cfg_;

  std::atomic<TimeNs> last_end_ns_;

  mutable std::mutex mu_;
  std::vector<Member> members_;
  std::vector<std::string> names_;  // member names, registration order
  std::vector<Link> links_;
  std::vector<std::string> rollups_;
  bool have_baseline_ = false;
  std::deque<SampleWindow> ring_;  // fleet-level rollup windows
  std::uint64_t windows_sampled_ = 0;
  std::size_t tracked_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::string, SketchEntry> sketch_;

  ScopedSource registration_;
};

}  // namespace colibri::telemetry
