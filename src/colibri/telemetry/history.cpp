#include "colibri/telemetry/history.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace colibri::telemetry {
namespace {

// Frame kinds. A decoder meeting an unknown kind treats the rest of the
// segment as damaged (same stance as the reservation WAL): a new kind
// means a newer writer, and guessing at its framing would desync.
constexpr std::uint8_t kWindowFrame = 1;

constexpr char kSegmentPrefix[] = "history-";
constexpr char kSegmentSuffix[] = ".seg";

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return buf;
}

// Parses the numeric index out of "history-<n>.seg"; nullopt for
// foreign files a directory backend may list.
std::optional<std::uint64_t> segment_index(std::string_view name) {
  const std::string_view prefix = kSegmentPrefix;
  const std::string_view suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : name.substr(prefix.size(),
                                  name.size() - prefix.size() -
                                      suffix.size())) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

// --- varints ----------------------------------------------------------------

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_svarint(Bytes& out, std::int64_t v) { put_varint(out, zigzag(v)); }

// Checked varint reader over a frame payload.
struct PayloadReader {
  BytesView data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos < data.size() && shift < 64) {
      const std::uint8_t b = data[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    ok = false;
    return 0;
  }
  std::int64_t svarint() { return unzigzag(varint()); }
  std::string str(std::size_t n) {
    if (data.size() - pos < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
};

// --- series dictionary ------------------------------------------------------
// First use writes id + length + name; later uses write the id alone.
// Ids are dense and first-use ordered, so writer and reader stay in
// lockstep without any table frame.

void put_series(Bytes& out, const std::string& name,
                HistoryCodecState& state) {
  if (const auto it = state.ids.find(name); it != state.ids.end()) {
    put_varint(out, it->second);
    return;
  }
  const auto id = static_cast<std::uint32_t>(state.names.size());
  state.ids.emplace(name, id);
  state.names.push_back(name);
  put_varint(out, id);
  put_varint(out, name.size());
  append_bytes(out, BytesView(
                        reinterpret_cast<const std::uint8_t*>(name.data()),
                        name.size()));
}

std::string get_series(PayloadReader& r, HistoryCodecState& state) {
  const std::uint64_t id = r.varint();
  if (!r.ok) return {};
  if (id < state.names.size()) return state.names[id];
  if (id != state.names.size()) {  // ids are dense; a gap is corruption
    r.ok = false;
    return {};
  }
  const std::uint64_t len = r.varint();
  std::string name = r.str(len);
  if (!r.ok) return {};
  state.ids.emplace(name, static_cast<std::uint32_t>(id));
  state.names.push_back(name);
  return name;
}

}  // namespace

// --- frame codec ------------------------------------------------------------

Bytes encode_history_frame(const SampleWindow& w, HistoryCodecState& state) {
  Bytes payload;
  // Timestamps: the first frame of a segment anchors absolute time;
  // later frames ride deltas (start relative to the previous end —
  // normally zero, windows being contiguous — and end relative to
  // start, i.e. the window's elapsed time).
  if (state.first) {
    put_svarint(payload, w.start_ns);
  } else {
    put_svarint(payload, w.start_ns - state.prev_end_ns);
  }
  put_varint(payload, static_cast<std::uint64_t>(w.end_ns - w.start_ns));

  put_varint(payload, w.counter_deltas.size());
  for (const auto& [name, delta] : w.counter_deltas) {
    put_series(payload, name, state);
    put_varint(payload, delta);
  }

  // Gauges delta-encode against the series' previous level in this
  // segment (baseline 0), so a steady gauge costs one byte per window.
  put_varint(payload, w.gauges.size());
  for (const auto& [name, level] : w.gauges) {
    put_series(payload, name, state);
    std::int64_t& base = state.gauge_base[name];
    put_svarint(payload, level - base);
    base = level;
  }

  put_varint(payload, w.histogram_deltas.size());
  for (const auto& [name, h] : w.histogram_deltas) {
    put_series(payload, name, state);
    put_varint(payload, h.count);
    put_varint(payload, h.sum);
    std::uint64_t nonzero = 0;
    for (const std::uint64_t b : h.buckets) nonzero += b != 0;
    put_varint(payload, nonzero);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      put_varint(payload, i);
      put_varint(payload, h.buckets[i]);
    }
  }

  state.prev_end_ns = w.end_ns;
  state.first = false;

  // Frame head: kind, u32 length, payload; CRC spans the whole head so
  // damage anywhere in the frame — length byte included — is rejected.
  Bytes frame;
  frame.reserve(1 + 4 + payload.size() + 4);
  frame.push_back(kWindowFrame);
  put_le<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  append_bytes(frame, payload);
  put_le<std::uint32_t>(frame, reservation::crc32(frame));
  return frame;
}

std::optional<SampleWindow> decode_history_frame(BytesView data,
                                                 std::size_t& off,
                                                 HistoryCodecState& state) {
  if (data.size() - off < 1 + 4 + 4) return std::nullopt;
  const std::uint8_t kind = data[off];
  const std::uint32_t len = get_le<std::uint32_t>(data.data() + off + 1);
  if (data.size() - off < 1 + 4 + static_cast<std::size_t>(len) + 4) {
    return std::nullopt;
  }
  const std::uint32_t stored =
      get_le<std::uint32_t>(data.data() + off + 1 + 4 + len);
  if (reservation::crc32(data.subspan(off, 1 + 4 + len)) != stored) {
    return std::nullopt;
  }
  if (kind != kWindowFrame) return std::nullopt;

  // The CRC passed, so the payload is exactly what the writer framed;
  // a decode failure past this point (truncated varint, dictionary
  // gap) still returns nullopt and the caller discards the suffix.
  HistoryCodecState tentative = state;
  PayloadReader r{data.subspan(off + 1 + 4, len)};
  SampleWindow w;
  const std::int64_t start_delta = r.svarint();
  w.start_ns = tentative.first ? start_delta
                               : tentative.prev_end_ns + start_delta;
  w.end_ns = w.start_ns + static_cast<TimeNs>(r.varint());

  const std::uint64_t n_counters = r.varint();
  for (std::uint64_t i = 0; r.ok && i < n_counters; ++i) {
    std::string name = get_series(r, tentative);
    const std::uint64_t delta = r.varint();
    if (r.ok) w.counter_deltas.emplace(std::move(name), delta);
  }
  const std::uint64_t n_gauges = r.varint();
  for (std::uint64_t i = 0; r.ok && i < n_gauges; ++i) {
    std::string name = get_series(r, tentative);
    const std::int64_t delta = r.svarint();
    if (!r.ok) break;
    std::int64_t& base = tentative.gauge_base[name];
    base += delta;
    w.gauges.emplace(std::move(name), base);
  }
  const std::uint64_t n_hists = r.varint();
  for (std::uint64_t i = 0; r.ok && i < n_hists; ++i) {
    std::string name = get_series(r, tentative);
    HistogramSnapshot h;
    h.count = r.varint();
    h.sum = r.varint();
    const std::uint64_t nonzero = r.varint();
    for (std::uint64_t b = 0; r.ok && b < nonzero; ++b) {
      const std::uint64_t idx = r.varint();
      const std::uint64_t cnt = r.varint();
      if (idx >= kHistogramBuckets) {
        r.ok = false;
        break;
      }
      h.buckets[idx] = cnt;
    }
    if (r.ok) w.histogram_deltas.emplace(std::move(name), h);
  }
  if (!r.ok || r.pos != len) return std::nullopt;

  tentative.prev_end_ns = w.end_ns;
  tentative.first = false;
  state = std::move(tentative);
  off += 1 + 4 + static_cast<std::size_t>(len) + 4;
  return w;
}

// --- backends ---------------------------------------------------------------

std::vector<std::string> MemoryHistoryBackend::segments() const {
  std::vector<std::string> out;
  out.reserve(segs_.size());
  for (const auto& [name, _] : segs_) out.push_back(name);
  return out;
}

reservation::LogStorage& MemoryHistoryBackend::open(const std::string& name) {
  auto& slot = segs_[name];
  if (!slot) slot = std::make_unique<reservation::MemoryStorage>();
  return *slot;
}

void MemoryHistoryBackend::remove(const std::string& name) {
  segs_.erase(name);
}

reservation::MemoryStorage* MemoryHistoryBackend::segment(
    const std::string& name) {
  const auto it = segs_.find(name);
  return it == segs_.end() ? nullptr : it->second.get();
}

DirectoryHistoryBackend::DirectoryHistoryBackend(std::string dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
}

std::vector<std::string> DirectoryHistoryBackend::segments() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (segment_index(name)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

reservation::LogStorage& DirectoryHistoryBackend::open(
    const std::string& name) {
  auto& slot = open_[name];
  if (!slot) {
    slot = std::make_unique<reservation::FileStorage>(
        (std::filesystem::path(dir_) / name).string());
  }
  return *slot;
}

void DirectoryHistoryBackend::remove(const std::string& name) {
  open_.erase(name);
  std::error_code ec;
  std::filesystem::remove(std::filesystem::path(dir_) / name, ec);
}

// --- store ------------------------------------------------------------------

HistoryStore::HistoryStore(HistoryBackend& backend, HistoryConfig cfg,
                           MetricsRegistry* registry)
    : backend_(&backend), cfg_(cfg), registration_() {
  if (cfg_.max_segment_bytes == 0) cfg_.max_segment_bytes = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recover_locked();
  }
  registration_.rebind(registry, this);
}

void HistoryStore::recover_locked() {
  for (const std::string& name : backend_->segments()) {
    const auto idx = segment_index(name);
    if (!idx) continue;
    next_segment_index_ = std::max(next_segment_index_, *idx + 1);

    const Bytes raw = backend_->open(name).read_all();
    Segment seg;
    seg.name = name;
    seg.bytes = raw.size();
    HistoryCodecState state;
    std::size_t off = 0;
    while (off < raw.size()) {
      auto w = decode_history_frame(raw, off, state);
      if (!w) break;  // torn tail / corrupt frame: seal the prefix
      if (seg.windows.empty()) seg.first_start_ns = w->start_ns;
      seg.last_end_ns = w->end_ns;
      last_appended_end_ns_ = std::max(last_appended_end_ns_, w->end_ns);
      seg.windows.push_back(std::move(*w));
      ++stats_.frames_recovered;
    }
    if (off < raw.size()) {
      ++stats_.corrupt_segments;
      stats_.discarded_bytes += raw.size() - off;
    }
    ++stats_.segments_recovered;
    segments_.push_back(std::move(seg));
  }
  // Appends never continue a recovered segment — its tail may be torn,
  // and its codec state would have to be replayed byte-exactly. The
  // next append opens a fresh segment instead.
  writable_open_ = false;
}

void HistoryStore::rotate_locked(TimeNs first_start_ns) {
  Segment seg;
  seg.name = segment_name(next_segment_index_++);
  seg.first_start_ns = first_start_ns;
  segments_.push_back(std::move(seg));
  enc_ = HistoryCodecState{};
  writable_open_ = true;
}

void HistoryStore::compact_locked(TimeNs newest_end_ns) {
  const auto drop_oldest = [&] {
    backend_->remove(segments_.front().name);
    segments_.pop_front();
    ++stats_.segments_dropped;
  };
  if (cfg_.max_segments > 0) {
    while (segments_.size() > cfg_.max_segments) drop_oldest();
  }
  if (cfg_.retention_ns > 0) {
    while (segments_.size() > 1 &&
           segments_.front().last_end_ns < newest_end_ns - cfg_.retention_ns) {
      drop_oldest();
    }
  }
}

void HistoryStore::append(const SampleWindow& w) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool age_rotate =
      writable_open_ && !segments_.empty() &&
      !segments_.back().windows.empty() &&
      w.end_ns - segments_.back().first_start_ns >=
          static_cast<TimeNs>(cfg_.max_segment_age_ns);
  if (!writable_open_ || age_rotate ||
      segments_.back().bytes >= cfg_.max_segment_bytes) {
    if (age_rotate || (writable_open_ &&
                       segments_.back().bytes >= cfg_.max_segment_bytes)) {
      ++stats_.rotations;
    }
    rotate_locked(w.start_ns);
  }

  const Bytes frame = encode_history_frame(w, enc_);
  Segment& seg = segments_.back();
  backend_->open(seg.name).append(frame);
  seg.bytes += frame.size();
  if (seg.windows.empty()) seg.first_start_ns = w.start_ns;
  seg.last_end_ns = w.end_ns;
  seg.windows.push_back(w);
  last_appended_end_ns_ = std::max(last_appended_end_ns_, w.end_ns);
  ++stats_.frames_appended;
  stats_.bytes_appended += frame.size();

  compact_locked(w.end_ns);
}

bool HistoryStore::append_latest(const WindowedSampler& sampler) {
  const std::optional<SampleWindow> w = sampler.latest_window();
  if (!w) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (w->end_ns <= last_appended_end_ns_) return false;
  }
  append(*w);
  return true;
}

namespace {

// Half-open span semantics: a window counts when it overlaps (since,
// until) with nonzero measure — a window *ending* exactly at `since` or
// *starting* exactly at `until` contributes nothing to the span and is
// excluded, so adjacent spans partition the timeline without double
// counting.
bool overlaps(const SampleWindow& w, TimeNs since_ns, TimeNs until_ns) {
  return w.end_ns > since_ns && w.start_ns < until_ns;
}

bool series_matches(std::string_view name, std::string_view series,
                    bool prefix) {
  return prefix ? name.substr(0, series.size()) == series : name == series;
}

}  // namespace

std::vector<SampleWindow> HistoryStore::windows(TimeNs since_ns,
                                                TimeNs until_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SampleWindow> out;
  for (const Segment& seg : segments_) {
    for (const SampleWindow& w : seg.windows) {
      if (overlaps(w, since_ns, until_ns)) out.push_back(w);
    }
  }
  return out;
}

std::uint64_t HistoryStore::counter_delta(std::string_view series,
                                          TimeNs since_ns, TimeNs until_ns,
                                          bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sum = 0;
  for (const Segment& seg : segments_) {
    for (const SampleWindow& w : seg.windows) {
      if (!overlaps(w, since_ns, until_ns)) continue;
      if (prefix) {
        for (auto it = w.counter_deltas.lower_bound(std::string(series));
             it != w.counter_deltas.end() &&
             series_matches(it->first, series, true);
             ++it) {
          sum += it->second;
        }
      } else if (auto it = w.counter_deltas.find(std::string(series));
                 it != w.counter_deltas.end()) {
        sum += it->second;
      }
    }
  }
  return sum;
}

double HistoryStore::rate(std::string_view series, TimeNs since_ns,
                          TimeNs until_ns, bool prefix) const {
  std::uint64_t delta = 0;
  TimeNs elapsed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Segment& seg : segments_) {
      for (const SampleWindow& w : seg.windows) {
        if (!overlaps(w, since_ns, until_ns)) continue;
        elapsed += w.elapsed_ns();
        if (prefix) {
          for (auto it = w.counter_deltas.lower_bound(std::string(series));
               it != w.counter_deltas.end() &&
               series_matches(it->first, series, true);
               ++it) {
            delta += it->second;
          }
        } else if (auto it = w.counter_deltas.find(std::string(series));
                   it != w.counter_deltas.end()) {
          delta += it->second;
        }
      }
    }
  }
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(delta) * static_cast<double>(kNsPerSec) /
         static_cast<double>(elapsed);
}

HistogramSnapshot HistoryStore::histogram_delta(std::string_view series,
                                                TimeNs since_ns,
                                                TimeNs until_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot merged;
  for (const Segment& seg : segments_) {
    for (const SampleWindow& w : seg.windows) {
      if (!overlaps(w, since_ns, until_ns)) continue;
      if (auto it = w.histogram_deltas.find(std::string(series));
          it != w.histogram_deltas.end()) {
        merged.merge(it->second);
      }
    }
  }
  return merged;
}

std::optional<double> HistoryStore::percentile(std::string_view series,
                                               double q, TimeNs since_ns,
                                               TimeNs until_ns) const {
  const HistogramSnapshot h = histogram_delta(series, since_ns, until_ns);
  if (h.count == 0) return std::nullopt;
  return h.percentile(q);
}

std::optional<std::int64_t> HistoryStore::gauge_level(std::string_view series,
                                                      TimeNs since_ns,
                                                      TimeNs until_ns,
                                                      bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest window in the span wins, matching the sampler's "latest
  // sampled level" semantics.
  for (auto seg = segments_.rbegin(); seg != segments_.rend(); ++seg) {
    for (auto w = seg->windows.rbegin(); w != seg->windows.rend(); ++w) {
      if (w->end_ns < since_ns || w->start_ns > until_ns) continue;
      if (!prefix) {
        if (auto it = w->gauges.find(std::string(series));
            it != w->gauges.end()) {
          return it->second;
        }
        continue;
      }
      std::optional<std::int64_t> best;
      for (auto it = w->gauges.lower_bound(std::string(series));
           it != w->gauges.end() && series_matches(it->first, series, true);
           ++it) {
        best = best ? std::max(*best, it->second) : it->second;
      }
      if (best) return best;
    }
  }
  return std::nullopt;
}

std::size_t HistoryStore::window_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Segment& seg : segments_) n += seg.windows.size();
  return n;
}

std::size_t HistoryStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

HistoryStats HistoryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HistoryStore::collect_metrics(MetricSink& sink) const {
  std::lock_guard<std::mutex> lock(mu_);
  sink.counter("telemetry.history.frames_appended", stats_.frames_appended);
  sink.counter("telemetry.history.bytes_appended", stats_.bytes_appended);
  sink.counter("telemetry.history.rotations", stats_.rotations);
  sink.counter("telemetry.history.segments_dropped", stats_.segments_dropped);
  sink.counter("telemetry.history.frames_recovered", stats_.frames_recovered);
  sink.counter("telemetry.history.discarded_bytes", stats_.discarded_bytes);
  sink.gauge("telemetry.history.segments",
             static_cast<std::int64_t>(segments_.size()));
  std::size_t windows = 0;
  for (const Segment& seg : segments_) windows += seg.windows.size();
  sink.gauge("telemetry.history.windows", static_cast<std::int64_t>(windows));
}

}  // namespace colibri::telemetry
