// Per-stage data-plane latency profiler.
//
// The batched pipelines (BorderRouter::process_batch, Gateway::
// process_batch) run fixed stages — header sanity, state prefetch,
// multi-lane HVF crypto, sequential finalize — across a whole batch.
// The metrics layer so far counts *outcomes*; this profiler attributes
// *time*: each component owns a StageProfiler whose per-stage pow2-
// bucket histograms record the nanoseconds every stage spent on every
// batch, plus a batch-occupancy histogram (how full batches actually
// are, which bounds the amortization the pipeline can deliver).
//
// Cost model, in line with the rest of the telemetry layer:
//  * disabled (the default): the owning component checks `enabled()`
//    once per batch (scalar paths: once per packet) — one predictable
//    branch, no clock reads, no stores;
//  * enabled: one steady-clock read per stage boundary plus one
//    histogram record — a handful of relaxed stores, no locks, no
//    allocation. Like the counters, a profiler is single-writer (one
//    thread drives a router/gateway instance) with torn-free readers.
//
// Stage timings can additionally be captured as spans (begin/end pairs
// tagged with the batch sequence number) for the Perfetto trace export
// (trace_export.hpp); span capture is bounded and preallocated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

// Monotonic nanosecond clock used for all profiler timings. Kept
// separate from colibri::Clock on purpose: profiling measures real
// elapsed time even under a SimClock.
std::int64_t profiler_now_ns();

// One captured stage execution (span capture mode only).
struct StageSpan {
  std::uint8_t stage = 0;    // index into the profiler's stage table
  std::uint32_t batch = 0;   // batch sequence number within this profiler
  std::int64_t t0_ns = 0;    // profiler_now_ns() at stage entry
  std::int64_t t1_ns = 0;    // profiler_now_ns() at stage exit
};

class StageProfiler {
 public:
  static constexpr std::size_t kMaxStages = 8;

  // `stages` are short stable labels ("header_sanity", "hvf_crypto");
  // metric names become "stage.<label>_ns" under the owner's prefix.
  StageProfiler(std::initializer_list<const char*> stages);

  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Timing pattern for a staged pipeline (zero work when disabled):
  //   std::int64_t tp = prof.begin();          // 0 when disabled
  //   ...stage A...;  tp = prof.lap(kStageA, tp);
  //   ...stage B...;  tp = prof.lap(kStageB, tp);
  // `lap` records [t0, now) into the stage histogram and returns `now`
  // so consecutive stages share one clock read per boundary. Callers
  // must guard lap/finish behind `enabled()`.
  std::int64_t begin() const { return enabled_ ? profiler_now_ns() : 0; }
  std::int64_t lap(std::size_t stage, std::int64_t t0) {
    const std::int64_t t1 = profiler_now_ns();
    record(stage, t0, t1);
    return t1;
  }
  // One-shot record for scalar paths: [t0, now).
  void finish(std::size_t stage, std::int64_t t0) {
    record(stage, t0, profiler_now_ns());
  }
  void record(std::size_t stage, std::int64_t t0, std::int64_t t1);

  // Batch occupancy: call once per processed batch with its size.
  // Advances the batch sequence number used to tag captured spans.
  void count_batch(std::size_t occupancy);

  // --- span capture (for the Perfetto export) --------------------------
  // Keeps the most recent `max_spans` stage executions (0 disables).
  // Storage is preallocated here; capture itself never allocates.
  void set_span_capture(std::size_t max_spans);
  bool capturing() const { return span_cap_ != 0; }
  // Oldest-first copy of the captured window; capture continues.
  std::vector<StageSpan> spans() const;
  void clear_spans() { span_count_ = 0; }

  // --- exposition ------------------------------------------------------
  std::size_t stage_count() const { return names_.size(); }
  const std::string& stage_name(std::size_t i) const { return names_[i]; }
  HistogramSnapshot stage_snapshot(std::size_t i) const {
    return hists_[i].snapshot();
  }
  HistogramSnapshot occupancy_snapshot() const {
    return occupancy_.snapshot();
  }
  std::uint64_t batches() const { return batch_seq_; }

  // Emits bare names ("stage.<label>_ns", "batch_occupancy") so owners
  // route them through their own PrefixedSink; stages that never ran
  // are elided, matching the other latency histograms.
  void collect_metrics(MetricSink& sink) const;
  void reset();

 private:
  bool enabled_ = false;
  std::vector<std::string> names_;
  std::vector<Histogram> hists_;
  Histogram occupancy_;
  std::uint32_t batch_seq_ = 0;

  // Span ring (single-writer, reader copies like the flight recorder).
  std::vector<StageSpan> span_ring_;
  std::size_t span_cap_ = 0;
  std::uint64_t span_count_ = 0;  // monotonic; ring index = count % cap
};

}  // namespace colibri::telemetry
