// OpenMetrics text exposition of a MetricsSnapshot.
//
// The JSON export (MetricsSnapshot::to_json()) is the programmatic
// interface; this renders the same snapshot in the OpenMetrics text
// format so any Prometheus-compatible scraper can consume a Colibri
// process without an adapter. Both exports walk the same snapshot, so
// they agree on every series by construction (and a test asserts it).
//
// Mapping:
//  * internal names are dotted ("router.drop.auth-failed"); exposition
//    names are prefixed "colibri_" and sanitized ('.', '-' -> '_'):
//    colibri_router_drop_auth_failed
//  * counters emit "# TYPE <n> counter" + "<n>_total <v>"
//  * gauges emit "# TYPE <n> gauge" + "<n> <v>"
//  * histograms emit cumulative "<n>_bucket{le="..."}" lines over the
//    power-of-two bucket bounds (zero-count buckets are elided; the
//    +Inf bucket is always present), then "<n>_sum" and "<n>_count"
//  * well-known series families additionally get a "# HELP" line
//    (before TYPE, as the spec orders them), with the help text
//    escaped per the spec; label values go through the same escaping
//  * the exposition ends with the spec-required "# EOF" terminator
//
// parse_openmetrics() is the strict inverse: it validates the
// structural rules (metadata ordering, name/label syntax, duplicate
// series) and *requires and consumes* the "# EOF" terminator — an
// exposition without it, or with content after it, is rejected. Tests
// round-trip every export through it, and scrape-side tooling can use
// it to detect truncated responses (the reason the spec added EOF).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

// "router.drop.auth-failed" -> "colibri_router_drop_auth_failed".
// Any character outside [a-zA-Z0-9_:] becomes '_'; a leading digit is
// prefixed with '_'.
std::string openmetrics_name(std::string_view internal_name);

// Label-value escaping per the OpenMetrics text format: backslash,
// double quote, and line feed become \\ \" \n.
std::string openmetrics_escape_label(std::string_view value);
// HELP-text escaping: backslash and line feed only (quotes are legal).
std::string openmetrics_escape_help(std::string_view text);

// Help text for a well-known internal series name (longest matching
// family prefix), or nullptr when the family has no registered help.
const char* openmetrics_help(std::string_view internal_name);

std::string to_openmetrics(const MetricsSnapshot& snapshot);

// Result of a strict parse: per-family metadata plus every sample line
// (name including any label block) with its value.
struct OpenMetricsExposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::map<std::string, std::string> helps;  // family -> help text (escaped)
  std::map<std::string, double> samples;     // sample name -> value
  std::size_t sample_count() const { return samples.size(); }
};

// Strict parser for the text format this module emits. Enforces
// newline-terminated lines, valid metric names, HELP-before-TYPE
// ordering (each at most once per family), known TYPE values, sample
// syntax with balanced quoted labels, no duplicate series — and the
// "# EOF" terminator, which must be present, final, and is consumed
// (it never appears as content). Returns nullopt on the first
// malformed line; `error` (when non-null) receives a description.
std::optional<OpenMetricsExposition> parse_openmetrics(
    std::string_view text, std::string* error = nullptr);

}  // namespace colibri::telemetry
