// OpenMetrics text exposition of a MetricsSnapshot.
//
// The JSON export (MetricsSnapshot::to_json()) is the programmatic
// interface; this renders the same snapshot in the OpenMetrics text
// format so any Prometheus-compatible scraper can consume a Colibri
// process without an adapter. Both exports walk the same snapshot, so
// they agree on every series by construction (and a test asserts it).
//
// Mapping:
//  * internal names are dotted ("router.drop.auth-failed"); exposition
//    names are prefixed "colibri_" and sanitized ('.', '-' -> '_'):
//    colibri_router_drop_auth_failed
//  * counters emit "# TYPE <n> counter" + "<n>_total <v>"
//  * gauges emit "# TYPE <n> gauge" + "<n> <v>"
//  * histograms emit cumulative "<n>_bucket{le="..."}" lines over the
//    power-of-two bucket bounds (zero-count buckets are elided; the
//    +Inf bucket is always present), then "<n>_sum" and "<n>_count"
//  * the exposition ends with "# EOF"
#pragma once

#include <string>
#include <string_view>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

// "router.drop.auth-failed" -> "colibri_router_drop_auth_failed".
// Any character outside [a-zA-Z0-9_:] becomes '_'; a leading digit is
// prefixed with '_'.
std::string openmetrics_name(std::string_view internal_name);

std::string to_openmetrics(const MetricsSnapshot& snapshot);

}  // namespace colibri::telemetry
