// OpenMetrics text exposition of a MetricsSnapshot.
//
// The JSON export (MetricsSnapshot::to_json()) is the programmatic
// interface; this renders the same snapshot in the OpenMetrics text
// format so any Prometheus-compatible scraper can consume a Colibri
// process without an adapter. Both exports walk the same snapshot, so
// they agree on every series by construction (and a test asserts it).
//
// Mapping:
//  * internal names are dotted ("router.drop.auth-failed"); exposition
//    names are prefixed "colibri_" and sanitized ('.', '-' -> '_'):
//    colibri_router_drop_auth_failed
//  * counters emit "# TYPE <n> counter" + "<n>_total <v>"
//  * gauges emit "# TYPE <n> gauge" + "<n> <v>"
//  * histograms emit cumulative "<n>_bucket{le="..."}" lines over the
//    power-of-two bucket bounds (zero-count buckets are elided; the
//    +Inf bucket is always present), then "<n>_sum" and "<n>_count"
//  * well-known series families additionally get a "# HELP" line
//    (before TYPE, as the spec orders them), with the help text
//    escaped per the spec; label values go through the same escaping
//  * the exposition ends with "# EOF"
#pragma once

#include <string>
#include <string_view>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

// "router.drop.auth-failed" -> "colibri_router_drop_auth_failed".
// Any character outside [a-zA-Z0-9_:] becomes '_'; a leading digit is
// prefixed with '_'.
std::string openmetrics_name(std::string_view internal_name);

// Label-value escaping per the OpenMetrics text format: backslash,
// double quote, and line feed become \\ \" \n.
std::string openmetrics_escape_label(std::string_view value);
// HELP-text escaping: backslash and line feed only (quotes are legal).
std::string openmetrics_escape_help(std::string_view text);

// Help text for a well-known internal series name (longest matching
// family prefix), or nullptr when the family has no registered help.
const char* openmetrics_help(std::string_view internal_name);

std::string to_openmetrics(const MetricsSnapshot& snapshot);

}  // namespace colibri::telemetry
