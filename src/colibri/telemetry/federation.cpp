#include "colibri/telemetry/federation.hpp"

#include <algorithm>
#include <stdexcept>

namespace colibri::telemetry {

FleetCollector::FleetCollector(const Clock& clock, FleetCollectorConfig cfg,
                               MetricsRegistry* export_registry)
    : clock_(&clock), cfg_(cfg), last_end_ns_(clock.now_ns()) {
  if (cfg_.period_ns < 1) cfg_.period_ns = 1;
  if (cfg_.ring_capacity < 1) cfg_.ring_capacity = 1;
  if (cfg_.top_k < 1) cfg_.top_k = 1;
  if (export_registry != nullptr) {
    registration_.rebind(export_registry, this);
  }
}

void FleetCollector::add_member(std::string name,
                                const MetricsRegistry& registry) {
  std::lock_guard lock(mu_);
  members_.push_back(Member{name, &registry, {}, {}});
  names_.push_back(std::move(name));
}

void FleetCollector::add_link(std::string name, std::string_view member_a,
                              std::string_view member_b) {
  std::lock_guard lock(mu_);
  const auto index_of = [this](std::string_view m) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i].name == m) return i;
    }
    throw std::invalid_argument("FleetCollector: unknown member '" +
                                std::string(m) + "'");
  };
  Link l;
  l.a = index_of(member_a);
  l.b = index_of(member_b);
  l.name = std::move(name);
  links_.push_back(std::move(l));
}

void FleetCollector::add_rollup(std::string series) {
  std::lock_guard lock(mu_);
  if (std::find(rollups_.begin(), rollups_.end(), series) == rollups_.end()) {
    rollups_.push_back(std::move(series));
  }
}

const std::string* FleetCollector::match_rollup(std::string_view name) const {
  for (const std::string& r : rollups_) {
    if (r.empty()) continue;
    if (r.back() == '.') {
      if (name.size() > r.size() && name.compare(0, r.size(), r) == 0) {
        return &r;
      }
    } else if (name == r) {
      return &r;
    }
  }
  return nullptr;
}

void FleetCollector::sketch_add(const std::string& key, std::uint64_t delta) {
  if (delta == 0) return;
  if (auto it = sketch_.find(key); it != sketch_.end()) {
    it->second.count += delta;
    return;
  }
  if (sketch_.size() < cfg_.top_k) {
    sketch_.emplace(key, SketchEntry{delta, 0});
    return;
  }
  // Space-saving replacement: evict the minimum-count entry (smallest
  // key on ties — map order makes the choice deterministic) and charge
  // its count as the newcomer's over-estimate error.
  auto min_it = sketch_.begin();
  for (auto it = std::next(sketch_.begin()); it != sketch_.end(); ++it) {
    if (it->second.count < min_it->second.count) min_it = it;
  }
  const std::uint64_t floor = min_it->second.count;
  sketch_.erase(min_it);
  sketch_.emplace(key, SketchEntry{floor + delta, floor});
}

bool FleetCollector::poll() {
  const TimeNs now = clock_->now_ns();
  {
    const TimeNs last = last_end_ns_.load(std::memory_order_relaxed);
    std::lock_guard lock(mu_);
    if (have_baseline_ && now - last < cfg_.period_ns) return false;
  }

  // Snapshot every member registry *outside* mu_: a member may double
  // as the export registry, and its snapshot() re-enters
  // collect_metrics() below, which takes mu_.
  std::vector<std::pair<std::size_t, const MetricsRegistry*>> regs;
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < members_.size(); ++i) {
      regs.emplace_back(i, members_[i].registry);
    }
  }
  std::vector<MetricsSnapshot> snaps;
  snaps.reserve(regs.size());
  for (const auto& [_, reg] : regs) snaps.push_back(reg->snapshot());

  std::lock_guard lock(mu_);
  const TimeNs start = last_end_ns_.load(std::memory_order_relaxed);
  if (have_baseline_ && now - start < cfg_.period_ns) return false;

  SampleWindow w;
  w.start_ns = start;
  w.end_ns = now;
  // Per-window heavy-hitter deltas, summed across members before the
  // sketch sees them (a reservation crossing 5 ASes is one hitter).
  std::map<std::string, std::uint64_t> res_deltas;

  for (std::size_t s = 0; s < snaps.size(); ++s) {
    Member& m = members_[regs[s].first];
    m.last_deltas.clear();
    for (const auto& [name, cur] : snaps[s].counters) {
      const std::string* family = match_rollup(name);
      const bool is_res =
          !cfg_.reservation_prefix.empty() &&
          name.size() > cfg_.reservation_prefix.size() &&
          name.compare(0, cfg_.reservation_prefix.size(),
                       cfg_.reservation_prefix) == 0;
      if (family == nullptr && !is_res) continue;

      std::uint64_t delta = cur;
      if (auto it = m.prev.find(name); it != m.prev.end()) {
        // A counter that shrank (component reset) restarts the delta
        // from its new value, matching WindowedSampler.
        delta = cur >= it->second ? cur - it->second : cur;
        it->second = cur;
      } else if (tracked_ < cfg_.max_tracked_series) {
        m.prev.emplace(name, cur);
        ++tracked_;
      } else {
        // Over budget: the series is not silently folded into the
        // rollup with bogus deltas — it is dropped and counted.
        ++dropped_;
        continue;
      }
      if (!have_baseline_) continue;  // first poll: baseline only

      if (family != nullptr) {
        w.counter_deltas[*family] += delta;
        m.last_deltas[*family] += delta;
      }
      if (is_res) {
        const std::size_t key_start = cfg_.reservation_prefix.size();
        const std::size_t dot = name.find('.', key_start);
        res_deltas[name.substr(key_start, dot == std::string::npos
                                              ? std::string::npos
                                              : dot - key_start)] += delta;
      }
    }
  }

  last_end_ns_.store(now, std::memory_order_relaxed);
  if (!have_baseline_) {
    have_baseline_ = true;
    return false;
  }
  for (const auto& [key, delta] : res_deltas) sketch_add(key, delta);
  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.ring_capacity) ring_.pop_front();
  ++windows_sampled_;
  return true;
}

namespace {

// A rollup family registered as "router.drop." answers queries for
// both "router.drop." and "router.drop".
bool family_matches(std::string_view family, std::string_view query) {
  if (family == query) return true;
  return !family.empty() && family.back() == '.' &&
         family.substr(0, family.size() - 1) == query;
}

double rate_of(std::uint64_t delta, TimeNs elapsed_ns) {
  if (elapsed_ns <= 0) return 0.0;
  return static_cast<double>(delta) * static_cast<double>(kNsPerSec) /
         static_cast<double>(elapsed_ns);
}

}  // namespace

double FleetCollector::fleet_rate(std::string_view series,
                                  TimeNs span_ns) const {
  std::lock_guard lock(mu_);
  std::uint64_t delta = 0;
  TimeNs elapsed = 0;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (elapsed >= span_ns) break;
    elapsed += it->elapsed_ns();
    for (const auto& [family, d] : it->counter_deltas) {
      if (family_matches(family, series)) delta += d;
    }
  }
  return rate_of(delta, elapsed);
}

double FleetCollector::as_rate(std::string_view member,
                               std::string_view series) const {
  std::lock_guard lock(mu_);
  if (ring_.empty()) return 0.0;
  for (const Member& m : members_) {
    if (m.name != member) continue;
    std::uint64_t delta = 0;
    for (const auto& [family, d] : m.last_deltas) {
      if (family_matches(family, series)) delta += d;
    }
    return rate_of(delta, ring_.back().elapsed_ns());
  }
  return 0.0;
}

double FleetCollector::link_rate(std::string_view link,
                                 std::string_view series) const {
  std::lock_guard lock(mu_);
  if (ring_.empty()) return 0.0;
  for (const Link& l : links_) {
    if (l.name != link) continue;
    std::uint64_t delta = 0;
    for (const std::size_t idx : {l.a, l.b}) {
      for (const auto& [family, d] : members_[idx].last_deltas) {
        if (family_matches(family, series)) delta += d;
      }
    }
    return rate_of(delta, ring_.back().elapsed_ns());
  }
  return 0.0;
}

std::vector<FleetTopEntry> FleetCollector::top_hitters() const {
  std::lock_guard lock(mu_);
  std::vector<FleetTopEntry> out;
  out.reserve(sketch_.size());
  for (const auto& [key, e] : sketch_) {
    out.push_back({key, e.count, e.error});
  }
  std::sort(out.begin(), out.end(),
            [](const FleetTopEntry& x, const FleetTopEntry& y) {
              if (x.estimate != y.estimate) return x.estimate > y.estimate;
              return x.key < y.key;
            });
  return out;
}

std::size_t FleetCollector::member_count() const {
  std::lock_guard lock(mu_);
  return members_.size();
}

std::size_t FleetCollector::link_count() const {
  std::lock_guard lock(mu_);
  return links_.size();
}

std::size_t FleetCollector::window_count() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::uint64_t FleetCollector::windows_sampled() const {
  std::lock_guard lock(mu_);
  return windows_sampled_;
}

std::size_t FleetCollector::tracked_series() const {
  std::lock_guard lock(mu_);
  return tracked_;
}

std::uint64_t FleetCollector::dropped_series() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void FleetCollector::collect_metrics(MetricSink& sink) const {
  std::lock_guard lock(mu_);
  sink.gauge("fleet.as_count", static_cast<std::int64_t>(members_.size()));
  sink.gauge("fleet.link_count", static_cast<std::int64_t>(links_.size()));
  sink.counter("fleet.windows", windows_sampled_);
  sink.gauge("fleet.series_tracked", static_cast<std::int64_t>(tracked_));
  sink.counter("fleet.series_dropped", dropped_);
  sink.gauge("fleet.top.count", static_cast<std::int64_t>(sketch_.size()));

  // Whole-ring rate per rollup family, rounded: fleet.rate.<family>.
  for (const std::string& family : rollups_) {
    std::uint64_t delta = 0;
    TimeNs elapsed = 0;
    for (const SampleWindow& w : ring_) {
      elapsed += w.elapsed_ns();
      if (auto it = w.counter_deltas.find(family);
          it != w.counter_deltas.end()) {
        delta += it->second;
      }
    }
    std::string name = "fleet.rate.";
    name.append(family.back() == '.' ? family.substr(0, family.size() - 1)
                                     : family);
    sink.gauge(name,
               static_cast<std::int64_t>(rate_of(delta, elapsed) + 0.5));
  }

  // Ranked heavy-hitter magnitudes (keys stay on the query API — rank
  // names keep exposition cardinality at top_k).
  std::vector<FleetTopEntry> top;
  top.reserve(sketch_.size());
  for (const auto& [key, e] : sketch_) top.push_back({key, e.count, e.error});
  std::sort(top.begin(), top.end(),
            [](const FleetTopEntry& x, const FleetTopEntry& y) {
              if (x.estimate != y.estimate) return x.estimate > y.estimate;
              return x.key < y.key;
            });
  for (std::size_t i = 0; i < top.size(); ++i) {
    sink.gauge("fleet.top." + std::to_string(i + 1) + ".estimate",
               static_cast<std::int64_t>(top[i].estimate));
  }
}

}  // namespace colibri::telemetry
