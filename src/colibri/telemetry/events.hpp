// Structured event log: the control plane's audit trail.
//
// Counters aggregate; events narrate. Every reservation lifecycle step
// (admission granted/denied with the bottleneck location, index
// activation, renewal, expiry, teardown) and every policing escalation
// (blocklist entry, OFD confirmation) is emitted as one severity- and
// component-tagged event with typed key/value fields, exported as JSON
// lines — one self-contained JSON object per line, greppable and
// machine-parseable.
//
// Timestamps come from the common Clock, so events from a SimClock run
// carry simulated time and interleave correctly with the discrete-event
// simulator; there is no hidden wall-clock dependency.
//
// The log is bounded (a deque capped at `capacity`; oldest events are
// dropped and counted) and mutex-protected — it is a control-plane
// facility, deliberately kept off the packet path. When disabled (the
// default is enabled-on-construction only if a log object exists at
// all; components hold a nullable pointer), emitting costs one branch.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "colibri/common/clock.hpp"

namespace colibri::telemetry {

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* severity_name(Severity s);

// One typed key/value field of an event.
struct EventField {
  enum class Kind : std::uint8_t { kU64, kI64, kStr };

  std::string key;
  Kind kind = Kind::kU64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  std::string s;
};

struct Event {
  TimeNs time_ns = 0;
  // Process-global monotonic sequence number, assigned at append time.
  // SimClock timestamps can tie (many events in one simulated instant);
  // seq breaks the tie, giving consumers a total order across all logs
  // of the process.
  std::uint64_t seq = 0;
  Severity severity = Severity::kInfo;
  std::string component;  // "cserv", "renewal", "blocklist", "ofd", ...
  std::string name;       // "eer.admitted", "segr.expired", ...
  std::vector<EventField> fields;

  // One JSON object, no trailing newline:
  // {"time_ns":..,"seq":..,"severity":"info","component":"cserv",
  //  "name":"..","fields":{"k":v,...}}
  std::string to_json() const;
  // Parses exactly the subset to_json() emits (schema round-trip).
  static std::optional<Event> from_json(std::string_view line);

  // Field lookup helpers (nullptr / nullopt when absent).
  const EventField* field(std::string_view key) const;
  std::optional<std::uint64_t> u64(std::string_view key) const;
  std::optional<std::string> str(std::string_view key) const;
};

class EventLog {
 public:
  explicit EventLog(const Clock& clock, std::size_t capacity = 8192)
      : clock_(&clock), capacity_(capacity < 1 ? 1 : capacity) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Builds one event and commits it on destruction. Chain fields:
  //   log.emit(Severity::kInfo, "cserv", "eer.admitted")
  //      .u64("res_id", id).str("src_as", as.to_string());
  class Builder {
   public:
    Builder(EventLog* log, Severity sev, std::string_view component,
            std::string_view name)
        : log_(log) {
      if (log_ != nullptr) {
        ev_.time_ns = log_->clock_->now_ns();
        ev_.severity = sev;
        ev_.component = component;
        ev_.name = name;
      }
    }
    ~Builder() {
      if (log_ != nullptr) log_->append(std::move(ev_));
    }

    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;

    Builder& u64(std::string_view key, std::uint64_t v) {
      if (log_ != nullptr) {
        ev_.fields.push_back(
            {std::string(key), EventField::Kind::kU64, v, 0, {}});
      }
      return *this;
    }
    Builder& i64(std::string_view key, std::int64_t v) {
      if (log_ != nullptr) {
        ev_.fields.push_back(
            {std::string(key), EventField::Kind::kI64, 0, v, {}});
      }
      return *this;
    }
    Builder& str(std::string_view key, std::string_view v) {
      if (log_ != nullptr) {
        ev_.fields.push_back({std::string(key), EventField::Kind::kStr, 0, 0,
                              std::string(v)});
      }
      return *this;
    }

   private:
    EventLog* log_;
    Event ev_;
  };

  Builder emit(Severity sev, std::string_view component,
               std::string_view name) {
    return Builder(enabled_ && sev >= min_severity_ ? this : nullptr, sev,
                   component, name);
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_min_severity(Severity s) { min_severity_ = s; }

  std::size_t size() const;
  // Events dropped because the bounded deque was full.
  std::uint64_t dropped() const;
  std::vector<Event> events() const;
  std::vector<Event> drain();
  void clear();

  // JSON-lines export: one Event::to_json() per line.
  std::string to_jsonl() const;

 private:
  friend class Builder;
  void append(Event ev);

  const Clock* clock_;
  std::size_t capacity_;
  bool enabled_ = true;
  Severity min_severity_ = Severity::kDebug;

  mutable std::mutex mu_;
  std::deque<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace colibri::telemetry
