#include "colibri/telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace colibri::telemetry {

namespace {

// Derived-gauge name: "<series>.rate_1s", except a trailing '.' (a
// prefix-sum series like "router.drop.") attaches the suffix directly.
std::string derived_name(std::string_view series, std::string_view suffix) {
  std::string out(series);
  if (out.empty() || out.back() != '.') out.push_back('.');
  out.append(suffix);
  return out;
}

// Subtracts `prev` from `cur` bucket-wise. A shrinking count means the
// owning component reset; the delta then restarts from `cur` so one
// reset never produces a huge negative-wrapped window.
HistogramSnapshot histogram_minus(const HistogramSnapshot& cur,
                                  const HistogramSnapshot& prev) {
  if (cur.count < prev.count) return cur;
  HistogramSnapshot d;
  d.count = cur.count - prev.count;
  d.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] =
        cur.buckets[i] >= prev.buckets[i] ? cur.buckets[i] - prev.buckets[i]
                                          : cur.buckets[i];
  }
  return d;
}

bool matches(std::string_view name, std::string_view series, bool prefix) {
  return prefix ? name.substr(0, series.size()) == series : name == series;
}

}  // namespace

WindowedSampler::WindowedSampler(const MetricsRegistry& source,
                                 const Clock& clock,
                                 WindowedSamplerConfig cfg,
                                 MetricsRegistry* export_registry)
    : source_(&source),
      clock_(&clock),
      cfg_(cfg),
      last_end_ns_(clock.now_ns()),
      registration_(export_registry, this) {
  // A non-positive period would cut zero-elapsed windows on every
  // poll() under a stalled clock; clamp so a window always spans Clock
  // time and rate queries never divide by zero.
  if (cfg_.period_ns < 1) cfg_.period_ns = 1;
  if (cfg_.ring_capacity < 1) cfg_.ring_capacity = 1;
  if (cfg_.watermark_decay < 0) cfg_.watermark_decay = 0;
  if (cfg_.watermark_decay > 1) cfg_.watermark_decay = 1;
}

bool WindowedSampler::poll() {
  const TimeNs now = clock_->now_ns();
  if (now - last_end_ns_.load(std::memory_order_relaxed) < cfg_.period_ns) {
    return false;
  }
  return sample(now);
}

bool WindowedSampler::sample(TimeNs now) {
  // Snapshot before taking the sampler lock: snapshot() walks every
  // attached source under the registry lock (possibly including this
  // sampler and an alert engine), so the sampler lock stays a leaf.
  MetricsSnapshot cur = source_->snapshot();

  std::lock_guard<std::mutex> lock(mu_);
  const TimeNs start = last_end_ns_.load(std::memory_order_relaxed);
  if (now - start < cfg_.period_ns) return false;  // lost a poll() race

  if (!have_prev_) {
    // First sample baselines only: deltas need two snapshots.
    prev_ = std::move(cur);
    have_prev_ = true;
    last_end_ns_.store(now, std::memory_order_relaxed);
    return false;
  }

  const auto keep = [this](const std::string& name) {
    return !cfg_.series_filter || cfg_.series_filter(name);
  };
  SampleWindow w;
  w.start_ns = start;
  w.end_ns = now;
  for (const auto& [name, value] : cur.counters) {
    if (!keep(name)) continue;
    const auto it = prev_.counters.find(name);
    const std::uint64_t before = it == prev_.counters.end() ? 0 : it->second;
    w.counter_deltas[name] = value >= before ? value - before : value;
  }
  for (const auto& [name, level] : cur.gauges) {
    if (keep(name)) w.gauges[name] = level;
  }
  for (const auto& [name, h] : cur.histograms) {
    if (!keep(name)) continue;
    const auto it = prev_.histograms.find(name);
    w.histogram_deltas[name] =
        it == prev_.histograms.end() ? h : histogram_minus(h, it->second);
  }

  for (auto& [name, hw] : watermarks_) {
    const auto it = w.gauges.find(name);
    const double level =
        it == w.gauges.end() ? 0.0 : static_cast<double>(it->second);
    hw = std::max(level, hw * cfg_.watermark_decay);
  }

  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.ring_capacity) ring_.pop_front();
  prev_ = std::move(cur);
  ++windows_sampled_;
  last_end_ns_.store(now, std::memory_order_relaxed);
  return true;
}

double WindowedSampler::rate_locked(std::string_view series, TimeNs span_ns,
                                    bool prefix) const {
  std::uint64_t delta = 0;
  TimeNs elapsed = 0;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    for (const auto& [name, d] : it->counter_deltas) {
      if (matches(name, series, prefix)) delta += d;
    }
    elapsed += it->elapsed_ns();
    if (elapsed >= span_ns) break;
  }
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(delta) * static_cast<double>(kNsPerSec) /
         static_cast<double>(elapsed);
}

double WindowedSampler::rate(std::string_view series, TimeNs span_ns,
                             bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_locked(series, span_ns, prefix);
}

double WindowedSampler::peak_rate(std::string_view series, bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  double peak = 0.0;
  for (const SampleWindow& w : ring_) {
    if (w.elapsed_ns() <= 0) continue;
    std::uint64_t delta = 0;
    for (const auto& [name, d] : w.counter_deltas) {
      if (matches(name, series, prefix)) delta += d;
    }
    peak = std::max(peak, static_cast<double>(delta) *
                              static_cast<double>(kNsPerSec) /
                              static_cast<double>(w.elapsed_ns()));
  }
  return peak;
}

std::uint64_t WindowedSampler::counter_delta_locked(std::string_view series,
                                                    TimeNs span_ns,
                                                    bool prefix) const {
  std::uint64_t delta = 0;
  TimeNs elapsed = 0;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    for (const auto& [name, d] : it->counter_deltas) {
      if (matches(name, series, prefix)) delta += d;
    }
    elapsed += it->elapsed_ns();
    if (elapsed >= span_ns) break;
  }
  return delta;
}

std::uint64_t WindowedSampler::counter_delta(std::string_view series,
                                             TimeNs span_ns,
                                             bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_delta_locked(series, span_ns, prefix);
}

HistogramSnapshot WindowedSampler::histogram_delta_locked(
    std::string_view series, TimeNs span_ns) const {
  HistogramSnapshot merged;
  TimeNs elapsed = 0;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (const auto h = it->histogram_deltas.find(std::string(series));
        h != it->histogram_deltas.end()) {
      merged.merge(h->second);
    }
    elapsed += it->elapsed_ns();
    if (elapsed >= span_ns) break;
  }
  return merged;
}

HistogramSnapshot WindowedSampler::histogram_delta(std::string_view series,
                                                   TimeNs span_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_delta_locked(series, span_ns);
}

std::optional<double> WindowedSampler::windowed_percentile(
    std::string_view series, double q, TimeNs span_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const HistogramSnapshot h = histogram_delta_locked(series, span_ns);
  if (h.count == 0) return std::nullopt;
  return h.percentile(q);
}

std::optional<std::int64_t> WindowedSampler::gauge_level(
    std::string_view series, bool prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::nullopt;
  const SampleWindow& w = ring_.back();
  if (!prefix) {
    const auto it = w.gauges.find(std::string(series));
    if (it == w.gauges.end()) return std::nullopt;
    return it->second;
  }
  std::optional<std::int64_t> best;
  for (const auto& [name, v] : w.gauges) {
    if (!matches(name, series, true)) continue;
    if (!best || v > *best) best = v;
  }
  return best;
}

double WindowedSampler::watermark(std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = watermarks_.find(series);
  return it == watermarks_.end() ? 0.0 : it->second;
}

std::size_t WindowedSampler::window_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t WindowedSampler::windows_sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_sampled_;
}

std::optional<SampleWindow> WindowedSampler::latest_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::vector<SampleWindow> WindowedSampler::recent_windows(
    std::size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min(max_windows, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(n), ring_.end()};
}

void WindowedSampler::track_rate(std::string series) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_tracked_.insert(std::move(series));
}

void WindowedSampler::track_percentiles(std::string series) {
  std::lock_guard<std::mutex> lock(mu_);
  pct_tracked_.insert(std::move(series));
}

void WindowedSampler::track_watermark(std::string series) {
  std::lock_guard<std::mutex> lock(mu_);
  watermarks_.try_emplace(std::move(series), 0.0);
}

void WindowedSampler::collect_metrics(MetricSink& sink) const {
  std::lock_guard<std::mutex> lock(mu_);
  sink.counter("telemetry.sampler.windows", windows_sampled_);
  sink.gauge("telemetry.sampler.ring_windows",
             static_cast<std::int64_t>(ring_.size()));
  for (const std::string& series : rate_tracked_) {
    const bool prefix = !series.empty() && series.back() == '.';
    sink.gauge(derived_name(series, "rate_1s"),
               std::llround(rate_locked(series, kNsPerSec, prefix)));
    sink.gauge(derived_name(series, "rate_10s"),
               std::llround(rate_locked(series, 10 * kNsPerSec, prefix)));
  }
  for (const std::string& series : pct_tracked_) {
    const HistogramSnapshot h =
        histogram_delta_locked(series, 10 * kNsPerSec);
    if (h.count == 0) continue;
    sink.gauge(derived_name(series, "windowed_p50"),
               std::llround(h.percentile(0.50)));
    sink.gauge(derived_name(series, "windowed_p99"),
               std::llround(h.percentile(0.99)));
  }
  for (const auto& [series, hw] : watermarks_) {
    sink.gauge(derived_name(series, "high_watermark"), std::llround(hw));
  }
}

}  // namespace colibri::telemetry
