#include "colibri/telemetry/audit.hpp"

#include <algorithm>
#include <unordered_map>

namespace colibri::telemetry {

ConservationAuditor::ConservationAuditor(const Clock& clock, EventLog* events,
                                         MetricsRegistry* registry)
    : clock_(&clock), events_(events) {
  if (registry != nullptr) registration_.rebind(registry, this);
}

void ConservationAuditor::add_target(AuditTarget target) {
  targets_.push_back(std::move(target));
}

void ConservationAuditor::record(AuditReport& report, std::string check,
                                 AsId as, ResId res_id, std::string detail) {
  if (events_ != nullptr) {
    events_->emit(Severity::kError, "audit", "audit.violation")
        .str("check", check)
        .str("as", as.to_string())
        .u64("res_id", res_id)
        .str("detail", detail);
  }
  report.violations.push_back(
      {std::move(check), std::move(detail), as, res_id});
}

AuditReport ConservationAuditor::run(UnixSec now) {
  AuditReport rep;

  // Per-target snapshots, kept for the cross-AS pass below.
  std::vector<std::vector<reservation::SegrRecord>> segrs(targets_.size());
  std::vector<std::vector<reservation::EerRecord>> eers(targets_.size());
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    segrs[t] = targets_[t].db->segr_snapshot();
    eers[t] = targets_[t].db->eer_snapshot();
  }

  for (std::size_t t = 0; t < targets_.size(); ++t) {
    const AuditTarget& target = targets_[t];
    std::unordered_map<ResKey, const reservation::SegrRecord*> by_key;
    for (const auto& s : segrs[t]) by_key.emplace(s.key, &s);

    // Tube invariants (§4.7): the admitted-EER counter must fit the
    // SegR, and so must the recomputed sum of effective EER bandwidth.
    std::unordered_map<ResKey, std::uint64_t> eff_sum;
    for (const auto& e : eers[t]) {
      const BwKbps bw = e.effective_bw(now);
      for (const ResKey& sk : e.segrs) {
        if (by_key.count(sk) != 0) eff_sum[sk] += bw;
      }
    }
    for (const auto& s : segrs[t]) {
      ++rep.checks;
      if (s.eer_allocated_kbps > s.active.bw_kbps) {
        record(rep, "tube.over_allocation", target.as, s.key.res_id,
               "allocated=" + std::to_string(s.eer_allocated_kbps) +
                   " active=" + std::to_string(s.active.bw_kbps));
      }
      ++rep.checks;
      const std::uint64_t eff =
          eff_sum.count(s.key) != 0 ? eff_sum[s.key] : 0;
      if (eff > s.active.bw_kbps) {
        record(rep, "tube.oversubscribed", target.as, s.key.res_id,
               "eer_sum=" + std::to_string(eff) +
                   " active=" + std::to_string(s.active.bw_kbps));
      }
    }

    // Stripe ledger vs db: every allocation must name a live EER, and
    // the per-SegR allocation sums must equal the db counters they
    // mirror.
    if (target.eer != nullptr) {
      std::vector<admission::EerAdmission::AllocationView> allocs;
      target.eer->for_each_allocation(
          [&allocs](const admission::EerAdmission::AllocationView& a) {
            allocs.push_back(a);
          });
      std::unordered_map<ResKey, std::uint64_t> ledger_sum;
      for (const auto& a : allocs) {
        ++rep.checks;
        if (!target.db->contains_eer(a.eer_key)) {
          record(rep, "ledger.orphan", target.as, a.eer_key.res_id,
                 "allocation without a db record");
        }
        ledger_sum[a.in_key] += a.in_allocated;
        if (a.has_out) ledger_sum[a.out_key] += a.out_allocated;
      }
      for (const auto& s : segrs[t]) {
        ++rep.checks;
        const std::uint64_t expect =
            ledger_sum.count(s.key) != 0 ? ledger_sum[s.key] : 0;
        if (expect != s.eer_allocated_kbps) {
          record(rep, "ledger.mismatch", target.as, s.key.res_id,
                 "ledger=" + std::to_string(expect) +
                     " db=" + std::to_string(s.eer_allocated_kbps));
        }
      }
    }

    // Link conservation: active SegR bandwidth leaving an interface
    // must fit the link's Colibri share. Egress 0 (traffic terminating
    // inside the AS) has no topology interface and is skipped.
    if (target.node != nullptr) {
      std::map<IfId, std::uint64_t> egress_sum;
      for (const auto& s : segrs[t]) {
        if (s.expired(now)) continue;
        egress_sum[s.egress()] += s.active.bw_kbps;
      }
      for (const auto& [ifid, sum] : egress_sum) {
        if (target.node->find_interface(ifid) == nullptr) continue;
        ++rep.checks;
        const BwKbps cap = target.node->colibri_capacity(ifid);
        if (sum > cap) {
          record(rep, "link.overcommit", target.as, 0,
                 "ifid=" + std::to_string(ifid) +
                     " active_sum=" + std::to_string(sum) +
                     " capacity=" + std::to_string(cap));
        }
      }
    }
  }

  // Cross-AS consistency: every on-path AS must hold the same live view
  // of a reservation. A record corrupted or lost through a WAL fault at
  // one AS surfaces here as a divergence or a missing member.
  std::unordered_map<AsId, std::size_t> target_of;
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    target_of.emplace(targets_[t].as, t);
  }
  std::unordered_map<ResKey,
                     std::vector<std::pair<std::size_t,
                                           const reservation::SegrRecord*>>>
      segr_groups;
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    for (const auto& s : segrs[t]) {
      if (s.expired(now)) continue;
      segr_groups[s.key].emplace_back(t, &s);
    }
  }
  for (const auto& [key, group] : segr_groups) {
    ++rep.checks;
    const BwKbps ref_bw = group.front().second->active.bw_kbps;
    for (const auto& [t, s] : group) {
      if (s->active.bw_kbps != ref_bw) {
        record(rep, "fleet.segr_divergence", targets_[t].as, key.res_id,
               "active=" + std::to_string(s->active.bw_kbps) +
                   " others=" + std::to_string(ref_bw));
        break;
      }
    }
    // Membership: every on-path AS that is under audit must hold a live
    // record too.
    std::vector<std::size_t> holders;
    for (const auto& [t, _] : group) holders.push_back(t);
    for (const topology::Hop& hop : group.front().second->hops) {
      const auto it = target_of.find(hop.as);
      if (it == target_of.end()) continue;
      ++rep.checks;
      if (std::find(holders.begin(), holders.end(), it->second) ==
          holders.end()) {
        record(rep, "fleet.segr_missing", hop.as, key.res_id,
               "on-path AS holds no live record");
      }
    }
  }
  std::unordered_map<ResKey,
                     std::vector<std::pair<std::size_t,
                                           const reservation::EerRecord*>>>
      eer_groups;
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    for (const auto& e : eers[t]) {
      if (e.expired(now)) continue;
      eer_groups[e.key].emplace_back(t, &e);
    }
  }
  for (const auto& [key, group] : eer_groups) {
    ++rep.checks;
    const BwKbps ref_bw = group.front().second->effective_bw(now);
    for (const auto& [t, e] : group) {
      if (e->effective_bw(now) != ref_bw) {
        record(rep, "fleet.eer_divergence", targets_[t].as, key.res_id,
               "effective=" + std::to_string(e->effective_bw(now)) +
                   " others=" + std::to_string(ref_bw));
        break;
      }
    }
    // Membership, the WAL-fault signature: an EER cleanly *lost* at one
    // on-path AS (replay stopped at a corrupt record) diverges in
    // existence, not bandwidth.
    std::vector<std::size_t> holders;
    for (const auto& [t, _] : group) holders.push_back(t);
    for (const topology::Hop& hop : group.front().second->path) {
      const auto it = target_of.find(hop.as);
      if (it == target_of.end()) continue;
      ++rep.checks;
      if (std::find(holders.begin(), holders.end(), it->second) ==
          holders.end()) {
        record(rep, "fleet.eer_missing", hop.as, key.res_id,
               "on-path AS holds no live record");
      }
    }
  }

  if (events_ != nullptr) {
    events_->emit(Severity::kDebug, "audit", "audit.pass")
        .u64("checks", rep.checks)
        .u64("violations", rep.violations.size());
  }
  std::lock_guard lock(mu_);
  ++passes_;
  checks_total_ += rep.checks;
  violations_total_ += rep.violations.size();
  for (const AuditViolation& v : rep.violations) ++by_check_[v.check];
  last_ = rep;
  return rep;
}

void ConservationAuditor::collect_metrics(MetricSink& sink) const {
  std::lock_guard lock(mu_);
  sink.counter("telemetry.audit.passes", passes_);
  sink.counter("telemetry.audit.checks", checks_total_);
  sink.counter("telemetry.audit.violations", violations_total_);
  sink.gauge("telemetry.audit.targets",
             static_cast<std::int64_t>(targets_.size()));
  sink.gauge("telemetry.audit.last_violations",
             static_cast<std::int64_t>(last_.violations.size()));
  sink.gauge("telemetry.audit.last_checks",
             static_cast<std::int64_t>(last_.checks));
  for (const auto& [check, n] : by_check_) {
    sink.counter("telemetry.audit.violation." + check, n);
  }
}

std::vector<AlertRule> default_audit_alert_rules() {
  std::vector<AlertRule> rules;
  {
    AlertRule r;
    r.name = "audit.violation";
    r.series = "telemetry.audit.last_violations";
    r.signal = AlertSignal::kGauge;
    r.cmp = AlertCmp::kAbove;
    r.threshold = 0;
    r.severity = Severity::kError;
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "audit.violation-burst";
    r.series = "telemetry.audit.violations";
    r.signal = AlertSignal::kRate;
    r.span_ns = 10 * kNsPerSec;
    r.cmp = AlertCmp::kAbove;
    r.threshold = 0;
    r.severity = Severity::kError;
    rules.push_back(std::move(r));
  }
  {
    // Watchdog: an auditor that stopped running while it has targets
    // is itself an incident — silence must not read as health.
    AlertRule r;
    r.name = "audit.stalled";
    r.series = "telemetry.audit.passes";
    r.signal = AlertSignal::kRate;
    r.span_ns = 10 * kNsPerSec;
    r.cmp = AlertCmp::kBelow;
    r.threshold = 1e-6;
    r.for_ns = 5 * kNsPerSec;
    r.severity = Severity::kWarn;
    r.guard_series = "telemetry.audit.targets";
    r.guard_cmp = AlertCmp::kAbove;
    r.guard_threshold = 0;
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace colibri::telemetry
