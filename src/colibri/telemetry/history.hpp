// Persistent telemetry history: an append-only time-series log of
// WindowedSampler windows that survives the process (post-mortem
// forensics, ISSUE 10).
//
// The live monitoring plane (timeseries.hpp, alerts.hpp) dies with the
// process — exactly when a kill-and-restore chaos run needs it most. A
// HistoryStore makes the window ring durable: every cut SampleWindow is
// encoded as one compact binary frame (kind byte, u32 length, payload,
// u32 CRC spanning the whole head — the same framing discipline as the
// reservation WAL in reservation/persist) and appended to the current
// *segment*. Segments rotate by size and by age, old segments are
// compacted away by retention (count- and time-based), and recovery
// after a crash replays, per segment, the longest intact frame prefix —
// a torn tail or a flipped bit discards that segment's damaged suffix
// and nothing else.
//
// Frames are delta-encoded per series: within a segment, series names
// are interned into a first-use dictionary (later frames carry only the
// id), window timestamps are encoded relative to the previous frame,
// and gauge levels relative to the series' previous value. Counter and
// histogram entries are *already* per-window deltas, so their varints
// stay small. Every segment is self-contained — the dictionary and the
// gauge baselines reset at rotation — which is what lets recovery drop
// a damaged suffix without poisoning later segments, and lets a
// reopened store seal its predecessor's segments and append to a fresh
// one (never into a possibly-torn tail).
//
// Everything is Clock-free: timestamps come from the windows
// themselves, so a SimClock scenario writes a bit-identical store on
// every same-seed run. Queries (`counter_delta`, `rate`, `percentile`,
// `gauge_level`) mirror the WindowedSampler's semantics but take
// absolute [since, until] spans, answering "what was the admission rate
// between t1 and t2" for a store written by a process that is gone.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/reservation/persist.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri::telemetry {

// Where segments live. A backend names segments with lexically ordered
// strings (the store mints "history-<8 digits>.seg"); open() returns a
// byte sink/source for one segment (the backend owns it), remove()
// deletes one (retention compaction).
class HistoryBackend {
 public:
  virtual ~HistoryBackend() = default;
  virtual std::vector<std::string> segments() const = 0;  // sorted
  virtual reservation::LogStorage& open(const std::string& name) = 0;
  virtual void remove(const std::string& name) = 0;
};

// In-memory backend (tests, fault injection). Segments persist across
// HistoryStore instances sharing the backend, so kill-and-restore is a
// store reopen over the same backend. open() is virtual on purpose:
// tests subclass to wrap the returned storage in sim::FaultyStorage.
class MemoryHistoryBackend : public HistoryBackend {
 public:
  std::vector<std::string> segments() const override;
  reservation::LogStorage& open(const std::string& name) override;
  void remove(const std::string& name) override;

  // Tests: corrupt a segment's raw bytes at will.
  reservation::MemoryStorage* segment(const std::string& name);

 private:
  std::map<std::string, std::unique_ptr<reservation::MemoryStorage>> segs_;
};

// One file per segment under `dir` (created on first append). This is
// the on-disk store the colibri_obs history/incident commands read
// after the writing process is gone.
class DirectoryHistoryBackend : public HistoryBackend {
 public:
  explicit DirectoryHistoryBackend(std::string dir);

  std::vector<std::string> segments() const override;
  reservation::LogStorage& open(const std::string& name) override;
  void remove(const std::string& name) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::map<std::string, std::unique_ptr<reservation::FileStorage>> open_;
};

struct HistoryConfig {
  // Rotate the current segment once its encoded size would exceed this.
  std::size_t max_segment_bytes = 256 * 1024;
  // ...or once it spans this much window time (end of the appended
  // window minus start of the segment's first window).
  TimeNs max_segment_age_ns = 3600 * kNsPerSec;
  // Retention: keep at most this many segments (the current one
  // included); the oldest are removed first. 0 = unlimited.
  std::size_t max_segments = 16;
  // Time-based retention: segments whose newest window ended more than
  // this before the newest appended window are removed. 0 = unlimited.
  TimeNs retention_ns = 0;
};

// Counters of one store instance (appends since open + what recovery
// found). Exported as telemetry.history.* when a registry is attached.
struct HistoryStats {
  std::uint64_t frames_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t rotations = 0;
  std::uint64_t segments_dropped = 0;  // retention compaction
  std::uint64_t frames_recovered = 0;  // intact frames found at open
  std::uint64_t segments_recovered = 0;
  std::uint64_t corrupt_segments = 0;  // had a damaged suffix
  std::uint64_t discarded_bytes = 0;   // torn/corrupt suffix bytes
};

// --- frame codec (exposed for tests) ---------------------------------------
// Encoder/decoder state for one segment's per-series dictionary and
// gauge baselines. A frame encoded with some state decodes only with
// the equal state — which is why segments are self-contained.
struct HistoryCodecState {
  std::vector<std::string> names;  // id -> name (first-use order)
  std::map<std::string, std::uint32_t> ids;
  std::map<std::string, std::int64_t> gauge_base;
  TimeNs prev_end_ns = 0;
  bool first = true;
};

// Encodes one window into a full frame (header + payload + CRC),
// advancing `state` exactly as the decoder will.
Bytes encode_history_frame(const SampleWindow& w, HistoryCodecState& state);
// Decodes the frame at `data[off...]`; advances `off` past it and
// returns the window, or nullopt on a torn/corrupt/unknown frame
// (leaving `off` untouched).
std::optional<SampleWindow> decode_history_frame(BytesView data,
                                                 std::size_t& off,
                                                 HistoryCodecState& state);

class HistoryStore : public MetricsSource {
 public:
  // Opening *is* recovery: every existing segment replays its longest
  // intact frame prefix into the in-memory window index, and the store
  // positions itself to append into a fresh segment (sealing old ones,
  // torn or not). `registry` (nullable) re-exports the stats.
  explicit HistoryStore(HistoryBackend& backend, HistoryConfig cfg = {},
                        MetricsRegistry* registry = nullptr);
  ~HistoryStore() override = default;

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  // Appends one window (one frame), rotating/compacting as configured.
  void append(const SampleWindow& w);
  // Appends the sampler's latest window if it is newer than the last
  // appended one — the one-line wiring for a monitoring loop:
  //   if (sampler.poll()) history.append_latest(sampler);
  // Returns true when a frame was appended.
  bool append_latest(const WindowedSampler& sampler);

  // --- queries (absolute spans; until = kUntilEnd reads to the end) -------
  static constexpr TimeNs kUntilEnd = std::numeric_limits<TimeNs>::max();

  // Windows overlapping [since, until], oldest first.
  std::vector<SampleWindow> windows(TimeNs since_ns = 0,
                                    TimeNs until_ns = kUntilEnd) const;
  // Counter increment summed over the span (`prefix` sums every series
  // starting with `series`, same convention as the sampler).
  std::uint64_t counter_delta(std::string_view series, TimeNs since_ns,
                              TimeNs until_ns, bool prefix = false) const;
  // Per-second rate over the span: summed delta / summed window time.
  double rate(std::string_view series, TimeNs since_ns, TimeNs until_ns,
              bool prefix = false) const;
  // Histogram increments merged over the span (count == 0: nothing).
  HistogramSnapshot histogram_delta(std::string_view series, TimeNs since_ns,
                                    TimeNs until_ns) const;
  // Windowed percentile over the span; nullopt when nothing recorded.
  std::optional<double> percentile(std::string_view series, double q,
                                   TimeNs since_ns, TimeNs until_ns) const;
  // Gauge level at the newest window in the span (prefix = max across
  // matching names); nullopt when the span holds no such gauge.
  std::optional<std::int64_t> gauge_level(std::string_view series,
                                          TimeNs since_ns, TimeNs until_ns,
                                          bool prefix = false) const;

  std::size_t window_count() const;
  std::size_t segment_count() const;
  HistoryStats stats() const;

  void collect_metrics(MetricSink& sink) const override;

 private:
  struct Segment {
    std::string name;
    std::vector<SampleWindow> windows;
    std::size_t bytes = 0;
    TimeNs first_start_ns = 0;
    TimeNs last_end_ns = 0;
  };

  void rotate_locked(TimeNs first_start_ns);
  void compact_locked(TimeNs newest_end_ns);
  void recover_locked();

  HistoryBackend* backend_;
  HistoryConfig cfg_;

  mutable std::mutex mu_;
  std::deque<Segment> segments_;     // oldest first; back() = writable
  bool writable_open_ = false;       // back() accepts appends
  std::uint64_t next_segment_index_ = 0;
  TimeNs last_appended_end_ns_ = std::numeric_limits<TimeNs>::min();
  HistoryCodecState enc_;  // writer-side state of the current segment
  HistoryStats stats_;

  ScopedSource registration_;
};

}  // namespace colibri::telemetry
