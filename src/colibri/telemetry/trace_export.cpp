#include "colibri/telemetry/trace_export.hpp"

#include <algorithm>
#include <cstdio>

namespace colibri::telemetry {

namespace {

// Trace-event timestamps are microseconds; keep ns resolution as
// fractional digits.
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  out += buf;
}

constexpr std::int64_t kSourceGapNs = 50'000;  // 50 us between sources

}  // namespace

PerfettoTraceBuilder::Track PerfettoTraceBuilder::track(
    std::string_view process, std::string_view thread) {
  std::string key(process);
  key.push_back('\0');
  key.append(thread);
  if (auto it = tracks_.find(key); it != tracks_.end()) return it->second;

  auto [pit, fresh_pid] =
      pids_.try_emplace(std::string(process),
                        static_cast<std::uint32_t>(pids_.size() + 1));
  const std::uint32_t pid = pit->second;
  if (fresh_pid) {
    std::string m = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                    std::to_string(pid) + ",\"args\":{\"name\":";
    append_json_string(m, process);
    m += "}}";
    metadata_.push_back(std::move(m));
  }

  const Track t{pid, static_cast<std::uint32_t>(tracks_.size() + 1)};
  std::string m = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                  std::to_string(t.pid) +
                  ",\"tid\":" + std::to_string(t.tid) + ",\"args\":{\"name\":";
  append_json_string(m, thread);
  m += "}}";
  metadata_.push_back(std::move(m));
  tracks_.emplace(std::move(key), t);
  return t;
}

void PerfettoTraceBuilder::append_common(std::string& out, Track t,
                                         std::string_view name,
                                         std::string_view category,
                                         std::int64_t ts_ns) {
  out += "{\"name\":";
  append_json_string(out, name);
  out += ",\"cat\":";
  append_json_string(out, category.empty() ? "colibri" : category);
  out += ",\"pid\":" + std::to_string(t.pid) +
         ",\"tid\":" + std::to_string(t.tid) + ",\"ts\":";
  append_us(out, ts_ns);
}

void PerfettoTraceBuilder::append_args(std::string& out, const Args& args) {
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_json_string(out, args[i].first);
    out.push_back(':');
    append_json_string(out, args[i].second);
  }
  out.push_back('}');
}

void PerfettoTraceBuilder::add_complete(Track t, std::string_view name,
                                        std::string_view category,
                                        std::int64_t start_ns,
                                        std::int64_t dur_ns, const Args& args) {
  std::string e;
  append_common(e, t, name, category, start_ns);
  e += ",\"ph\":\"X\",\"dur\":";
  append_us(e, dur_ns < 0 ? 0 : dur_ns);
  append_args(e, args);
  e.push_back('}');
  body_.push_back(std::move(e));
}

void PerfettoTraceBuilder::add_instant(Track t, std::string_view name,
                                       std::string_view category,
                                       std::int64_t ts_ns, const Args& args) {
  std::string e;
  append_common(e, t, name, category, ts_ns);
  e += ",\"ph\":\"i\",\"s\":\"t\"";
  append_args(e, args);
  e.push_back('}');
  body_.push_back(std::move(e));
}

void PerfettoTraceBuilder::add_flow_start(Track t, std::uint64_t id,
                                          std::int64_t ts_ns) {
  std::string e;
  append_common(e, t, "hop", "trace", ts_ns);
  e += ",\"ph\":\"s\",\"id\":" + std::to_string(id) + "}";
  body_.push_back(std::move(e));
}

void PerfettoTraceBuilder::add_flow_step(Track t, std::uint64_t id,
                                         std::int64_t ts_ns) {
  std::string e;
  append_common(e, t, "hop", "trace", ts_ns);
  e += ",\"ph\":\"t\",\"id\":" + std::to_string(id) + "}";
  body_.push_back(std::move(e));
}

void PerfettoTraceBuilder::add_flow_finish(Track t, std::uint64_t id,
                                           std::int64_t ts_ns) {
  std::string e;
  append_common(e, t, "hop", "trace", ts_ns);
  // bp:"e" binds to the enclosing slice rather than the next one.
  e += ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" + std::to_string(id) + "}";
  body_.push_back(std::move(e));
}

std::int64_t PerfettoTraceBuilder::place(std::int64_t src_min_ns,
                                         std::int64_t src_max_ns) {
  const std::int64_t shift = cursor_ns_ - src_min_ns;
  cursor_ns_ += (src_max_ns - src_min_ns) + kSourceGapNs;
  return shift;
}

void PerfettoTraceBuilder::add_span_trace(const SpanTrace& trace,
                                          std::string_view process,
                                          std::string_view label) {
  if (trace.spans.empty()) return;
  std::int64_t lo = trace.spans.front().start_ns, hi = lo;
  for (const Span& s : trace.spans) {
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.start_ns + std::max<std::int64_t>(s.duration_ns, 0));
  }
  const std::int64_t shift = place(lo, hi);

  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& s = trace.spans[i];
    const Track t = track(process, s.name);
    std::string name(label);
    if (!name.empty()) name += ": ";
    name += s.name;
    Args args = s.args;
    args.emplace_back("span_id", std::to_string(s.id));
    args.emplace_back("depth", std::to_string(s.depth));
    args.emplace_back("bytes", std::to_string(s.bytes));
    args.emplace_back("self_time_ns", std::to_string(trace.self_time_ns(i)));
    if (s.truncated) {
      add_instant(t, name + " (truncated)", s.category, s.start_ns + shift,
                  args);
    } else {
      add_complete(t, name, s.category, s.start_ns + shift, s.duration_ns,
                   args);
    }
  }

  // Cross-track causality: spans stamped with distributed-tracing ids
  // get a flow arrow from the upstream hop's slice to theirs. The child
  // span opens while its parent is still on the wire-level call stack,
  // so the child's start time lies inside both slices — anchor both
  // flow endpoints there.
  for (const Span& s : trace.spans) {
    if ((s.trace_hi | s.trace_lo) == 0 || s.ctx_parent == 0 || s.truncated) {
      continue;
    }
    const Span* parent = nullptr;
    for (const Span& p : trace.spans) {
      if (p.ctx_span == s.ctx_parent && p.trace_hi == s.trace_hi &&
          p.trace_lo == s.trace_lo) {
        parent = &p;
        break;
      }
    }
    if (parent == nullptr || parent->truncated) continue;
    add_flow_start(track(process, parent->name), s.ctx_span,
                   s.start_ns + shift);
    add_flow_finish(track(process, s.name), s.ctx_span, s.start_ns + shift);
  }
}

void PerfettoTraceBuilder::add_events(const std::vector<Event>& events,
                                      std::string_view process) {
  if (events.empty()) return;
  std::int64_t lo = events.front().time_ns, hi = lo;
  for (const Event& e : events) {
    lo = std::min(lo, e.time_ns);
    hi = std::max(hi, e.time_ns);
  }
  const std::int64_t shift = place(lo, hi);

  for (const Event& e : events) {
    const std::optional<std::string> as = e.str("as");
    const Track t = track(process, as.has_value() ? *as : e.component);
    Args args;
    args.emplace_back("severity", severity_name(e.severity));
    args.emplace_back("component", e.component);
    for (const EventField& f : e.fields) {
      switch (f.kind) {
        case EventField::Kind::kU64:
          args.emplace_back(f.key, std::to_string(f.u));
          break;
        case EventField::Kind::kI64:
          args.emplace_back(f.key, std::to_string(f.i));
          break;
        case EventField::Kind::kStr:
          args.emplace_back(f.key, f.s);
          break;
      }
    }
    add_instant(t, e.name, e.component, e.time_ns + shift, args);
  }
}

void PerfettoTraceBuilder::add_stage_spans(const StageProfiler& profiler,
                                           const std::vector<StageSpan>& spans,
                                           std::string_view process,
                                           std::string_view thread) {
  if (spans.empty()) return;
  std::int64_t lo = spans.front().t0_ns, hi = lo;
  for (const StageSpan& s : spans) {
    lo = std::min(lo, s.t0_ns);
    hi = std::max(hi, s.t1_ns);
  }
  const std::int64_t shift = place(lo, hi);

  const Track t = track(process, thread);
  for (const StageSpan& s : spans) {
    Args args;
    args.emplace_back("batch", std::to_string(s.batch));
    add_complete(t, profiler.stage_name(s.stage), "pipeline", s.t0_ns + shift,
                 s.t1_ns - s.t0_ns, args);
  }
}

std::string PerfettoTraceBuilder::to_json() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& part : {&metadata_, &body_}) {
    for (const std::string& e : *part) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('\n');
      out += e;
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace colibri::telemetry
