#include "colibri/telemetry/profiler.hpp"

#include <chrono>

namespace colibri::telemetry {

std::int64_t profiler_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StageProfiler::StageProfiler(std::initializer_list<const char*> stages)
    : hists_(stages.size()) {
  names_.reserve(stages.size());
  for (const char* s : stages) names_.emplace_back(s);
}

void StageProfiler::record(std::size_t stage, std::int64_t t0,
                           std::int64_t t1) {
  if (stage >= hists_.size()) return;
  const std::int64_t d = t1 - t0;
  hists_[stage].record(d > 0 ? static_cast<std::uint64_t>(d) : 0);
  if (span_cap_ != 0) {
    StageSpan& slot = span_ring_[span_count_ % span_cap_];
    slot.stage = static_cast<std::uint8_t>(stage);
    slot.batch = batch_seq_;
    slot.t0_ns = t0;
    slot.t1_ns = t1;
    ++span_count_;
  }
}

void StageProfiler::count_batch(std::size_t occupancy) {
  occupancy_.record(occupancy);
  ++batch_seq_;
}

void StageProfiler::set_span_capture(std::size_t max_spans) {
  span_cap_ = max_spans;
  span_count_ = 0;
  span_ring_.assign(max_spans, StageSpan{});
}

std::vector<StageSpan> StageProfiler::spans() const {
  std::vector<StageSpan> out;
  if (span_cap_ == 0 || span_count_ == 0) return out;
  const std::uint64_t live = span_count_ < span_cap_ ? span_count_ : span_cap_;
  out.reserve(static_cast<std::size_t>(live));
  for (std::uint64_t i = span_count_ - live; i < span_count_; ++i) {
    out.push_back(span_ring_[i % span_cap_]);
  }
  return out;
}

void StageProfiler::collect_metrics(MetricSink& sink) const {
  std::string scratch;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const HistogramSnapshot h = hists_[i].snapshot();
    if (h.count == 0) continue;
    scratch.assign("stage.").append(names_[i]).append("_ns");
    sink.histogram(scratch, h);
  }
  const HistogramSnapshot occ = occupancy_.snapshot();
  if (occ.count != 0) sink.histogram("batch_occupancy", occ);
}

void StageProfiler::reset() {
  for (auto& h : hists_) h.reset();
  occupancy_.reset();
  batch_seq_ = 0;
  span_count_ = 0;
}

}  // namespace colibri::telemetry
