#include "colibri/telemetry/openmetrics.hpp"

namespace colibri::telemetry {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_type_line(std::string& out, const std::string& name,
                      const char* type) {
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

// Help text per series family, matched by longest internal-name prefix
// (order entries specific before generic).
struct HelpEntry {
  const char* prefix;
  const char* help;
};
constexpr HelpEntry kHelp[] = {
    {"router.stage.", "Wall time this border-router pipeline stage spent per batch, nanoseconds"},
    {"router.batch_occupancy", "Packets per processed border-router batch"},
    {"router.drop.", "Packets dropped by the border router, by reason"},
    {"router.forwarded", "Packets validated and forwarded to the next AS"},
    {"router.delivered", "Packets validated and delivered at the last hop"},
    {"router.validate_latency_ns", "Sampled wall-clock validation latency, nanoseconds"},
    {"gateway.stage.", "Wall time this gateway pipeline stage spent per batch chunk, nanoseconds"},
    {"gateway.batch_occupancy", "Packets per processed gateway batch chunk"},
    {"gateway.drop.", "Host packets refused by the gateway, by reason"},
    {"gateway.forwarded", "Host packets monitored, authenticated, and emitted"},
    {"gateway_shard.count", "Gateway shards currently configured"},
    {"gateway_shard.", "Per-shard gateway series (see the gateway family)"},
    {"gateway_runtime.shard.count", "Sharded-runtime worker shards"},
    {"gateway_runtime.", "Sharded-runtime health: ring depth, watermarks, rejections, heartbeats"},
    {"bus.", "Control-plane message bus"},
    {"events.", "Structured audit event log"},
    {"flight_recorder.", "Packet flight recorder"},
    {"telemetry.sampler.", "Windowed time-series sampler: windows cut and retained"},
    {"telemetry.alerts.", "Alert engine: rule states, evaluations, firing/resolved totals"},
    {"telemetry.slo.", "SLO error budgets: burn rate and remaining budget, milli-units"},
};

void append_help_line(std::string& out, const std::string& name,
                      std::string_view internal_name) {
  const char* help = openmetrics_help(internal_name);
  if (help == nullptr) return;
  out += "# HELP ";
  out += name;
  out.push_back(' ');
  out += openmetrics_escape_help(help);
  out.push_back('\n');
}

}  // namespace

const char* openmetrics_help(std::string_view internal_name) {
  const HelpEntry* best = nullptr;
  for (const HelpEntry& e : kHelp) {
    const std::string_view prefix(e.prefix);
    if (internal_name.substr(0, prefix.size()) == prefix &&
        (best == nullptr || prefix.size() > std::string_view(best->prefix).size())) {
      best = &e;
    }
  }
  return best == nullptr ? nullptr : best->help;
}

std::string openmetrics_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string openmetrics_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string openmetrics_name(std::string_view internal_name) {
  std::string out = "colibri_";
  for (const char c : internal_name) {
    out.push_back(valid_name_char(c) ? c : '_');
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(96 * (snapshot.counters.size() + snapshot.gauges.size()) +
              512 * snapshot.histograms.size() + 16);

  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "counter");
    out += n;
    out += "_total ";
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "gauge");
    out += n;
    out.push_back(' ');
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty buckets (sparse)
      cumulative += h.buckets[i];
      // The last bucket is unbounded and folds into +Inf below.
      if (i + 1 >= h.buckets.size()) break;
      out += n;
      out += "_bucket{le=\"";
      out += openmetrics_escape_label(
          std::to_string(HistogramSnapshot::bucket_upper_bound(i)));
      out += "\"} ";
      out += std::to_string(cumulative);
      out.push_back('\n');
    }
    out += n;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count);
    out.push_back('\n');
    out += n;
    out += "_sum ";
    out += std::to_string(h.sum);
    out.push_back('\n');
    out += n;
    out += "_count ";
    out += std::to_string(h.count);
    out.push_back('\n');
  }
  out += "# EOF\n";
  return out;
}

}  // namespace colibri::telemetry
