#include "colibri/telemetry/openmetrics.hpp"

namespace colibri::telemetry {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_type_line(std::string& out, const std::string& name,
                      const char* type) {
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string openmetrics_name(std::string_view internal_name) {
  std::string out = "colibri_";
  for (const char c : internal_name) {
    out.push_back(valid_name_char(c) ? c : '_');
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(96 * (snapshot.counters.size() + snapshot.gauges.size()) +
              512 * snapshot.histograms.size() + 16);

  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = openmetrics_name(name);
    append_type_line(out, n, "counter");
    out += n;
    out += "_total ";
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = openmetrics_name(name);
    append_type_line(out, n, "gauge");
    out += n;
    out.push_back(' ');
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = openmetrics_name(name);
    append_type_line(out, n, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty buckets (sparse)
      cumulative += h.buckets[i];
      // The last bucket is unbounded and folds into +Inf below.
      if (i + 1 >= h.buckets.size()) break;
      out += n;
      out += "_bucket{le=\"";
      out += std::to_string(HistogramSnapshot::bucket_upper_bound(i));
      out += "\"} ";
      out += std::to_string(cumulative);
      out.push_back('\n');
    }
    out += n;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count);
    out.push_back('\n');
    out += n;
    out += "_sum ";
    out += std::to_string(h.sum);
    out.push_back('\n');
    out += n;
    out += "_count ";
    out += std::to_string(h.count);
    out.push_back('\n');
  }
  out += "# EOF\n";
  return out;
}

}  // namespace colibri::telemetry
