#include "colibri/telemetry/openmetrics.hpp"

#include <cstdlib>

namespace colibri::telemetry {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_type_line(std::string& out, const std::string& name,
                      const char* type) {
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

// Help text per series family, matched by longest internal-name prefix
// (order entries specific before generic).
struct HelpEntry {
  const char* prefix;
  const char* help;
};
constexpr HelpEntry kHelp[] = {
    {"router.stage.", "Wall time this border-router pipeline stage spent per batch, nanoseconds"},
    {"router.batch_occupancy", "Packets per processed border-router batch"},
    {"router.drop.", "Packets dropped by the border router, by reason"},
    {"router.forwarded", "Packets validated and forwarded to the next AS"},
    {"router.delivered", "Packets validated and delivered at the last hop"},
    {"router.validate_latency_ns", "Sampled wall-clock validation latency, nanoseconds"},
    {"gateway.stage.", "Wall time this gateway pipeline stage spent per batch chunk, nanoseconds"},
    {"gateway.batch_occupancy", "Packets per processed gateway batch chunk"},
    {"gateway.drop.", "Host packets refused by the gateway, by reason"},
    {"gateway.forwarded", "Host packets monitored, authenticated, and emitted"},
    {"gateway_shard.count", "Gateway shards currently configured"},
    {"gateway_shard.", "Per-shard gateway series (see the gateway family)"},
    {"gateway_runtime.shard.count", "Sharded-runtime worker shards"},
    {"gateway_runtime.", "Sharded-runtime health: ring depth, watermarks, rejections, heartbeats"},
    {"bus.", "Control-plane message bus"},
    {"events.", "Structured audit event log"},
    {"flight_recorder.", "Packet flight recorder"},
    {"telemetry.sampler.", "Windowed time-series sampler: windows cut and retained"},
    {"telemetry.alerts.", "Alert engine: rule states, evaluations, firing/resolved totals"},
    {"telemetry.slo.", "SLO error budgets: burn rate and remaining budget, milli-units"},
    {"telemetry.audit.", "Conservation auditor: passes, cross-AS checks, violations by kind"},
    {"fleet.rate.", "Fleet-wide per-second rollup of one counter family"},
    {"fleet.top.", "Space-saving heavy-hitter sketch: ranked reservation estimates"},
    {"fleet.", "Cross-AS metrics federation: members, links, windows, series budget"},
};

void append_help_line(std::string& out, const std::string& name,
                      std::string_view internal_name) {
  const char* help = openmetrics_help(internal_name);
  if (help == nullptr) return;
  out += "# HELP ";
  out += name;
  out.push_back(' ');
  out += openmetrics_escape_help(help);
  out.push_back('\n');
}

}  // namespace

const char* openmetrics_help(std::string_view internal_name) {
  const HelpEntry* best = nullptr;
  for (const HelpEntry& e : kHelp) {
    const std::string_view prefix(e.prefix);
    if (internal_name.substr(0, prefix.size()) == prefix &&
        (best == nullptr || prefix.size() > std::string_view(best->prefix).size())) {
      best = &e;
    }
  }
  return best == nullptr ? nullptr : best->help;
}

std::string openmetrics_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string openmetrics_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string openmetrics_name(std::string_view internal_name) {
  std::string out = "colibri_";
  for (const char c : internal_name) {
    out.push_back(valid_name_char(c) ? c : '_');
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(96 * (snapshot.counters.size() + snapshot.gauges.size()) +
              512 * snapshot.histograms.size() + 16);

  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "counter");
    out += n;
    out += "_total ";
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "gauge");
    out += n;
    out.push_back(' ');
    out += std::to_string(v);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = openmetrics_name(name);
    append_help_line(out, n, name);
    append_type_line(out, n, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty buckets (sparse)
      cumulative += h.buckets[i];
      // The last bucket is unbounded and folds into +Inf below.
      if (i + 1 >= h.buckets.size()) break;
      out += n;
      out += "_bucket{le=\"";
      out += openmetrics_escape_label(
          std::to_string(HistogramSnapshot::bucket_upper_bound(i)));
      out += "\"} ";
      out += std::to_string(cumulative);
      out.push_back('\n');
    }
    out += n;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count);
    out.push_back('\n');
    out += n;
    out += "_sum ";
    out += std::to_string(h.sum);
    out.push_back('\n');
    out += n;
    out += "_count ";
    out += std::to_string(h.count);
    out.push_back('\n');
  }
  out += "# EOF\n";
  return out;
}

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// "<name>" or "<name>{<label>="<escaped>",...}"; returns false on
// malformed syntax. `name_end` gets the bare-name length.
bool valid_sample_name(std::string_view s, std::size_t& name_end) {
  std::size_t i = 0;
  while (i < s.size() && valid_name_char(s[i])) ++i;
  if (i == 0 || (s[0] >= '0' && s[0] <= '9')) return false;
  name_end = i;
  if (i == s.size()) return true;
  if (s[i] != '{') return false;
  ++i;
  while (i < s.size() && s[i] != '}') {
    std::size_t l = i;
    while (l < s.size() && valid_name_char(s[l])) ++l;
    if (l == i || s.substr(i, l - i).find(':') != std::string_view::npos) {
      return false;
    }
    if (l >= s.size() || s[l] != '=' || l + 1 >= s.size() ||
        s[l + 1] != '"') {
      return false;
    }
    i = l + 2;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;  // escaped char, skip its pair
      ++i;
    }
    if (i >= s.size()) return false;  // unterminated value
    ++i;
    if (i < s.size() && s[i] == ',') ++i;
  }
  if (i >= s.size()) return false;  // no closing '}'
  return i + 1 == s.size();
}

bool parse_value(std::string_view s, double& out) {
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace

std::optional<OpenMetricsExposition> parse_openmetrics(std::string_view text,
                                                       std::string* error) {
  OpenMetricsExposition exp;
  if (text.empty() || text.back() != '\n') {
    fail(error, "exposition must end with a newline");
    return std::nullopt;
  }
  bool saw_eof = false;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    const std::string where = "line " + std::to_string(lineno) + ": ";
    if (saw_eof) {
      fail(error, where + "content after # EOF");
      return std::nullopt;
    }
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.empty()) {
      fail(error, where + "empty line");
      return std::nullopt;
    }
    if (line[0] == '#') {
      const bool is_type = line.substr(0, 7) == "# TYPE ";
      const bool is_help = line.substr(0, 7) == "# HELP ";
      if (!is_type && !is_help) {
        fail(error, where + "unknown comment line");
        return std::nullopt;
      }
      const std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string_view::npos || sp == 0) {
        fail(error, where + "malformed metadata line");
        return std::nullopt;
      }
      const std::string family(rest.substr(0, sp));
      std::size_t name_end = 0;
      if (!valid_sample_name(family, name_end) || name_end != family.size()) {
        fail(error, where + "invalid family name '" + family + "'");
        return std::nullopt;
      }
      const std::string payload(rest.substr(sp + 1));
      if (is_type) {
        if (payload != "counter" && payload != "gauge" &&
            payload != "histogram") {
          fail(error, where + "unknown TYPE '" + payload + "'");
          return std::nullopt;
        }
        if (!exp.types.emplace(family, payload).second) {
          fail(error, where + "duplicate TYPE for " + family);
          return std::nullopt;
        }
      } else {
        if (exp.types.count(family) != 0) {
          // The spec orders HELP before TYPE; the emitter complies.
          fail(error, where + "HELP after TYPE for " + family);
          return std::nullopt;
        }
        if (!exp.helps.emplace(family, payload).second) {
          fail(error, where + "duplicate HELP for " + family);
          return std::nullopt;
        }
      }
      continue;
    }
    // Sample line: "<name>[{labels}] <value>". The value must consume
    // its whole field (timestamps are not emitted and not accepted).
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0 || sp + 1 >= line.size()) {
      fail(error, where + "malformed sample line");
      return std::nullopt;
    }
    const std::string name(line.substr(0, sp));
    std::size_t name_end = 0;
    if (!valid_sample_name(name, name_end)) {
      fail(error, where + "invalid sample name '" + name + "'");
      return std::nullopt;
    }
    double value = 0;
    if (!parse_value(line.substr(sp + 1), value)) {
      fail(error, where + "invalid sample value");
      return std::nullopt;
    }
    if (!exp.samples.emplace(name, value).second) {
      fail(error, where + "duplicate sample " + name);
      return std::nullopt;
    }
  }
  if (!saw_eof) {
    fail(error, "missing # EOF terminator");
    return std::nullopt;
  }
  return exp;
}

}  // namespace colibri::telemetry

