// Process-wide telemetry: named counters, gauges, and fixed-bucket
// latency histograms, with a JSON snapshot/export API.
//
// Two usage patterns share one registry:
//
//  * Owned metrics — `registry.counter("name")` get-or-creates a metric
//    owned by the registry; the returned reference stays valid for the
//    registry's lifetime. Registration takes a lock; afterwards the
//    metric is a bare std::atomic (no heap, no locks).
//
//  * Sources — components whose fast path must never share cache lines
//    across instances (border routers, gateway shards) keep their
//    counters as instance members and register a `MetricsSource`;
//    `snapshot()` calls every live source and merges equal names by
//    summation (bucket-wise for histograms), so the export aggregates
//    across instances while each instance keeps its own cheap counters.
//
// Counters come with two increment flavors: `inc()` is a full RMW for
// metrics shared between threads; `bump()` is a single-writer
// load+store (a plain add on x86) for per-instance fast-path counters
// that are written by exactly one thread at a time but may be read
// concurrently by a snapshot.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace colibri::telemetry {

// Appends `s` as a quoted, escaped JSON string. Shared by the JSON
// exporters (metrics snapshot, event log, flight recorder).
void append_json_string(std::string& out, std::string_view s);

class Counter {
 public:
  // Thread-safe increment (RMW).
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  // Single-writer increment: only the owning thread may call this, but
  // concurrent readers always see a torn-free value.
  void bump(std::uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed power-of-two buckets: bucket i counts values v with
// std::bit_width(v) == i, i.e. v in [2^(i-1), 2^i - 1] (bucket 0 holds
// v == 0). 44 buckets cover nanosecond latencies up to ~2.4 hours; the
// last bucket absorbs anything larger.
inline constexpr std::size_t kHistogramBuckets = 44;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  // Inclusive upper bound of bucket i (2^i - 1; saturated for the last).
  static std::uint64_t bucket_upper_bound(std::size_t i);
  // Conservative (upper-bound) percentile estimate, q in [0, 1].
  double percentile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  // Single-writer record (fast path); branch-light: one bit_width, two
  // relaxed stores.
  void record(std::uint64_t v) {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(v), kHistogramBuckets - 1);
    buckets_[b].store(buckets_[b].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  }
  // Thread-safe record (RMW) for histograms shared between threads.
  void record_shared(std::uint64_t v) {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(v), kHistogramBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

// Receives one component's metrics during collection. Equal names from
// different sources are merged by summation.
class MetricSink {
 public:
  virtual ~MetricSink() = default;
  virtual void counter(std::string_view name, std::uint64_t value) = 0;
  virtual void gauge(std::string_view name, std::int64_t value) = 0;
  virtual void histogram(std::string_view name,
                         const HistogramSnapshot& h) = 0;
};

// Implemented by components that keep instance-local metrics.
class MetricsSource {
 public:
  virtual ~MetricsSource() = default;
  virtual void collect_metrics(MetricSink& sink) const = 0;
};

// Decorator that prepends a prefix to every metric name before
// forwarding to the wrapped sink. Lets a container re-export a
// component's metrics under its own namespace — e.g. a ShardedGateway
// collecting each shard under "gateway_shard.<i>." — without the
// component knowing where it lives.
class PrefixedSink : public MetricSink {
 public:
  PrefixedSink(std::string prefix, MetricSink& inner)
      : prefix_(std::move(prefix)), inner_(inner) {}

  void counter(std::string_view name, std::uint64_t value) override {
    scratch_.assign(prefix_).append(name);
    inner_.counter(scratch_, value);
  }
  void gauge(std::string_view name, std::int64_t value) override {
    scratch_.assign(prefix_).append(name);
    inner_.gauge(scratch_, value);
  }
  void histogram(std::string_view name, const HistogramSnapshot& h) override {
    scratch_.assign(prefix_).append(name);
    inner_.histogram(scratch_, h);
  }

 private:
  std::string prefix_;
  MetricSink& inner_;
  std::string scratch_;
};

// Full registry state at one point in time.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Names that sources reported with conflicting metric kinds during
  // collection. The conflicting series is kept under a namespaced name
  // ("<name>.counter" / "<name>.gauge" / "<name>.histogram") instead of
  // being silently summed into the wrong kind.
  std::vector<std::string> collisions;

  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create; references remain valid for the registry's lifetime.
  // A name is bound to one metric kind: re-registering it as a
  // different kind throws std::logic_error instead of creating an
  // ambiguous series (two exposition types under one name).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Source registration. Components attach at construction and MUST
  // detach (at a stable address) before destruction or relocation.
  void attach(const MetricsSource* source);
  void detach(const MetricsSource* source);
  std::size_t source_count() const;

  // Owned metrics plus every attached source, merged.
  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

  // Zeroes owned metrics (sources reset through their owners).
  void reset();

  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<const MetricsSource*> sources_;
};

// RAII source registration; default-constructed handle is inert.
class ScopedSource {
 public:
  ScopedSource() = default;
  ScopedSource(MetricsRegistry* registry, const MetricsSource* source)
      : registry_(registry), source_(source) {
    if (registry_ != nullptr) registry_->attach(source_);
  }
  ~ScopedSource() { release(); }

  ScopedSource(const ScopedSource&) = delete;
  ScopedSource& operator=(const ScopedSource&) = delete;

  void release() {
    if (registry_ != nullptr) registry_->detach(source_);
    registry_ = nullptr;
    source_ = nullptr;
  }

  // Re-points the handle: detaches the old registration (if any) and
  // attaches `source` to `registry` (nullptr registry = stay detached).
  void rebind(MetricsRegistry* registry, const MetricsSource* source) {
    release();
    registry_ = registry;
    source_ = source;
    if (registry_ != nullptr) registry_->attach(source_);
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  const MetricsSource* source_ = nullptr;
};

}  // namespace colibri::telemetry
