// Windowed time-series telemetry: the live-monitoring layer on top of
// the cumulative MetricsRegistry.
//
// Counters and histograms only ever grow; an operator watching for
// overload needs *rates* ("admissions per second, right now") and
// *windowed* percentiles ("p99 over the last ten seconds", not since
// process start). WindowedSampler provides both without touching any
// fast path: it periodically snapshots a MetricsRegistry into a
// fixed-size ring of per-window deltas — counter deltas, bucket-wise
// histogram deltas, gauge levels — and answers rate/percentile/
// watermark queries from the ring.
//
// Sampling is Clock-driven, never thread-driven: the owner calls
// poll() at whatever cadence it likes, and a window is cut only when
// one sampling period of *Clock time* has elapsed. Under SimClock a
// scenario therefore samples deterministically — the same run produces
// the same windows, the same rates, and (through the alert engine, see
// alerts.hpp) the same alert transitions, which is what makes the
// monitoring plane testable at all.
//
// The sampler is itself a MetricsSource: series marked with
// track_rate()/track_percentiles()/track_watermark() are re-exported
// as derived gauges ("<series>.rate_1s", "<series>.rate_10s",
// "<series>.windowed_p50", "<series>.windowed_p99",
// "<series>.high_watermark") so the windowed view rides the existing
// JSON snapshot and OpenMetrics exposition unchanged. Registering the
// sampler with the registry it samples is safe and normal — poll()
// never holds the sampler lock while snapshotting.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

struct WindowedSamplerConfig {
  // Minimum Clock time between samples; poll() calls inside one period
  // are no-ops. A window's actual elapsed time may exceed the period
  // (the producer polled late, or SimClock jumped) — queries always
  // divide by real elapsed time, never by the nominal period.
  TimeNs period_ns = kNsPerSec;
  // Windows retained; the ring drops the oldest beyond this.
  std::size_t ring_capacity = 64;
  // Per-window multiplicative decay applied to tracked high-watermarks
  // before taking the max with the current gauge level.
  double watermark_decay = 0.9;
  // When set, a series only enters a window if the filter returns
  // true. Forensics monitors use this to keep wall-clock-derived
  // series (real host execution times, which never replay the same)
  // out of deterministic capture. nullptr keeps everything.
  std::function<bool(std::string_view)> series_filter;
};

// One sampled window: what changed between two registry snapshots.
struct SampleWindow {
  TimeNs start_ns = 0;
  TimeNs end_ns = 0;
  TimeNs elapsed_ns() const { return end_ns - start_ns; }
  // Counter increments during the window (a counter that shrank — a
  // component reset — restarts the delta from its new value).
  std::map<std::string, std::uint64_t> counter_deltas;
  // Gauge levels at the window's end.
  std::map<std::string, std::int64_t> gauges;
  // Bucket-wise histogram increments during the window.
  std::map<std::string, HistogramSnapshot> histogram_deltas;
};

class WindowedSampler : public MetricsSource {
 public:
  // Samples `source`; derived gauges export through `export_registry`
  // (nullptr = query-only, no re-export). `source` and `clock` must
  // outlive the sampler. Passing the same registry as source and
  // export is the expected wiring.
  WindowedSampler(const MetricsRegistry& source, const Clock& clock,
                  WindowedSamplerConfig cfg = {},
                  MetricsRegistry* export_registry = nullptr);
  ~WindowedSampler() override = default;

  WindowedSampler(const WindowedSampler&) = delete;
  WindowedSampler& operator=(const WindowedSampler&) = delete;

  // Cuts a new window if at least one period elapsed since the last
  // one; otherwise a cheap no-op (one clock read, one atomic load).
  // Returns true when a window was sampled. Thread-safe, but
  // concurrent callers may both sample back-to-back windows — run one
  // monitoring loop per sampler.
  bool poll();

  // --- queries -----------------------------------------------------------
  // Every query walks the ring newest-to-oldest until the summed
  // elapsed time covers `span_ns` (kSpanAll = the whole ring), so a
  // "rate over 10 s" is exact regardless of how long individual
  // windows ran.
  static constexpr TimeNs kSpanAll = std::numeric_limits<TimeNs>::max();

  // Per-second rate of a counter over the span. `prefix` sums every
  // counter whose name starts with `series` (e.g. "router.drop.").
  double rate(std::string_view series, TimeNs span_ns,
              bool prefix = false) const;
  // Largest single-window rate in the retained ring — the burst the
  // run peaked at, robust against a long idle tail window.
  double peak_rate(std::string_view series, bool prefix = false) const;
  // Counter increment summed over the span.
  std::uint64_t counter_delta(std::string_view series, TimeNs span_ns,
                              bool prefix = false) const;
  // Histogram increments merged over the span; count == 0 when the
  // series recorded nothing in the span.
  HistogramSnapshot histogram_delta(std::string_view series,
                                    TimeNs span_ns) const;
  // Windowed percentile over the span; nullopt when nothing recorded.
  std::optional<double> windowed_percentile(std::string_view series, double q,
                                            TimeNs span_ns) const;
  // Latest sampled gauge level (prefix = max across matching names);
  // nullopt before the first window or when the series is absent.
  std::optional<std::int64_t> gauge_level(std::string_view series,
                                          bool prefix = false) const;
  // Decaying high-watermark of a gauge registered with
  // track_watermark(); 0 until the first window.
  double watermark(std::string_view series) const;

  std::size_t window_count() const;      // retained in the ring
  std::uint64_t windows_sampled() const; // total since construction
  std::optional<SampleWindow> latest_window() const;
  // Up to `max_windows` newest retained windows, oldest first — the
  // flight-recorder view a forensic snapshot (telemetry/incident.hpp)
  // embeds in an incident bundle.
  std::vector<SampleWindow> recent_windows(std::size_t max_windows) const;
  TimeNs period_ns() const { return cfg_.period_ns; }

  // --- derived-gauge export ----------------------------------------------
  // Export "<series>.rate_1s" and "<series>.rate_10s" (events/s,
  // rounded; a trailing '.' in `series` marks a prefix sum and the
  // gauges attach directly, e.g. "router.drop.rate_1s").
  void track_rate(std::string series);
  // Export "<series>.windowed_p50" / "<series>.windowed_p99" over the
  // last 10 s (skipped while the span recorded nothing).
  void track_percentiles(std::string series);
  // Export "<series>.high_watermark": per-window decaying max of the
  // gauge, so a past spike stays visible for ~1/(1-decay) windows.
  void track_watermark(std::string series);

  void collect_metrics(MetricSink& sink) const override;

 private:
  bool sample(TimeNs now);
  double rate_locked(std::string_view series, TimeNs span_ns,
                     bool prefix) const;
  std::uint64_t counter_delta_locked(std::string_view series, TimeNs span_ns,
                                     bool prefix) const;
  HistogramSnapshot histogram_delta_locked(std::string_view series,
                                           TimeNs span_ns) const;

  const MetricsRegistry* source_;
  const Clock* clock_;
  WindowedSamplerConfig cfg_;

  // Fast-path gate for poll(): end time of the newest window, read
  // without the lock.
  std::atomic<TimeNs> last_end_ns_;

  mutable std::mutex mu_;
  MetricsSnapshot prev_;       // snapshot the next window deltas against
  bool have_prev_ = false;
  std::deque<SampleWindow> ring_;  // oldest first
  std::uint64_t windows_sampled_ = 0;
  std::set<std::string, std::less<>> rate_tracked_;
  std::set<std::string, std::less<>> pct_tracked_;
  std::map<std::string, double, std::less<>> watermarks_;

  ScopedSource registration_;
};

}  // namespace colibri::telemetry
