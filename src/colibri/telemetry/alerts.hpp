// Declarative alerting and SLO burn-rate tracking over windowed
// telemetry (timeseries.hpp).
//
// An AlertRule names a signal derived from the WindowedSampler ring —
// a counter rate, a windowed histogram percentile, a gauge level, or a
// decaying high-watermark — a comparison against a threshold, and a
// for-duration debounce. The engine runs every rule through a
// three-state machine (inactive → pending → firing): the condition
// must hold continuously for `for_ns` of Clock time before the rule
// fires, and a firing rule resolves on the first evaluation where the
// condition no longer holds. Both transitions emit structured events
// into the EventLog ("alert.firing" / "alert.resolved", component
// "telemetry") and move the telemetry.alerts.* counters, so the audit
// trail and the metric surface agree on every incident by
// construction.
//
// A rule may carry a guard — a second, gauge-valued condition that
// must hold for the rule to be eligible at all. That is how "the
// worker heartbeat stopped" becomes an alert only *while the ring has
// queued work*: rate(heartbeats) < t guarded by ring_depth > 0.
//
// Slo objects track an error budget: a bad-event fraction (latency
// above a threshold out of a histogram, or a bad/total counter pair)
// against an objective fraction. burn_rate = observed bad fraction /
// objective over the evaluation span — burn 1.0 consumes the budget
// exactly at the allowed pace, burn 10 exhausts it 10x faster.
// budget_remaining integrates over the whole retained ring. Each SLO
// rides the same state machine through its burn-rate alert.
//
// Everything here is Clock-driven and deterministic under SimClock,
// and none of it touches a packet path: evaluation cost is
// proportional to rules x retained windows, paid by the monitoring
// loop that calls evaluate().
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri::telemetry {

enum class AlertSignal : std::uint8_t {
  kRate,        // counter events/s over span_ns (prefix sums supported)
  kPercentile,  // windowed histogram percentile over span_ns
  kGauge,       // latest sampled gauge level (prefix = max)
  kWatermark,   // decaying high-watermark (track_watermark() series)
};

enum class AlertCmp : std::uint8_t { kAbove, kBelow };

struct AlertRule {
  std::string name;    // unique; "runtime.shard0.stall"
  std::string series;  // metric the signal reads; trailing '.' = prefix
  AlertSignal signal = AlertSignal::kRate;
  double quantile = 0.99;          // kPercentile only
  TimeNs span_ns = 10 * kNsPerSec; // evaluation window for rate/percentile
  AlertCmp cmp = AlertCmp::kAbove;
  double threshold = 0;
  // The condition must hold this long (continuously, in Clock time)
  // before the rule fires; 0 fires on the first violating evaluation.
  TimeNs for_ns = 0;
  Severity severity = Severity::kWarn;
  // Optional eligibility guard on a gauge: when set, the rule only
  // evaluates while `guard_series` (latest level, prefix = max)
  // compares true; otherwise the condition counts as not violated.
  std::string guard_series;
  AlertCmp guard_cmp = AlertCmp::kAbove;
  double guard_threshold = 0;

  bool has_guard() const { return !guard_series.empty(); }
  bool series_is_prefix() const {
    return !series.empty() && series.back() == '.';
  }
};

enum class AlertState : std::uint8_t { kInactive = 0, kPending, kFiring };

const char* alert_state_name(AlertState s);

// Service-level objective with error-budget accounting.
struct Slo {
  enum class Kind : std::uint8_t {
    kLatency,   // bad = histogram events above latency_threshold_ns
    kFraction,  // bad = `series` counter, total = `total_series` counter
  };

  std::string name;  // "admission-latency"
  Kind kind = Kind::kLatency;
  // Max tolerable bad fraction: 0.001 = "99.9% of events good".
  double objective = 0.001;
  // kLatency: histogram series + the latency bound above which an
  // event is bad. kFraction: bad-counter series (trailing '.' = prefix
  // sum) plus total_series for the denominator.
  std::string series;
  std::uint64_t latency_threshold_ns = 0;
  std::string total_series;
  // Burn-rate evaluation span and the burn multiple that alerts.
  TimeNs span_ns = 10 * kNsPerSec;
  double burn_alert = 10.0;
  TimeNs for_ns = 0;
  Severity severity = Severity::kWarn;
};

// Point-in-time view of one rule (status()) or one SLO (slo_status()).
struct AlertStatus {
  std::string name;
  AlertState state = AlertState::kInactive;
  Severity severity = Severity::kWarn;
  double last_value = 0;   // signal at the last evaluation
  bool has_value = false;  // false: signal had no data (e.g. empty pctile)
  TimeNs since_ns = 0;     // when the current state was entered
  std::uint64_t times_fired = 0;
};

struct SloStatus {
  std::string name;
  AlertState state = AlertState::kInactive;
  double burn_rate = 0;         // over span_ns; 0 when no events
  double budget_remaining = 1;  // over the whole retained ring, [0, 1]
  std::uint64_t bad = 0;        // over span_ns
  std::uint64_t total = 0;      // over span_ns
};

// One firing/resolved edge, as handed to transition observers. Carries
// the same values the corresponding "alert.firing"/"alert.resolved"
// event logs, so a subscriber needs no re-entrant engine query to know
// what fired.
struct AlertTransition {
  enum class Edge : std::uint8_t { kFiring, kResolved };

  Edge edge = Edge::kFiring;
  TimeNs time_ns = 0;
  std::string name;    // rule or "slo.<name>.burn"
  std::string series;
  double value = 0;    // signal value at the edge (burn rate for SLOs)
  Severity severity = Severity::kWarn;
  TimeNs for_ns = 0;   // the rule's debounce (0 for resolved edges)
};

class AlertEngine : public MetricsSource {
 public:
  // Reads signals from `sampler` (whose clock also times the state
  // machine); transitions log to `events` (nullptr = no audit trail)
  // and metrics export through `registry` (nullptr = query-only).
  AlertEngine(const WindowedSampler& sampler, const Clock& clock,
              EventLog* events = nullptr,
              MetricsRegistry* registry = nullptr);
  ~AlertEngine() override = default;

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  void add_rule(AlertRule rule);
  void add_rules(std::vector<AlertRule> rules);
  void add_slo(Slo slo);

  // Observer seam: `cb` runs once per firing/resolved edge — the same
  // edges that emit "alert.firing"/"alert.resolved" events and move the
  // fired/resolved counters, which stay byte-identical with or without
  // observers. Callbacks are invoked by evaluate() after it releases
  // the engine lock (in edge order), so an observer may freely call
  // status()/slo_status()/firing_count() — an IncidentRecorder
  // snapshotting rule state on the edge is the intended subscriber.
  void add_transition_observer(std::function<void(const AlertTransition&)> cb);

  // Evaluates every rule and SLO against the sampler's current ring.
  // Call after poll() from one monitoring loop. Returns the number of
  // state transitions (pending/firing/resolved edges) this round.
  std::size_t evaluate();

  std::size_t rule_count() const;
  std::size_t firing_count() const;
  std::uint64_t evaluations() const;
  std::uint64_t fired_total() const;
  std::uint64_t resolved_total() const;
  std::vector<AlertStatus> status() const;
  std::vector<SloStatus> slo_status() const;

  // telemetry.alerts.* and telemetry.slo.<name>.* series.
  void collect_metrics(MetricSink& sink) const override;

 private:
  struct RuleRt {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    TimeNs since_ns = 0;
    double last_value = 0;
    bool has_value = false;
    std::uint64_t times_fired = 0;
  };
  struct SloRt {
    Slo slo;
    AlertState state = AlertState::kInactive;
    TimeNs since_ns = 0;
    double burn = 0;
    double budget = 1.0;
    std::uint64_t bad_span = 0;
    std::uint64_t total_span = 0;
    std::uint64_t times_fired = 0;
  };

  // Returns (value, has_value) of a rule's signal.
  std::pair<double, bool> signal_value(const AlertRule& rule) const;
  bool guard_allows(const AlertRule& rule) const;
  // (bad, total) of an SLO over `span_ns`.
  std::pair<std::uint64_t, std::uint64_t> slo_counts(const Slo& slo,
                                                     TimeNs span_ns) const;
  // Advances one state machine; returns transitions and emits
  // events/counters on firing/resolved edges.
  std::size_t transition(AlertState& state, TimeNs& since,
                         std::uint64_t& times_fired, bool violated,
                         TimeNs now, TimeNs for_ns, Severity severity,
                         const std::string& name, const std::string& series,
                         double value);

  const WindowedSampler* sampler_;
  const Clock* clock_;
  EventLog* events_;

  mutable std::mutex mu_;
  std::vector<RuleRt> rules_;
  std::vector<SloRt> slos_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t resolved_ = 0;
  std::vector<std::function<void(const AlertTransition&)>> observers_;
  // Edges collected under mu_ during evaluate(), dispatched after the
  // lock drops so observers can query the engine.
  std::vector<AlertTransition> pending_edges_;

  ScopedSource registration_;
};

}  // namespace colibri::telemetry
