#include "colibri/telemetry/flight_recorder.hpp"

#include <bit>
#include <cstdio>

namespace colibri::telemetry {

namespace {

void append_hex(std::string& out, const std::uint8_t* p, std::size_t n) {
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "%02x", p[i]);
    out += buf;
  }
}

}  // namespace

std::string FlightRecord::to_json() const {
  std::string out;
  out.reserve(256);
  out += "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"time_ns\":";
  out += std::to_string(time_ns);
  out += ",\"component\":\"";
  out += component == FlightRecorder::kRouter ? "router" : "gateway";
  out += "\",\"verdict\":";
  out += std::to_string(verdict);
  out += ",\"reason\":\"";
  out += errc_name(static_cast<Errc>(errc));
  out += "\",\"forced_by_drop\":";
  out += forced_by_drop ? "true" : "false";
  out += ",\"src_as\":";
  out += std::to_string(src_as);
  out += ",\"res_id\":";
  out += std::to_string(res_id);
  out += ",\"version\":";
  out += std::to_string(version);
  out += ",\"hop\":";
  out += std::to_string(hop);
  out += ",\"if_in\":";
  out += std::to_string(if_in);
  out += ",\"if_eg\":";
  out += std::to_string(if_eg);
  out += ",\"timestamp\":";
  out += std::to_string(timestamp);
  out += ",\"wire_bytes\":";
  out += std::to_string(wire_bytes);
  out += ",\"exp_time\":";
  out += std::to_string(exp_time);
  if (hvf_checked) {
    out += ",\"hvf_got\":\"";
    append_hex(out, hvf_got.data(), hvf_got.size());
    out += "\",\"hvf_want\":\"";
    append_hex(out, hvf_want.data(), hvf_want.size());
    out += '"';
  }
  if (dupsup_verdict != kNotConsulted) {
    out += ",\"dupsup_verdict\":";
    out += std::to_string(dupsup_verdict);
  }
  if (ofd_verdict != kNotConsulted) {
    out += ",\"ofd_verdict\":";
    out += std::to_string(ofd_verdict);
  }
  if (bucket_checked) {
    out += ",\"bucket_available_bytes\":";
    out += std::to_string(bucket_available_bytes);
  }
  out += '}';
  return out;
}

FlightRecorder::FlightRecorder(const Config& cfg)
    : ring_(std::bit_ceil(cfg.capacity < 2 ? std::size_t{2} : cfg.capacity)),
      mask_(ring_.size() - 1),
      sample_every_(cfg.sample_every),
      sample_countdown_(cfg.sample_every),
      record_drops_(cfg.record_drops) {}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::vector<FlightRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = first; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::drain() {
  std::vector<FlightRecord> out = records();
  head_ = 0;
  return out;
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const FlightRecord& r : records()) {
    out += r.to_json();
    out += '\n';
  }
  return out;
}

}  // namespace colibri::telemetry
