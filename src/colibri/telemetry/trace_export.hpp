// Chrome/Perfetto trace-event export.
//
// Renders the telemetry layer's time-shaped artifacts — bus span traces
// (SpanTrace), structured events (EventLog), and captured data-plane
// stage spans (StageProfiler) — as one Chrome trace-event JSON object
// ({"traceEvents":[...]}) loadable in ui.perfetto.dev or
// chrome://tracing. Spans become ph:"X" complete events, lifecycle
// events become ph:"i" instants, and every AS (or gateway shard) gets
// its own named track via process/thread metadata events.
//
// The sources run on unrelated clock bases (the bus uses the steady
// clock, the event log a possibly-simulated Clock, the profiler the
// steady clock again), so the builder lays each added source out
// sequentially on the export timeline: a source's earliest timestamp
// maps to the current cursor and the cursor advances past its latest.
// Within one source, relative timing is preserved exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/profiler.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri::telemetry {

class PerfettoTraceBuilder {
 public:
  // Key/value annotations rendered into an event's "args" object.
  using Args = std::vector<std::pair<std::string, std::string>>;

  // One named track = one (pid, tid) pair. Metadata events naming the
  // process/thread are emitted on first use; the handle is stable.
  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };
  Track track(std::string_view process, std::string_view thread);

  // Raw events; timestamps are already on the export timeline (ns).
  void add_complete(Track t, std::string_view name, std::string_view category,
                    std::int64_t start_ns, std::int64_t dur_ns,
                    const Args& args = {});
  void add_instant(Track t, std::string_view name, std::string_view category,
                   std::int64_t ts_ns, const Args& args = {});
  // Flow arrow between tracks (ph:"s" start / ph:"t" step / ph:"f"
  // finish). Events with the same id/name/cat bind into one arrow chain;
  // a flow event associates with the enclosing complete event on its
  // track, so emit these inside the span's [start, start+dur) window.
  void add_flow_start(Track t, std::uint64_t id, std::int64_t ts_ns);
  void add_flow_step(Track t, std::uint64_t id, std::int64_t ts_ns);
  void add_flow_finish(Track t, std::uint64_t id, std::int64_t ts_ns);

  // --- source adapters (sequential timeline placement) -----------------
  // One track per AS under `process`; nested hop spans become stacked
  // complete events, truncated spans become instants. `label` prefixes
  // every span name ("setup: 1-110"). Spans carrying distributed-tracing
  // ids additionally get parent→child flow arrows across the AS tracks
  // (the causal chain of the multi-AS request).
  void add_span_trace(const SpanTrace& trace, std::string_view process,
                      std::string_view label);
  // One instant per event; the track is the event's "as" field when
  // present (one track per AS), its component otherwise.
  void add_events(const std::vector<Event>& events, std::string_view process);
  // Captured pipeline stage spans on one track (e.g. "gateway shard 0").
  void add_stage_spans(const StageProfiler& profiler,
                       const std::vector<StageSpan>& spans,
                       std::string_view process, std::string_view thread);

  std::size_t event_count() const { return body_.size(); }
  // Distinct named tracks created so far.
  std::size_t track_count() const { return tracks_.size(); }

  std::string to_json() const;

 private:
  void append_common(std::string& out, Track t, std::string_view name,
                     std::string_view category, std::int64_t ts_ns);
  static void append_args(std::string& out, const Args& args);
  // Maps a source window onto the export timeline; returns the shift to
  // add to every source timestamp.
  std::int64_t place(std::int64_t src_min_ns, std::int64_t src_max_ns);

  std::map<std::string, std::uint32_t, std::less<>> pids_;
  std::map<std::string, Track, std::less<>> tracks_;  // "process\0thread"
  std::vector<std::string> metadata_;  // process_name / thread_name events
  std::vector<std::string> body_;      // X / i events
  std::int64_t cursor_ns_ = 0;
};

}  // namespace colibri::telemetry
