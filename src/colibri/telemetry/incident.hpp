// Automatic incident black-box capture (post-mortem forensics,
// ISSUE 10).
//
// An IncidentRecorder subscribes to the AlertEngine's transition
// observer seam (alerts.hpp). On a *firing* edge it freezes everything
// an operator would ask for five minutes later — the flight-recorder
// rings, the last N structured events, the sampler's recent windows,
// the active span capture, the fault injector's counters, and the full
// rule/SLO state at the edge — into one self-contained JSON incident
// bundle, optionally written to disk next to the HistoryStore so the
// evidence survives the process.
//
// Alert storms are debounced: a firing edge within `debounce_ns` of the
// previous bundle does not open a new one — it is counted and listed
// (rule + time) in the *next* bundle, so a cascade of fifty rules
// yields one bundle naming fifty rules, not fifty bundles.
//
// Bundles are deterministic under SimClock: timestamps come from the
// transition edge, events are serialized without their process-global
// seq (the one field that differs between bit-identical reruns, same
// exclusion the chaos harness's canonical history makes), and doubles
// are rounded to milli-units. Two same-seed runs therefore produce
// byte-identical bundles — which is what makes a forensic artifact
// diffable at all (colibri_obs incident diff).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/faults.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/timeseries.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri::telemetry {

struct IncidentConfig {
  // Minimum Clock time between bundles; firing edges inside the window
  // are suppressed into the next bundle.
  TimeNs debounce_ns = 30 * kNsPerSec;
  std::size_t max_events = 64;       // newest events embedded per bundle
  std::size_t max_windows = 8;       // newest sampler windows embedded
  std::size_t max_transitions = 32;  // recent-edge ring embedded
  std::size_t max_bundles = 64;      // in-memory retention
};

struct IncidentBundle {
  std::uint64_t id = 0;  // per-recorder, 0-based; also the filename
  TimeNs time_ns = 0;    // the triggering edge's time
  std::string rule;      // triggering rule name
  std::string path;      // on-disk file ("" when directory unset)
  std::string json;      // the self-contained bundle
};

class IncidentRecorder {
 public:
  // Subscribes to `engine`'s transition edges. The recorder must
  // outlive the engine's last evaluate() — the engine holds a raw
  // callback into it.
  explicit IncidentRecorder(AlertEngine& engine, IncidentConfig cfg = {});

  IncidentRecorder(const IncidentRecorder&) = delete;
  IncidentRecorder& operator=(const IncidentRecorder&) = delete;

  // --- snapshot sources (all optional; must outlive the recorder) ---------
  void set_event_log(const EventLog* log);
  void set_sampler(const WindowedSampler* sampler);
  void set_fault_injector(const FaultInjector* inj);
  void set_span_collector(const SpanCollector* collector);
  void add_flight_recorder(std::string name, const FlightRecorder* recorder);
  // Free-form extra section: `provider` returns one JSON value embedded
  // under "sections"."<name>" (e.g. an assembled-trace summary).
  void add_section(std::string name, std::function<std::string()> provider);

  // When set, every bundle is also written to
  // `<dir>/incident-<id 6 digits>.json` (directory created on demand).
  void set_directory(std::string dir);

  std::size_t bundle_count() const;
  std::vector<IncidentBundle> bundles() const;
  std::uint64_t suppressed_total() const;

 private:
  void on_transition(const AlertTransition& t);
  std::string capture_locked(const AlertTransition& t);

  AlertEngine* engine_;
  IncidentConfig cfg_;

  mutable std::mutex mu_;
  const EventLog* events_ = nullptr;
  const WindowedSampler* sampler_ = nullptr;
  const FaultInjector* faults_ = nullptr;
  const SpanCollector* spans_ = nullptr;
  std::vector<std::pair<std::string, const FlightRecorder*>> recorders_;
  std::vector<std::pair<std::string, std::function<std::string()>>> sections_;
  std::string dir_;

  std::deque<IncidentBundle> bundles_;
  std::deque<AlertTransition> recent_;  // both edges, newest last
  // Firing edges swallowed by the debounce window, pending inclusion in
  // the next bundle.
  std::vector<std::pair<TimeNs, std::string>> suppressed_pending_;
  std::uint64_t suppressed_total_ = 0;
  std::uint64_t next_id_ = 0;
  TimeNs last_bundle_ns_ = 0;
  bool any_bundle_ = false;
};

// --- offline analysis (colibri_obs incident list/show/diff) ----------------
// A bundle file's headline fields, scraped without a JSON parser (the
// format is ours and line-structured).
struct IncidentFileInfo {
  std::string path;
  std::uint64_t id = 0;
  TimeNs time_ns = 0;
  std::string rule;
};

// Bundle files ("incident-*.json") under `dir`, sorted by filename.
// Missing or empty directories yield an empty list, not an error.
std::vector<IncidentFileInfo> list_incident_bundles(const std::string& dir);

// Line-by-line structural diff of two bundle texts: "" when equal,
// otherwise unified-style "-"/"+" lines of every differing section.
std::string diff_incident_bundles(const std::string& a, const std::string& b);

}  // namespace colibri::telemetry
