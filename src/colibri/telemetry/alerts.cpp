#include "colibri/telemetry/alerts.hpp"

#include <algorithm>
#include <cmath>

namespace colibri::telemetry {

namespace {

bool compare(double value, AlertCmp cmp, double threshold) {
  return cmp == AlertCmp::kAbove ? value > threshold : value < threshold;
}

}  // namespace

const char* alert_state_name(AlertState s) {
  switch (s) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

AlertEngine::AlertEngine(const WindowedSampler& sampler, const Clock& clock,
                         EventLog* events, MetricsRegistry* registry)
    : sampler_(&sampler),
      clock_(&clock),
      events_(events),
      registration_(registry, this) {}

void AlertEngine::add_rule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(RuleRt{std::move(rule)});
}

void AlertEngine::add_rules(std::vector<AlertRule> rules) {
  std::lock_guard<std::mutex> lock(mu_);
  for (AlertRule& r : rules) rules_.push_back(RuleRt{std::move(r)});
}

void AlertEngine::add_slo(Slo slo) {
  std::lock_guard<std::mutex> lock(mu_);
  slos_.push_back(SloRt{std::move(slo)});
}

void AlertEngine::add_transition_observer(
    std::function<void(const AlertTransition&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  observers_.push_back(std::move(cb));
}

std::pair<double, bool> AlertEngine::signal_value(const AlertRule& rule) const {
  switch (rule.signal) {
    case AlertSignal::kRate:
      return {sampler_->rate(rule.series, rule.span_ns,
                             rule.series_is_prefix()),
              true};
    case AlertSignal::kPercentile: {
      const auto p = sampler_->windowed_percentile(rule.series, rule.quantile,
                                                   rule.span_ns);
      return {p.value_or(0.0), p.has_value()};
    }
    case AlertSignal::kGauge: {
      const auto g =
          sampler_->gauge_level(rule.series, rule.series_is_prefix());
      return {static_cast<double>(g.value_or(0)), g.has_value()};
    }
    case AlertSignal::kWatermark:
      return {sampler_->watermark(rule.series), true};
  }
  return {0.0, false};
}

bool AlertEngine::guard_allows(const AlertRule& rule) const {
  if (!rule.has_guard()) return true;
  const bool prefix =
      !rule.guard_series.empty() && rule.guard_series.back() == '.';
  const auto g = sampler_->gauge_level(rule.guard_series, prefix);
  if (!g.has_value()) return false;
  return compare(static_cast<double>(*g), rule.guard_cmp,
                 rule.guard_threshold);
}

std::pair<std::uint64_t, std::uint64_t> AlertEngine::slo_counts(
    const Slo& slo, TimeNs span_ns) const {
  if (slo.kind == Slo::Kind::kFraction) {
    const bool bad_prefix = !slo.series.empty() && slo.series.back() == '.';
    const bool total_prefix =
        !slo.total_series.empty() && slo.total_series.back() == '.';
    return {sampler_->counter_delta(slo.series, span_ns, bad_prefix),
            sampler_->counter_delta(slo.total_series, span_ns, total_prefix)};
  }
  // kLatency: events in buckets strictly above the threshold are bad.
  // Bucket i holds [2^(i-1), 2^i - 1]; it is entirely bad when its
  // lower bound exceeds the threshold, a conservative (under-) count.
  const HistogramSnapshot h = sampler_->histogram_delta(slo.series, span_ns);
  std::uint64_t bad = 0;
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    const std::uint64_t lower = 1ULL << (i - 1);
    if (lower > slo.latency_threshold_ns) bad += h.buckets[i];
  }
  return {bad, h.count};
}

std::size_t AlertEngine::transition(AlertState& state, TimeNs& since,
                                    std::uint64_t& times_fired, bool violated,
                                    TimeNs now, TimeNs for_ns,
                                    Severity severity, const std::string& name,
                                    const std::string& series, double value) {
  std::size_t transitions = 0;
  if (violated) {
    if (state == AlertState::kInactive) {
      state = AlertState::kPending;
      since = now;
      ++transitions;
    }
    if (state == AlertState::kPending && now - since >= for_ns) {
      state = AlertState::kFiring;
      since = now;
      ++times_fired;
      ++fired_;
      ++transitions;
      if (events_ != nullptr) {
        events_->emit(severity, "telemetry", "alert.firing")
            .str("rule", name)
            .str("series", series)
            .i64("value_milli", std::llround(value * 1000.0))
            .u64("for_ns", static_cast<std::uint64_t>(for_ns));
      }
      if (!observers_.empty()) {
        pending_edges_.push_back({AlertTransition::Edge::kFiring, now, name,
                                  series, value, severity, for_ns});
      }
    }
  } else {
    if (state == AlertState::kFiring) {
      state = AlertState::kInactive;
      since = now;
      ++resolved_;
      ++transitions;
      if (events_ != nullptr) {
        events_->emit(Severity::kInfo, "telemetry", "alert.resolved")
            .str("rule", name)
            .str("series", series)
            .i64("value_milli", std::llround(value * 1000.0));
      }
      if (!observers_.empty()) {
        pending_edges_.push_back({AlertTransition::Edge::kResolved, now, name,
                                  series, value, Severity::kInfo, 0});
      }
    } else if (state == AlertState::kPending) {
      state = AlertState::kInactive;
      since = now;
      ++transitions;
    }
  }
  return transitions;
}

std::size_t AlertEngine::evaluate() {
  const TimeNs now = clock_->now_ns();
  // Edges and the observer list are copied out under the lock and
  // dispatched after it drops, so observers can call back into the
  // engine (status(), firing_count(), ...) from the edge.
  std::vector<AlertTransition> edges;
  std::vector<std::function<void(const AlertTransition&)>> observers;
  std::size_t transitions = 0;
  {
  std::lock_guard<std::mutex> lock(mu_);
  for (RuleRt& rt : rules_) {
    const auto [value, has_value] = signal_value(rt.rule);
    rt.last_value = value;
    rt.has_value = has_value;
    const bool violated = has_value && guard_allows(rt.rule) &&
                          compare(value, rt.rule.cmp, rt.rule.threshold);
    transitions += transition(rt.state, rt.since_ns, rt.times_fired, violated,
                              now, rt.rule.for_ns, rt.rule.severity,
                              rt.rule.name, rt.rule.series, value);
  }
  for (SloRt& rt : slos_) {
    const auto [bad, total] = slo_counts(rt.slo, rt.slo.span_ns);
    rt.bad_span = bad;
    rt.total_span = total;
    rt.burn = total == 0 || rt.slo.objective <= 0
                  ? 0.0
                  : (static_cast<double>(bad) / static_cast<double>(total)) /
                        rt.slo.objective;
    const auto [bad_all, total_all] =
        slo_counts(rt.slo, WindowedSampler::kSpanAll);
    if (total_all == 0 || rt.slo.objective <= 0) {
      rt.budget = 1.0;
    } else {
      const double consumed =
          (static_cast<double>(bad_all) / static_cast<double>(total_all)) /
          rt.slo.objective;
      rt.budget = std::clamp(1.0 - consumed, 0.0, 1.0);
    }
    const bool violated = rt.burn > rt.slo.burn_alert;
    transitions += transition(rt.state, rt.since_ns, rt.times_fired, violated,
                              now, rt.slo.for_ns, rt.slo.severity,
                              "slo." + rt.slo.name + ".burn", rt.slo.series,
                              rt.burn);
  }
  ++evaluations_;
  edges.swap(pending_edges_);
  if (!edges.empty()) observers = observers_;
  }
  for (const AlertTransition& edge : edges) {
    for (const auto& cb : observers) cb(edge);
  }
  return transitions;
}

std::size_t AlertEngine::rule_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size() + slos_.size();
}

std::size_t AlertEngine::firing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const RuleRt& rt : rules_) n += rt.state == AlertState::kFiring;
  for (const SloRt& rt : slos_) n += rt.state == AlertState::kFiring;
  return n;
}

std::uint64_t AlertEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::uint64_t AlertEngine::fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::uint64_t AlertEngine::resolved_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_;
}

std::vector<AlertStatus> AlertEngine::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleRt& rt : rules_) {
    out.push_back({rt.rule.name, rt.state, rt.rule.severity, rt.last_value,
                   rt.has_value, rt.since_ns, rt.times_fired});
  }
  return out;
}

std::vector<SloStatus> AlertEngine::slo_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const SloRt& rt : slos_) {
    out.push_back({rt.slo.name, rt.state, rt.burn, rt.budget, rt.bad_span,
                   rt.total_span});
  }
  return out;
}

void AlertEngine::collect_metrics(MetricSink& sink) const {
  std::lock_guard<std::mutex> lock(mu_);
  sink.counter("telemetry.alerts.evaluations", evaluations_);
  sink.counter("telemetry.alerts.fired", fired_);
  sink.counter("telemetry.alerts.resolved", resolved_);
  sink.gauge("telemetry.alerts.rules",
             static_cast<std::int64_t>(rules_.size() + slos_.size()));
  std::int64_t firing = 0;
  for (const RuleRt& rt : rules_) firing += rt.state == AlertState::kFiring;
  for (const SloRt& rt : slos_) firing += rt.state == AlertState::kFiring;
  sink.gauge("telemetry.alerts.active", firing);
  for (const RuleRt& rt : rules_) {
    sink.gauge("telemetry.alerts.rule." + rt.rule.name + ".state",
               static_cast<std::int64_t>(rt.state));
  }
  for (const SloRt& rt : slos_) {
    const std::string prefix = "telemetry.slo." + rt.slo.name;
    sink.gauge(prefix + ".burn_rate_milli", std::llround(rt.burn * 1000.0));
    sink.gauge(prefix + ".budget_remaining_milli",
               std::llround(rt.budget * 1000.0));
    sink.gauge(prefix + ".state", static_cast<std::int64_t>(rt.state));
  }
}

}  // namespace colibri::telemetry
