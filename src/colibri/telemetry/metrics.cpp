#include "colibri/telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace colibri::telemetry {

// Minimal JSON string escaping (metric names are plain ASCII in
// practice, but the exporter must never emit invalid JSON).
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::uint64_t HistogramSnapshot::bucket_upper_bound(std::size_t i) {
  if (i + 1 >= kHistogramBuckets) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank || seen == count) {
      return static_cast<double>(bucket_upper_bound(i));
    }
  }
  return static_cast<double>(bucket_upper_bound(buckets.size() - 1));
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(256 + 48 * (counters.size() + gauges.size()) +
              256 * histograms.size());
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_u64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"p50\":";
    out += std::to_string(static_cast<std::uint64_t>(h.percentile(0.50)));
    out += ",\"p99\":";
    out += std::to_string(static_cast<std::uint64_t>(h.percentile(0.99)));
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // sparse export
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out.push_back('[');
      append_u64(out, HistogramSnapshot::bucket_upper_bound(i));
      out.push_back(',');
      append_u64(out, h.buckets[i]);
      out.push_back(']');
    }
    out += "]}";
  }
  out += '}';
  if (!collisions.empty()) {
    out += ",\"collisions\":[";
    first = true;
    for (const auto& name : collisions) {
      if (!first) out.push_back(',');
      first = false;
      append_json_string(out, name);
    }
    out.push_back(']');
  }
  out += '}';
  return out;
}

namespace {

[[noreturn]] void throw_kind_conflict(std::string_view name,
                                      const char* requested) {
  throw std::logic_error("metric name '" + std::string(name) +
                         "' already registered as a different kind than " +
                         requested);
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    if (gauges_.contains(name) || histograms_.contains(name)) {
      throw_kind_conflict(name, "counter");
    }
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    if (counters_.contains(name) || histograms_.contains(name)) {
      throw_kind_conflict(name, "gauge");
    }
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (counters_.contains(name) || gauges_.contains(name)) {
      throw_kind_conflict(name, "histogram");
    }
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::attach(const MetricsSource* source) {
  if (source == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(source);
}

void MetricsRegistry::detach(const MetricsSource* source) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase(sources_, source);
}

std::size_t MetricsRegistry::source_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

namespace {

// Sink that merges equal names by summation into a MetricsSnapshot.
// Equal names of *equal kind* sum; a name re-reported as a different
// kind (a source bug the registry cannot catch, since sources own
// their metrics) is kept under "<name>.<kind>" and recorded in
// snapshot.collisions instead of being silently summed.
class MergingSink final : public MetricSink {
 public:
  explicit MergingSink(MetricsSnapshot& out) : out_(&out) {}

  void counter(std::string_view name, std::uint64_t value) override {
    out_->counters[resolve(name, Kind::kCounter, "counter")] += value;
  }
  void gauge(std::string_view name, std::int64_t value) override {
    out_->gauges[resolve(name, Kind::kGauge, "gauge")] += value;
  }
  void histogram(std::string_view name, const HistogramSnapshot& h) override {
    out_->histograms[resolve(name, Kind::kHistogram, "histogram")].merge(h);
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string resolve(std::string_view name, Kind kind,
                      const char* kind_name) {
    auto [it, inserted] = kinds_.try_emplace(std::string(name), kind);
    if (inserted || it->second == kind) return it->first;
    // Cross-kind conflict: namespace this series by its kind.
    if (std::find(out_->collisions.begin(), out_->collisions.end(),
                  it->first) == out_->collisions.end()) {
      out_->collisions.push_back(it->first);
    }
    return it->first + "." + kind_name;
  }

  MetricsSnapshot* out_;
  std::map<std::string, Kind, std::less<>> kinds_;
};

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  MergingSink sink(s);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) sink.counter(name, c->value());
  for (const auto& [name, g] : gauges_) sink.gauge(name, g->value());
  for (const auto& [name, h] : histograms_) sink.histogram(name, h->snapshot());
  for (const auto* src : sources_) src->collect_metrics(sink);
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace colibri::telemetry
