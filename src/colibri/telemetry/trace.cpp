#include "colibri/telemetry/trace.hpp"

#include <utility>

namespace colibri::telemetry {

std::int64_t SpanTrace::self_time_ns(std::size_t i) const {
  std::int64_t t = spans[i].duration_ns;
  const auto parent = static_cast<std::int32_t>(i);
  for (const Span& s : spans) {
    if (s.parent == parent) t -= s.duration_ns;
  }
  return t;
}

std::string SpanTrace::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) out.push_back(',');
    out += "{\"name\":\"" + s.name + "\",\"parent\":" +
           std::to_string(s.parent) + ",\"depth\":" + std::to_string(s.depth) +
           ",\"start_ns\":" + std::to_string(s.start_ns) +
           ",\"duration_ns\":" + std::to_string(s.duration_ns) +
           ",\"bytes\":" + std::to_string(s.bytes) + "}";
  }
  out.push_back(']');
  return out;
}

std::size_t SpanCollector::open(std::string name, std::int64_t now_ns,
                                std::uint64_t bytes) {
  if (origin_ns_ < 0) origin_ns_ = now_ns;
  Span s;
  s.name = std::move(name);
  s.parent = stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back());
  s.depth = static_cast<std::int32_t>(stack_.size());
  s.start_ns = now_ns - origin_ns_;
  s.bytes = bytes;
  trace_.spans.push_back(std::move(s));
  const std::size_t index = trace_.spans.size() - 1;
  stack_.push_back(index);
  return index;
}

void SpanCollector::close(std::size_t index, std::int64_t now_ns) {
  if (index >= trace_.spans.size()) return;
  Span& s = trace_.spans[index];
  s.duration_ns = (now_ns - origin_ns_) - s.start_ns;
  if (!stack_.empty() && stack_.back() == index) stack_.pop_back();
}

SpanTrace SpanCollector::take() {
  SpanTrace t = std::move(trace_);
  trace_ = {};
  stack_.clear();
  origin_ns_ = -1;
  return t;
}

}  // namespace colibri::telemetry
