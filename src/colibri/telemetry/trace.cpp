#include "colibri/telemetry/trace.hpp"

#include <utility>

#include "colibri/telemetry/metrics.hpp"

namespace colibri::telemetry {

std::int64_t SpanTrace::self_time_ns(std::size_t i) const {
  std::int64_t t = spans[i].duration_ns;
  const auto parent = static_cast<std::int32_t>(i);
  for (const Span& s : spans) {
    if (s.parent == parent) t -= s.duration_ns;
  }
  return t;
}

std::string SpanTrace::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"category\":";
    append_json_string(out, s.category);
    out += ",\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent) +
           ",\"depth\":" + std::to_string(s.depth) +
           ",\"start_ns\":" + std::to_string(s.start_ns) +
           ",\"duration_ns\":" + std::to_string(s.duration_ns) +
           ",\"bytes\":" + std::to_string(s.bytes);
    if (s.truncated) out += ",\"truncated\":true";
    if ((s.trace_hi | s.trace_lo) != 0) {
      out += ",\"trace_hi\":" + std::to_string(s.trace_hi) +
             ",\"trace_lo\":" + std::to_string(s.trace_lo) +
             ",\"ctx_span\":" + std::to_string(s.ctx_span) +
             ",\"ctx_parent\":" + std::to_string(s.ctx_parent);
    }
    if (!s.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        if (a != 0) out.push_back(',');
        append_json_string(out, s.args[a].first);
        out.push_back(':');
        append_json_string(out, s.args[a].second);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

std::size_t SpanCollector::open(std::string name, std::int64_t now_ns,
                                std::uint64_t bytes, std::string category) {
  if (origin_ns_ < 0) {
    origin_ns_ = now_ns;
    trace_.origin_ns = now_ns;
  }
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.id = next_id_++;
  s.parent = stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back());
  s.depth = static_cast<std::int32_t>(stack_.size());
  s.start_ns = now_ns - origin_ns_;
  s.bytes = bytes;
  trace_.spans.push_back(std::move(s));
  const std::size_t index = trace_.spans.size() - 1;
  stack_.push_back(index);
  return static_cast<std::size_t>((epoch_ << kIndexBits) |
                                  static_cast<std::uint64_t>(index));
}

void SpanCollector::close(std::size_t token, std::int64_t now_ns) {
  if ((static_cast<std::uint64_t>(token) >> kIndexBits) != epoch_) {
    return;  // span belonged to a trace that was already drained
  }
  const std::size_t index =
      static_cast<std::size_t>(token & ((std::uint64_t{1} << kIndexBits) - 1));
  if (index >= trace_.spans.size()) return;
  Span& s = trace_.spans[index];
  s.duration_ns = (now_ns - origin_ns_) - s.start_ns;
  if (!stack_.empty() && stack_.back() == index) stack_.pop_back();
}

void SpanCollector::set_trace_ids(std::size_t token, std::uint64_t trace_hi,
                                  std::uint64_t trace_lo, std::uint64_t span_id,
                                  std::uint64_t parent_span_id) {
  if ((static_cast<std::uint64_t>(token) >> kIndexBits) != epoch_) return;
  const std::size_t index =
      static_cast<std::size_t>(token & ((std::uint64_t{1} << kIndexBits) - 1));
  if (index >= trace_.spans.size()) return;
  Span& s = trace_.spans[index];
  s.trace_hi = trace_hi;
  s.trace_lo = trace_lo;
  s.ctx_span = span_id;
  s.ctx_parent = parent_span_id;
}

void SpanCollector::annotate(std::string_view key, std::string_view value) {
  if (!enabled_ || stack_.empty()) return;
  trace_.spans[stack_.back()].args.emplace_back(std::string(key),
                                                std::string(value));
}

SpanTrace SpanCollector::take() {
  // Close-as-truncated: a span still on the stack has no meaningful
  // duration yet; mark it so consumers can tell "fast" from "cut off".
  for (const std::size_t i : stack_) {
    trace_.spans[i].duration_ns = -1;
    trace_.spans[i].truncated = true;
  }
  SpanTrace t = std::move(trace_);
  trace_ = {};
  stack_.clear();
  origin_ns_ = -1;
  ++epoch_;  // pending close() tokens die here
  return t;
}

}  // namespace colibri::telemetry
