#include "colibri/telemetry/trace_assembler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace colibri::telemetry {

namespace {

// "123.4us"-style rendering for the waterfall; traces span nanoseconds
// to milliseconds, microseconds with one fractional digit read best.
std::string fmt_us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::string HopAttribution::arg(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return {};
}

std::string AssembledTrace::trace_id_hex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo));
  return buf;
}

std::int64_t AssembledTrace::res_id() const {
  for (const HopAttribution& h : hops) {
    const std::string v = h.arg("res_id");
    if (!v.empty()) return std::strtoll(v.c_str(), nullptr, 10);
  }
  return -1;
}

std::int64_t AssembledTrace::total_ns() const {
  return hops.empty() ? 0 : std::max<std::int64_t>(hops.front().total_ns, 0);
}

std::size_t AssembledTrace::bottleneck() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < hops.size(); ++i) {
    if (hops[i].self_ns > hops[best].self_ns) best = i;
  }
  return best;
}

std::string AssembledTrace::waterfall() const {
  std::string out = "trace " + trace_id_hex() +
                    "  hops=" + std::to_string(hops.size()) +
                    "  total=" + fmt_us(total_ns());
  if (res_id() >= 0) out += "  res_id=" + std::to_string(res_id());
  out += "\n";
  if (hops.empty()) return out;

  // Bar window: earliest start to latest end across the tree.
  std::int64_t lo = hops.front().start_ns, hi = lo + 1;
  for (const HopAttribution& h : hops) {
    lo = std::min(lo, h.start_ns);
    hi = std::max(hi, h.start_ns + std::max<std::int64_t>(h.total_ns, 0));
  }
  const double window = static_cast<double>(hi - lo);
  static constexpr int kBarWidth = 40;
  const std::size_t bn = bottleneck();

  for (std::size_t i = 0; i < hops.size(); ++i) {
    const HopAttribution& h = hops[i];
    const auto clamp = [](int v) { return std::clamp(v, 0, kBarWidth); };
    const int begin = clamp(static_cast<int>(
        static_cast<double>(h.start_ns - lo) / window * kBarWidth));
    int end = clamp(static_cast<int>(
        static_cast<double>(h.start_ns - lo + std::max<std::int64_t>(
                                                  h.total_ns, 0)) /
        window * kBarWidth));
    if (end <= begin) end = clamp(begin + 1);

    char head[64];
    std::snprintf(head, sizeof(head), "%c [%zu] %-10s |",
                  i == bn ? '*' : ' ', i, h.as.c_str());
    out += head;
    for (int c = 0; c < kBarWidth; ++c) {
      out.push_back(c >= begin && c < end ? '#' : ' ');
    }
    out += "| total " + fmt_us(std::max<std::int64_t>(h.total_ns, 0)) +
           "  self " + fmt_us(h.self_ns);
    if (h.admission_ns >= 0) out += "  admission " + fmt_us(h.admission_ns);
    const std::string verdict = h.arg("verdict");
    if (!verdict.empty()) out += "  [" + verdict + "]";
    if (h.truncated) out += "  (truncated)";
    if (h.orphan) out += "  (orphan)";
    if (i == bn) out += "  <-- bottleneck";
    out += "\n";
  }
  return out;
}

void TraceAssembler::add_capture(const SpanTrace& capture) {
  for (const Span& s : capture.spans) {
    if ((s.trace_hi | s.trace_lo) == 0) {
      untraced_spans_.inc();
      continue;
    }
    pending_.push_back(s);
  }
}

std::vector<AssembledTrace> TraceAssembler::assemble() {
  // Group by trace id, preserving first-appearance order so SimClock
  // scenarios produce deterministic output.
  std::vector<AssembledTrace> traces;
  std::unordered_map<std::uint64_t, std::size_t> trace_index;
  std::vector<std::vector<std::size_t>> members(0);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Span& s = pending_[i];
    const std::uint64_t key = s.trace_hi ^ (s.trace_lo * 0x9E3779B97F4A7C15ULL);
    auto [it, fresh] = trace_index.try_emplace(key, traces.size());
    if (fresh) {
      traces.emplace_back();
      traces.back().trace_hi = s.trace_hi;
      traces.back().trace_lo = s.trace_lo;
      members.emplace_back();
    }
    members[it->second].push_back(i);
  }

  for (std::size_t t = 0; t < traces.size(); ++t) {
    AssembledTrace& tr = traces[t];
    const std::vector<std::size_t>& ms = members[t];

    // span_id → member position; children linked through the wire ids,
    // which is what makes stitching work across independent captures.
    std::unordered_map<std::uint64_t, std::size_t> by_id;
    for (std::size_t m = 0; m < ms.size(); ++m) {
      by_id.try_emplace(pending_[ms[m]].ctx_span, m);
    }
    std::vector<std::vector<std::size_t>> children(ms.size());
    std::vector<std::size_t> roots;
    std::vector<bool> orphan(ms.size(), false);
    for (std::size_t m = 0; m < ms.size(); ++m) {
      const Span& s = pending_[ms[m]];
      const auto pit = s.ctx_parent != 0 ? by_id.find(s.ctx_parent)
                                         : by_id.end();
      if (pit == by_id.end() || pit->second == m) {
        orphan[m] = s.ctx_parent != 0;
        if (orphan[m]) orphan_spans_.inc();
        roots.push_back(m);
      } else {
        children[pit->second].push_back(m);
      }
    }
    const auto by_start = [&](std::size_t a, std::size_t b) {
      return pending_[ms[a]].start_ns < pending_[ms[b]].start_ns;
    };
    std::sort(roots.begin(), roots.end(), by_start);
    for (auto& c : children) std::sort(c.begin(), c.end(), by_start);

    // Depth-first emit: for a linear forward chain this is exactly the
    // path traversal order of the request.
    struct Frame {
      std::size_t m;
      int depth;
    };
    std::vector<Frame> stack;
    for (auto r = roots.rbegin(); r != roots.rend(); ++r) {
      stack.push_back({*r, 0});
    }
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const Span& s = pending_[ms[f.m]];

      HopAttribution hop;
      hop.as = s.name;
      hop.span_id = s.ctx_span;
      hop.parent_span_id = s.ctx_parent;
      hop.depth = f.depth;
      hop.start_ns = s.start_ns;
      hop.total_ns = s.duration_ns;
      hop.truncated = s.truncated;
      hop.orphan = orphan[f.m];
      hop.args = s.args;
      std::int64_t self = std::max<std::int64_t>(s.duration_ns, 0);
      for (const std::size_t c : children[f.m]) {
        self -= std::max<std::int64_t>(pending_[ms[c]].duration_ns, 0);
      }
      hop.self_ns = std::max<std::int64_t>(self, 0);
      const std::string adm = hop.arg("admission_ns");
      if (!adm.empty()) hop.admission_ns = std::strtoll(adm.c_str(), nullptr, 10);

      if (hop.truncated) truncated_spans_.inc();
      hop_total_ns_.record_shared(
          static_cast<std::uint64_t>(std::max<std::int64_t>(hop.total_ns, 0)));
      hop_self_ns_.record_shared(static_cast<std::uint64_t>(hop.self_ns));
      if (hop.admission_ns >= 0) {
        admission_ns_.record_shared(static_cast<std::uint64_t>(hop.admission_ns));
      }
      tr.hops.push_back(std::move(hop));

      for (auto c = children[f.m].rbegin(); c != children[f.m].rend(); ++c) {
        stack.push_back({*c, f.depth + 1});
      }
    }
    assembled_.inc();
  }

  pending_.clear();
  return traces;
}

const AssembledTrace* TraceAssembler::find_by_res_id(
    const std::vector<AssembledTrace>& traces, std::int64_t res_id) {
  for (const AssembledTrace& t : traces) {
    if (t.res_id() == res_id) return &t;
  }
  return nullptr;
}

void TraceAssembler::collect_metrics(MetricSink& sink) const {
  sink.counter("cserv.trace.assembled", assembled_.value());
  sink.counter("cserv.trace.orphan_spans", orphan_spans_.value());
  sink.counter("cserv.trace.truncated_spans", truncated_spans_.value());
  sink.counter("cserv.trace.untraced_spans", untraced_spans_.value());
  const auto total = hop_total_ns_.snapshot();
  if (total.count != 0) sink.histogram("cserv.trace.hop_total_ns", total);
  const auto self = hop_self_ns_.snapshot();
  if (self.count != 0) sink.histogram("cserv.trace.hop_self_ns", self);
  const auto adm = admission_ns_.snapshot();
  if (adm.count != 0) sink.histogram("cserv.trace.admission_ns", adm);
}

}  // namespace colibri::telemetry
