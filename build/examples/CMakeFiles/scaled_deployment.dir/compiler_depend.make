# Empty compiler generated dependencies file for scaled_deployment.
# This may be replaced when dependencies are built.
