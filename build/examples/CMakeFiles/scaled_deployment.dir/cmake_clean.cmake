file(REMOVE_RECURSE
  "CMakeFiles/scaled_deployment.dir/scaled_deployment.cpp.o"
  "CMakeFiles/scaled_deployment.dir/scaled_deployment.cpp.o.d"
  "scaled_deployment"
  "scaled_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaled_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
