file(REMOVE_RECURSE
  "CMakeFiles/multipath_failover.dir/multipath_failover.cpp.o"
  "CMakeFiles/multipath_failover.dir/multipath_failover.cpp.o.d"
  "multipath_failover"
  "multipath_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
