# Empty dependencies file for multipath_failover.
# This may be replaced when dependencies are built.
