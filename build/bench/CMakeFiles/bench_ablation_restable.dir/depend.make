# Empty dependencies file for bench_ablation_restable.
# This may be replaced when dependencies are built.
