file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_restable.dir/bench_ablation_restable.cpp.o"
  "CMakeFiles/bench_ablation_restable.dir/bench_ablation_restable.cpp.o.d"
  "bench_ablation_restable"
  "bench_ablation_restable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
