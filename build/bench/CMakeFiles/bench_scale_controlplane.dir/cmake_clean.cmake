file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_controlplane.dir/bench_scale_controlplane.cpp.o"
  "CMakeFiles/bench_scale_controlplane.dir/bench_scale_controlplane.cpp.o.d"
  "bench_scale_controlplane"
  "bench_scale_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
