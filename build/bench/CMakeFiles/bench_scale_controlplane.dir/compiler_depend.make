# Empty compiler generated dependencies file for bench_scale_controlplane.
# This may be replaced when dependencies are built.
