# Empty dependencies file for bench_ablation_wire.
# This may be replaced when dependencies are built.
