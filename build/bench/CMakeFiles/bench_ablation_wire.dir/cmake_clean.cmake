file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wire.dir/bench_ablation_wire.cpp.o"
  "CMakeFiles/bench_ablation_wire.dir/bench_ablation_wire.cpp.o.d"
  "bench_ablation_wire"
  "bench_ablation_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
