# Empty compiler generated dependencies file for bench_fig4_eer_admission.
# This may be replaced when dependencies are built.
