file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_eer_admission.dir/bench_fig4_eer_admission.cpp.o"
  "CMakeFiles/bench_fig4_eer_admission.dir/bench_fig4_eer_admission.cpp.o.d"
  "bench_fig4_eer_admission"
  "bench_fig4_eer_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_eer_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
