file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qdisc.dir/bench_ablation_qdisc.cpp.o"
  "CMakeFiles/bench_ablation_qdisc.dir/bench_ablation_qdisc.cpp.o.d"
  "bench_ablation_qdisc"
  "bench_ablation_qdisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qdisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
