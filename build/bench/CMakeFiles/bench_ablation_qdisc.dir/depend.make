# Empty dependencies file for bench_ablation_qdisc.
# This may be replaced when dependencies are built.
