file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_protection.dir/bench_table2_protection.cpp.o"
  "CMakeFiles/bench_table2_protection.dir/bench_table2_protection.cpp.o.d"
  "bench_table2_protection"
  "bench_table2_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
