# Empty compiler generated dependencies file for bench_appE_payload.
# This may be replaced when dependencies are built.
