file(REMOVE_RECURSE
  "CMakeFiles/bench_appE_payload.dir/bench_appE_payload.cpp.o"
  "CMakeFiles/bench_appE_payload.dir/bench_appE_payload.cpp.o.d"
  "bench_appE_payload"
  "bench_appE_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appE_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
