# Empty dependencies file for bench_ablation_ofd.
# This may be replaced when dependencies are built.
