file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ofd.dir/bench_ablation_ofd.cpp.o"
  "CMakeFiles/bench_ablation_ofd.dir/bench_ablation_ofd.cpp.o.d"
  "bench_ablation_ofd"
  "bench_ablation_ofd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ofd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
