# Empty dependencies file for bench_fig5_gateway.
# This may be replaced when dependencies are built.
