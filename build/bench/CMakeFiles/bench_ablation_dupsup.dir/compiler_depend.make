# Empty compiler generated dependencies file for bench_ablation_dupsup.
# This may be replaced when dependencies are built.
