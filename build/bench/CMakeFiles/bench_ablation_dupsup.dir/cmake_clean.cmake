file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dupsup.dir/bench_ablation_dupsup.cpp.o"
  "CMakeFiles/bench_ablation_dupsup.dir/bench_ablation_dupsup.cpp.o.d"
  "bench_ablation_dupsup"
  "bench_ablation_dupsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dupsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
