# Empty dependencies file for bench_fig3_segr_admission.
# This may be replaced when dependencies are built.
