file(REMOVE_RECURSE
  "CMakeFiles/bench_cserv_throughput.dir/bench_cserv_throughput.cpp.o"
  "CMakeFiles/bench_cserv_throughput.dir/bench_cserv_throughput.cpp.o.d"
  "bench_cserv_throughput"
  "bench_cserv_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cserv_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
