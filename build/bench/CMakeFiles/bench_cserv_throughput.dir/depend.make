# Empty dependencies file for bench_cserv_throughput.
# This may be replaced when dependencies are built.
