# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_drkey[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_reservation[1]_include.cmake")
include("/root/repo/build/tests/test_admission[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_cserv[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_wire_router[1]_include.cmake")
include("/root/repo/build/tests/test_persist[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_cbwfq[1]_include.cmake")
include("/root/repo/build/tests/test_cserv_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_ratelimit_registry[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_encap[1]_include.cmake")
include("/root/repo/build/tests/test_handlers_edge[1]_include.cmake")
include("/root/repo/build/tests/test_renewal_manager[1]_include.cmake")
