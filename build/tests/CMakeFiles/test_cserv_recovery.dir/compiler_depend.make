# Empty compiler generated dependencies file for test_cserv_recovery.
# This may be replaced when dependencies are built.
