file(REMOVE_RECURSE
  "CMakeFiles/test_cserv_recovery.dir/test_cserv_recovery.cpp.o"
  "CMakeFiles/test_cserv_recovery.dir/test_cserv_recovery.cpp.o.d"
  "test_cserv_recovery"
  "test_cserv_recovery.pdb"
  "test_cserv_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cserv_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
