# Empty compiler generated dependencies file for test_drkey.
# This may be replaced when dependencies are built.
