file(REMOVE_RECURSE
  "CMakeFiles/test_drkey.dir/test_drkey.cpp.o"
  "CMakeFiles/test_drkey.dir/test_drkey.cpp.o.d"
  "test_drkey"
  "test_drkey.pdb"
  "test_drkey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
