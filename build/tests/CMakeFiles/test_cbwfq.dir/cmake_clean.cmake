file(REMOVE_RECURSE
  "CMakeFiles/test_cbwfq.dir/test_cbwfq.cpp.o"
  "CMakeFiles/test_cbwfq.dir/test_cbwfq.cpp.o.d"
  "test_cbwfq"
  "test_cbwfq.pdb"
  "test_cbwfq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbwfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
