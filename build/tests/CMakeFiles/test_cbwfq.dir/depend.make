# Empty dependencies file for test_cbwfq.
# This may be replaced when dependencies are built.
