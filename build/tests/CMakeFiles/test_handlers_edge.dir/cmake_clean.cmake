file(REMOVE_RECURSE
  "CMakeFiles/test_handlers_edge.dir/test_handlers_edge.cpp.o"
  "CMakeFiles/test_handlers_edge.dir/test_handlers_edge.cpp.o.d"
  "test_handlers_edge"
  "test_handlers_edge.pdb"
  "test_handlers_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handlers_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
