# Empty compiler generated dependencies file for test_handlers_edge.
# This may be replaced when dependencies are built.
