
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dataplane.cpp" "tests/CMakeFiles/test_dataplane.dir/test_dataplane.cpp.o" "gcc" "tests/CMakeFiles/test_dataplane.dir/test_dataplane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_cserv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_admission.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_drkey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_reservation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
