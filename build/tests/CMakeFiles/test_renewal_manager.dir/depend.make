# Empty dependencies file for test_renewal_manager.
# This may be replaced when dependencies are built.
