file(REMOVE_RECURSE
  "CMakeFiles/test_renewal_manager.dir/test_renewal_manager.cpp.o"
  "CMakeFiles/test_renewal_manager.dir/test_renewal_manager.cpp.o.d"
  "test_renewal_manager"
  "test_renewal_manager.pdb"
  "test_renewal_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_renewal_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
