file(REMOVE_RECURSE
  "CMakeFiles/test_encap.dir/test_encap.cpp.o"
  "CMakeFiles/test_encap.dir/test_encap.cpp.o.d"
  "test_encap"
  "test_encap.pdb"
  "test_encap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
