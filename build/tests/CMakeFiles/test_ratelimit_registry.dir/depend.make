# Empty dependencies file for test_ratelimit_registry.
# This may be replaced when dependencies are built.
