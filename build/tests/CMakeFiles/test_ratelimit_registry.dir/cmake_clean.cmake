file(REMOVE_RECURSE
  "CMakeFiles/test_ratelimit_registry.dir/test_ratelimit_registry.cpp.o"
  "CMakeFiles/test_ratelimit_registry.dir/test_ratelimit_registry.cpp.o.d"
  "test_ratelimit_registry"
  "test_ratelimit_registry.pdb"
  "test_ratelimit_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratelimit_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
