# Empty compiler generated dependencies file for test_cserv.
# This may be replaced when dependencies are built.
