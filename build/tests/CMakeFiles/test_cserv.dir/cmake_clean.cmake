file(REMOVE_RECURSE
  "CMakeFiles/test_cserv.dir/test_cserv.cpp.o"
  "CMakeFiles/test_cserv.dir/test_cserv.cpp.o.d"
  "test_cserv"
  "test_cserv.pdb"
  "test_cserv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cserv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
