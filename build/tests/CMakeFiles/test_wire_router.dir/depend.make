# Empty dependencies file for test_wire_router.
# This may be replaced when dependencies are built.
