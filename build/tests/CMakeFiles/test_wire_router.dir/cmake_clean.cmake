file(REMOVE_RECURSE
  "CMakeFiles/test_wire_router.dir/test_wire_router.cpp.o"
  "CMakeFiles/test_wire_router.dir/test_wire_router.cpp.o.d"
  "test_wire_router"
  "test_wire_router.pdb"
  "test_wire_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
