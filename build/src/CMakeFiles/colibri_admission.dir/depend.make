# Empty dependencies file for colibri_admission.
# This may be replaced when dependencies are built.
