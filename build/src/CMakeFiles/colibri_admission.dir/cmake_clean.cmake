file(REMOVE_RECURSE
  "CMakeFiles/colibri_admission.dir/colibri/admission/eer_admission.cpp.o"
  "CMakeFiles/colibri_admission.dir/colibri/admission/eer_admission.cpp.o.d"
  "CMakeFiles/colibri_admission.dir/colibri/admission/segr_admission.cpp.o"
  "CMakeFiles/colibri_admission.dir/colibri/admission/segr_admission.cpp.o.d"
  "CMakeFiles/colibri_admission.dir/colibri/admission/tube.cpp.o"
  "CMakeFiles/colibri_admission.dir/colibri/admission/tube.cpp.o.d"
  "libcolibri_admission.a"
  "libcolibri_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
