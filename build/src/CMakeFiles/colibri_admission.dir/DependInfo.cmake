
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/admission/eer_admission.cpp" "src/CMakeFiles/colibri_admission.dir/colibri/admission/eer_admission.cpp.o" "gcc" "src/CMakeFiles/colibri_admission.dir/colibri/admission/eer_admission.cpp.o.d"
  "/root/repo/src/colibri/admission/segr_admission.cpp" "src/CMakeFiles/colibri_admission.dir/colibri/admission/segr_admission.cpp.o" "gcc" "src/CMakeFiles/colibri_admission.dir/colibri/admission/segr_admission.cpp.o.d"
  "/root/repo/src/colibri/admission/tube.cpp" "src/CMakeFiles/colibri_admission.dir/colibri/admission/tube.cpp.o" "gcc" "src/CMakeFiles/colibri_admission.dir/colibri/admission/tube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_reservation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
