file(REMOVE_RECURSE
  "libcolibri_admission.a"
)
