file(REMOVE_RECURSE
  "libcolibri_reservation.a"
)
