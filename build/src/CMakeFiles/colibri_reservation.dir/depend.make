# Empty dependencies file for colibri_reservation.
# This may be replaced when dependencies are built.
