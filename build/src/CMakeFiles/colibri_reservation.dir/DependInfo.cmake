
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/reservation/db.cpp" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/db.cpp.o" "gcc" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/db.cpp.o.d"
  "/root/repo/src/colibri/reservation/eer.cpp" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/eer.cpp.o" "gcc" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/eer.cpp.o.d"
  "/root/repo/src/colibri/reservation/persist.cpp" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/persist.cpp.o" "gcc" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/persist.cpp.o.d"
  "/root/repo/src/colibri/reservation/segr.cpp" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/segr.cpp.o" "gcc" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/segr.cpp.o.d"
  "/root/repo/src/colibri/reservation/types.cpp" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/types.cpp.o" "gcc" "src/CMakeFiles/colibri_reservation.dir/colibri/reservation/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
