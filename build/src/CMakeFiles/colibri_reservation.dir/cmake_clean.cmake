file(REMOVE_RECURSE
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/db.cpp.o"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/db.cpp.o.d"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/eer.cpp.o"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/eer.cpp.o.d"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/persist.cpp.o"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/persist.cpp.o.d"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/segr.cpp.o"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/segr.cpp.o.d"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/types.cpp.o"
  "CMakeFiles/colibri_reservation.dir/colibri/reservation/types.cpp.o.d"
  "libcolibri_reservation.a"
  "libcolibri_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
