file(REMOVE_RECURSE
  "CMakeFiles/colibri_drkey.dir/colibri/drkey/drkey.cpp.o"
  "CMakeFiles/colibri_drkey.dir/colibri/drkey/drkey.cpp.o.d"
  "CMakeFiles/colibri_drkey.dir/colibri/drkey/keyserver.cpp.o"
  "CMakeFiles/colibri_drkey.dir/colibri/drkey/keyserver.cpp.o.d"
  "libcolibri_drkey.a"
  "libcolibri_drkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_drkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
