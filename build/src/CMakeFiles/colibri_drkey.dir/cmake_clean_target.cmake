file(REMOVE_RECURSE
  "libcolibri_drkey.a"
)
