
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/drkey/drkey.cpp" "src/CMakeFiles/colibri_drkey.dir/colibri/drkey/drkey.cpp.o" "gcc" "src/CMakeFiles/colibri_drkey.dir/colibri/drkey/drkey.cpp.o.d"
  "/root/repo/src/colibri/drkey/keyserver.cpp" "src/CMakeFiles/colibri_drkey.dir/colibri/drkey/keyserver.cpp.o" "gcc" "src/CMakeFiles/colibri_drkey.dir/colibri/drkey/keyserver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
