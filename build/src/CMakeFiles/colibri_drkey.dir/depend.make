# Empty dependencies file for colibri_drkey.
# This may be replaced when dependencies are built.
