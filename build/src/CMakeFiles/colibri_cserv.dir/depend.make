# Empty dependencies file for colibri_cserv.
# This may be replaced when dependencies are built.
