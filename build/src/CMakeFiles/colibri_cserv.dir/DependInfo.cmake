
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/cserv/bus.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/bus.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/bus.cpp.o.d"
  "/root/repo/src/colibri/cserv/cserv.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/cserv.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/cserv.cpp.o.d"
  "/root/repo/src/colibri/cserv/distributed.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/distributed.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/distributed.cpp.o.d"
  "/root/repo/src/colibri/cserv/handlers.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/handlers.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/handlers.cpp.o.d"
  "/root/repo/src/colibri/cserv/ratelimit.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/ratelimit.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/ratelimit.cpp.o.d"
  "/root/repo/src/colibri/cserv/registry.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/registry.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/registry.cpp.o.d"
  "/root/repo/src/colibri/cserv/renewal_manager.cpp" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/renewal_manager.cpp.o" "gcc" "src/CMakeFiles/colibri_cserv.dir/colibri/cserv/renewal_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_admission.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_drkey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_reservation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
