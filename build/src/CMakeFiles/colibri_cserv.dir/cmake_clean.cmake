file(REMOVE_RECURSE
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/bus.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/bus.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/cserv.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/cserv.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/distributed.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/distributed.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/handlers.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/handlers.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/ratelimit.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/ratelimit.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/registry.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/registry.cpp.o.d"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/renewal_manager.cpp.o"
  "CMakeFiles/colibri_cserv.dir/colibri/cserv/renewal_manager.cpp.o.d"
  "libcolibri_cserv.a"
  "libcolibri_cserv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_cserv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
