file(REMOVE_RECURSE
  "libcolibri_cserv.a"
)
