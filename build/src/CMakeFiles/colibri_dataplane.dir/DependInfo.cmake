
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/dataplane/blocklist.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/blocklist.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/blocklist.cpp.o.d"
  "/root/repo/src/colibri/dataplane/dupsup.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/dupsup.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/dupsup.cpp.o.d"
  "/root/repo/src/colibri/dataplane/gateway.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/gateway.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/gateway.cpp.o.d"
  "/root/repo/src/colibri/dataplane/ofd.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/ofd.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/ofd.cpp.o.d"
  "/root/repo/src/colibri/dataplane/restable.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/restable.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/restable.cpp.o.d"
  "/root/repo/src/colibri/dataplane/router.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/router.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/router.cpp.o.d"
  "/root/repo/src/colibri/dataplane/tokenbucket.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/tokenbucket.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/tokenbucket.cpp.o.d"
  "/root/repo/src/colibri/dataplane/wire_router.cpp" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/wire_router.cpp.o" "gcc" "src/CMakeFiles/colibri_dataplane.dir/colibri/dataplane/wire_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_drkey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_reservation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
