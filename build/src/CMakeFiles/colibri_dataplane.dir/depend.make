# Empty dependencies file for colibri_dataplane.
# This may be replaced when dependencies are built.
