file(REMOVE_RECURSE
  "libcolibri_dataplane.a"
)
