file(REMOVE_RECURSE
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/blocklist.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/blocklist.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/dupsup.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/dupsup.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/gateway.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/gateway.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/ofd.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/ofd.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/restable.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/restable.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/router.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/router.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/tokenbucket.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/tokenbucket.cpp.o.d"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/wire_router.cpp.o"
  "CMakeFiles/colibri_dataplane.dir/colibri/dataplane/wire_router.cpp.o.d"
  "libcolibri_dataplane.a"
  "libcolibri_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
