# Empty compiler generated dependencies file for colibri_proto.
# This may be replaced when dependencies are built.
