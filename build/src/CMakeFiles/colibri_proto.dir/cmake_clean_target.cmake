file(REMOVE_RECURSE
  "libcolibri_proto.a"
)
