file(REMOVE_RECURSE
  "CMakeFiles/colibri_proto.dir/colibri/proto/codec.cpp.o"
  "CMakeFiles/colibri_proto.dir/colibri/proto/codec.cpp.o.d"
  "CMakeFiles/colibri_proto.dir/colibri/proto/encap.cpp.o"
  "CMakeFiles/colibri_proto.dir/colibri/proto/encap.cpp.o.d"
  "CMakeFiles/colibri_proto.dir/colibri/proto/messages.cpp.o"
  "CMakeFiles/colibri_proto.dir/colibri/proto/messages.cpp.o.d"
  "CMakeFiles/colibri_proto.dir/colibri/proto/packet.cpp.o"
  "CMakeFiles/colibri_proto.dir/colibri/proto/packet.cpp.o.d"
  "libcolibri_proto.a"
  "libcolibri_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
