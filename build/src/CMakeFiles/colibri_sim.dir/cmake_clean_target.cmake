file(REMOVE_RECURSE
  "libcolibri_sim.a"
)
