file(REMOVE_RECURSE
  "CMakeFiles/colibri_sim.dir/colibri/sim/cbwfq.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/cbwfq.cpp.o.d"
  "CMakeFiles/colibri_sim.dir/colibri/sim/event.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/event.cpp.o.d"
  "CMakeFiles/colibri_sim.dir/colibri/sim/link.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/link.cpp.o.d"
  "CMakeFiles/colibri_sim.dir/colibri/sim/queue.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/queue.cpp.o.d"
  "CMakeFiles/colibri_sim.dir/colibri/sim/scenario.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/scenario.cpp.o.d"
  "CMakeFiles/colibri_sim.dir/colibri/sim/traffic.cpp.o"
  "CMakeFiles/colibri_sim.dir/colibri/sim/traffic.cpp.o.d"
  "libcolibri_sim.a"
  "libcolibri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
