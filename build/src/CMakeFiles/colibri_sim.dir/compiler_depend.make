# Empty compiler generated dependencies file for colibri_sim.
# This may be replaced when dependencies are built.
