# Empty compiler generated dependencies file for colibri_common.
# This may be replaced when dependencies are built.
