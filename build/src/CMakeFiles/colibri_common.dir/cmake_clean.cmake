file(REMOVE_RECURSE
  "CMakeFiles/colibri_common.dir/colibri/common/bytes.cpp.o"
  "CMakeFiles/colibri_common.dir/colibri/common/bytes.cpp.o.d"
  "CMakeFiles/colibri_common.dir/colibri/common/clock.cpp.o"
  "CMakeFiles/colibri_common.dir/colibri/common/clock.cpp.o.d"
  "CMakeFiles/colibri_common.dir/colibri/common/errors.cpp.o"
  "CMakeFiles/colibri_common.dir/colibri/common/errors.cpp.o.d"
  "CMakeFiles/colibri_common.dir/colibri/common/ids.cpp.o"
  "CMakeFiles/colibri_common.dir/colibri/common/ids.cpp.o.d"
  "CMakeFiles/colibri_common.dir/colibri/common/rand.cpp.o"
  "CMakeFiles/colibri_common.dir/colibri/common/rand.cpp.o.d"
  "libcolibri_common.a"
  "libcolibri_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
