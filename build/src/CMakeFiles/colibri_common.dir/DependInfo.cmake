
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/common/bytes.cpp" "src/CMakeFiles/colibri_common.dir/colibri/common/bytes.cpp.o" "gcc" "src/CMakeFiles/colibri_common.dir/colibri/common/bytes.cpp.o.d"
  "/root/repo/src/colibri/common/clock.cpp" "src/CMakeFiles/colibri_common.dir/colibri/common/clock.cpp.o" "gcc" "src/CMakeFiles/colibri_common.dir/colibri/common/clock.cpp.o.d"
  "/root/repo/src/colibri/common/errors.cpp" "src/CMakeFiles/colibri_common.dir/colibri/common/errors.cpp.o" "gcc" "src/CMakeFiles/colibri_common.dir/colibri/common/errors.cpp.o.d"
  "/root/repo/src/colibri/common/ids.cpp" "src/CMakeFiles/colibri_common.dir/colibri/common/ids.cpp.o" "gcc" "src/CMakeFiles/colibri_common.dir/colibri/common/ids.cpp.o.d"
  "/root/repo/src/colibri/common/rand.cpp" "src/CMakeFiles/colibri_common.dir/colibri/common/rand.cpp.o" "gcc" "src/CMakeFiles/colibri_common.dir/colibri/common/rand.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
