file(REMOVE_RECURSE
  "libcolibri_common.a"
)
