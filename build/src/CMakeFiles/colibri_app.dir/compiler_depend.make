# Empty compiler generated dependencies file for colibri_app.
# This may be replaced when dependencies are built.
