file(REMOVE_RECURSE
  "libcolibri_app.a"
)
