file(REMOVE_RECURSE
  "CMakeFiles/colibri_app.dir/colibri/app/daemon.cpp.o"
  "CMakeFiles/colibri_app.dir/colibri/app/daemon.cpp.o.d"
  "CMakeFiles/colibri_app.dir/colibri/app/session.cpp.o"
  "CMakeFiles/colibri_app.dir/colibri/app/session.cpp.o.d"
  "CMakeFiles/colibri_app.dir/colibri/app/testbed.cpp.o"
  "CMakeFiles/colibri_app.dir/colibri/app/testbed.cpp.o.d"
  "libcolibri_app.a"
  "libcolibri_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
