file(REMOVE_RECURSE
  "libcolibri_crypto.a"
)
