
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/crypto/aes.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/aes.cpp.o.d"
  "/root/repo/src/colibri/crypto/aesni.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/aesni.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/aesni.cpp.o.d"
  "/root/repo/src/colibri/crypto/cbcmac.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/cbcmac.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/cbcmac.cpp.o.d"
  "/root/repo/src/colibri/crypto/cmac.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/cmac.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/cmac.cpp.o.d"
  "/root/repo/src/colibri/crypto/ctr.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/ctr.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/ctr.cpp.o.d"
  "/root/repo/src/colibri/crypto/eax.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/eax.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/eax.cpp.o.d"
  "/root/repo/src/colibri/crypto/sha256.cpp" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/colibri_crypto.dir/colibri/crypto/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
