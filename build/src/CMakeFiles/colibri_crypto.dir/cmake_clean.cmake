file(REMOVE_RECURSE
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/aes.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/aes.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/aesni.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/aesni.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/cbcmac.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/cbcmac.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/cmac.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/cmac.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/ctr.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/ctr.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/eax.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/eax.cpp.o.d"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/sha256.cpp.o"
  "CMakeFiles/colibri_crypto.dir/colibri/crypto/sha256.cpp.o.d"
  "libcolibri_crypto.a"
  "libcolibri_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
