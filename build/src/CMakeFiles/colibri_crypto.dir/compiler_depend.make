# Empty compiler generated dependencies file for colibri_crypto.
# This may be replaced when dependencies are built.
