file(REMOVE_RECURSE
  "CMakeFiles/colibri_topology.dir/colibri/topology/beacon.cpp.o"
  "CMakeFiles/colibri_topology.dir/colibri/topology/beacon.cpp.o.d"
  "CMakeFiles/colibri_topology.dir/colibri/topology/generator.cpp.o"
  "CMakeFiles/colibri_topology.dir/colibri/topology/generator.cpp.o.d"
  "CMakeFiles/colibri_topology.dir/colibri/topology/pathdb.cpp.o"
  "CMakeFiles/colibri_topology.dir/colibri/topology/pathdb.cpp.o.d"
  "CMakeFiles/colibri_topology.dir/colibri/topology/segment.cpp.o"
  "CMakeFiles/colibri_topology.dir/colibri/topology/segment.cpp.o.d"
  "CMakeFiles/colibri_topology.dir/colibri/topology/topology.cpp.o"
  "CMakeFiles/colibri_topology.dir/colibri/topology/topology.cpp.o.d"
  "libcolibri_topology.a"
  "libcolibri_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
