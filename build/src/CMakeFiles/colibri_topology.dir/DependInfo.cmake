
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/colibri/topology/beacon.cpp" "src/CMakeFiles/colibri_topology.dir/colibri/topology/beacon.cpp.o" "gcc" "src/CMakeFiles/colibri_topology.dir/colibri/topology/beacon.cpp.o.d"
  "/root/repo/src/colibri/topology/generator.cpp" "src/CMakeFiles/colibri_topology.dir/colibri/topology/generator.cpp.o" "gcc" "src/CMakeFiles/colibri_topology.dir/colibri/topology/generator.cpp.o.d"
  "/root/repo/src/colibri/topology/pathdb.cpp" "src/CMakeFiles/colibri_topology.dir/colibri/topology/pathdb.cpp.o" "gcc" "src/CMakeFiles/colibri_topology.dir/colibri/topology/pathdb.cpp.o.d"
  "/root/repo/src/colibri/topology/segment.cpp" "src/CMakeFiles/colibri_topology.dir/colibri/topology/segment.cpp.o" "gcc" "src/CMakeFiles/colibri_topology.dir/colibri/topology/segment.cpp.o.d"
  "/root/repo/src/colibri/topology/topology.cpp" "src/CMakeFiles/colibri_topology.dir/colibri/topology/topology.cpp.o" "gcc" "src/CMakeFiles/colibri_topology.dir/colibri/topology/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colibri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colibri_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
