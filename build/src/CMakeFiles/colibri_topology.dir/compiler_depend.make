# Empty compiler generated dependencies file for colibri_topology.
# This may be replaced when dependencies are built.
