file(REMOVE_RECURSE
  "libcolibri_topology.a"
)
