// Fleet federation + conservation audit: the FleetCollector's rollup /
// sketch / budget machinery, the ConservationAuditor's per-AS and
// cross-AS invariant checks (every injected corruption must surface,
// clean runs must be silent), the fleet scenario end to end, and the
// colibri_obs fleet CLI surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "colibri/app/fleet.hpp"
#include "colibri/app/obs.hpp"
#include "colibri/app/obs_cli.hpp"
#include "colibri/app/session.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/reservation/persist.hpp"
#include "colibri/sim/faults.hpp"
#include "colibri/telemetry/audit.hpp"
#include "colibri/telemetry/federation.hpp"
#include "colibri/telemetry/openmetrics.hpp"

namespace colibri {
namespace {

using telemetry::ConservationAuditor;
using telemetry::FleetCollector;
using telemetry::FleetCollectorConfig;
using telemetry::MetricsRegistry;

// --- FleetCollector ----------------------------------------------------------

TEST(FleetCollectorTest, RollsUpAcrossMembersAndLinks) {
  SimClock clock(0);
  MetricsRegistry a, b, exp;
  FleetCollectorConfig cfg;
  cfg.period_ns = kNsPerSec;
  FleetCollector fc(clock, cfg, &exp);
  fc.add_member("as-a", a);
  fc.add_member("as-b", b);
  fc.add_link("a~b", "as-a", "as-b");
  fc.add_rollup("router.forwarded");
  fc.add_rollup("router.drop.");  // prefix family

  a.counter("router.forwarded").inc(10);
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());  // baseline only
  EXPECT_EQ(fc.window_count(), 0u);

  a.counter("router.forwarded").inc(30);
  b.counter("router.forwarded").inc(70);
  a.counter("router.drop.auth").inc(5);
  b.counter("router.drop.replay").inc(7);
  a.counter("unrelated.series").inc(999);  // not a rollup: ignored
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());
  EXPECT_EQ(fc.window_count(), 1u);
  EXPECT_EQ(fc.windows_sampled(), 1u);

  // Fleet = sum over members; baseline increments must not leak in.
  EXPECT_DOUBLE_EQ(fc.fleet_rate("router.forwarded"), 100.0);
  EXPECT_DOUBLE_EQ(fc.fleet_rate("router.drop."), 12.0);
  EXPECT_DOUBLE_EQ(fc.fleet_rate("router.drop"), 12.0);  // no-dot alias
  EXPECT_DOUBLE_EQ(fc.as_rate("as-a", "router.forwarded"), 30.0);
  EXPECT_DOUBLE_EQ(fc.as_rate("as-b", "router.forwarded"), 70.0);
  EXPECT_DOUBLE_EQ(fc.link_rate("a~b", "router.forwarded"), 100.0);
  EXPECT_DOUBLE_EQ(fc.as_rate("no-such", "router.forwarded"), 0.0);

  // The export surface carries the same rollup.
  const auto snap = exp.snapshot();
  EXPECT_EQ(snap.gauges.at("fleet.as_count"), 2);
  EXPECT_EQ(snap.gauges.at("fleet.link_count"), 1);
  EXPECT_EQ(snap.counters.at("fleet.windows"), 1u);
  EXPECT_EQ(snap.gauges.at("fleet.rate.router.forwarded"), 100);
  EXPECT_EQ(snap.gauges.at("fleet.rate.router.drop"), 12);
}

TEST(FleetCollectorTest, PollInsideOnePeriodIsANoOp) {
  SimClock clock(0);
  MetricsRegistry a;
  FleetCollector fc(clock, {});
  fc.add_member("a", a);
  fc.add_rollup("x");
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());  // baseline
  a.counter("x").inc(5);
  clock.advance(kNsPerSec / 2);
  EXPECT_FALSE(fc.poll());  // only half a period elapsed
  clock.advance(kNsPerSec / 2);
  EXPECT_TRUE(fc.poll());
  EXPECT_DOUBLE_EQ(fc.fleet_rate("x"), 5.0);
}

TEST(FleetCollectorTest, UnknownLinkMemberThrows) {
  SimClock clock(0);
  MetricsRegistry a;
  FleetCollector fc(clock, {});
  fc.add_member("a", a);
  EXPECT_THROW(fc.add_link("bad", "a", "ghost"), std::invalid_argument);
}

TEST(FleetCollectorTest, CounterResetRestartsTheDelta) {
  SimClock clock(0);
  MetricsRegistry exp;  // doubles as the (only) member: self-federation
  FleetCollectorConfig cfg;
  FleetCollector fc(clock, cfg, &exp);
  fc.add_member("self", exp);
  fc.add_rollup("work");
  exp.counter("work").inc(100);
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());
  // Shrink below the baseline (component restart): the delta restarts
  // from the new absolute value instead of wrapping negative.
  exp.reset();
  exp.counter("work").inc(3);
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());
  EXPECT_DOUBLE_EQ(fc.fleet_rate("work"), 3.0);
}

TEST(FleetCollectorTest, SpaceSavingSketchRanksHeavyHitters) {
  SimClock clock(0);
  MetricsRegistry a, b;
  FleetCollectorConfig cfg;
  cfg.top_k = 3;
  FleetCollector fc(clock, cfg);
  fc.add_member("a", a);
  fc.add_member("b", b);
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());

  // One reservation split across two ASes must be ONE hitter with the
  // summed weight; ten light reservations churn the sketch.
  a.counter("res.7.bytes").inc(500);
  b.counter("res.7.bytes").inc(600);
  a.counter("res.8.bytes").inc(400);
  for (int i = 10; i < 20; ++i) {
    a.counter("res." + std::to_string(i) + ".bytes").inc(10);
  }
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());

  const auto top = fc.top_hitters();
  ASSERT_EQ(top.size(), 3u);  // bounded at top_k
  // The heavies rank first even though the light churn ran the sketch
  // full; their estimates carry whatever floor the eviction added, and
  // the space-saving guarantee pins the true count inside
  // [estimate - error, estimate].
  EXPECT_EQ(top[0].key, "7");
  EXPECT_GE(top[0].estimate, 1100u);
  EXPECT_LE(top[0].estimate - top[0].error, 1100u);
  EXPECT_EQ(top[1].key, "8");
  EXPECT_GE(top[1].estimate, 400u);
  EXPECT_LE(top[1].estimate - top[1].error, 400u);
  for (const auto& e : top) {
    EXPECT_GE(e.estimate, e.error) << e.key;
  }
}

TEST(FleetCollectorTest, SketchErrorBoundsSurviveEviction) {
  SimClock clock(0);
  MetricsRegistry a;
  FleetCollectorConfig cfg;
  cfg.top_k = 2;
  FleetCollector fc(clock, cfg);
  fc.add_member("a", a);
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());
  a.counter("res.1.bytes").inc(100);
  a.counter("res.2.bytes").inc(10);
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());
  // A newcomer evicts the minimum entry and inherits its count as
  // error: estimate = floor + delta, error = floor.
  a.counter("res.3.bytes").inc(50);
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());
  const auto top = fc.top_hitters();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "1");
  EXPECT_EQ(top[1].key, "3");
  EXPECT_EQ(top[1].estimate, 60u);  // 10 (floor) + 50
  EXPECT_EQ(top[1].error, 10u);
  EXPECT_GE(top[1].estimate - top[1].error, 50u - 10u);
}

TEST(FleetCollectorTest, SeriesBudgetDropsAndCountsBeyondTheCap) {
  SimClock clock(0);
  MetricsRegistry a;
  FleetCollectorConfig cfg;
  cfg.max_tracked_series = 4;
  FleetCollector fc(clock, cfg);
  fc.add_member("a", a);
  fc.add_rollup("work.");
  for (int i = 0; i < 10; ++i) {
    a.counter("work." + std::to_string(i)).inc(1);
  }
  clock.advance(kNsPerSec);
  EXPECT_FALSE(fc.poll());
  EXPECT_EQ(fc.tracked_series(), 4u);
  EXPECT_EQ(fc.dropped_series(), 6u);
  for (int i = 0; i < 10; ++i) {
    a.counter("work." + std::to_string(i)).inc(1);
  }
  clock.advance(kNsPerSec);
  ASSERT_TRUE(fc.poll());
  // Only the 4 tracked series contribute deltas; the budget never grows.
  EXPECT_DOUBLE_EQ(fc.fleet_rate("work."), 4.0);
  EXPECT_EQ(fc.tracked_series(), 4u);
  EXPECT_GE(fc.dropped_series(), 12u);
}

// The acceptance bar: a four-digit-AS fleet federates under a bounded
// budget, deterministically. Two identical runs must render the same
// exposition byte for byte.
TEST(FleetCollectorTest, ThousandMemberFleetIsBoundedAndDeterministic) {
  constexpr int kAses = 1000;
  const auto run_once = [&](std::string& exposition,
                            std::vector<telemetry::FleetTopEntry>& top) {
    SimClock clock(0);
    std::vector<std::unique_ptr<MetricsRegistry>> regs;
    regs.reserve(kAses);
    for (int i = 0; i < kAses; ++i) {
      regs.push_back(std::make_unique<MetricsRegistry>());
    }
    MetricsRegistry exp;
    FleetCollectorConfig cfg;
    cfg.top_k = 8;
    cfg.max_tracked_series = 1500;  // < 2000 matched series: budget binds
    FleetCollector fc(clock, cfg, &exp);
    for (int i = 0; i < kAses; ++i) {
      fc.add_member("as-" + std::to_string(i), *regs[i]);
      regs[i]->counter("work.done").inc(static_cast<std::uint64_t>(i));
      regs[i]->counter("res." + std::to_string(i % 50) + ".bytes")
          .inc(static_cast<std::uint64_t>(i));
      regs[i]->counter("noise.ignored").inc(1);  // never tracked
    }
    clock.advance(kNsPerSec);
    EXPECT_FALSE(fc.poll());
    for (int i = 0; i < kAses; ++i) {
      regs[i]->counter("work.done").inc(2);
      regs[i]->counter("res." + std::to_string(i % 50) + ".bytes").inc(7);
    }
    fc.add_rollup("work.done");
    clock.advance(kNsPerSec);
    ASSERT_TRUE(fc.poll());
    EXPECT_LE(fc.tracked_series(), 1500u);
    EXPECT_GT(fc.dropped_series(), 0u);
    EXPECT_EQ(fc.member_count(), static_cast<std::size_t>(kAses));
    exposition = telemetry::to_openmetrics(exp.snapshot());
    top = fc.top_hitters();
  };
  std::string exp1, exp2;
  std::vector<telemetry::FleetTopEntry> top1, top2;
  run_once(exp1, top1);
  run_once(exp2, top2);
  EXPECT_EQ(exp1, exp2);
  ASSERT_EQ(top1.size(), top2.size());
  for (std::size_t i = 0; i < top1.size(); ++i) {
    EXPECT_EQ(top1[i].key, top2[i].key) << i;
    EXPECT_EQ(top1[i].estimate, top2[i].estimate) << i;
    EXPECT_EQ(top1[i].error, top2[i].error) << i;
  }
}

// --- ConservationAuditor -----------------------------------------------------

class AuditFixture : public ::testing::Test {
 protected:
  AuditFixture()
      : clock_(1'000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_, {},
             app::TestbedOptions{}),
        auditor_(clock_) {
    bed_.provision_all_segments(1'000, 2'000'000);
    auto s = bed_.daemon(AsId{1, 110})
                 .open_session(AsId{2, 210}, HostAddr::from_u64(1),
                               HostAddr::from_u64(2), 1'000, 5'000);
    if (s.ok()) session_.emplace(std::move(s.value()));
    for (AsId as : bed_.topology().as_ids()) {
      auditor_.add_target({as.to_string(), as, &bed_.cserv(as).db(),
                           bed_.cserv(as).eer_admission(),
                           &bed_.topology().node(as)});
    }
  }

  // First transit AS holding at least one SegR.
  AsId segr_holder() {
    for (AsId as : bed_.topology().as_ids()) {
      if (!bed_.cserv(as).db().segr_snapshot().empty()) return as;
    }
    throw std::logic_error("no SegRs provisioned");
  }

  SimClock clock_;
  app::Testbed bed_;
  std::optional<app::ReservationSession> session_;
  ConservationAuditor auditor_;
};

TEST_F(AuditFixture, CleanFleetAuditsWithZeroViolations) {
  ASSERT_TRUE(session_.has_value());
  const auto rep = auditor_.run(clock_.now_sec());
  EXPECT_GT(rep.checks, 0u);
  EXPECT_TRUE(rep.clean())
      << rep.violations.front().check << ": "
      << rep.violations.front().detail;
  EXPECT_EQ(auditor_.passes(), 1u);
  EXPECT_EQ(auditor_.violations_total(), 0u);
}

TEST_F(AuditFixture, FlagsTubeOverAllocation) {
  const AsId victim = segr_holder();
  const auto segrs = bed_.cserv(victim).db().segr_snapshot();
  bed_.cserv(victim).db().with_segr(
      segrs.front().key, [](reservation::SegrRecord* r) {
        r->eer_allocated_kbps = r->active.bw_kbps * 2 + 1;
      });
  const auto rep = auditor_.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool found = false;
  for (const auto& v : rep.violations) {
    found |= v.check == "tube.over_allocation" && v.as == victim;
  }
  EXPECT_TRUE(found);
}

TEST_F(AuditFixture, FlagsLedgerMismatch) {
  const AsId victim = segr_holder();
  const auto segrs = bed_.cserv(victim).db().segr_snapshot();
  // +1 kbps stays inside the tube (no over-allocation) but the stripe
  // ledger no longer matches the db counter it mirrors.
  bed_.cserv(victim).db().with_segr(segrs.front().key,
                                    [](reservation::SegrRecord* r) {
                                      r->eer_allocated_kbps += 1;
                                    });
  const auto rep = auditor_.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool found = false;
  for (const auto& v : rep.violations) {
    found |= v.check == "ledger.mismatch" && v.as == victim;
  }
  EXPECT_TRUE(found);
}

TEST_F(AuditFixture, FlagsTubeOversubscriptionFromACorruptEer) {
  ASSERT_TRUE(session_.has_value());
  // Inflate the EER's recorded bandwidth far beyond its SegR tube at
  // one on-path AS: the recomputed effective sum bursts the tube (and
  // the fleet view diverges, since the other hops kept the real value).
  const ResKey key = session_->key();
  bool corrupted = false;
  AsId victim{};
  for (AsId as : bed_.topology().as_ids()) {
    if (!bed_.cserv(as).db().contains_eer(key)) continue;
    bed_.cserv(as).db().with_eer(key, [&](reservation::EerRecord* r) {
      for (auto& v : r->versions) v.bw_kbps = 3'000'000'000;
    });
    victim = as;
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  const auto rep = auditor_.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool oversub = false, diverged = false;
  for (const auto& v : rep.violations) {
    oversub |= v.check == "tube.oversubscribed" && v.as == victim;
    diverged |= v.check == "fleet.eer_divergence";
  }
  EXPECT_TRUE(oversub);
  EXPECT_TRUE(diverged);
}

TEST_F(AuditFixture, FlagsLinkOvercommit) {
  const AsId victim = segr_holder();
  const auto segrs = bed_.cserv(victim).db().segr_snapshot();
  // An active bandwidth above the egress link's Colibri share breaks
  // link conservation (and diverges from the other on-path ASes).
  bed_.cserv(victim).db().with_segr(
      segrs.front().key, [](reservation::SegrRecord* r) {
        r->active.bw_kbps = 3'000'000'000;
        r->eer_allocated_kbps = 0;
      });
  const auto rep = auditor_.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool overcommit = false;
  for (const auto& v : rep.violations) {
    overcommit |= v.check == "link.overcommit" && v.as == victim;
  }
  EXPECT_TRUE(overcommit);
}

TEST_F(AuditFixture, FlagsSegrDivergenceAcrossAses) {
  // Shrink the active bandwidth at exactly one AS of a multi-AS SegR.
  const auto segrs = bed_.cserv(AsId{1, 100}).db().segr_snapshot();
  ASSERT_FALSE(segrs.empty());
  ResKey key{};
  bool found = false;
  for (const auto& s : segrs) {
    if (s.hops.size() >= 2) {
      key = s.key;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  bed_.cserv(AsId{1, 100})
      .db()
      .with_segr(key, [](reservation::SegrRecord* r) {
        r->active.bw_kbps = r->active.bw_kbps / 2 + 1;
      });
  const auto rep = auditor_.run(clock_.now_sec());
  bool diverged = false;
  for (const auto& v : rep.violations) {
    diverged |= v.check == "fleet.segr_divergence";
  }
  EXPECT_TRUE(diverged);
}

TEST_F(AuditFixture, FlagsMissingOnPathRecord) {
  const auto segrs = bed_.cserv(AsId{1, 100}).db().segr_snapshot();
  ResKey key{};
  bool found = false;
  for (const auto& s : segrs) {
    if (s.hops.size() >= 2) {
      key = s.key;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ASSERT_TRUE(bed_.cserv(AsId{1, 100}).db().erase_segr(key));
  const auto rep = auditor_.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool missing = false;
  for (const auto& v : rep.violations) {
    missing |= v.check == "fleet.segr_missing" && v.as == AsId{1, 100};
  }
  EXPECT_TRUE(missing);
}

TEST_F(AuditFixture, ViolationsTravelTheMetricAndEventSurfaces) {
  SimClock clock(0);
  telemetry::EventLog events(clock);
  MetricsRegistry reg;
  ConservationAuditor auditor(clock, &events, &reg);
  for (AsId as : bed_.topology().as_ids()) {
    auditor.add_target({as.to_string(), as, &bed_.cserv(as).db(), nullptr,
                        nullptr});
  }
  const AsId victim = segr_holder();
  const auto segrs = bed_.cserv(victim).db().segr_snapshot();
  bed_.cserv(victim).db().with_segr(
      segrs.front().key, [](reservation::SegrRecord* r) {
        r->eer_allocated_kbps = r->active.bw_kbps + 5;
      });
  (void)auditor.run(clock.now_sec());

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("telemetry.audit.passes"), 1u);
  EXPECT_GE(snap.counters.at("telemetry.audit.violations"), 1u);
  EXPECT_GE(snap.gauges.at("telemetry.audit.last_violations"), 1);
  EXPECT_GE(
      snap.counters.at("telemetry.audit.violation.tube.over_allocation"), 1u);
  EXPECT_NE(events.to_jsonl().find("audit.violation"), std::string::npos);
}

// A WAL fault injected by the chaos layer must surface through the
// auditor after recovery: the corrupt append stops replay, so the
// restarted AS misses the records every other AS still holds.
TEST_F(AuditFixture, FlagsWalFaultSurvivingRecovery) {
  ASSERT_TRUE(session_.has_value());
  const AsId victim{2, 200};  // transit core on the session path
  ASSERT_TRUE(bed_.cserv(victim).db().contains_eer(session_->key()));

  reservation::MemoryStorage storage;
  FaultInjector faults(clock_, /*seed=*/0xC0FFEE);
  sim::FaultyStorage faulty(storage, faults);
  reservation::ReservationWal wal(faulty);
  bed_.cserv(victim).attach_wal(&wal);
  // Checkpoint the pre-fault state, then corrupt the very next append —
  // the EER admitted through the WAL below is lost to recovery.
  wal.checkpoint(bed_.cserv(victim).db());
  faults.arm_wal_fault(WalFaultKind::kBitFlip, /*bit=*/13);
  auto second = bed_.daemon(AsId{1, 111})
                    .open_session(AsId{2, 211}, HostAddr::from_u64(3),
                                  HostAddr::from_u64(4), 1'000, 4'000);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(bed_.cserv(victim).db().contains_eer(second.value().key()));
  EXPECT_GT(faulty.faulted(), 0u);

  cserv::CServ& restarted = bed_.restart_as(victim);
  restarted.attach_wal(&wal);
  (void)restarted.restore_from_wal();
  // The first session survived (it predates the checkpoint's fault);
  // the second one is gone at the victim only.
  EXPECT_FALSE(restarted.db().contains_eer(second.value().key()));

  // Rebind the victim's audit target to the restarted service.
  ConservationAuditor auditor(clock_);
  for (AsId as : bed_.topology().as_ids()) {
    auditor.add_target({as.to_string(), as, &bed_.cserv(as).db(),
                        bed_.cserv(as).eer_admission(), nullptr});
  }
  const auto rep = auditor.run(clock_.now_sec());
  ASSERT_FALSE(rep.clean());
  bool flagged = false;
  for (const auto& v : rep.violations) {
    flagged |= v.check == "fleet.eer_missing" && v.as == victim;
  }
  EXPECT_TRUE(flagged) << "corruption at the recovered AS went unflagged";
}

// --- fleet scenario ----------------------------------------------------------

TEST(FleetScenarioTest, CleanRunFederatesAuditsAndStaysSilent) {
  const app::FleetArtifacts art = app::run_fleet_scenario();
  EXPECT_EQ(art.as_count, 16u);  // two_isd_topology
  EXPECT_GT(art.link_count, 0u);
  EXPECT_GT(art.fleet_windows, 0u);
  EXPECT_GT(art.sessions_opened, 0);
  EXPECT_GT(art.delivered, 0);
  EXPECT_GT(art.audit_passes, 0u);
  EXPECT_GT(art.audit_checks, 0u);
  EXPECT_EQ(art.audit_violations, 0u);
  EXPECT_EQ(art.audit_violations_total, 0u);
  EXPECT_FALSE(art.hitters.empty());
  EXPECT_NE(art.table.find("fleet:"), std::string::npos);
  EXPECT_NE(art.table.find("audit: PASS"), std::string::npos);
  EXPECT_GT(art.sampler_windows, 0u);
  EXPECT_GT(art.alert_evaluations, 0u);
  EXPECT_EQ(art.alerts_firing, 0u);
  // The export registry carries every surface of the federation.
  EXPECT_TRUE(art.metrics.gauges.contains("fleet.as_count"));
  EXPECT_TRUE(art.metrics.counters.contains("telemetry.audit.passes"));
  EXPECT_TRUE(art.metrics.gauges.contains("telemetry.alerts.rules"));
  // ...and the exposition round-trips through the strict parser.
  std::string err;
  ASSERT_TRUE(telemetry::parse_openmetrics(art.openmetrics, &err)) << err;
}

TEST(FleetScenarioTest, RunsAreDeterministic) {
  const app::FleetArtifacts a = app::run_fleet_scenario();
  const app::FleetArtifacts b = app::run_fleet_scenario();
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.openmetrics, b.openmetrics);
  EXPECT_EQ(a.delivered, b.delivered);
  ASSERT_EQ(a.hitters.size(), b.hitters.size());
  for (std::size_t i = 0; i < a.hitters.size(); ++i) {
    EXPECT_EQ(a.hitters[i].key, b.hitters[i].key) << i;
    EXPECT_EQ(a.hitters[i].estimate, b.hitters[i].estimate) << i;
  }
}

TEST(FleetScenarioTest, InjectedCorruptionFiresTheAuditPipeline) {
  app::FleetOptions opts;
  opts.inject_corruption = true;
  const app::FleetArtifacts art = app::run_fleet_scenario(opts);
  EXPECT_GT(art.audit_violations_total, 0u);
  EXPECT_GT(art.audit_violations, 0u);  // still broken at scenario end
  EXPECT_NE(art.table.find("audit: FAIL"), std::string::npos);
  EXPECT_NE(art.table.find("tube.over_allocation"), std::string::npos);
  // The alert pack caught it.
  EXPECT_GT(art.alerts_fired, 0u);
  EXPECT_GT(art.alerts_firing, 0u);
  EXPECT_NE(art.events_jsonl.find("audit.violation"), std::string::npos);
}

TEST(FleetScenarioTest, DispatchesThroughTheObsScenarioSurface) {
  app::ObsOptions opts;
  opts.scenario = "fleet";
  const app::ObsArtifacts art = app::run_obs_scenario(opts);
  EXPECT_EQ(art.fleet_as_count, 16u);
  EXPECT_GT(art.fleet_windows, 0u);
  EXPECT_GT(art.audit_passes, 0u);
  EXPECT_EQ(art.audit_violations, 0u);
  EXPECT_GT(art.delivered, 0);
  ASSERT_FALSE(art.watch_frames.empty());
  EXPECT_NE(art.watch_text.find("fleet:"), std::string::npos);
  const auto names = app::obs_scenario_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fleet"), names.end());
}

// --- colibri_obs CLI ---------------------------------------------------------

int run_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"colibri_obs"};
  argv.insert(argv.end(), args);
  return app::run_obs_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(FleetCliTest, FleetOnceRendersTheTableAndExitsZero) {
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_cli({"fleet", "--once"}), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out.find('\033'), std::string::npos);  // no replay escapes
  EXPECT_NE(out.find("colibri fleet"), std::string::npos) << out;
  EXPECT_NE(out.find("fleet:"), std::string::npos);
  EXPECT_NE(out.find("audit: PASS"), std::string::npos);
  EXPECT_NE(out.find("top reservations"), std::string::npos);
}

TEST(FleetCliTest, WatchOnceOnTheFleetScenarioCarriesTheFleetLine) {
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_cli({"watch", "--once", "--scenario=fleet"}), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("fleet:"), std::string::npos) << out;
}

TEST(FleetCliTest, UnknownScenarioListsTheValidOnesAndExitsNonzero) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"--scenario=galaxy"}), 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown scenario 'galaxy'"), std::string::npos);
  // The error must enumerate every valid scenario.
  for (const std::string& name : app::obs_scenario_names()) {
    EXPECT_NE(err.find(name), std::string::npos) << name;
  }
}

TEST(FleetCliTest, OnceStillRejectsNonWatchNonFleetCommands) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"health", "--once"}), 2);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("usage:"),
            std::string::npos);
}

// --- concurrency (TSan lane) -------------------------------------------------

// Collector polls, audit passes, traffic, db churn, and export
// snapshots all race; the suite runs under TSan in CI (ci.sh).
TEST(FleetAuditStressTest, ConcurrentCollectAuditTrafficAndExport) {
  SystemClock& clock = SystemClock::instance();
  constexpr int kMembers = 4;
  std::vector<std::unique_ptr<MetricsRegistry>> regs;
  for (int i = 0; i < kMembers; ++i) {
    regs.push_back(std::make_unique<MetricsRegistry>());
  }
  MetricsRegistry exp;
  FleetCollectorConfig cfg;
  cfg.period_ns = 1;  // every poll cuts a window
  cfg.top_k = 4;
  FleetCollector fc(clock, cfg, &exp);
  for (int i = 0; i < kMembers; ++i) {
    fc.add_member("m" + std::to_string(i), *regs[i]);
  }
  fc.add_rollup("work.done");

  reservation::ReservationDb db_a(AsId{1, 1}), db_b(AsId{1, 2});
  ConservationAuditor auditor(clock, nullptr, &exp);
  auditor.add_target({"a", AsId{1, 1}, &db_a, nullptr, nullptr});
  auditor.add_target({"b", AsId{1, 2}, &db_b, nullptr, nullptr});

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // collection loop
    while (!stop.load(std::memory_order_relaxed)) {
      (void)fc.poll();
      (void)fc.top_hitters();
      (void)fc.fleet_rate("work.done");
    }
  });
  threads.emplace_back([&] {  // audit loop
    while (!stop.load(std::memory_order_relaxed)) {
      (void)auditor.run(clock.now_sec());
      (void)auditor.last_report();
      (void)auditor.passes();
    }
  });
  threads.emplace_back([&] {  // traffic
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      regs[i % kMembers]->counter("work.done").inc(1);
      regs[i % kMembers]
          ->counter("res." + std::to_string(i % 8) + ".bytes")
          .inc(64);
      ++i;
    }
  });
  threads.emplace_back([&] {  // db churn under the running auditor
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      reservation::SegrRecord r;
      r.key = ResKey{AsId{1, 1}, static_cast<ResId>(i % 16)};
      r.hops.push_back({AsId{1, 1}, 0, 0});
      r.active.bw_kbps = 1'000;
      r.active.exp_time = clock.now_sec() + 300;
      db_a.upsert_segr(r);
      db_b.upsert_segr(r);
      ++i;
    }
  });
  threads.emplace_back([&] {  // exposition reader
    while (!stop.load(std::memory_order_relaxed)) {
      (void)telemetry::to_openmetrics(exp.snapshot());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_GT(fc.windows_sampled(), 0u);
  EXPECT_GT(auditor.passes(), 0u);
}

}  // namespace
}  // namespace colibri
