// Unit tests: end-host stack — daemon, session lifecycle, testbed wiring.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"

namespace colibri::app {
namespace {

class AppTest : public ::testing::Test {
 protected:
  AppTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {
    bed_.provision_all_segments(1000, 2'000'000);
  }

  SimClock clock_;
  Testbed bed_;
};

TEST_F(AppTest, TestbedBuildsFullStacks) {
  for (AsId as : bed_.topology().as_ids()) {
    AsStack& s = bed_.stack(as);
    EXPECT_NE(s.cserv, nullptr);
    EXPECT_NE(s.gateway, nullptr);
    EXPECT_NE(s.router, nullptr);
    EXPECT_NE(s.daemon, nullptr);
    EXPECT_EQ(s.cserv->local_as(), as);
    EXPECT_TRUE(bed_.bus().reachable(as));
  }
  EXPECT_THROW(bed_.stack(AsId{9, 9}), std::out_of_range);
}

TEST_F(AppTest, OpenSessionInstallsGatewayState) {
  const AsId src{1, 110}, dst{1, 120};
  const size_t before = bed_.gateway(src).reservation_count();
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 5000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  EXPECT_EQ(bed_.gateway(src).reservation_count(), before + 1);
}

TEST_F(AppTest, SessionSendRespectsReservedRate) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);  // 1 Mbps
  ASSERT_TRUE(session.ok());
  // Blast far above 1 Mbps without advancing time: the gateway's token
  // bucket must start limiting.
  int limited = 0;
  for (int i = 0; i < 5000; ++i) {
    dataplane::FastPacket pkt;
    if (session.value().send(1000, pkt) ==
        dataplane::Gateway::Verdict::kRateLimited) {
      ++limited;
    }
  }
  EXPECT_GT(limited, 0);
}

TEST_F(AppTest, PaceIntervalMatchesBandwidth) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 8000);  // 8 Mbps
  ASSERT_TRUE(session.ok());
  // 1000 B at 8 Mbps -> 1 ms per packet.
  EXPECT_NEAR(static_cast<double>(session.value().pace_interval_ns(1000)),
              1e6, 1e4);
}

TEST_F(AppTest, MaybeRenewIsNoopWhenNotDue) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  const ResVer v0 = session.value().version();
  EXPECT_TRUE(session.value().maybe_renew());
  EXPECT_EQ(session.value().version(), v0);  // 16 s away, nothing to do
}

TEST_F(AppTest, ExpiredSessionReportsExpired) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session.value().expired());
  clock_.advance(20 * kNsPerSec);
  EXPECT_TRUE(session.value().expired());
}

TEST_F(AppTest, OpenSessionToUnreachableAsFails) {
  auto session = bed_.daemon(AsId{1, 110}).open_session(
      AsId{7, 777}, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  EXPECT_FALSE(session.ok());
}

TEST_F(AppTest, CandidateChainsConnectEndToEnd) {
  const AsId src{1, 112}, dst{2, 221};
  const auto chains = bed_.daemon(src).candidate_chains(dst);
  ASSERT_FALSE(chains.empty());
  for (const auto& chain : chains) {
    EXPECT_EQ(chain.front().first_as(), src);
    EXPECT_EQ(chain.back().last_as(), dst);
  }
}

TEST_F(AppTest, ProvisionAllSegmentsIdempotentKeys) {
  // Provisioning twice creates fresh reservations with distinct ResIds;
  // (SrcAS, ResId) stays globally unique.
  const size_t more = bed_.provision_all_segments(1000, 1'000'000);
  EXPECT_GT(more, 0u);
  for (AsId as : bed_.topology().as_ids()) {
    std::set<ResId> seen;
    bed_.cserv(as).db().for_each_segr(
        [&](const reservation::SegrRecord& rec) {
          if (rec.key.src_as == as) {
            EXPECT_TRUE(seen.insert(rec.key.res_id).second);
          }
        });
  }
}

TEST_F(AppTest, ConcurrentSessionsShareSegr) {
  const AsId src{1, 110}, dst{1, 120};
  std::vector<Result<ReservationSession>> sessions;
  for (int i = 0; i < 5; ++i) {
    sessions.push_back(bed_.daemon(src).open_session(
        dst, HostAddr::from_u64(10 + i), HostAddr::from_u64(2), 100, 1000));
    ASSERT_TRUE(sessions.back().ok()) << i;
  }
  // All sessions produce forwardable packets.
  for (auto& s : sessions) {
    dataplane::FastPacket pkt;
    EXPECT_EQ(s.value().send(100, pkt), dataplane::Gateway::Verdict::kOk);
  }
}

}  // namespace
}  // namespace colibri::app
